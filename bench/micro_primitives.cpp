/**
 * @file
 * google-benchmark microbenchmarks of the simulator's primitives: raw
 * access-path costs (plain / volatile / atomic / RMW), the ecl::
 * byte-masking helpers, cache-model throughput, and graph generation.
 * These measure *host* performance of the simulator itself, which bounds
 * how large the scaled inputs can be.
 */
#include <benchmark/benchmark.h>

#include "algos/cc.hpp"
#include "algos/mis.hpp"
#include "graph/generators.hpp"
#include "simt/cache.hpp"
#include "simt/ecl_atomics.hpp"
#include "simt/engine.hpp"

namespace {

using namespace eclsim;
using simt::AccessMode;

void
accessPath(benchmark::State& state, AccessMode mode, bool rmw)
{
    simt::DeviceMemory memory;
    simt::Engine engine(simt::titanV(), memory);
    const u32 n = 4096;
    auto data = memory.alloc<u32>(n, "data");

    for (auto _ : state) {
        engine.launch("touch", simt::launchFor(n),
                      [&](simt::ThreadCtx& t) -> simt::Task {
                          const u32 v = t.globalThreadId();
                          if (v >= n)
                              co_return;
                          if (rmw)
                              co_await t.atomicAdd(data, v, u32{1});
                          else
                              co_await t.load(data, v, mode);
                      });
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) * n);
}

void
BM_PlainLoad(benchmark::State& state)
{
    accessPath(state, AccessMode::kPlain, false);
}
void
BM_VolatileLoad(benchmark::State& state)
{
    accessPath(state, AccessMode::kVolatile, false);
}
void
BM_AtomicLoad(benchmark::State& state)
{
    accessPath(state, AccessMode::kAtomic, false);
}
void
BM_AtomicRmw(benchmark::State& state)
{
    accessPath(state, AccessMode::kAtomic, true);
}
BENCHMARK(BM_PlainLoad);
BENCHMARK(BM_VolatileLoad);
BENCHMARK(BM_AtomicLoad);
BENCHMARK(BM_AtomicRmw);

void
BM_ByteMaskedWrite(benchmark::State& state)
{
    // The Fig. 4 typecast-and-mask path used by the race-free MIS.
    simt::DeviceMemory memory;
    simt::Engine engine(simt::titanV(), memory);
    const u32 n = 4096;
    auto stat = memory.alloc<u8>(n, "stat");

    for (auto _ : state) {
        engine.launch("mask", simt::launchFor(n),
                      [&](simt::ThreadCtx& t) -> simt::Task {
                          const u32 v = t.globalThreadId();
                          if (v >= n)
                              co_return;
                          co_await ecl::atomicByteAnd(t, stat, v, 0x00);
                      });
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) * n);
}
BENCHMARK(BM_ByteMaskedWrite);

void
BM_CacheModelAccess(benchmark::State& state)
{
    simt::CacheModel cache(96 * 1024, 128, 4);
    u64 addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr = (addr + 4093) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelAccess);

void
BM_RmatGeneration(benchmark::State& state)
{
    const auto scale = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        auto g = graph::makeRmat(scale, u64{8} << scale,
                                 graph::RmatParams{}, 42);
        benchmark::DoNotOptimize(g.numArcs());
    }
}
BENCHMARK(BM_RmatGeneration)->Arg(10)->Arg(14);

void
BM_SimulatedCc(benchmark::State& state)
{
    const auto graph =
        graph::makeRmat(static_cast<u32>(state.range(0)), 16384,
                        graph::RmatParams{}, 7);
    for (auto _ : state) {
        simt::DeviceMemory memory;
        simt::Engine engine(simt::titanV(), memory);
        auto r = algos::runCc(engine, graph, algos::Variant::kBaseline);
        benchmark::DoNotOptimize(r.labels.data());
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                            graph.numArcs());
}
BENCHMARK(BM_SimulatedCc)->Arg(11);

void
BM_SimulatedMis(benchmark::State& state)
{
    const auto graph =
        graph::makeRmat(static_cast<u32>(state.range(0)), 16384,
                        graph::RmatParams{}, 7);
    for (auto _ : state) {
        simt::DeviceMemory memory;
        simt::Engine engine(simt::titanV(), memory);
        auto r = algos::runMis(engine, graph, algos::Variant::kRaceFree);
        benchmark::DoNotOptimize(r.set_size);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                            graph.numArcs());
}
BENCHMARK(BM_SimulatedMis)->Arg(11);

}  // namespace

BENCHMARK_MAIN();
