/**
 * @file
 * Reproduction of the paper's artifact workflow (Appendix E/F): run
 * every baseline and race-free code on every appropriate input N times,
 * keep the median runtime, and emit
 *
 *   results/undirected_runtimes.csv   raw per-rep runtimes
 *   results/directed_runtimes.csv
 *   output/undirected_speedups.csv    per-input speedups (CC GC MIS MST)
 *   output/directed_speedups.csv      per-input SCC speedups
 *   output/geometric_means.csv        the Fig. 6 data series
 *
 * matching the artifact's ./results/ and ./output/ directories. The
 * artifact runs on one GPU ("the fastest GPU available by default");
 * pass --gpu to pick another of the four evaluation GPUs.
 */
#include <filesystem>
#include <iostream>

#include "bench_util.hpp"
#include "core/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    auto config = bench::configFromFlags(flags);
    config.reps = static_cast<u32>(flags.getInt("reps", 3));
    // The artifact picks the fastest GPU by default; of our four
    // simulated devices that is the 4090.
    const auto& gpu = simt::findGpu(flags.getString("gpu", "4090"));
    const std::string outdir = flags.getString("outdir", ".");

    std::filesystem::create_directories(outdir + "/results");
    std::filesystem::create_directories(outdir + "/output");

    std::cout << "running the artifact pipeline on " << gpu.name << " ("
              << config.reps << " reps, divisor " << config.graph_divisor
              << ")...\n";

    TextTable raw_und({"input", "algorithm", "variant", "median_ms",
                       "iterations"});
    TextTable und_speedups({"input", "CC", "GC", "MIS", "MST"});

    const auto progress = [](const harness::Measurement& m) {
        std::cerr << "  " << harness::algoName(m.algo) << " " << m.input
                  << ": " << fmtFixed(m.speedup(), 2) << "\n";
    };
    const auto und = harness::runUndirectedSuite(gpu, config, progress);

    for (const auto& entry : graph::undirectedCatalog()) {
        std::vector<std::string> row = {entry.name};
        for (harness::Algo algo : harness::undirectedAlgos()) {
            for (const auto& m : und) {
                if (m.input != entry.name || m.algo != algo)
                    continue;
                row.push_back(fmtFixed(m.speedup(), 4));
                raw_und.addRow({m.input, harness::algoName(algo),
                                "baseline", fmtFixed(m.baseline_ms, 6),
                                std::to_string(m.baseline_iterations)});
                raw_und.addRow({m.input, harness::algoName(algo),
                                "race-free", fmtFixed(m.racefree_ms, 6),
                                std::to_string(m.racefree_iterations)});
            }
        }
        und_speedups.addRow(std::move(row));
    }

    TextTable raw_dir({"input", "algorithm", "variant", "median_ms",
                       "iterations"});
    TextTable dir_speedups({"input", "SCC"});
    const auto dir = harness::runSccSuite(gpu, config, progress);
    for (const auto& m : dir) {
        dir_speedups.addRow({m.input, fmtFixed(m.speedup(), 4)});
        raw_dir.addRow({m.input, "SCC", "baseline",
                        fmtFixed(m.baseline_ms, 6),
                        std::to_string(m.baseline_iterations)});
        raw_dir.addRow({m.input, "SCC", "race-free",
                        fmtFixed(m.racefree_ms, 6),
                        std::to_string(m.racefree_iterations)});
    }

    TextTable geomeans({"algorithm", "geomean_speedup"});
    for (harness::Algo algo : harness::undirectedAlgos())
        geomeans.addRow({harness::algoName(algo),
                         fmtFixed(harness::geomeanSpeedup(und, algo,
                                                          gpu.name),
                                  4)});
    geomeans.addRow({"SCC",
                     fmtFixed(harness::geomeanSpeedup(
                                  dir, harness::Algo::kScc, gpu.name),
                              4)});

    raw_und.writeCsv(outdir + "/results/undirected_runtimes.csv");
    raw_dir.writeCsv(outdir + "/results/directed_runtimes.csv");
    und_speedups.writeCsv(outdir + "/output/undirected_speedups.csv");
    dir_speedups.writeCsv(outdir + "/output/directed_speedups.csv");
    geomeans.writeCsv(outdir + "/output/geometric_means.csv");

    std::cout << "\nSpeedups from baseline to race-free ("
              << gpu.name << "):\n\n"
              << und_speedups.toText() << "\n"
              << dir_speedups.toText() << "\n"
              << geomeans.toText() << "\nwrote " << outdir
              << "/results/*.csv and " << outdir << "/output/*.csv\n";
    return 0;
}
