/**
 * @file
 * Ablation for the memory-ordering and scope choices (paper Sections I
 * and II-A): the converted race-free codes use relaxed, device-scope
 * atomics — "the weakest version that is sufficient for correctness" —
 * because the libcu++ defaults (seq_cst) "can lead to poor performance".
 *
 * This bench reruns the race-free codes with every atomic forced to a
 * given memory order (and optionally system scope) and reports the
 * geomean slowdown relative to relaxed, quantifying how much performance
 * the paper's relaxed-ordering choice preserves.
 */
#include <iostream>

#include "algos/cc.hpp"
#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "bench_util.hpp"
#include "core/stats.hpp"
#include "graph/catalog.hpp"

namespace {

using namespace eclsim;

struct Setting
{
    const char* label;
    bool override_order;
    simt::MemoryOrder order;
    bool override_scope;
    simt::Scope scope;
};

double
runRaceFree(const simt::GpuSpec& gpu, const graph::CsrGraph& graph,
            harness::Algo algo, const Setting& setting, u64 seed)
{
    simt::DeviceMemory memory;
    simt::EngineOptions options;
    options.seed = seed;
    options.override_atomic_order = setting.override_order;
    options.forced_atomic_order = setting.order;
    options.override_atomic_scope = setting.override_scope;
    options.forced_atomic_scope = setting.scope;
    simt::Engine engine(gpu, memory, options);

    switch (algo) {
      case harness::Algo::kCc:
        return algos::runCc(engine, graph, algos::Variant::kRaceFree)
            .stats.ms;
      case harness::Algo::kGc:
        return algos::runGc(engine, graph, algos::Variant::kRaceFree)
            .stats.ms;
      case harness::Algo::kMis:
        return algos::runMis(engine, graph, algos::Variant::kRaceFree)
            .stats.ms;
      default:
        fatal("unsupported algo in this ablation");
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto& gpu = simt::findGpu(flags.getString("gpu", "A100"));

    const Setting settings[] = {
        {"relaxed (paper)", true, simt::MemoryOrder::kRelaxed, false,
         simt::Scope::kDevice},
        {"acquire/release", true, simt::MemoryOrder::kAcquire, false,
         simt::Scope::kDevice},
        {"seq_cst (libcu++ default)", true, simt::MemoryOrder::kSeqCst,
         false, simt::Scope::kDevice},
        {"seq_cst + system scope", true, simt::MemoryOrder::kSeqCst, true,
         simt::Scope::kSystem},
        {"relaxed + block scope (unsound here)", true,
         simt::MemoryOrder::kRelaxed, true, simt::Scope::kBlock},
    };
    const harness::Algo algos_under_test[] = {
        harness::Algo::kCc, harness::Algo::kGc, harness::Algo::kMis};

    TextTable table({"Atomic configuration", "CC", "GC", "MIS"});
    std::vector<double> relaxed_ms[3];

    for (const auto& setting : settings) {
        std::vector<std::string> row = {setting.label};
        int col = 0;
        for (harness::Algo algo : algos_under_test) {
            std::vector<double> ratios;
            size_t input_index = 0;
            for (const auto& entry : graph::undirectedCatalog()) {
                const auto graph = entry.make(config.graph_divisor);
                const double ms = runRaceFree(gpu, graph, algo, setting,
                                              config.seed);
                if (&setting == &settings[0]) {
                    relaxed_ms[col].push_back(ms);
                    ratios.push_back(1.0);
                } else {
                    ratios.push_back(relaxed_ms[col][input_index] / ms);
                }
                ++input_index;
            }
            row.push_back(fmtFixed(stats::geomean(ratios), 2));
            ++col;
        }
        table.addRow(std::move(row));
    }

    bench::emitTable(
        flags,
        "ABLATION: race-free codes under forced atomic memory orders "
        "and scopes on " + gpu.name +
            "\n(geomean speedup relative to the relaxed ordering the "
            "paper uses; < 1 means slower)",
        table);
    std::cout << "Expectation: stronger orderings and wider scopes only "
                 "lose performance,\nwith seq_cst — the default — "
                 "costing the most. Note: block scope is listed\nonly "
                 "to quantify its cost advantage; it would NOT be "
                 "correct for these codes,\nwhich communicate across "
                 "blocks.\n";
    return 0;
}
