/**
 * @file
 * Regenerates Table VIII: speedups of the race-free SCC on the 10
 * directed inputs across all four GPUs.
 */
#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    bench::installInterruptHandler();
    Flags flags(argc, argv);
    auto config = bench::configFromFlags(flags);
    const auto session = bench::sessionFromFlags(flags);
    config.trace = session.get();
    const auto sink = std::make_shared<bench::PartialSink>();
    const auto progress = bench::flushOnInterrupt(
        sink, flags, "TABLE VIII: Speedups of race-free SCC",
        harness::makeSccTable, session.get(),
        flags.getBool("quiet", false) ? harness::ProgressFn{}
                                      : bench::stderrProgress());

    std::vector<harness::Measurement> all;
    for (const auto& gpu : simt::evaluationGpus()) {
        auto part = harness::runSccSuite(gpu, config, progress);
        all.insert(all.end(), part.begin(), part.end());
    }
    bench::emitTable(flags, "TABLE VIII: Speedups of race-free SCC",
                     harness::makeSccTable(all));
    bench::emitProfile(flags, session.get());
    return 0;
}
