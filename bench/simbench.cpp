/**
 * @file
 * simbench — host-side throughput benchmark of the SIMT simulator.
 *
 * Every paper table is a sweep of millions of simulated memory accesses
 * through eclsim::simt, so host-side simulator throughput bounds
 * everything: sweep latency, chaos campaigns, racecheck runs. simbench
 * pins a small set of synthetic kernels plus one reference harness cell
 * and reports simulated accesses/sec, launches/sec, and the wall time
 * of the pinned sweep, as JSON (BENCH_SIM.json) for the CI perf gate.
 *
 * Workloads:
 *   stream        grid-stride plain loads+stores (the L1 fast path)
 *   atomics       atomicAdd over a scattered histogram (the L2 atomic
 *                 path)
 *   frames        many short-lived threads: one store each, many
 *                 launches (stresses coroutine-frame allocation and
 *                 per-launch setup)
 *   warp_stream   the stream body as a warp kernel: one batched SoA
 *                 load+store per warp (ExecMode::kWarpBatched, one
 *                 coalesced line probe per warp op)
 *   warp_atomics  the atomics body as a warp kernel: scattered batched
 *                 atomicAdds (batched dispatch, per-lane line probes)
 *   sweep         one pinned table4-style harness cell (CC on
 *                 as-skitter), baseline + race-free, best of reps
 *
 * Each scalar workload runs --reps times on the hookless fast path AND
 * on the general (slow) path with all hooks null (EngineOptions::
 * force_slow_path), so the dispatch overhead itself is visible. The
 * warp workloads additionally run in ExecMode::kWarpBatched ("batch"):
 * all paths are bit-identical by contract — simbench asserts the access
 * counts agree — only wall time may differ.
 *
 * JSON layout (schema 3): "workloads" carries raw counts and the wall
 * times of every path run (wall_s = fast, wall_s_slow = forced general,
 * wall_s_batch = warp-batched, 0 when not applicable); "metrics"
 * carries the higher-is-better numbers the CI gate diffs against the
 * committed baseline (fast path, plus the batched path of the warp
 * workloads as <name>_batch_accesses_per_sec); "comparison" carries the
 * slow-path throughputs and the fast/slow and batch/fast ratios, for
 * information.
 *
 * Flags (beyond the common ones):
 *   --quick        smaller workloads for CI (the committed baseline is
 *                  recorded in this mode)
 *   --json=PATH    output path (default BENCH_SIM.json)
 *   --reps=N       reps per workload (default 3, best-of)
 */
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/flags.hpp"
#include "core/logging.hpp"
#include "graph/input_catalog.hpp"
#include "harness/experiment.hpp"
#include "simt/engine.hpp"
#include "simt/gpu_spec.hpp"

namespace eclsim {
namespace {

using simt::DeviceMemory;
using simt::Engine;
using simt::EngineOptions;
using simt::LaunchConfig;
using simt::Task;
using simt::ThreadCtx;

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** One workload's best-of-reps result, per execution path. */
struct WorkloadResult
{
    std::string name;
    u64 accesses = 0;       ///< simulated accesses per rep
    u64 launches = 0;       ///< kernel launches per rep
    u64 threads = 0;        ///< simulated threads created per rep
    double wall_s = 0;      ///< best wall seconds, hookless fast path
    double wall_s_slow = 0; ///< best wall seconds, forced general path
    /** Best wall seconds on the warp-batched route (warp workloads in
     *  ExecMode::kWarpBatched); 0 = workload has no batched variant. */
    double wall_s_batch = 0;

    double
    fastOverSlow() const
    {
        return wall_s > 0 ? wall_s_slow / wall_s : 0.0;
    }

    double
    batchOverFast() const
    {
        return wall_s_batch > 0 ? wall_s / wall_s_batch : 0.0;
    }
};

/** Run fn() reps times; returns the minimum wall-seconds. */
template <typename Fn>
double
bestOf(u32 reps, Fn&& fn)
{
    double best = 1e300;
    for (u32 r = 0; r < reps; ++r) {
        const double t0 = nowSeconds();
        fn();
        best = std::min(best, nowSeconds() - t0);
    }
    return best;
}

EngineOptions
benchOptions(bool slow)
{
    EngineOptions options;
    options.seed = 42;
    options.force_slow_path = slow;
    return options;
}

/** The execution routes a warp workload is timed on. */
enum class WarpPath
{
    kBatch,  ///< ExecMode::kWarpBatched, hookless: the batched SoA route
    kFast,   ///< ExecMode::kFast: per-lane fallback through performFast
    kSlow,   ///< forced general path: per-lane through performPieces
};

EngineOptions
warpBenchOptions(WarpPath path)
{
    EngineOptions options;
    options.seed = 42;
    options.mode = path == WarpPath::kBatch ? simt::ExecMode::kWarpBatched
                                            : simt::ExecMode::kFast;
    options.force_slow_path = path == WarpPath::kSlow;
    return options;
}

/** Run one engine-level workload body on both paths, asserting the
 *  simulated access counts are path-independent. */
template <typename Body>
void
bothPaths(u32 reps, WorkloadResult& out, Body&& body)
{
    u64 fast_accesses = 0;
    out.wall_s = bestOf(reps, [&] { fast_accesses = body(false); });
    out.wall_s_slow = bestOf(reps, [&] { out.accesses = body(true); });
    ECLSIM_ASSERT(fast_accesses == out.accesses,
                  "{}: fast path simulated {} accesses, slow path {}",
                  out.name, fast_accesses, out.accesses);
}

/** Run one warp-kernel workload body on all three routes, asserting the
 *  simulated access counts are path-independent. */
template <typename Body>
void
threePaths(u32 reps, WorkloadResult& out, Body&& body)
{
    u64 fast_accesses = 0;
    u64 batch_accesses = 0;
    out.wall_s = bestOf(reps, [&] { fast_accesses = body(WarpPath::kFast); });
    out.wall_s_batch =
        bestOf(reps, [&] { batch_accesses = body(WarpPath::kBatch); });
    out.wall_s_slow =
        bestOf(reps, [&] { out.accesses = body(WarpPath::kSlow); });
    ECLSIM_ASSERT(
        fast_accesses == out.accesses && batch_accesses == out.accesses,
        "{}: access counts diverge across paths (fast {}, batch {}, "
        "slow {})",
        out.name, fast_accesses, batch_accesses, out.accesses);
}

/** Grid-stride plain loads+stores over a working set that fits the L2:
 *  the per-access fast path with high L1/L2 hit rates. */
WorkloadResult
runStream(u32 reps, bool quick)
{
    const u32 n = 1u << 18;  // 1 MiB of u32
    const u32 grid = quick ? 256 : 1024;
    const u32 rounds = 16;

    WorkloadResult out{"stream"};
    bothPaths(reps, out, [&](bool slow) -> u64 {
        DeviceMemory memory;
        Engine engine(simt::titanV(), memory, benchOptions(slow));
        auto src = memory.alloc<u32>(n, "src");
        auto dst = memory.alloc<u32>(n, "dst");
        LaunchConfig cfg;
        cfg.grid = grid;
        cfg.block_x = 256;
        const auto stats = engine.launch(
            "stream", cfg, [&](ThreadCtx& t) -> Task {
                for (u32 r = 0; r < rounds; ++r) {
                    for (u32 i = t.globalThreadId(); i < n;
                         i += t.gridSize()) {
                        const u32 v = co_await t.load(src, i);
                        co_await t.store(dst, i, v + r);
                    }
                }
            });
        ECLSIM_ASSERT(engine.usedFastPath() == !slow,
                      "stream: wrong access path selected");
        out.launches = 1;
        out.threads = cfg.totalThreads();
        return stats.mem.loads + stats.mem.stores;
    });
    return out;
}

/** Scattered atomicAdds: the L2 atomic-unit path. */
WorkloadResult
runAtomics(u32 reps, bool quick)
{
    const u32 slots = 1u << 12;
    const u32 grid = quick ? 128 : 512;
    const u32 rounds = 32;

    WorkloadResult out{"atomics"};
    bothPaths(reps, out, [&](bool slow) -> u64 {
        DeviceMemory memory;
        Engine engine(simt::titanV(), memory, benchOptions(slow));
        auto hist = memory.alloc<u32>(slots, "hist");
        LaunchConfig cfg;
        cfg.grid = grid;
        cfg.block_x = 256;
        const auto stats = engine.launch(
            "atomics", cfg, [&](ThreadCtx& t) -> Task {
                u32 h = t.globalThreadId() * 2654435761u;
                for (u32 r = 0; r < rounds; ++r) {
                    co_await t.atomicAdd(hist, h & (slots - 1), u32{1});
                    h = h * 1664525u + 1013904223u;
                }
            });
        out.launches = 1;
        out.threads = cfg.totalThreads();
        return stats.mem.rmws;
    });
    return out;
}

/** The stream body as a warp kernel: one batched SoA load + store per
 *  warp per grid-stride step. Lanes are unit-stride, so the batched
 *  route does one coalesced L1 line probe per 32 lanes instead of 32
 *  independent probes — this is the headline number for the ROADMAP
 *  throughput target. gridSize divides n in both shapes, so every warp
 *  op runs with all 32 lanes and no tail predication. */
WorkloadResult
runWarpStream(u32 reps, bool quick)
{
    const u32 n = 1u << 18;  // 1 MiB of u32
    const u32 grid = quick ? 256 : 1024;
    const u32 rounds = 16;

    WorkloadResult out{"warp_stream"};
    threePaths(reps, out, [&](WarpPath path) -> u64 {
        DeviceMemory memory;
        Engine engine(simt::titanV(), memory, warpBenchOptions(path));
        auto src = memory.alloc<u32>(n, "src");
        auto dst = memory.alloc<u32>(n, "dst");
        LaunchConfig cfg;
        cfg.grid = grid;
        cfg.block_x = 256;
        const auto stats = engine.launch(
            "warp_stream", cfg, [&](simt::WarpCtx& w) {
                u32 v[simt::WarpCtx::kMaxLanes];
                for (u32 r = 0; r < rounds; ++r) {
                    for (u32 i = w.warpBase(); i < n; i += w.gridSize()) {
                        w.load(src, [&](u32 l) { return i + l; }, v);
                        w.store(
                            dst, [&](u32 l) { return i + l; },
                            [&](u32 l) { return v[l] + r; });
                    }
                }
            });
        ECLSIM_ASSERT(
            engine.lastBatch().batched == (path == WarpPath::kBatch),
            "warp_stream: wrong route selected ({})",
            simt::batchFallbackName(engine.lastBatch().reason));
        out.launches = 1;
        out.threads = cfg.totalThreads();
        return stats.mem.loads + stats.mem.stores;
    });
    return out;
}

/** The atomics body as a warp kernel: scattered batched atomicAdds.
 *  Lane addresses are hash-scattered, so the batched route still probes
 *  one line per lane — this isolates the batched *dispatch* win (one
 *  template + one functional pass per warp) from the coalescing win. */
WorkloadResult
runWarpAtomics(u32 reps, bool quick)
{
    const u32 slots = 1u << 12;
    const u32 grid = quick ? 128 : 512;
    const u32 rounds = 32;

    WorkloadResult out{"warp_atomics"};
    threePaths(reps, out, [&](WarpPath path) -> u64 {
        DeviceMemory memory;
        Engine engine(simt::titanV(), memory, warpBenchOptions(path));
        auto hist = memory.alloc<u32>(slots, "hist");
        LaunchConfig cfg;
        cfg.grid = grid;
        cfg.block_x = 256;
        const auto stats = engine.launch(
            "warp_atomics", cfg, [&](simt::WarpCtx& w) {
                // Per-lane hash state, the same sequence the scalar
                // atomics workload computes per thread.
                u32 h[simt::WarpCtx::kMaxLanes];
                for (u32 l = 0; l < w.lanes(); ++l)
                    h[l] = (w.warpBase() + l) * 2654435761u;
                for (u32 r = 0; r < rounds; ++r) {
                    w.atomicAdd(
                        hist, [&](u32 l) { return h[l] & (slots - 1); },
                        [](u32) { return u32{1}; });
                    for (u32 l = 0; l < w.lanes(); ++l)
                        h[l] = h[l] * 1664525u + 1013904223u;
                }
            });
        ECLSIM_ASSERT(
            engine.lastBatch().batched == (path == WarpPath::kBatch),
            "warp_atomics: wrong route selected ({})",
            simt::batchFallbackName(engine.lastBatch().reason));
        out.launches = 1;
        out.threads = cfg.totalThreads();
        return stats.mem.rmws;
    });
    return out;
}

/** Many launches of many short-lived threads (one store each): the
 *  coroutine-frame and per-launch-setup hot path. */
WorkloadResult
runFrames(u32 reps, bool quick)
{
    const u32 launches = quick ? 16 : 48;
    const u32 grid = 1024;
    const u32 block = 256;

    WorkloadResult out{"frames"};
    bothPaths(reps, out, [&](bool slow) -> u64 {
        DeviceMemory memory;
        Engine engine(simt::titanV(), memory, benchOptions(slow));
        auto data = memory.alloc<u32>(grid * block, "data");
        LaunchConfig cfg;
        cfg.grid = grid;
        cfg.block_x = block;
        u64 accesses = 0;
        for (u32 l = 0; l < launches; ++l) {
            const auto stats = engine.launch(
                "frames", cfg, [&](ThreadCtx& t) -> Task {
                    co_await t.store(data, t.globalThreadId(),
                                     t.blockId());
                });
            accesses += stats.mem.stores;
        }
        out.launches = launches;
        out.threads = static_cast<u64>(launches) * cfg.totalThreads();
        return accesses;
    });
    return out;
}

/** One pinned reference harness cell: CC on as-skitter, both variants,
 *  fixed divisor/seed — the shape every paper table is made of. */
WorkloadResult
runSweep(u32 reps, bool quick)
{
    const u32 divisor = quick ? 2048 : 1024;
    const auto graph_ptr =
        graph::InputCatalog::shared().get("as-skitter", divisor);
    const auto& graph = *graph_ptr;

    harness::ExperimentConfig config;
    config.reps = 2;
    config.graph_divisor = divisor;
    config.seed = 12345;
    config.jobs = 1;

    WorkloadResult out{"sweep"};
    out.launches = 1;  // one cell
    const auto cell = [&](bool slow) {
        config.force_slow_path = slow;
        const auto m = harness::measureSeeded(
            simt::titanV(), graph, "as-skitter", harness::Algo::kCc,
            config, harness::cellSeed(config.seed, 0));
        ECLSIM_ASSERT(m.baseline_ms > 0 && m.racefree_ms > 0,
                      "sweep cell measured zero time");
    };
    out.wall_s = bestOf(reps, [&] { cell(false); });
    out.wall_s_slow = bestOf(reps, [&] { cell(true); });
    return out;
}

/**
 * Pre-PR reference throughputs, for the record. Measured with this same
 * benchmark (--quick --reps=3, best of two interleaved rounds) against
 * the engine as of commit 63204ae — before the hookless fast path,
 * frame pooling, and the cache/memcpy specializations — on the machine
 * that recorded the committed baseline. Informational only: the CI gate
 * diffs "metrics" against BENCH_SIM.baseline.json, never against these.
 */
constexpr struct
{
    double stream_maccps = 25.30;   ///< M accesses/s
    double atomics_maccps = 25.72;  ///< M accesses/s
    double frames_maccps = 16.91;   ///< M accesses/s
    double sweep_ms = 5.83;         ///< ms per pinned cell
} kPrePrReference;

void
writeJson(const std::string& path, bool quick,
          const std::vector<WorkloadResult>& results)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot write {}", path);
    file.precision(6);
    file << "{\n  \"schema\": 3,\n  \"quick\": "
         << (quick ? "true" : "false") << ",\n  \"workloads\": {\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        file << "    \"" << r.name << "\": {\"accesses\": " << r.accesses
             << ", \"launches\": " << r.launches
             << ", \"threads\": " << r.threads
             << ", \"wall_s\": " << r.wall_s
             << ", \"wall_s_slow\": " << r.wall_s_slow
             << ", \"wall_s_batch\": " << r.wall_s_batch << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
    }
    file << "  },\n  \"metrics\": {\n";
    // Flat higher-is-better metrics: these are what the CI gate diffs
    // against the committed baseline. Fast path for every workload,
    // plus the batched route for the warp workloads.
    std::vector<std::pair<std::string, double>> metrics;
    for (const auto& r : results) {
        if (r.accesses > 0)
            metrics.emplace_back(r.name + "_accesses_per_sec",
                                 static_cast<double>(r.accesses) / r.wall_s);
        if (r.accesses > 0 && r.wall_s_batch > 0)
            metrics.emplace_back(
                r.name + "_batch_accesses_per_sec",
                static_cast<double>(r.accesses) / r.wall_s_batch);
        if (r.name == "frames") {
            metrics.emplace_back("frames_launches_per_sec",
                                 static_cast<double>(r.launches) / r.wall_s);
            metrics.emplace_back("frames_threads_per_sec",
                                 static_cast<double>(r.threads) / r.wall_s);
        }
        if (r.name == "sweep")
            metrics.emplace_back("sweep_cells_per_sec", 1.0 / r.wall_s);
    }
    for (size_t i = 0; i < metrics.size(); ++i)
        file << "    \"" << metrics[i].first << "\": " << metrics[i].second
             << (i + 1 < metrics.size() ? "," : "") << "\n";
    // Informational: the forced general path and the fast/slow ratio.
    // Not gated — the slow path is allowed to get slower if the fast
    // path does not.
    file << "  },\n  \"comparison\": {\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        file << "    \"" << r.name << "_slow_accesses_per_sec\": "
             << (r.accesses > 0 && r.wall_s_slow > 0
                     ? static_cast<double>(r.accesses) / r.wall_s_slow
                     : 0.0)
             << ",\n    \"" << r.name
             << "_fast_over_slow\": " << r.fastOverSlow();
        if (r.wall_s_batch > 0)
            file << ",\n    \"" << r.name
                 << "_batch_over_fast\": " << r.batchOverFast();
        file << (i + 1 < results.size() ? "," : "") << "\n";
    }
    // Pre-PR engine throughputs on the baseline machine (see
    // kPrePrReference) so the speedup over the unoptimized engine stays
    // visible next to the current numbers.
    file << "  },\n  \"pre_pr_reference\": {\n"
         << "    \"note\": \"engine at commit 63204ae, same machine, "
            "--quick --reps=3\",\n"
         << "    \"stream_accesses_per_sec\": "
         << kPrePrReference.stream_maccps * 1e6 << ",\n"
         << "    \"atomics_accesses_per_sec\": "
         << kPrePrReference.atomics_maccps * 1e6 << ",\n"
         << "    \"frames_accesses_per_sec\": "
         << kPrePrReference.frames_maccps * 1e6 << ",\n"
         << "    \"sweep_wall_s\": " << kPrePrReference.sweep_ms / 1e3
         << "\n";
    file << "  }\n}\n";
}

int
simbenchMain(int argc, char** argv)
{
    Flags flags(argc, argv);
    const bool quick = flags.getBool("quick", false);
    const u32 reps = static_cast<u32>(flags.getInt("reps", 3));
    const std::string json = flags.getString("json", "BENCH_SIM.json");

    std::vector<WorkloadResult> results;
    for (auto* fn : {runStream, runAtomics, runWarpStream, runWarpAtomics,
                     runFrames, runSweep}) {
        results.push_back(fn(reps, quick));
        const auto& r = results.back();
        std::cout << r.name << ": ";
        if (r.accesses > 0) {
            if (r.wall_s_batch > 0)
                std::cout << static_cast<double>(r.accesses) /
                                 r.wall_s_batch / 1e6
                          << " M accesses/s (batch), ";
            std::cout << static_cast<double>(r.accesses) / r.wall_s / 1e6
                      << " M accesses/s (fast), "
                      << static_cast<double>(r.accesses) / r.wall_s_slow /
                             1e6
                      << " M accesses/s (slow), ";
        }
        std::cout << r.wall_s * 1e3 << " ms/rep, fast/slow "
                  << r.fastOverSlow();
        if (r.wall_s_batch > 0)
            std::cout << "x, batch/fast " << r.batchOverFast();
        std::cout << "x (best of " << reps << ")" << std::endl;
    }
    writeJson(json, quick, results);
    std::cout << "(json written to " << json << ")" << std::endl;
    return 0;
}

}  // namespace
}  // namespace eclsim

int
main(int argc, char** argv)
{
    return eclsim::simbenchMain(argc, argv);
}
