/**
 * @file
 * Ablation for ECL-CC's processing-granularity optimization (paper
 * Section II-B: ECL-CC "processes the vertices at thread, warp, or
 * block granularity depending on the number of neighbors, to improve
 * the load balance").
 *
 * Runs CC with and without the heavy-vertex edge-parallel offload on
 * every undirected input and reports the speedup of enabling it. The
 * expected shape: large gains on hub-dominated (power-law) graphs where
 * one thread would otherwise serialize an enormous adjacency list, and
 * no effect on bounded-degree meshes/grids/roadmaps.
 */
#include <iostream>

#include "algos/cc.hpp"
#include "bench_util.hpp"
#include "graph/catalog.hpp"
#include "graph/properties.hpp"

namespace {

using namespace eclsim;

double
ccMs(const simt::GpuSpec& gpu, const graph::CsrGraph& graph,
     const algos::CcOptions& options, u64 seed)
{
    simt::DeviceMemory memory;
    simt::EngineOptions engine_options;
    engine_options.seed = seed;
    simt::Engine engine(gpu, memory, engine_options);
    return algos::runCc(engine, graph, algos::Variant::kBaseline, options)
        .stats.ms;
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto& gpu = simt::findGpu(flags.getString("gpu", "4090"));
    const auto threshold = static_cast<u32>(
        flags.getInt("threshold", 64));

    TextTable table({"Input", "d-max", "thread-only ms", "balanced ms",
                     "speedup"});
    for (const auto& entry : graph::undirectedCatalog()) {
        const auto graph = entry.make(config.graph_divisor);
        const auto props = graph::computeProperties(graph);

        algos::CcOptions plain;
        algos::CcOptions balanced;
        balanced.heavy_vertex_offload = true;
        balanced.heavy_degree_threshold = threshold;

        const double base = ccMs(gpu, graph, plain, config.seed);
        const double fast = ccMs(gpu, graph, balanced, config.seed);
        table.addRow({entry.name, fmtGrouped(props.max_degree),
                      fmtFixed(base, 3), fmtFixed(fast, 3),
                      fmtFixed(base / fast, 2)});
    }
    bench::emitTable(flags,
                     "ABLATION: ECL-CC heavy-vertex load balancing "
                     "(degree threshold " + std::to_string(threshold) +
                     ") on " + gpu.name,
                     table);
    std::cout << "Expectation: speedup well above 1 on hub-dominated "
                 "inputs (kron, rmat, social\nnetworks), and ~1.0 on "
                 "bounded-degree grids, meshes, and roadmaps.\n";
    return 0;
}
