/**
 * @file
 * Static may-race analyzer driver (eclsim::staticrace).
 *
 * Probes every (algorithm x variant x input) cell once in cheap fast
 * mode with the summary Recorder attached, runs the pairwise symbolic
 * may-race analysis, and prints the ranked pair table plus the per-cell
 * summary. With --gate it additionally runs the full DYNAMIC racecheck
 * sweep over the same cells and applies the soundness gate: any
 * dynamically witnessed race missing from the static may-set — or any
 * non-atomic may-race predicted on a race-free variant (APSP exempt,
 * DESIGN.md §16) — exits nonzero. This is the CI check that the
 * analyzer stays a sound over-approximation of the detector.
 *
 * Flags (besides the standard --seed/--jobs/--csv):
 *   --algos=LIST         comma-separated subset of
 *                        cc,gc,mis,mst,scc,pr,bfs,wcc
 *   --variants=LIST      baseline,racefree (default both)
 *   --inputs=LIST        undirected inputs (default rmat22.sym)
 *   --directed-inputs=LIST  SCC inputs (default wikipedia)
 *   --no-apsp            skip the APSP cell
 *   --gpu=NAME           GPU model (default "Titan V")
 *   --divisor=N          input scale divisor (default 8192, matching
 *                        the dynamic sweep the gate compares against)
 *   --apsp-vertices=N    size of the generated APSP graph (default 96)
 *   --gate               also run the dynamic sweep and apply the
 *                        soundness gate (exit 1 on any coverage miss)
 *   --json=PATH          write the analysis (and coverage, with --gate)
 *                        as machine-readable JSON
 */
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/logging.hpp"
#include "staticrace/runner.hpp"

namespace {

using namespace eclsim;

std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    size_t begin = 0;
    while (begin <= list.size()) {
        const size_t comma = list.find(',', begin);
        const std::string token =
            list.substr(begin, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - begin);
        if (!token.empty())
            out.push_back(token);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

harness::Algo
parseAlgo(const std::string& name)
{
    if (name == "cc")
        return harness::Algo::kCc;
    if (name == "gc")
        return harness::Algo::kGc;
    if (name == "mis")
        return harness::Algo::kMis;
    if (name == "mst")
        return harness::Algo::kMst;
    if (name == "scc")
        return harness::Algo::kScc;
    if (name == "pr")
        return harness::Algo::kPr;
    if (name == "bfs")
        return harness::Algo::kBfs;
    if (name == "wcc")
        return harness::Algo::kWcc;
    fatal("unknown algorithm '{}' (expected cc, gc, mis, mst, scc, pr, "
          "bfs, or wcc)",
          name);
    return harness::Algo::kCc;  // unreachable
}

algos::Variant
parseVariant(const std::string& name)
{
    if (name == "baseline")
        return algos::Variant::kBaseline;
    if (name == "racefree")
        return algos::Variant::kRaceFree;
    fatal("unknown variant '{}' (expected baseline or racefree)", name);
    return algos::Variant::kBaseline;  // unreachable
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);

    racecheck::RunnerConfig config;
    config.gpu = flags.getString("gpu", "Titan V");
    config.graph_divisor =
        static_cast<u32>(flags.getInt("divisor", 8192));
    config.apsp_vertices =
        static_cast<u32>(flags.getInt("apsp-vertices", 96));
    config.cache_divisor =
        static_cast<u32>(flags.getInt("cache-divisor", 16));
    config.seed = static_cast<u64>(flags.getInt("seed", 12345));
    config.jobs = static_cast<u32>(flags.getInt("jobs", 0));
    config.include_apsp = !flags.getBool("no-apsp", false);

    const std::string algo_list = flags.getString("algos", "");
    if (!algo_list.empty()) {
        config.algos.clear();
        for (const std::string& name : splitList(algo_list))
            config.algos.push_back(parseAlgo(name));
    }
    const std::string variant_list = flags.getString("variants", "");
    if (!variant_list.empty()) {
        config.variants.clear();
        for (const std::string& name : splitList(variant_list))
            config.variants.push_back(parseVariant(name));
    }
    const std::string inputs = flags.getString("inputs", "");
    if (!inputs.empty())
        config.undirected_inputs = splitList(inputs);
    const std::string directed = flags.getString("directed-inputs", "");
    if (!directed.empty())
        config.directed_inputs = splitList(directed);

    const bool quiet = flags.getBool("quiet", false);
    staticrace::StaticraceProgressFn progress;
    if (!quiet) {
        progress = [](const staticrace::StaticCellResult& r) {
            std::cerr << "  " << racecheck::cellName(r.cell) << ": "
                      << r.sites << " site(s), " << r.pairs.size()
                      << " may-race pair(s)\n";
        };
    }

    const auto results = staticrace::runStaticrace(config, progress);

    bench::emitTable(flags, "Static may-race pairs (per cell)",
                     staticrace::makePairTable(results));
    std::cout << "Per-cell summary\n\n"
              << staticrace::makeStaticSummary(results).toText()
              << std::endl;

    staticrace::SoundnessResult soundness;
    bool gated = flags.getBool("gate", false);
    if (gated) {
        if (!quiet)
            std::cerr << "running the dynamic sweep for the soundness "
                         "gate...\n";
        racecheck::RacecheckProgressFn dyn_progress;
        if (!quiet) {
            dyn_progress = [](const racecheck::CellResult& r) {
                std::cerr << "  " << racecheck::cellName(r.cell) << ": "
                          << r.races.size() << " race site(s)\n";
            };
        }
        const auto dynamics = racecheck::runRacecheck(config, dyn_progress);
        soundness = staticrace::evaluateSoundness(config, results, dynamics);
        std::cout << "Static vs dynamic coverage\n\n"
                  << staticrace::makeCoverageTable(soundness).toText()
                  << std::endl;
    }

    const std::string json_path = flags.getString("json", "");
    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out)
            fatal("cannot open '{}' for writing", json_path);
        out << staticrace::renderStaticraceJson(
            results, gated ? &soundness : nullptr);
        std::cout << "(json written to " << json_path << ")" << std::endl;
    }

    if (!gated)
        return 0;
    if (soundness.pass) {
        std::cout << "staticrace soundness gate: PASS ("
                  << results.size() << " cells)" << std::endl;
        return 0;
    }
    std::cout << "staticrace soundness gate: FAIL\n";
    for (const std::string& f : soundness.failures)
        std::cout << "  - " << f << "\n";
    std::cout << std::flush;
    return 1;
}
