/**
 * @file
 * Shared command-line handling for the table/figure bench binaries.
 *
 * Every bench accepts:
 *   --reps=N       repetitions per configuration (default 3; paper: 9)
 *   --divisor=N    input scale divisor (default 512; smaller = larger
 *                  graphs = slower but closer to the paper's regime)
 *   --csv=PATH     also write the table as CSV
 *   --verify       cross-check every run against the reference oracles
 *   --trace=PATH   record the whole run into a Chrome-trace JSON file
 *                  (open in chrome://tracing or ui.perfetto.dev)
 *   --counters=PATH  write the profiling counters as CSV
 *   --jobs=N       worker threads for the suite sweeps (default: one
 *                  per hardware thread; 1 = the exact serial path).
 *                  Results are bit-identical for every N.
 *   --exec-mode=M  engine execution mode: interleaved | fast | batch
 *                  (default fast). Tables are byte-identical between
 *                  fast and batch; interleaved is the cycle-accurate
 *                  scheduler and far slower.
 *   --chaos-policy=NAME     run every engine under an eclsim::chaos
 *                  perturbation policy (stale-window, store-delay,
 *                  sched-bias, sm-stall, dup-store, drop-atomic)
 *   --chaos-intensity=X     perturbation strength in [0,1] (default 0.5)
 */
#pragma once

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chaos/policy.hpp"
#include "core/flags.hpp"
#include "harness/experiment.hpp"
#include "prof/trace.hpp"
#include "prof/trace_export.hpp"

namespace eclsim::bench {

/** Exit status for an interrupted run (128 + SIGINT). */
inline constexpr int kInterruptExit = 130;

namespace detail {
/** Signal-fire count; handlers may only touch lock-free atomics. */
inline std::atomic<int> g_interrupts{0};

inline void
onInterrupt(int)
{
    // A second ^C means "now": bail without any flushing.
    if (g_interrupts.fetch_add(1) >= 1)
        ::_exit(kInterruptExit);
}
}  // namespace detail

/**
 * Install the SIGINT/SIGTERM latch. The first signal sets a flag the
 * binary polls to flush partial CSV/trace output before exiting; a
 * second signal hard-exits immediately. Long-running binaries (the
 * table sweeps, the serve daemon) call this at startup.
 */
inline void
installInterruptHandler()
{
    std::signal(SIGINT, detail::onInterrupt);
    std::signal(SIGTERM, detail::onInterrupt);
}

/** True once SIGINT/SIGTERM has been received. */
inline bool
interruptRequested()
{
    return detail::g_interrupts.load() > 0;
}

/** Block until the first SIGINT/SIGTERM (the daemon's idle loop). */
inline void
waitForInterrupt()
{
    while (!interruptRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

/** Parse the standard bench flags. */
inline harness::ExperimentConfig
configFromFlags(const Flags& flags)
{
    harness::ExperimentConfig config;
    config.reps = static_cast<u32>(flags.getInt("reps", 3));
    config.graph_divisor =
        static_cast<u32>(flags.getInt("divisor", 512));
    config.verify = flags.getBool("verify", false);
    config.seed = static_cast<u64>(flags.getInt("seed", 12345));
    config.jobs = static_cast<u32>(flags.getInt("jobs", 0));
    config.exec_mode =
        simt::parseExecMode(flags.getString("exec-mode", "fast"));
    // --chaos-policy runs the whole sweep under a perturbation policy:
    // how do the speedup tables shift when the schedule is adversarial?
    const std::string chaos_policy =
        flags.getString("chaos-policy", "");
    if (!chaos_policy.empty() && chaos_policy != "none") {
        chaos::PolicyConfig policy;
        policy.kind = chaos::parsePolicy(chaos_policy);
        policy.intensity = flags.getDouble("chaos-intensity", 0.5);
        config.perturb_factory = [policy](u64 seed) {
            chaos::PolicyConfig cell = policy;
            cell.seed = seed;
            return chaos::makePolicy(cell);
        };
    }
    return config;
}

/** Create a trace session when --trace or --counters was given. */
inline std::unique_ptr<prof::TraceSession>
sessionFromFlags(const Flags& flags)
{
    if (flags.getString("trace", "").empty() &&
        flags.getString("counters", "").empty())
        return nullptr;
    return std::make_unique<prof::TraceSession>();
}

/** Write the --trace / --counters outputs, if requested. */
inline void
emitProfile(const Flags& flags, const prof::TraceSession* session)
{
    if (session == nullptr)
        return;
    const std::string trace = flags.getString("trace", "");
    if (!trace.empty()) {
        prof::writeChromeTrace(*session, trace);
        std::cout << "(trace written to " << trace << ")" << std::endl;
    }
    const std::string counters = flags.getString("counters", "");
    if (!counters.empty()) {
        prof::writeCountersCsv(session->counters(), counters);
        std::cout << "(counters written to " << counters << ")"
                  << std::endl;
    }
}

/** Print a rendered table, and write CSV when --csv was given. */
inline void
emitTable(const Flags& flags, const std::string& title,
          const TextTable& table)
{
    std::cout << title << "\n\n" << table.toText() << std::endl;
    const std::string csv = flags.getString("csv", "");
    if (!csv.empty()) {
        table.writeCsv(csv);
        std::cout << "(csv written to " << csv << ")" << std::endl;
    }
}

/** Progress line printed as measurements come in. */
inline harness::ProgressFn
stderrProgress()
{
    return [](const harness::Measurement& m) {
        std::cerr << "  " << m.gpu << " " << harness::algoName(m.algo)
                  << " " << m.input << ": "
                  << fmtFixed(m.speedup(), 2) << "\n";
    };
}

/** Completed cells, shared between a sweep and its interrupt flush. */
struct PartialSink
{
    std::mutex mutex;
    std::vector<harness::Measurement> done;
};

/**
 * Wrap a progress callback so the first SIGINT/SIGTERM flushes a table
 * of the cells completed so far (plus any --trace/--counters output)
 * and exits with status 130, instead of dropping everything measured.
 * Rendering is delegated so each binary keeps its own table layout.
 */
inline harness::ProgressFn
flushOnInterrupt(
    std::shared_ptr<PartialSink> sink, const Flags& flags,
    const std::string& title,
    std::function<TextTable(const std::vector<harness::Measurement>&)>
        render,
    const prof::TraceSession* session, harness::ProgressFn inner)
{
    return [sink, &flags, title, render = std::move(render), session,
            inner = std::move(inner)](const harness::Measurement& m) {
        if (inner)
            inner(m);
        std::lock_guard<std::mutex> lock(sink->mutex);
        sink->done.push_back(m);
        if (!interruptRequested())
            return;
        std::cerr << "interrupted: flushing " << sink->done.size()
                  << " completed cells\n";
        emitTable(flags, title + " (partial: interrupted)",
                  render(sink->done));
        emitProfile(flags, session);
        std::cout.flush();
        std::cerr.flush();
        // Worker threads are still mid-sweep; skip teardown entirely.
        ::_exit(kInterruptExit);
    };
}

/**
 * One of the per-GPU speedup tables (Tables IV-VII): run the undirected
 * suite on the named GPU and print it in the paper's layout.
 */
inline int
runSpeedupTableMain(int argc, char** argv, const std::string& gpu_name,
                    const std::string& table_title)
{
    installInterruptHandler();
    Flags flags(argc, argv);
    auto config = configFromFlags(flags);
    const auto session = sessionFromFlags(flags);
    config.trace = session.get();
    const auto& gpu = simt::findGpu(gpu_name);

    const auto sink = std::make_shared<PartialSink>();
    const auto progress = flushOnInterrupt(
        sink, flags, table_title, harness::makeSpeedupTable, session.get(),
        flags.getBool("quiet", false) ? harness::ProgressFn{}
                                      : stderrProgress());

    const auto measurements =
        harness::runUndirectedSuite(gpu, config, progress);
    emitTable(flags, table_title, harness::makeSpeedupTable(measurements));
    emitProfile(flags, session.get());
    return 0;
}

}  // namespace eclsim::bench
