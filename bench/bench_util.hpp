/**
 * @file
 * Shared command-line handling for the table/figure bench binaries.
 *
 * Every bench accepts:
 *   --reps=N      repetitions per configuration (default 3; paper: 9)
 *   --divisor=N   input scale divisor (default 512; smaller = larger
 *                 graphs = slower but closer to the paper's regime)
 *   --csv=PATH    also write the table as CSV
 *   --verify      cross-check every run against the reference oracles
 */
#pragma once

#include <iostream>

#include "core/flags.hpp"
#include "harness/experiment.hpp"

namespace eclsim::bench {

/** Parse the standard bench flags. */
inline harness::ExperimentConfig
configFromFlags(const Flags& flags)
{
    harness::ExperimentConfig config;
    config.reps = static_cast<u32>(flags.getInt("reps", 3));
    config.graph_divisor =
        static_cast<u32>(flags.getInt("divisor", 512));
    config.verify = flags.getBool("verify", false);
    config.seed = static_cast<u64>(flags.getInt("seed", 12345));
    return config;
}

/** Print a rendered table, and write CSV when --csv was given. */
inline void
emitTable(const Flags& flags, const std::string& title,
          const TextTable& table)
{
    std::cout << title << "\n\n" << table.toText() << std::endl;
    const std::string csv = flags.getString("csv", "");
    if (!csv.empty()) {
        table.writeCsv(csv);
        std::cout << "(csv written to " << csv << ")" << std::endl;
    }
}

/** Progress line printed as measurements come in. */
inline harness::ProgressFn
stderrProgress()
{
    return [](const harness::Measurement& m) {
        std::cerr << "  " << m.gpu << " " << harness::algoName(m.algo)
                  << " " << m.input << ": "
                  << fmtFixed(m.speedup(), 2) << "\n";
    };
}

/**
 * One of the per-GPU speedup tables (Tables IV-VII): run the undirected
 * suite on the named GPU and print it in the paper's layout.
 */
inline int
runSpeedupTableMain(int argc, char** argv, const std::string& gpu_name,
                    const std::string& table_title)
{
    Flags flags(argc, argv);
    const auto config = configFromFlags(flags);
    const auto& gpu = simt::findGpu(gpu_name);
    const auto measurements = harness::runUndirectedSuite(
        gpu, config, flags.getBool("quiet", false) ? harness::ProgressFn{}
                                                   : stderrProgress());
    emitTable(flags, table_title, harness::makeSpeedupTable(measurements));
    return 0;
}

}  // namespace eclsim::bench
