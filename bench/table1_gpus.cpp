/**
 * @file
 * Regenerates Table I: GPU specifications and compilation parameters,
 * straight from the simulator's GpuSpec presets, plus the timing-model
 * parameters eclsim adds on top of the published numbers.
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    bench::emitTable(flags,
                     "TABLE I: GPU specifications and compilation "
                     "parameters",
                     harness::makeGpuTable());

    // eclsim extension: the timing-model parameters behind each preset.
    TextTable model({"GPU Name", "L1 lat", "L2 lat", "DRAM lat",
                     "atomic extra", "RMW extra", "issue", "hide"});
    for (const auto& gpu : simt::evaluationGpus()) {
        model.addRow({gpu.name, std::to_string(gpu.l1_latency),
                      std::to_string(gpu.l2_latency),
                      std::to_string(gpu.dram_latency),
                      std::to_string(gpu.atomic_extra),
                      std::to_string(gpu.rmw_extra),
                      std::to_string(gpu.issue_cycles),
                      fmtFixed(gpu.latency_hiding, 0)});
    }
    std::cout << "Timing-model parameters (cycles; eclsim additions)\n\n"
              << model.toText() << std::endl;
    return 0;
}
