/**
 * @file
 * Reproduction scorecard: runs the full evaluation (all four GPUs, all
 * five algorithms, all 27 inputs) and prints our Min/Geomean/Max next
 * to the paper's published values from Tables IV-VIII, with a PASS/FAIL
 * verdict on the qualitative shape:
 *
 *   - CC and SCC geomeans below 0.9 on every GPU (substantial slowdown),
 *   - GC and MST geomeans in [0.90, 1.02] (nearly unaffected),
 *   - MIS geomean >= 1.0 on every GPU (the headline speedup),
 *   - CC+SCC combined slowdown worse on the newest GPU than the mildest
 *     one (the Fig. 6 "newer GPUs are more affected" trend).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/stats.hpp"
#include "harness/paper_reference.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto progress = flags.getBool("quiet", false)
                              ? harness::ProgressFn{}
                              : bench::stderrProgress();

    std::vector<harness::Measurement> all;
    for (const auto& gpu : simt::evaluationGpus()) {
        auto und = harness::runUndirectedSuite(gpu, config, progress);
        all.insert(all.end(), und.begin(), und.end());
        auto scc = harness::runSccSuite(gpu, config, progress);
        all.insert(all.end(), scc.begin(), scc.end());
    }

    TextTable table({"GPU", "Algo", "paper geomean", "ours", "paper min",
                     "ours", "paper max", "ours"});
    const std::vector<harness::Algo> algos = {
        harness::Algo::kCc, harness::Algo::kGc, harness::Algo::kMis,
        harness::Algo::kMst, harness::Algo::kScc};
    for (const auto& gpu : simt::evaluationGpus()) {
        for (harness::Algo algo : algos) {
            const auto& paper = harness::paperSummary(gpu.name, algo);
            std::vector<double> speedups;
            for (const auto& m : all)
                if (m.gpu == gpu.name && m.algo == algo)
                    speedups.push_back(m.speedup());
            table.addRow({gpu.name, harness::algoName(algo),
                          fmtFixed(paper.geomean, 2),
                          fmtFixed(stats::geomean(speedups), 2),
                          fmtFixed(paper.min, 2),
                          fmtFixed(stats::minimum(speedups), 2),
                          fmtFixed(paper.max, 2),
                          fmtFixed(stats::maximum(speedups), 2)});
        }
        table.addSeparator();
    }
    bench::emitTable(flags,
                     "SCORECARD: paper (Tables IV-VIII summaries) vs "
                     "this reproduction",
                     table);

    // Shape verdicts.
    int failures = 0;
    auto check = [&failures](bool ok, const std::string& what) {
        std::cout << (ok ? "  PASS  " : "  FAIL  ") << what << "\n";
        if (!ok)
            ++failures;
    };
    double mildest_ccscc = 1e9, newest_ccscc = 0.0;
    for (const auto& gpu : simt::evaluationGpus()) {
        const double cc =
            harness::geomeanSpeedup(all, harness::Algo::kCc, gpu.name);
        const double gc =
            harness::geomeanSpeedup(all, harness::Algo::kGc, gpu.name);
        const double mis =
            harness::geomeanSpeedup(all, harness::Algo::kMis, gpu.name);
        const double mst =
            harness::geomeanSpeedup(all, harness::Algo::kMst, gpu.name);
        const double scc =
            harness::geomeanSpeedup(all, harness::Algo::kScc, gpu.name);
        check(cc < 0.9, "CC substantially slower on " + gpu.name);
        check(scc < 0.9, "SCC substantially slower on " + gpu.name);
        check(gc >= 0.90 && gc <= 1.02,
              "GC nearly unaffected on " + gpu.name);
        check(mst >= 0.90 && mst <= 1.02,
              "MST nearly unaffected on " + gpu.name);
        check(mis >= 1.0, "MIS faster race-free on " + gpu.name);
        mildest_ccscc = std::min(mildest_ccscc, cc * scc);
        if (gpu.name == "4090")
            newest_ccscc = cc * scc;
    }
    check(newest_ccscc <= mildest_ccscc * 1.05,
          "newest GPU among the most affected (Fig. 6 trend)");

    std::cout << "\n"
              << (failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                : "SHAPE CHECK FAILURES: " +
                                      std::to_string(failures))
              << "\n";
    return failures == 0 ? 0 : 1;
}
