/**
 * @file
 * Solution-quality ablations for the two codes whose publications claim
 * quality wins in addition to speed (paper Section II-B):
 *
 *  - ECL-MIS "utilizes partially random priority values that are
 *    inversely proportional to a vertex's degree, which enables the
 *    code to find relatively large sets" (the TOPC'18 paper reports 10%
 *    larger sets than prior GPU codes). We compare the degree-weighted
 *    priorities against plain uniform (Luby) priorities.
 *
 *  - ECL-GC "uses as few or fewer colors as the best prior GPU code"
 *    thanks to the largest-degree-first heuristic. We compare LDF
 *    ordering against random ordering.
 */
#include <iostream>

#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "bench_util.hpp"
#include "core/stats.hpp"
#include "graph/catalog.hpp"

namespace {

using namespace eclsim;

template <typename Run>
auto
freshRun(const simt::GpuSpec& gpu, u64 seed, Run&& run)
{
    simt::DeviceMemory memory;
    simt::EngineOptions options;
    options.seed = seed;
    simt::Engine engine(gpu, memory, options);
    return run(engine);
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto& gpu = simt::findGpu(flags.getString("gpu", "Titan V"));

    TextTable table({"Input", "MIS deg-weighted", "MIS uniform",
                     "set ratio", "GC LDF colors", "GC random colors"});
    std::vector<double> set_ratios, color_ratios;
    for (const auto& entry : graph::undirectedCatalog()) {
        const auto graph = entry.make(config.graph_divisor);

        const auto mis_ecl = freshRun(gpu, config.seed, [&](auto& e) {
            return algos::runMis(e, graph, algos::Variant::kRaceFree);
        });
        algos::MisOptions uniform;
        uniform.priority = algos::MisPriorityMode::kUniform;
        uniform.priority_seed = config.seed;
        const auto mis_luby = freshRun(gpu, config.seed, [&](auto& e) {
            return algos::runMis(e, graph, algos::Variant::kRaceFree,
                                 uniform);
        });

        const auto gc_ldf = freshRun(gpu, config.seed, [&](auto& e) {
            return algos::runGc(e, graph, algos::Variant::kRaceFree);
        });
        algos::GcOptions random_order;
        random_order.priority = algos::GcPriorityMode::kRandom;
        random_order.priority_seed = config.seed;
        const auto gc_rnd = freshRun(gpu, config.seed, [&](auto& e) {
            return algos::runGc(e, graph, algos::Variant::kRaceFree,
                                random_order);
        });

        const double set_ratio =
            static_cast<double>(mis_ecl.set_size) /
            static_cast<double>(std::max<u64>(mis_luby.set_size, 1));
        set_ratios.push_back(set_ratio);
        color_ratios.push_back(static_cast<double>(gc_rnd.num_colors) /
                               std::max<u32>(gc_ldf.num_colors, 1));
        table.addRow({entry.name, fmtGrouped(mis_ecl.set_size),
                      fmtGrouped(mis_luby.set_size),
                      fmtFixed(set_ratio, 3),
                      std::to_string(gc_ldf.num_colors),
                      std::to_string(gc_rnd.num_colors)});
    }
    table.addSeparator();
    table.addRow({"Geomean", "", "",
                  fmtFixed(stats::geomean(set_ratios), 3), "",
                  "x" + fmtFixed(stats::geomean(color_ratios), 2)});

    bench::emitTable(flags,
                     "ABLATION: solution quality of the ECL heuristics "
                     "on " + gpu.name,
                     table);
    std::cout << "Expectation: degree-weighted priorities give larger "
                 "independent sets\n(ECL-MIS's published ~10% edge), "
                 "and largest-degree-first uses no more\ncolors than "
                 "random ordering on skewed graphs.\n";
    return 0;
}
