/**
 * @file
 * Graphalytics extension sweep: PageRank and BFS on the 10 directed
 * inputs, WCC on the 17 undirected inputs, reporting the racy-baseline
 * vs race-free speedups in the same style as Tables IV-VIII. A separate
 * binary so the byte-gated paper tables stay untouched.
 *
 * Accepts the standard bench flags (see bench_util.hpp) plus
 * --gpu=NAME (default "Titan V").
 */
#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    const std::string title =
        "GRAPHALYTICS: Speedups of race-free PR/BFS/WCC";

    bench::installInterruptHandler();
    Flags flags(argc, argv);
    auto config = bench::configFromFlags(flags);
    const auto session = bench::sessionFromFlags(flags);
    config.trace = session.get();
    const auto& gpu =
        simt::findGpu(flags.getString("gpu", "Titan V"));

    const auto sink = std::make_shared<bench::PartialSink>();
    const auto progress = bench::flushOnInterrupt(
        sink, flags, title, harness::makeGraphalyticsTable, session.get(),
        flags.getBool("quiet", false) ? harness::ProgressFn{}
                                      : bench::stderrProgress());

    const auto measurements =
        harness::runGraphalyticsSuite(gpu, config, progress);
    bench::emitTable(flags, title,
                     harness::makeGraphalyticsTable(measurements));
    bench::emitProfile(flags, session.get());
    return 0;
}
