/**
 * @file
 * Regenerates Table IV: speedups of the race-free codes on the Titan V
 * across the 17 undirected inputs (CC, GC, MIS, MST).
 */
#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    return eclsim::bench::runSpeedupTableMain(
        argc, argv, "Titan V",
        "TABLE IV: Speedups of race-free codes on Titan V");
}
