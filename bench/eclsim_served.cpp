/**
 * @file
 * The eclsim simulation daemon.
 *
 * Serves line-delimited-JSON simulation requests over TCP (127.0.0.1
 * only) until SIGINT/SIGTERM, then drains gracefully: in-flight cells
 * complete and are delivered, idle connections are closed, and the
 * profiling outputs are flushed.
 *
 * Flags:
 *   --port=N           listen port (default 7077; 0 = ephemeral)
 *   --jobs=N           worker threads = max concurrent cells
 *                      (default: one per hardware thread)
 *   --queue=N          admission bound on pending cells (default 64);
 *                      past it requests fail fast with "overloaded"
 *   --cache-entries=N  result-cache LRU bound (default 4096)
 *   --catalog-mb=N     input-catalog residency cap (default 256 MiB)
 *   --counters=PATH    write serve/catalog counters as CSV on exit
 *   --trace=PATH       write the request spans as a Chrome trace
 *   --quiet            suppress the shutdown stats line
 */
#include "bench_util.hpp"
#include "serve/server.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    bench::installInterruptHandler();
    Flags flags(argc, argv);

    serve::ServeOptions options;
    options.jobs = static_cast<u32>(flags.getInt("jobs", 0));
    options.queue_limit =
        static_cast<size_t>(flags.getInt("queue", 64));
    options.cache_entries =
        static_cast<size_t>(flags.getInt("cache-entries", 4096));
    options.catalog_capacity_bytes =
        static_cast<u64>(flags.getInt("catalog-mb", 256)) << 20;

    serve::Service service(options);
    serve::Server server(service,
                         static_cast<u16>(flags.getInt("port", 7077)));
    std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

    bench::waitForInterrupt();
    std::cerr << "draining..." << std::endl;
    server.drain();

    service.publishGaugeCounters();
    const std::string counters = flags.getString("counters", "");
    if (!counters.empty()) {
        prof::writeCountersCsv(service.session().counters(), counters);
        std::cout << "(counters written to " << counters << ")"
                  << std::endl;
    }
    const std::string trace = flags.getString("trace", "");
    if (!trace.empty()) {
        prof::writeChromeTrace(service.session(), trace);
        std::cout << "(trace written to " << trace << ")" << std::endl;
    }

    if (!flags.getBool("quiet", false)) {
        const serve::ServiceStats stats = service.stats();
        std::cout << "served " << stats.requests << " requests ("
                  << stats.executed << " executed, " << stats.cache_hits
                  << " cache hits, " << stats.coalesced << " coalesced, "
                  << stats.rejected << " overloaded, " << stats.malformed
                  << " malformed); p50 "
                  << fmtFixed(stats.p50_us / 1000.0, 2) << " ms, p99 "
                  << fmtFixed(stats.p99_us / 1000.0, 2) << " ms"
                  << std::endl;
    }
    return 0;
}
