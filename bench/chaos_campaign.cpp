/**
 * @file
 * Benignity campaign driver (eclsim::chaos).
 *
 * Sweeps (policy x algorithm x input x seed) cells, each a full
 * simulator run under one adversarial perturbation policy, each checked
 * against the refalgos oracles, and prints the per-cell table plus the
 * per-(policy, algorithm) survival/convergence summary. Exit status is
 * nonzero iff any oracle rejected an output — zero on the benign
 * policies is the paper's benign-race claim, measured.
 *
 * Flags (besides the standard --seed/--jobs/--csv/--trace/--counters):
 *   --policy=LIST        comma-separated policies, or "all" (default):
 *                        the control plus every benign policy. The
 *                        harmful drop-atomic policy must be named
 *                        explicitly.
 *   --intensity=X        perturbation strength in [0, 1] (default 0.5)
 *   --campaign-seeds=N   perturbation seeds per cell (default 2)
 *   --variant=NAME       baseline (default) or racefree
 *   --algos=LIST         comma-separated subset of cc,gc,mis,mst,scc,
 *                        pr,bfs,wcc (PR sits outside the default: its
 *                        race is harmful-tolerated, not benign)
 *   --inputs=LIST        undirected inputs (default internet,star,
 *                        2d-2e20.sym)
 *   --directed-inputs=LIST  SCC/PR/BFS inputs (default wikipedia)
 *   --gpu=NAME           GPU model (default "Titan V")
 *   --divisor=N          input scale divisor (default 4096: tiny — a
 *                        campaign runs hundreds of full algorithm runs)
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/campaign.hpp"
#include "core/logging.hpp"

namespace {

using namespace eclsim;

std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    size_t begin = 0;
    while (begin <= list.size()) {
        const size_t comma = list.find(',', begin);
        const std::string token =
            list.substr(begin, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - begin);
        if (!token.empty())
            out.push_back(token);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

harness::Algo
parseAlgo(const std::string& name)
{
    if (name == "cc")
        return harness::Algo::kCc;
    if (name == "gc")
        return harness::Algo::kGc;
    if (name == "mis")
        return harness::Algo::kMis;
    if (name == "mst")
        return harness::Algo::kMst;
    if (name == "scc")
        return harness::Algo::kScc;
    if (name == "pr")
        return harness::Algo::kPr;
    if (name == "bfs")
        return harness::Algo::kBfs;
    if (name == "wcc")
        return harness::Algo::kWcc;
    fatal("unknown algorithm '{}' (expected cc, gc, mis, mst, scc, pr, "
          "bfs, or wcc)",
          name);
    return harness::Algo::kCc;  // unreachable
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);

    chaos::CampaignConfig config;
    config.policies =
        chaos::parsePolicyList(flags.getString("policy", "all"));
    config.intensity = flags.getDouble("intensity", 0.5);
    config.seeds_per_cell =
        static_cast<u32>(flags.getInt("campaign-seeds", 2));
    config.graph_divisor =
        static_cast<u32>(flags.getInt("divisor", 4096));
    config.seed = static_cast<u64>(flags.getInt("seed", 12345));
    config.jobs = static_cast<u32>(flags.getInt("jobs", 0));
    config.gpu = flags.getString("gpu", "Titan V");

    const std::string variant = flags.getString("variant", "baseline");
    if (variant == "baseline")
        config.variant = algos::Variant::kBaseline;
    else if (variant == "racefree")
        config.variant = algos::Variant::kRaceFree;
    else
        fatal("unknown variant '{}' (expected baseline or racefree)",
              variant);

    const std::string algo_list = flags.getString("algos", "");
    if (!algo_list.empty()) {
        config.algos.clear();
        for (const std::string& name : splitList(algo_list))
            config.algos.push_back(parseAlgo(name));
    }
    const std::string inputs = flags.getString("inputs", "");
    if (!inputs.empty())
        config.undirected_inputs = splitList(inputs);
    const std::string directed = flags.getString("directed-inputs", "");
    if (!directed.empty())
        config.directed_inputs = splitList(directed);

    const auto session = bench::sessionFromFlags(flags);
    config.trace = session.get();

    const bool quiet = flags.getBool("quiet", false);
    chaos::CampaignProgressFn progress;
    if (!quiet) {
        progress = [](const chaos::CellOutcome& o) {
            std::cerr << "  " << chaos::policyName(o.cell.policy) << " "
                      << harness::algoName(o.cell.algo) << " "
                      << o.cell.input << "#" << o.cell.rep << ": "
                      << (o.valid ? "ok" : "ORACLE VIOLATION") << "\n";
        };
    }

    const auto outcomes = chaos::runCampaign(config, progress);
    const u64 violations = chaos::countViolations(outcomes);

    bench::emitTable(flags, "Benignity campaign (per cell)",
                     chaos::makeCampaignTable(outcomes));
    std::cout << "Survival / convergence summary\n\n"
              << chaos::makeCampaignSummary(outcomes).toText()
              << std::endl;
    std::cout << "cells: " << outcomes.size()
              << "  oracle violations: " << violations << std::endl;

    bench::emitProfile(flags, session.get());
    return violations == 0 ? 0 : 1;
}
