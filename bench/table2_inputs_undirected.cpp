/**
 * @file
 * Regenerates Table II: the 17 undirected input graphs for CC, GC, MIS,
 * and MST. Prints both the paper's original statistics and the actual
 * statistics of the scaled synthetic stand-ins this reproduction uses.
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto divisor =
        static_cast<u32>(flags.getInt("divisor", 512));
    bench::emitTable(
        flags, "TABLE II: Undirected input graphs (paper statistics)",
        harness::makeInputTable(/*directed=*/false, /*actual=*/false,
                                divisor));
    std::cout << "Synthetic stand-ins actually used (divisor "
              << divisor << ")\n\n"
              << harness::makeInputTable(false, true, divisor).toText()
              << std::endl;
    return 0;
}
