/**
 * @file
 * Auto-repair advisor driver (eclsim::repair).
 *
 * One-shot whole-algorithm mode of the loop the paper performs by hand:
 * detect the baseline's races, propose the minimal atomic conversion per
 * racing site, apply each through the engine's per-site override table
 * (no source edits), verify the repaired runs race-silent, rank sites by
 * schedule exposure, and price every fix — alone and together — against
 * the baseline and the hand-written racefree variant.
 *
 * Exit status is nonzero unless the advisor is CLEAN: every racing site
 * got a proposal, every proposal verified race-silent, the repair-all
 * run is silent with a valid output, and no racy access was
 * unattributed.
 *
 * Flags:
 *   --algo=NAME             cc,gc,mis,mst,scc,pr,bfs,wcc (default cc)
 *   --input=NAME            catalog input (default rmat22.sym /
 *                           wikipedia by algorithm direction)
 *   --gpu=NAME              GPU model (default "Titan V")
 *   --divisor=N             detection-scale divisor (default 8192)
 *   --measure-divisor=N     pricing-scale divisor (default 2048)
 *   --cache-divisor=N       cache scale divisor (default 16)
 *   --reps=N                pricing repetitions, median reported (3)
 *   --exposure-seeds=N      seeds per chaos policy in the exposure
 *                           scan (default 2)
 *   --exposure-intensity=X  chaos intensity in [0,1] (default 0.5)
 *   --max-rounds=N          fixpoint cap on detection rounds (default
 *                           4; emergent races can need more than one)
 *   --seed-static           also propose fixes for statically predicted
 *                           races no detection round witnessed
 *                           (eclsim::staticrace may-race seeding)
 *   --seed=N --jobs=N       the usual determinism contract: the report
 *                           is byte-identical for every --jobs value
 *   --csv=PATH --json=PATH  machine-readable report exports
 *   --quiet                 suppress the per-site table
 */
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/logging.hpp"
#include "repair/advisor.hpp"

namespace {

using namespace eclsim;

algos::Algo
parseAlgo(const std::string& name)
{
    if (name == "cc")
        return algos::Algo::kCc;
    if (name == "gc")
        return algos::Algo::kGc;
    if (name == "mis")
        return algos::Algo::kMis;
    if (name == "mst")
        return algos::Algo::kMst;
    if (name == "scc")
        return algos::Algo::kScc;
    if (name == "pr")
        return algos::Algo::kPr;
    if (name == "bfs")
        return algos::Algo::kBfs;
    if (name == "wcc")
        return algos::Algo::kWcc;
    fatal("unknown algorithm '{}' (expected cc, gc, mis, mst, scc, pr, "
          "bfs, or wcc)",
          name);
    return algos::Algo::kCc;  // unreachable
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);

    repair::AdvisorConfig config;
    config.algo = parseAlgo(flags.getString("algo", "cc"));
    config.input = flags.getString("input", "");
    config.gpu = flags.getString("gpu", "Titan V");
    config.detect_divisor =
        static_cast<u32>(flags.getInt("divisor", 8192));
    config.measure_divisor =
        static_cast<u32>(flags.getInt("measure-divisor", 2048));
    config.cache_divisor =
        static_cast<u32>(flags.getInt("cache-divisor", 16));
    config.reps = static_cast<u32>(flags.getInt("reps", 3));
    config.exposure_seeds =
        static_cast<u32>(flags.getInt("exposure-seeds", 2));
    config.exposure_intensity =
        flags.getDouble("exposure-intensity", 0.5);
    config.max_rounds =
        static_cast<u32>(flags.getInt("max-rounds", 4));
    config.seed_static = flags.getBool("seed-static", false);
    config.seed = static_cast<u64>(flags.getInt("seed", 12345));
    config.jobs = static_cast<u32>(flags.getInt("jobs", 0));

    const repair::AdvisorResult result = repair::runAdvisor(config);

    if (!flags.getBool("quiet", false)) {
        bench::emitTable(flags, "Proposed repairs (per racing site)",
                         repair::makeRepairTable(result));
    } else {
        const std::string csv = flags.getString("csv", "");
        if (!csv.empty())
            repair::makeRepairTable(result).writeCsv(csv);
    }
    std::cout << "Repair summary\n\n"
              << repair::makeRepairSummary(result).toText() << std::endl;

    const std::string json_path = flags.getString("json", "");
    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out)
            fatal("cannot open '{}' for writing", json_path);
        out << repair::renderRepairJson(result);
        std::cout << "(json written to " << json_path << ")" << std::endl;
    }

    if (repair::advisorClean(result)) {
        std::cout << "repair advisor: CLEAN (" << result.rows.size()
                  << " site(s) repaired and verified)" << std::endl;
        return 0;
    }
    std::cout << "repair advisor: NOT CLEAN\n";
    for (const repair::SiteRow& row : result.rows)
        if (!row.verified_silent)
            std::cout << "  - " << row.proposal.site_desc
                      << ": still races with its fix closure applied\n";
    if (!result.repaired_silent)
        std::cout << "  - repair-all run still reports races\n";
    if (!result.repaired_valid)
        std::cout << "  - repair-all run produced an invalid output\n";
    if (result.unattributed_pairs != 0)
        std::cout << "  - " << result.unattributed_pairs
                  << " racy pair(s) on uninstrumented accesses\n";
    if (result.rows.empty())
        std::cout << "  - no racing sites found to repair\n";
    std::cout << std::flush;
    return 1;
}
