/**
 * @file
 * Ablation for SCC trivial-SCC trimming: parallel SCC codes peel
 * vertices that cannot lie on a cycle (no active predecessor or no
 * active successor) before running the expensive max-ID propagation.
 * Power-law inputs decompose into one giant SCC plus a large fringe of
 * singletons, so trimming shrinks the propagation working set there;
 * on the mesh inputs (one giant cycle-connected component) there is
 * nothing to trim and the pass is pure overhead.
 */
#include <iostream>

#include "algos/scc.hpp"
#include "bench_util.hpp"
#include "graph/catalog.hpp"

namespace {

using namespace eclsim;

algos::SccResult
sccRun(const simt::GpuSpec& gpu, const graph::CsrGraph& graph,
       const algos::SccOptions& options, u64 seed)
{
    simt::DeviceMemory memory;
    simt::EngineOptions engine_options;
    engine_options.seed = seed;
    simt::Engine engine(gpu, memory, engine_options);
    return algos::runScc(engine, graph, algos::Variant::kRaceFree,
                         options);
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto& gpu = simt::findGpu(flags.getString("gpu", "A100"));

    TextTable table({"Input", "type", "plain ms", "trimmed ms", "speedup",
                     "plain launches", "trimmed launches"});
    for (const auto& entry : graph::directedCatalog()) {
        const auto graph = entry.make(config.graph_divisor);
        const auto plain =
            sccRun(gpu, graph, algos::SccOptions{}, config.seed);
        algos::SccOptions trim;
        trim.trim_trivial = true;
        const auto trimmed = sccRun(gpu, graph, trim, config.seed);
        table.addRow({entry.name, entry.type,
                      fmtFixed(plain.stats.ms, 3),
                      fmtFixed(trimmed.stats.ms, 3),
                      fmtFixed(plain.stats.ms / trimmed.stats.ms, 2),
                      std::to_string(plain.stats.launches),
                      std::to_string(trimmed.stats.launches)});
    }
    bench::emitTable(flags,
                     "ABLATION: SCC trivial-SCC trimming on " + gpu.name,
                     table);
    std::cout << "Expectation: wins on power-law inputs with large "
                 "singleton fringes (wikipedia,\nweb-Google), neutral "
                 "on the meshes (nothing to trim), and a net overhead "
                 "on\npower-law inputs whose fringe is too small to pay "
                 "for the extra passes.\n";
    return 0;
}
