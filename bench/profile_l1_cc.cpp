/**
 * @file
 * Reproduces the profiling claim of Section VI-A: "the baseline [CC]
 * code has a much higher L1 hit rate for both loads and stores, which
 * explains the performance difference." Runs both CC variants on every
 * undirected input with an eclsim::prof counter session attached and
 * prints the L1 hit rates side by side, straight from the
 * sim/mem/l1_hit / sim/mem/l1_miss counters.
 */
#include <iostream>

#include "algos/cc.hpp"
#include "bench_util.hpp"
#include "graph/catalog.hpp"

namespace {

struct CcProfile
{
    double ms = 0.0;
    eclsim::u64 l1_hits = 0;
    eclsim::u64 l1_misses = 0;
    eclsim::u64 l2_hits = 0;

    double
    l1HitRate() const
    {
        const eclsim::u64 total = l1_hits + l1_misses;
        return total > 0 ? static_cast<double>(l1_hits) / total : 0.0;
    }
};

CcProfile
profileCc(const eclsim::simt::GpuSpec& gpu,
          const eclsim::graph::CsrGraph& graph,
          eclsim::algos::Variant variant, eclsim::u64 seed)
{
    using namespace eclsim;
    prof::TraceSession session;
    simt::DeviceMemory memory;
    simt::EngineOptions options;
    options.seed = seed;
    options.trace = &session;
    simt::Engine engine(gpu, memory, options);
    const auto r = algos::runCc(engine, graph, variant);

    CcProfile p;
    p.ms = r.stats.ms;
    p.l1_hits = session.counters().valueByName("sim/mem/l1_hit");
    p.l1_misses = session.counters().valueByName("sim/mem/l1_miss");
    p.l2_hits = session.counters().valueByName("sim/mem/l2_hit");
    return p;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto& gpu = simt::findGpu(flags.getString("gpu", "Titan V"));

    TextTable table({"Input", "base L1 hit", "free L1 hit", "base L1 hits",
                     "free L1 hits", "free L2 hits", "speedup"});
    for (const auto& entry : graph::undirectedCatalog()) {
        const auto graph = entry.make(config.graph_divisor);
        const auto base =
            profileCc(gpu, graph, algos::Variant::kBaseline, config.seed);
        const auto free =
            profileCc(gpu, graph, algos::Variant::kRaceFree, config.seed);
        table.addRow({entry.name,
                      fmtFixed(100.0 * base.l1HitRate(), 1) + "%",
                      fmtFixed(100.0 * free.l1HitRate(), 1) + "%",
                      fmtGrouped(base.l1_hits),
                      fmtGrouped(free.l1_hits),
                      fmtGrouped(free.l2_hits),
                      fmtFixed(base.ms / free.ms, 2)});
    }
    bench::emitTable(flags,
                     "PROFILE: CC L1 behaviour, baseline vs race-free "
                     "(Section VI-A) on " + gpu.name,
                     table);
    std::cout << "Expectation: the baseline keeps its pointer-jumping "
                 "reads in the L1;\nthe race-free conversion moves them "
                 "to the L2, collapsing the L1 hit count.\n";
    return 0;
}
