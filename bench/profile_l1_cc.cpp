/**
 * @file
 * Reproduces the profiling claim of Section VI-A: "the baseline [CC]
 * code has a much higher L1 hit rate for both loads and stores, which
 * explains the performance difference." Runs both CC variants on every
 * undirected input and prints the L1 load-hit rates side by side.
 */
#include <iostream>

#include "algos/cc.hpp"
#include "bench_util.hpp"
#include "graph/catalog.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto& gpu = simt::findGpu(flags.getString("gpu", "Titan V"));

    TextTable table({"Input", "base L1 load-hit", "free L1 load-hit",
                     "base L1 hits", "free L1 hits", "speedup"});
    for (const auto& entry : graph::undirectedCatalog()) {
        const auto graph = entry.make(config.graph_divisor);

        algos::RunStats base_stats, free_stats;
        double base_ms = 0, free_ms = 0;
        {
            simt::DeviceMemory memory;
            simt::EngineOptions options;
            options.seed = config.seed;
            simt::Engine engine(gpu, memory, options);
            auto r = algos::runCc(engine, graph,
                                  algos::Variant::kBaseline);
            base_stats = r.stats;
            base_ms = r.stats.ms;
        }
        {
            simt::DeviceMemory memory;
            simt::EngineOptions options;
            options.seed = config.seed;
            simt::Engine engine(gpu, memory, options);
            auto r = algos::runCc(engine, graph,
                                  algos::Variant::kRaceFree);
            free_stats = r.stats;
            free_ms = r.stats.ms;
        }
        table.addRow(
            {entry.name,
             fmtFixed(100.0 * base_stats.mem.l1.loadHitRate(), 1) + "%",
             fmtFixed(100.0 * free_stats.mem.l1.loadHitRate(), 1) + "%",
             fmtGrouped(base_stats.mem.l1.hits()),
             fmtGrouped(free_stats.mem.l1.hits()),
             fmtFixed(base_ms / free_ms, 2)});
    }
    bench::emitTable(flags,
                     "PROFILE: CC L1 behaviour, baseline vs race-free "
                     "(Section VI-A) on " + gpu.name,
                     table);
    std::cout << "Expectation: the baseline keeps its pointer-jumping "
                 "reads in the L1;\nthe race-free conversion moves them "
                 "to the L2, collapsing the L1 hit count.\n";
    return 0;
}
