/**
 * @file
 * Race-freedom gate driver (eclsim::racecheck).
 *
 * Sweeps every (algorithm x variant x input) cell under the
 * happens-before detector, prints the classified race-site table plus
 * the per-algorithm summary, and applies the gate:
 *
 *   - any racefree variant (or APSP) reporting a race fails;
 *   - any baseline algorithm reporting *no* races fails (the detector
 *     must keep reproducing the paper's Section IV findings);
 *   - any baseline race classified unknown/harmful fails.
 *
 * Exit status is nonzero iff the gate fails — this is the CI check that
 * the converted codes stay clean and every remaining race keeps a
 * validated benignity argument.
 *
 * Flags (besides the standard --seed/--jobs/--csv/--trace/--counters):
 *   --algos=LIST         comma-separated subset of
 *                        cc,gc,mis,mst,scc,pr,bfs,wcc
 *   --variants=LIST      baseline,racefree (default both)
 *   --inputs=LIST        undirected inputs (default rmat22.sym)
 *   --directed-inputs=LIST  SCC/PR/BFS inputs (default wikipedia)
 *   --no-apsp            skip the APSP cells
 *   --gpu=NAME           GPU model (default "Titan V")
 *   --divisor=N          input scale divisor (default 8192: interleaved
 *                        runs with byte-granular shadow are slow)
 *   --apsp-vertices=N    size of the generated APSP graph (default 96:
 *                        the O(n^3) kernels dominate the sweep)
 *   --list-sites         print the interned ECL_SITE registry (sorted,
 *                        deterministic ids) and exit — no sweep; repair
 *                        proposals and tests reference sites by these ids
 *   --json=PATH          also write the sweep as machine-readable JSON
 */
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/logging.hpp"
#include "racecheck/runner.hpp"

namespace {

using namespace eclsim;

std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    size_t begin = 0;
    while (begin <= list.size()) {
        const size_t comma = list.find(',', begin);
        const std::string token =
            list.substr(begin, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - begin);
        if (!token.empty())
            out.push_back(token);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

harness::Algo
parseAlgo(const std::string& name)
{
    if (name == "cc")
        return harness::Algo::kCc;
    if (name == "gc")
        return harness::Algo::kGc;
    if (name == "mis")
        return harness::Algo::kMis;
    if (name == "mst")
        return harness::Algo::kMst;
    if (name == "scc")
        return harness::Algo::kScc;
    if (name == "pr")
        return harness::Algo::kPr;
    if (name == "bfs")
        return harness::Algo::kBfs;
    if (name == "wcc")
        return harness::Algo::kWcc;
    fatal("unknown algorithm '{}' (expected cc, gc, mis, mst, scc, pr, "
          "bfs, or wcc)",
          name);
    return harness::Algo::kCc;  // unreachable
}

algos::Variant
parseVariant(const std::string& name)
{
    if (name == "baseline")
        return algos::Variant::kBaseline;
    if (name == "racefree")
        return algos::Variant::kRaceFree;
    fatal("unknown variant '{}' (expected baseline or racefree)", name);
    return algos::Variant::kBaseline;  // unreachable
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);

    if (flags.getBool("list-sites", false)) {
        // Serial deterministic interning pass, then the sorted registry;
        // no detection sweep runs.
        racecheck::populateSiteRegistry();
        bench::emitTable(flags, "Interned access sites (ECL_SITE)",
                         racecheck::makeSiteListTable());
        return 0;
    }

    racecheck::RunnerConfig config;
    config.gpu = flags.getString("gpu", "Titan V");
    config.graph_divisor =
        static_cast<u32>(flags.getInt("divisor", 8192));
    config.apsp_vertices =
        static_cast<u32>(flags.getInt("apsp-vertices", 96));
    config.cache_divisor =
        static_cast<u32>(flags.getInt("cache-divisor", 16));
    config.seed = static_cast<u64>(flags.getInt("seed", 12345));
    config.jobs = static_cast<u32>(flags.getInt("jobs", 0));
    config.include_apsp = !flags.getBool("no-apsp", false);

    const std::string algo_list = flags.getString("algos", "");
    if (!algo_list.empty()) {
        config.algos.clear();
        for (const std::string& name : splitList(algo_list))
            config.algos.push_back(parseAlgo(name));
    }
    const std::string variant_list = flags.getString("variants", "");
    if (!variant_list.empty()) {
        config.variants.clear();
        for (const std::string& name : splitList(variant_list))
            config.variants.push_back(parseVariant(name));
    }
    const std::string inputs = flags.getString("inputs", "");
    if (!inputs.empty())
        config.undirected_inputs = splitList(inputs);
    const std::string directed = flags.getString("directed-inputs", "");
    if (!directed.empty())
        config.directed_inputs = splitList(directed);

    const bool quiet = flags.getBool("quiet", false);
    racecheck::RacecheckProgressFn progress;
    if (!quiet) {
        progress = [](const racecheck::CellResult& r) {
            std::cerr << "  " << racecheck::cellName(r.cell) << ": "
                      << r.races.size() << " race site(s), "
                      << r.total_pairs << " pair(s)"
                      << (r.output_valid ? "" : "  OUTPUT INVALID")
                      << "\n";
        };
    }

    const auto results = racecheck::runRacecheck(config, progress);

    bench::emitTable(flags, "Classified race sites (per cell)",
                     racecheck::makeSiteTable(results));
    const std::string json_path = flags.getString("json", "");
    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out)
            fatal("cannot open '{}' for writing", json_path);
        out << racecheck::renderRacecheckJson(results);
        std::cout << "(json written to " << json_path << ")" << std::endl;
    }
    std::cout << "Per-algorithm race summary\n\n"
              << racecheck::makeAlgoSummary(results).toText()
              << std::endl;

    const auto gate = racecheck::evaluateGate(config, results);
    if (gate.pass) {
        std::cout << "race-freedom gate: PASS (" << results.size()
                  << " cells)" << std::endl;
        return 0;
    }
    std::cout << "race-freedom gate: FAIL\n";
    for (const std::string& f : gate.failures)
        std::cout << "  - " << f << "\n";
    std::cout << std::flush;
    return 1;
}
