/**
 * @file
 * Load generator and determinism gate for the serve layer.
 *
 * Replays a Zipf-skewed mix of simulation requests over N concurrent
 * TCP connections against an in-process daemon, then reports
 * throughput, client-observed latency percentiles, and the cache-hit
 * rate into BENCH_SERVE.json.
 *
 * With --check (the default) every response is also compared
 * byte-for-byte against a fresh single-threaded daemon serving the
 * same requests serially — the paper-level claim that removing the
 * schedule from the seeds makes concurrency invisible in the results.
 *
 * Flags:
 *   --requests=N     total requests to replay (default 2000)
 *   --connections=N  concurrent client connections (default 8)
 *   --distinct=N     distinct request population size (default 64)
 *   --zipf=S         skew exponent; weight(rank) = 1/rank^S (default 1)
 *   --divisor=N      input scale divisor for the population (1024)
 *   --reps=N         reps per cell (default 2)
 *   --seed=N         base seed for the population (default 12345)
 *   --jobs=N         daemon workers (default: hardware threads)
 *   --queue=N        daemon admission bound (default 256)
 *   --json=PATH      metrics output (default BENCH_SERVE.json)
 *   --check / --no-check   run the serial byte-identity gate
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>

#include "bench_util.hpp"
#include "core/logging.hpp"
#include "core/stats.hpp"
#include "serve/server.hpp"

namespace eclsim {
namespace {

/** Blocking line-oriented client connection. */
class Client
{
  public:
    explicit Client(u16 port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            fatal("socket(): {}", std::strerror(errno));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0)
            fatal("connect(127.0.0.1:{}): {}", port, std::strerror(errno));
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    ~Client() { ::close(fd_); }

    std::string
    roundTrip(const std::string& line)
    {
        const std::string framed = line + "\n";
        size_t sent = 0;
        while (sent < framed.size()) {
            const ssize_t n =
                ::write(fd_, framed.data() + sent, framed.size() - sent);
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0)
                fatal("write(): {}", std::strerror(errno));
            sent += static_cast<size_t>(n);
        }
        for (;;) {
            const size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                std::string out = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                return out;
            }
            char chunk[8192];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                fatal("daemon closed the connection mid-replay");
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** The distinct request population: mixed graphs/algos/gpus/seeds. */
std::vector<serve::Request>
buildPopulation(size_t distinct, u32 divisor, u32 reps, u64 base_seed)
{
    const std::vector<std::pair<std::string, harness::Algo>> cells = {
        {"rmat16.sym", harness::Algo::kCc},
        {"internet", harness::Algo::kGc},
        {"amazon0601", harness::Algo::kMis},
        {"citationCiteseer", harness::Algo::kMst},
        {"star", harness::Algo::kScc},
        {"web-Google", harness::Algo::kScc},
        {"internet", harness::Algo::kCc},
        {"rmat16.sym", harness::Algo::kMis},
    };
    const std::vector<std::string> gpus = {"Titan V", "A100"};
    std::vector<serve::Request> population;
    for (size_t i = 0; i < distinct; ++i) {
        serve::Request request;
        const auto& [graph, algo] = cells[i % cells.size()];
        request.graph = graph;
        request.algo = algo;
        request.gpu = gpus[(i / cells.size()) % gpus.size()];
        request.seed = base_seed + i / (cells.size() * gpus.size());
        request.reps = reps;
        request.divisor = divisor;
        request.id = "pop-" + std::to_string(i);
        population.push_back(request);
    }
    return population;
}

/** One wire line per population entry (ids rotate per replay below). */
std::string
wireLine(const serve::Request& request, const std::string& id)
{
    return std::string("{\"id\":") + serve::quoteJson(id) +
           ",\"graph\":" + serve::quoteJson(request.graph) +
           ",\"algo\":\"" + harness::algoName(request.algo) +
           "\",\"gpu\":" + serve::quoteJson(request.gpu) +
           ",\"seed\":" + std::to_string(request.seed) +
           ",\"reps\":" + std::to_string(request.reps) +
           ",\"divisor\":" + std::to_string(request.divisor) + "}";
}

/**
 * Deterministic Zipf-ranked replay schedule: request t draws from the
 * population with weight 1/rank^s via an inverse-CDF lookup over a
 * SplitMix64 stream, so every run replays the identical sequence.
 */
std::vector<size_t>
zipfSchedule(size_t requests, size_t distinct, double s, u64 seed)
{
    std::vector<double> cdf(distinct);
    double total = 0.0;
    for (size_t rank = 0; rank < distinct; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
        cdf[rank] = total;
    }
    std::vector<size_t> schedule(requests);
    u64 state = seed;
    for (size_t t = 0; t < requests; ++t) {
        // SplitMix64 step.
        state += 0x9e3779b97f4a7c15ull;
        u64 z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const double u =
            static_cast<double>(z >> 11) / 9007199254740992.0 * total;
        schedule[t] = static_cast<size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        if (schedule[t] >= distinct)
            schedule[t] = distinct - 1;
    }
    return schedule;
}

}  // namespace
}  // namespace eclsim

int
main(int argc, char** argv)
{
    using namespace eclsim;
    bench::installInterruptHandler();
    Flags flags(argc, argv);

    const size_t requests =
        static_cast<size_t>(flags.getInt("requests", 2000));
    const size_t connections =
        static_cast<size_t>(flags.getInt("connections", 8));
    const size_t distinct =
        static_cast<size_t>(flags.getInt("distinct", 64));
    const double zipf = flags.getDouble("zipf", 1.0);
    const u32 divisor = static_cast<u32>(flags.getInt("divisor", 1024));
    const u32 reps = static_cast<u32>(flags.getInt("reps", 2));
    const u64 seed = static_cast<u64>(flags.getInt("seed", 12345));
    const bool check = flags.getBool("check", true);
    const std::string json_path =
        flags.getString("json", "BENCH_SERVE.json");

    serve::ServeOptions options;
    options.jobs = static_cast<u32>(flags.getInt("jobs", 0));
    options.queue_limit = static_cast<size_t>(flags.getInt("queue", 256));
    serve::Service service(options);
    serve::Server server(service, 0);

    const auto population = buildPopulation(distinct, divisor, reps, seed);
    const auto schedule = zipfSchedule(requests, distinct, zipf, seed);

    // Replay: connection c serves schedule entries c, c+N, c+2N, ...
    std::vector<std::vector<double>> latencies(connections);
    // Every response fragment observed for each population index.
    std::vector<std::map<size_t, std::string>> observed(connections);
    std::atomic<size_t> errors{0};
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> clients;
        for (size_t c = 0; c < connections; ++c) {
            clients.emplace_back([&, c] {
                Client client(server.port());
                for (size_t t = c; t < schedule.size(); t += connections) {
                    const size_t index = schedule[t];
                    const std::string line = wireLine(
                        population[index],
                        "c" + std::to_string(c) + "-" + std::to_string(t));
                    const auto start = std::chrono::steady_clock::now();
                    const std::string response = client.roundTrip(line);
                    const auto stop = std::chrono::steady_clock::now();
                    latencies[c].push_back(
                        std::chrono::duration<double, std::micro>(stop -
                                                                  start)
                            .count());
                    const std::string fragment =
                        serve::extractResultFragment(response);
                    if (fragment.empty()) {
                        ++errors;
                        std::cerr << "non-ok response: " << response
                                  << "\n";
                        continue;
                    }
                    auto [it, inserted] =
                        observed[c].emplace(index, fragment);
                    if (it->second != fragment)
                        ++errors;  // same connection saw two renderings
                }
            });
        }
        for (auto& client : clients)
            client.join();
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    server.drain();
    const serve::ServiceStats stats = service.stats();

    std::vector<double> all_latencies;
    for (const auto& per_connection : latencies)
        all_latencies.insert(all_latencies.end(), per_connection.begin(),
                             per_connection.end());
    const double p50 = stats::percentile(all_latencies, 50.0);
    const double p99 = stats::percentile(all_latencies, 99.0);
    const double hit_rate = stats.hitRate();

    std::cout << "replayed " << requests << " requests over "
              << connections << " connections in " << fmtFixed(wall_s, 2)
              << " s (" << fmtFixed(requests / wall_s, 0) << " req/s)\n"
              << "  latency p50 " << fmtFixed(p50 / 1000.0, 2)
              << " ms, p99 " << fmtFixed(p99 / 1000.0, 2) << " ms\n"
              << "  cache: " << stats.cache_hits << " hits, "
              << stats.coalesced << " coalesced, " << stats.executed
              << " executed (hit rate "
              << fmtFixed(100.0 * hit_rate, 1) << "%)\n";

    // Determinism gate: a fresh single-threaded daemon must render the
    // exact bytes the concurrent replay observed, for every distinct
    // request that was served.
    size_t mismatches = 0;
    size_t compared = 0;
    if (check) {
        serve::Service serial(serve::ServeOptions{.jobs = 1});
        serve::ServiceHandle handle(serial);
        std::map<size_t, std::string> reference;
        for (const auto& per_connection : observed)
            for (const auto& [index, fragment] : per_connection) {
                if (!reference.count(index))
                    reference[index] = serve::extractResultFragment(
                        handle.call(population[index]).encode());
                ++compared;
                if (fragment != reference[index]) {
                    ++mismatches;
                    std::cerr << "determinism mismatch for "
                              << population[index].graph << "/"
                              << harness::algoName(population[index].algo)
                              << "\n";
                }
            }
        std::cout << "  determinism: " << compared
                  << " responses compared against a serial daemon, "
                  << mismatches << " mismatches\n";
    }

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"connections\": " << connections << ",\n"
         << "  \"distinct\": " << distinct << ",\n"
         << "  \"zipf\": " << serve::jsonNumber(zipf) << ",\n"
         << "  \"wall_s\": " << serve::jsonNumber(wall_s) << ",\n"
         << "  \"throughput_rps\": "
         << serve::jsonNumber(requests / wall_s) << ",\n"
         << "  \"latency_p50_us\": " << serve::jsonNumber(p50) << ",\n"
         << "  \"latency_p99_us\": " << serve::jsonNumber(p99) << ",\n"
         << "  \"cache_hits\": " << stats.cache_hits << ",\n"
         << "  \"coalesced\": " << stats.coalesced << ",\n"
         << "  \"executed\": " << stats.executed << ",\n"
         << "  \"rejected\": " << stats.rejected << ",\n"
         << "  \"hit_rate\": " << serve::jsonNumber(hit_rate) << ",\n"
         << "  \"queue_peak\": " << stats.queue_peak << ",\n"
         << "  \"determinism_compared\": " << compared << ",\n"
         << "  \"determinism_mismatches\": " << mismatches << ",\n"
         << "  \"errors\": " << errors.load() << "\n"
         << "}\n";
    json.close();
    std::cout << "(metrics written to " << json_path << ")" << std::endl;

    if (errors.load() > 0 || mismatches > 0) {
        std::cerr << "FAILED: " << errors.load() << " errors, "
                  << mismatches << " determinism mismatches\n";
        return 1;
    }
    if (check && hit_rate < 0.30) {
        std::cerr << "FAILED: hit rate "
                  << fmtFixed(100.0 * hit_rate, 1)
                  << "% below the 30% gate\n";
        return 1;
    }
    return 0;
}
