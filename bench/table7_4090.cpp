/**
 * @file
 * Regenerates Table VII: speedups of the race-free codes on the RTX 4090.
 */
#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    return eclsim::bench::runSpeedupTableMain(
        argc, argv, "4090",
        "TABLE VII: Speedups of race-free codes on 4090");
}
