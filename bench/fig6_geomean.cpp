/**
 * @file
 * Regenerates Fig. 6: the geometric-mean speedup of every algorithm over
 * the baseline across all inputs, on all four tested GPUs — printed both
 * as a table and as an ASCII bar chart mirroring the paper's figure.
 *
 * The expected shape: MIS above 1.0 everywhere; GC and MST just below
 * 1.0; CC and SCC well below 1.0, with the newer GPUs (A100, 4090)
 * showing more slowdown than the older ones.
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    bench::installInterruptHandler();
    Flags flags(argc, argv);
    auto config = bench::configFromFlags(flags);
    const auto session = bench::sessionFromFlags(flags);
    config.trace = session.get();
    const auto sink = std::make_shared<bench::PartialSink>();
    const auto progress = bench::flushOnInterrupt(
        sink, flags,
        "FIG. 6: Geometric-mean speedup over the baseline "
        "across all inputs on all tested GPUs",
        harness::makeGeomeanTable, session.get(),
        flags.getBool("quiet", false) ? harness::ProgressFn{}
                                      : bench::stderrProgress());

    std::vector<harness::Measurement> all;
    for (const auto& gpu : simt::evaluationGpus()) {
        auto und = harness::runUndirectedSuite(gpu, config, progress);
        all.insert(all.end(), und.begin(), und.end());
        auto scc = harness::runSccSuite(gpu, config, progress);
        all.insert(all.end(), scc.begin(), scc.end());
    }

    bench::emitTable(flags,
                     "FIG. 6: Geometric-mean speedup over the baseline "
                     "across all inputs on all tested GPUs",
                     harness::makeGeomeanTable(all));
    bench::emitProfile(flags, session.get());

    // ASCII rendition of the bar chart.
    const std::vector<harness::Algo> algos = {
        harness::Algo::kCc, harness::Algo::kGc, harness::Algo::kMis,
        harness::Algo::kMst, harness::Algo::kScc};
    std::cout << "bar chart (each # = 0.02, | marks speedup 1.00):\n";
    for (harness::Algo algo : algos) {
        std::cout << "\n" << harness::algoName(algo) << "\n";
        for (const auto& gpu : simt::evaluationGpus()) {
            const double g = harness::geomeanSpeedup(all, algo, gpu.name);
            std::cout << "  " << gpu.name;
            for (size_t pad = gpu.name.size(); pad < 12; ++pad)
                std::cout << ' ';
            const int bars = static_cast<int>(g / 0.02);
            for (int i = 0; i < bars; ++i)
                std::cout << (i == 49 ? '|' : '#');
            if (bars < 50)
                std::cout << std::string(50 - bars, ' ') << '|';
            std::cout << ' ' << fmtFixed(g, 2) << "\n";
        }
    }
    return 0;
}
