/**
 * @file
 * Regenerates Table III: the 10 directed input graphs for SCC. Prints
 * both the paper's statistics and the scaled stand-ins' actual ones.
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto divisor =
        static_cast<u32>(flags.getInt("divisor", 512));
    bench::emitTable(
        flags, "TABLE III: Directed input graphs for SCC (paper "
               "statistics)",
        harness::makeInputTable(/*directed=*/true, /*actual=*/false,
                                divisor));
    std::cout << "Synthetic stand-ins actually used (divisor "
              << divisor << ")\n\n"
              << harness::makeInputTable(true, true, divisor).toText()
              << std::endl;
    return 0;
}
