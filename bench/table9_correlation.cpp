/**
 * @file
 * Regenerates Table IX: Pearson correlation coefficients between the
 * input graphs' properties (edge count, vertex count, average degree)
 * and the observed race-free speedups, per GPU per algorithm.
 *
 * This bench runs the full evaluation (Tables IV-VIII) to collect the
 * speedups it correlates, so it is the most expensive binary.
 */
#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto progress = flags.getBool("quiet", false)
                              ? harness::ProgressFn{}
                              : bench::stderrProgress();

    std::vector<harness::Measurement> all;
    for (const auto& gpu : simt::evaluationGpus()) {
        auto und = harness::runUndirectedSuite(gpu, config, progress);
        all.insert(all.end(), und.begin(), und.end());
        auto scc = harness::runSccSuite(gpu, config, progress);
        all.insert(all.end(), scc.begin(), scc.end());
    }
    bench::emitTable(flags,
                     "TABLE IX: Correlation coefficients between input "
                     "graph properties and observed speedups",
                     harness::makeCorrelationTable(all));
    return 0;
}
