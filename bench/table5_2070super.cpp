/**
 * @file
 * Regenerates Table V: speedups of the race-free codes on the 2070 Super.
 */
#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    return eclsim::bench::runSpeedupTableMain(
        argc, argv, "2070 Super",
        "TABLE V: Speedups of race-free codes on 2070 Super");
}
