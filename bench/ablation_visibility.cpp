/**
 * @file
 * Ablation for the MIS speedup mechanism (Section VI-A): the paper
 * attributes the 5-11% race-free MIS speedup to atomics preventing the
 * compiler from delaying when status updates become visible to other
 * threads. eclsim models that delay with the sweep-snapshot visibility
 * class; this bench toggles the model off and shows that the speedup
 * disappears (and the baseline's sweep count drops to the race-free
 * code's), isolating delayed visibility as the cause.
 */
#include <iostream>

#include "algos/mis.hpp"
#include "bench_util.hpp"
#include "core/stats.hpp"
#include "graph/catalog.hpp"

namespace {

using namespace eclsim;

struct Row
{
    std::string input;
    double speedup = 0.0;
    u32 base_sweeps = 0;
    u32 free_sweeps = 0;
};

Row
runOne(const simt::GpuSpec& gpu, const graph::CsrGraph& graph,
       const std::string& name, bool model_visibility, u64 seed)
{
    Row row;
    row.input = name;
    double ms[2] = {0.0, 0.0};
    for (auto variant :
         {algos::Variant::kBaseline, algos::Variant::kRaceFree}) {
        simt::DeviceMemory memory;
        simt::EngineOptions options;
        options.seed = seed;
        options.memory.model_sweep_visibility = model_visibility;
        simt::Engine engine(gpu, memory, options);
        const auto r = algos::runMis(engine, graph, variant);
        if (variant == algos::Variant::kBaseline) {
            ms[0] = r.stats.ms;
            row.base_sweeps = r.stats.iterations;
        } else {
            ms[1] = r.stats.ms;
            row.free_sweeps = r.stats.iterations;
        }
    }
    row.speedup = ms[0] / ms[1];
    return row;
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);
    const auto config = bench::configFromFlags(flags);
    const auto& gpu = simt::findGpu(flags.getString("gpu", "Titan V"));

    TextTable table({"Input", "speedup (model on)", "sweeps b/f",
                     "speedup (model off)", "sweeps b/f"});
    std::vector<double> on_speedups, off_speedups;
    for (const auto& entry : graph::undirectedCatalog()) {
        const auto graph = entry.make(config.graph_divisor);
        const Row on = runOne(gpu, graph, entry.name, true, config.seed);
        const Row off = runOne(gpu, graph, entry.name, false, config.seed);
        on_speedups.push_back(on.speedup);
        off_speedups.push_back(off.speedup);
        table.addRow({entry.name, fmtFixed(on.speedup, 2),
                      std::to_string(on.base_sweeps) + "/" +
                          std::to_string(on.free_sweeps),
                      fmtFixed(off.speedup, 2),
                      std::to_string(off.base_sweeps) + "/" +
                          std::to_string(off.free_sweeps)});
    }
    table.addSeparator();
    table.addRow({"Geomean", fmtFixed(stats::geomean(on_speedups), 2), "",
                  fmtFixed(stats::geomean(off_speedups), 2), ""});

    bench::emitTable(flags,
                     "ABLATION: MIS race-free speedup with and without "
                     "the delayed-visibility model on " + gpu.name,
                     table);
    std::cout << "Expectation: with the model on, the baseline needs "
                 "extra sweeps and the race-free code wins (geomean > "
                 "1); with it off, both variants see live values and "
                 "the race-free code pays only the atomic cost (geomean "
                 "<= 1).\n";
    return 0;
}
