/**
 * @file
 * Regenerates Table VI: speedups of the race-free codes on the A100.
 */
#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    return eclsim::bench::runSpeedupTableMain(
        argc, argv, "A100",
        "TABLE VI: Speedups of race-free codes on A100");
}
