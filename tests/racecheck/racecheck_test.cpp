/**
 * @file
 * Unit tests for the eclsim::racecheck subsystem: site registry,
 * vector clocks, the happens-before detector's edge cases (partial
 * overlaps, cross-launch accesses, atomic scopes, release/acquire
 * chains, torn 64-bit pieces, read-set eviction), and the benign-race
 * classifier's validate-don't-trust rules.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "racecheck/classify.hpp"
#include "racecheck/detector.hpp"
#include "racecheck/runner.hpp"
#include "racecheck/sites.hpp"
#include "racecheck/vector_clock.hpp"

namespace eclsim::racecheck {
namespace {

using simt::AccessMode;
using simt::MemOpKind;
using simt::MemoryOrder;
using simt::MemRequest;
using simt::RmwOp;
using simt::Scope;

// ---------------------------------------------------------------- sites

TEST(SiteRegistry, InternIsIdempotentPerLocation)
{
    auto& reg = SiteRegistry::instance();
    const SiteId a = reg.intern("file.cpp", 10, "label one");
    const SiteId b = reg.intern("file.cpp", 10, "label one");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, kUnknownSite);
    const SiteId c = reg.intern("file.cpp", 11, "label one");
    EXPECT_NE(a, c);
}

TEST(SiteRegistry, DescribeUsesBasenameAndLabel)
{
    auto& reg = SiteRegistry::instance();
    const SiteId id =
        reg.intern("/deep/path/to/kernel.cpp", 42, "hook parent[] store");
    EXPECT_EQ(reg.describe(id), "kernel.cpp:hook parent[] store");
    EXPECT_EQ(reg.describe(kUnknownSite), "<unattributed>");
}

TEST(SiteRegistry, FirstExpectationWins)
{
    auto& reg = SiteRegistry::instance();
    const SiteId id = reg.intern("expect.cpp", 7, "first wins",
                                 Expectation::kMonotonic);
    reg.intern("expect.cpp", 7, "first wins", Expectation::kIdempotent);
    EXPECT_EQ(reg.expectation(id), Expectation::kMonotonic);
    EXPECT_EQ(reg.expectation(kUnknownSite), Expectation::kNone);
}

TEST(SiteRegistry, MacroInternsOncePerLocation)
{
    // The same source location yields the same id on every execution;
    // distinct lines are distinct sites even with equal labels.
    const auto same_site = [] { return ECL_SITE("macro site"); };
    const SiteId a = same_site();
    const SiteId b = same_site();
    EXPECT_EQ(a, b);
    EXPECT_NE(a, ECL_SITE("macro site"));
    const SiteId c =
        ECL_SITE_AS("macro declared", Expectation::kStaleTolerant);
    EXPECT_EQ(SiteRegistry::instance().expectation(c),
              Expectation::kStaleTolerant);
}

// --------------------------------------------------------- vector clock

TEST(VectorClockTest, BottomIsZero)
{
    VectorClock vc;
    EXPECT_EQ(vc.get(3), 0u);
    EXPECT_TRUE(vc.empty());
    EXPECT_FALSE(vc.covers(3, 1));
    EXPECT_TRUE(vc.covers(3, 0));
}

TEST(VectorClockTest, RaiseNeverLowers)
{
    VectorClock vc;
    vc.raise(5, 7);
    EXPECT_EQ(vc.get(5), 7u);
    vc.raise(5, 3);
    EXPECT_EQ(vc.get(5), 7u);
    vc.raise(5, 9);
    EXPECT_EQ(vc.get(5), 9u);
}

TEST(VectorClockTest, JoinIsElementwiseMax)
{
    VectorClock a, b;
    a.raise(1, 4);
    a.raise(3, 2);
    b.raise(2, 5);
    b.raise(3, 7);
    a.join(b);
    EXPECT_EQ(a.get(1), 4u);
    EXPECT_EQ(a.get(2), 5u);
    EXPECT_EQ(a.get(3), 7u);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_TRUE(a.covers(3, 7));
    EXPECT_FALSE(a.covers(3, 8));
}

// ------------------------------------------------------------- detector

/** Detector harness: one synthetic allocation, direct onAccess calls. */
class DetectorTest : public ::testing::Test
{
  protected:
    DetectorTest()
        : det_([](u64) {
              return Detector::ResolvedAlloc{0, "shadow"};
          })
    {
    }

    static ThreadInfo
    thread(u32 tid, u32 block = 0, u32 epoch = 0, u32 launch = 0)
    {
        ThreadInfo info;
        info.launch = launch;
        info.thread = tid;
        info.block = block;
        info.epoch = epoch;
        return info;
    }

    /** Issue one plain/volatile/atomic access. */
    void
    access(const ThreadInfo& who, u64 addr, u8 size, bool is_write,
           bool is_atomic, Scope scope = Scope::kDevice,
           MemoryOrder order = MemoryOrder::kRelaxed, SiteId site = 0,
           u64 value = 1, u64 old_value = 0)
    {
        MemRequest req;
        req.addr = addr;
        req.size = size;
        req.site = site;
        req.order = order;
        if (is_atomic) {
            req.kind = is_write ? MemOpKind::kRmw : MemOpKind::kLoad;
            if (!is_write)
                req.mode = AccessMode::kAtomic;
            req.rmw = RmwOp::kAdd;
            req.scope = scope;
        } else {
            req.kind = is_write ? MemOpKind::kStore : MemOpKind::kLoad;
        }
        det_.onAccess(who, req, addr, size, value, old_value);
    }

    Detector det_;
};

TEST_F(DetectorTest, PartialOverlapWidthMixes)
{
    // T1 stores 4 bytes at [4, 8); later accesses race only where the
    // byte ranges actually intersect (the shadow is byte-granular, so
    // the pair count is per conflicting byte).
    access(thread(1), 4, 4, /*write=*/true, /*atomic=*/false);
    access(thread(2), 0, 4, false, false);  // [0,4): disjoint
    EXPECT_EQ(det_.totalRaces(), 0u);
    access(thread(3), 8, 2, false, false);  // [8,10): disjoint
    EXPECT_EQ(det_.totalRaces(), 0u);
    access(thread(4), 6, 1, false, false);  // [6,7): one shared byte
    EXPECT_EQ(det_.totalRaces(), 1u);
    access(thread(5), 6, 2, false, false);  // [6,8): two shared bytes
    EXPECT_EQ(det_.totalRaces(), 3u);
    access(thread(6), 0, 8, false, false);  // [0,8): four shared bytes
    EXPECT_EQ(det_.totalRaces(), 7u);
}

TEST_F(DetectorTest, WideReadConflictsAggregateIntoOneReport)
{
    // An 8-byte read crossing two racing 4-byte stores: every shared
    // byte is a conflicting pair, but both pairs carry the same
    // (allocation, site pair, kind) key and collapse into one report.
    access(thread(1), 0, 4, true, false);
    access(thread(2), 4, 4, true, false);
    access(thread(3), 0, 8, false, false);
    EXPECT_EQ(det_.totalRaces(), 8u);
    EXPECT_EQ(det_.reports().size(), 1u);
}

TEST_F(DetectorTest, CrossLaunchAccessesNeverConflict)
{
    access(thread(1, 0, 0, /*launch=*/0), 0, 4, true, false);
    access(thread(2, 1, 0, /*launch=*/1), 0, 4, true, false);
    access(thread(3, 2, 0, /*launch=*/2), 0, 4, false, false);
    EXPECT_EQ(det_.totalRaces(), 0u);
}

TEST_F(DetectorTest, VolatileVsAtomicStillRaces)
{
    // volatile is not atomic: a volatile store against an atomic RMW on
    // the same word is a reportable race (only atomic/atomic pairs are
    // excused).
    MemRequest vol;
    vol.addr = 0;
    vol.size = 4;
    vol.kind = MemOpKind::kStore;
    vol.mode = AccessMode::kVolatile;
    det_.onAccess(thread(1), vol, 0, 4, 1, 0);
    access(thread(2), 0, 4, true, /*atomic=*/true);
    EXPECT_EQ(det_.totalRaces(), 4u);  // one pair per shared byte
    ASSERT_EQ(det_.reports().size(), 1u);
    EXPECT_EQ(det_.reports()[0].kind, RaceKind::kWriteWrite);
}

TEST_F(DetectorTest, TornPiecesAreCheckedIndependently)
{
    // A split 64-bit store executes as two 4-byte pieces. A conflicting
    // store that touches only the second half must still be caught, and
    // the signature must carry the /torn marker.
    MemRequest wide;
    wide.addr = 0;
    wide.size = 8;
    wide.kind = MemOpKind::kStore;
    wide.mode = AccessMode::kVolatile;
    wide.split_wide = true;
    ASSERT_EQ(wide.pieces(), 2u);
    det_.onAccess(thread(1), wide, 0, 4, 0x1111, 0);  // low half
    det_.onAccess(thread(1), wide, 4, 4, 0x2222, 0);  // high half

    access(thread(2), 4, 4, true, false);  // hits the high piece only
    EXPECT_EQ(det_.totalRaces(), 4u);  // the four bytes of that piece
    ASSERT_EQ(det_.reports().size(), 1u);
    const RaceReport& r = det_.reports()[0];
    const bool torn_side = r.sig_a.torn || r.sig_b.torn;
    EXPECT_TRUE(torn_side);
    EXPECT_NE(accessSigName(wide.split_wide ? makeSig(wide) : AccessSig{})
                  .find("/torn"),
              std::string::npos);
}

TEST_F(DetectorTest, AtomicsNeverTearEvenWhenSplitRequested)
{
    MemRequest wide;
    wide.addr = 0;
    wide.size = 8;
    wide.kind = MemOpKind::kRmw;
    wide.rmw = RmwOp::kMin;
    wide.split_wide = true;
    EXPECT_EQ(wide.pieces(), 1u);
    EXPECT_FALSE(makeSig(wide).torn);
}

TEST_F(DetectorTest, ReleaseAcquireChainOrdersPayload)
{
    // T1: plain store to the payload, then release-RMW on the flag.
    // T2: acquire-RMW on the flag, then plain load of the payload.
    // The chain orders the pair — no race.
    access(thread(1), 0, 4, true, false);
    access(thread(1), 64, 4, true, true, Scope::kDevice,
           MemoryOrder::kRelease);
    access(thread(2), 64, 4, true, true, Scope::kDevice,
           MemoryOrder::kAcquire);
    access(thread(2), 0, 4, false, false);
    EXPECT_EQ(det_.totalRaces(), 0u) << det_.summary();
}

TEST_F(DetectorTest, RelaxedAtomicsGiveNoOrderingEdge)
{
    // Same shape with relaxed ordering: the flag accesses are atomic
    // (no race on the flag) but carry no edge, so the payload races.
    access(thread(1), 0, 4, true, false);
    access(thread(1), 64, 4, true, true);  // relaxed RMW
    access(thread(2), 64, 4, true, true);  // relaxed RMW
    access(thread(2), 0, 4, false, false);
    EXPECT_EQ(det_.totalRaces(), 4u);  // the payload's four bytes
    ASSERT_EQ(det_.reports().size(), 1u);
    EXPECT_EQ(det_.reports()[0].first_address, 0u);
}

TEST_F(DetectorTest, BarrierJoinIsTransitive)
{
    // T1 writes A, barrier {T1, T2}, T2 writes B, barrier {T2, T3},
    // T3 may now touch both A and B: the join carries T1's clock
    // through T2 transitively.
    access(thread(1, 0, 0), 0, 4, true, false);
    const u32 b1[] = {1, 2};
    det_.onBarrier(0, 0, b1, 2);
    access(thread(2, 0, 1), 8, 4, true, false);
    const u32 b2[] = {2, 3};
    det_.onBarrier(0, 0, b2, 2);
    access(thread(3, 0, 2), 0, 4, true, false);
    access(thread(3, 0, 2), 8, 4, true, false);
    EXPECT_EQ(det_.totalRaces(), 0u) << det_.summary();
}

TEST_F(DetectorTest, ReadSetEvictionIsCountedNotSilent)
{
    // More distinct concurrent readers than kMaxReadSet: evictions are
    // counted, and a later conflicting write still reports against the
    // retained readers.
    for (u32 tid = 1; tid <= 20; ++tid)
        access(thread(tid, tid), 0, 1, false, false);
    EXPECT_GT(det_.readSetEvictions(), 0u);
    access(thread(100, 100), 0, 1, true, false);
    EXPECT_GT(det_.totalRaces(), 0u);
    EXPECT_EQ(det_.reports()[0].kind, RaceKind::kReadWrite);
}

TEST_F(DetectorTest, WriteTraceFeedsPerSiteEvidence)
{
    const SiteId site = SiteRegistry::instance().intern(
        "trace.cpp", 1, "trace write-site");
    access(thread(1), 0, 4, true, false, Scope::kDevice,
           MemoryOrder::kRelaxed, site, /*value=*/5, /*old=*/3);
    access(thread(2), 0, 4, true, false, Scope::kDevice,
           MemoryOrder::kRelaxed, site, /*value=*/7, /*old=*/5);
    const WriteTrace* trace = det_.writeTrace(site);
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->samples, 2u);
    EXPECT_EQ(trace->increases, 2u);
    EXPECT_TRUE(trace->strictlyMonotonic());
    EXPECT_TRUE(trace->multi_valued);
}

// ----------------------------------------------------------- classifier

/** Classifier harness: drives racing pairs through a detector and
 *  classifies the resulting reports. */
class ClassifyTest : public DetectorTest
{
  protected:
    /** Two racing 4-byte stores from the given site with a scripted
     *  value sequence; returns the classified report. */
    ClassifiedReport
    racingWrites(SiteId site, const std::vector<std::pair<u64, u64>>&
                                  value_old_pairs)
    {
        u32 tid = 1;
        for (const auto& [value, old_value] : value_old_pairs) {
            access(thread(tid, tid), 0, 4, true, false, Scope::kDevice,
                   MemoryOrder::kRelaxed, site, value, old_value);
            ++tid;
        }
        const auto classified = classifyAll(det_);
        EXPECT_FALSE(classified.empty());
        return classified.empty() ? ClassifiedReport{}
                                  : classified.front();
    }
};

TEST_F(ClassifyTest, DeclaredIdempotentSingleValuedPasses)
{
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 1, "idempotent ok", Expectation::kIdempotent);
    const auto r = racingWrites(site, {{1, 0}, {1, 1}, {1, 1}});
    EXPECT_EQ(r.cls, RaceClass::kIdempotentWrite);
    EXPECT_TRUE(classIsBenign(r.cls));
}

TEST_F(ClassifyTest, DeclaredIdempotentMultiValuedIsDemoted)
{
    // The declaration is a checked claim: two distinct written values
    // invalidate it and the pair fails the gate.
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 2, "idempotent lie", Expectation::kIdempotent);
    const auto r = racingWrites(site, {{1, 0}, {2, 1}});
    EXPECT_EQ(r.cls, RaceClass::kUnknownHarmful);
    EXPECT_FALSE(classIsBenign(r.cls));
    EXPECT_NE(r.reason.find("declared idempotent"), std::string::npos);
}

TEST_F(ClassifyTest, DeclaredMonotonicOneDirectionalPasses)
{
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 3, "monotonic ok", Expectation::kMonotonic);
    const auto r = racingWrites(site, {{2, 5}, {1, 4}, {0, 2}});
    EXPECT_EQ(r.cls, RaceClass::kMonotonicUpdate);
}

TEST_F(ClassifyTest, DeclaredMonotonicBothWaysIsDemoted)
{
    // Half the writes move the other way — far beyond the lost-update
    // tolerance (counter-direction <= 1/8 of samples).
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 4, "monotonic lie", Expectation::kMonotonic);
    const auto r =
        racingWrites(site, {{5, 0}, {2, 5}, {9, 2}, {1, 9}});
    EXPECT_EQ(r.cls, RaceClass::kUnknownHarmful);
    EXPECT_NE(r.reason.find("declared monotonic"), std::string::npos);
}

TEST_F(ClassifyTest, UndeclaredSingleValuedWriteIsInferredIdempotent)
{
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 5, "undeclared flag");
    const auto r = racingWrites(site, {{1, 0}, {1, 1}});
    EXPECT_EQ(r.cls, RaceClass::kIdempotentWrite);
    EXPECT_NE(r.reason.find("single-valued"), std::string::npos);
}

TEST_F(ClassifyTest, UndeclaredMixedWriteIsHarmful)
{
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 6, "undeclared mixed");
    const auto r = racingWrites(site, {{5, 0}, {2, 5}, {9, 2}});
    EXPECT_EQ(r.cls, RaceClass::kUnknownHarmful);
}

TEST_F(ClassifyTest, MinRmwAgainstVolatileIsInferredMonotonic)
{
    // An undeclared atomicMin racing a volatile store: the RMW side is
    // inherently monotonic; the other side's single value keeps the
    // pair benign.
    const SiteId rmw_site = SiteRegistry::instance().intern(
        "cls.cpp", 7, "offer min");
    const SiteId store_site = SiteRegistry::instance().intern(
        "cls.cpp", 8, "clear best", Expectation::kStaleTolerant);
    MemRequest rmw;
    rmw.addr = 0;
    rmw.size = 4;
    rmw.kind = MemOpKind::kRmw;
    rmw.rmw = RmwOp::kMin;
    rmw.site = rmw_site;
    det_.onAccess(thread(1, 1), rmw, 0, 4, 3, 9);
    MemRequest vol;
    vol.addr = 0;
    vol.size = 4;
    vol.kind = MemOpKind::kStore;
    vol.mode = AccessMode::kVolatile;
    vol.site = store_site;
    det_.onAccess(thread(2, 2), vol, 0, 4, ~u64{0}, 3);
    const auto classified = classifyAll(det_);
    ASSERT_EQ(classified.size(), 1u);
    // Worse side wins: stale-tolerant (2) outranks monotonic (1).
    EXPECT_EQ(classified[0].cls, RaceClass::kStaleReadTolerant);
}

TEST_F(ClassifyTest, StaleTolerantReadAgainstBenignWrite)
{
    const SiteId write_site = SiteRegistry::instance().intern(
        "cls.cpp", 9, "benign write", Expectation::kIdempotent);
    const SiteId read_site = SiteRegistry::instance().intern(
        "cls.cpp", 10, "tolerant read", Expectation::kStaleTolerant);
    access(thread(1, 1), 0, 4, true, false, Scope::kDevice,
           MemoryOrder::kRelaxed, write_site, 1, 0);
    access(thread(2, 2), 0, 4, false, false, Scope::kDevice,
           MemoryOrder::kRelaxed, read_site);
    const auto classified = classifyAll(det_);
    ASSERT_EQ(classified.size(), 1u);
    EXPECT_EQ(classified[0].cls, RaceClass::kStaleReadTolerant);
}

TEST_F(ClassifyTest, UnattributedMixedWritePairIsHarmful)
{
    // Neither side is attributed and the write evidence is mixed:
    // nothing justifies the pair, so it fails the gate.
    access(thread(1, 1), 0, 4, true, false, Scope::kDevice,
           MemoryOrder::kRelaxed, kUnknownSite, /*value=*/9, /*old=*/0);
    access(thread(2, 2), 0, 4, true, false, Scope::kDevice,
           MemoryOrder::kRelaxed, kUnknownSite, /*value=*/2, /*old=*/9);
    access(thread(3, 3), 0, 4, false, false);
    const auto classified = classifyAll(det_);
    ASSERT_FALSE(classified.empty());
    for (const auto& race : classified)
        EXPECT_EQ(race.cls, RaceClass::kUnknownHarmful);
}

TEST_F(ClassifyTest, NonAtomicWideAccessIsWordTearing)
{
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 11, "wide volatile read", Expectation::kTearing);
    MemRequest wide;
    wide.addr = 0;
    wide.size = 8;
    wide.kind = MemOpKind::kLoad;
    wide.mode = AccessMode::kVolatile;
    wide.site = site;
    det_.onAccess(thread(1, 1), wide, 0, 8, 0, 0);
    access(thread(2, 2), 0, 4, true, false, Scope::kDevice,
           MemoryOrder::kRelaxed, kUnknownSite, 1, 0);
    const auto classified = classifyAll(det_);
    ASSERT_EQ(classified.size(), 1u);
    EXPECT_EQ(classified[0].cls, RaceClass::kWordTearing);
    // The paper's conditional-benign sense: reported but gate-passing.
    EXPECT_TRUE(classIsBenign(classified[0].cls));
}

TEST_F(ClassifyTest, TearingDeclarationOnNarrowAccessIsDemoted)
{
    // A stale kTearing annotation on an access that cannot tear is
    // refused rather than blessed.
    const SiteId site = SiteRegistry::instance().intern(
        "cls.cpp", 12, "bogus tearing claim", Expectation::kTearing);
    const auto r = racingWrites(site, {{1, 0}, {1, 1}});
    EXPECT_EQ(r.cls, RaceClass::kUnknownHarmful);
    EXPECT_NE(r.reason.find("cannot tear"), std::string::npos);
}

// ----------------------------------------------------------- gate logic

class GateTest : public ::testing::Test
{
  protected:
    GateTest()
    {
        config_.algos = {harness::Algo::kCc};
        config_.include_apsp = false;
        config_.undirected_inputs = {"x"};
    }

    static CellResult
    cell(algos::Variant variant, u64 pairs,
         std::vector<ClassifiedReport> races, bool valid = true)
    {
        CellResult r;
        r.cell.algo = harness::Algo::kCc;
        r.cell.variant = variant;
        r.cell.input = "x";
        r.output_valid = valid;
        r.total_pairs = pairs;
        r.races = std::move(races);
        return r;
    }

    static ClassifiedReport
    race(RaceClass cls, const std::string& allocation)
    {
        ClassifiedReport r;
        r.report.allocation = allocation;
        r.report.count = 1;
        r.cls = cls;
        r.reason = "test";
        return r;
    }

    RunnerConfig config_;
};

TEST_F(GateTest, BenignBaselineOnPaperArrayPasses)
{
    const auto gate = evaluateGate(
        config_,
        {cell(algos::Variant::kBaseline, 10,
              {race(RaceClass::kStaleReadTolerant, "cc.parent")}),
         cell(algos::Variant::kRaceFree, 0, {})});
    EXPECT_TRUE(gate.pass) << gate.failures.front();
}

TEST_F(GateTest, RaceOnRaceFreeVariantFails)
{
    const auto gate = evaluateGate(
        config_,
        {cell(algos::Variant::kBaseline, 10,
              {race(RaceClass::kStaleReadTolerant, "cc.parent")}),
         cell(algos::Variant::kRaceFree, 1,
              {race(RaceClass::kIdempotentWrite, "cc.parent")})});
    EXPECT_FALSE(gate.pass);
}

TEST_F(GateTest, SilentBaselineFails)
{
    // The paper reports racy baselines; a detector that stops seeing
    // them has regressed.
    const auto gate =
        evaluateGate(config_, {cell(algos::Variant::kBaseline, 0, {}),
                               cell(algos::Variant::kRaceFree, 0, {})});
    EXPECT_FALSE(gate.pass);
}

TEST_F(GateTest, UnclassifiedBaselineRaceFails)
{
    const auto gate = evaluateGate(
        config_,
        {cell(algos::Variant::kBaseline, 10,
              {race(RaceClass::kUnknownHarmful, "cc.parent")}),
         cell(algos::Variant::kRaceFree, 0, {})});
    EXPECT_FALSE(gate.pass);
}

TEST_F(GateTest, RaceOffThePaperArraysFails)
{
    const auto gate = evaluateGate(
        config_,
        {cell(algos::Variant::kBaseline, 10,
              {race(RaceClass::kStaleReadTolerant, "something.else")}),
         cell(algos::Variant::kRaceFree, 0, {})});
    EXPECT_FALSE(gate.pass);
}

TEST_F(GateTest, InvalidOutputFails)
{
    const auto gate = evaluateGate(
        config_,
        {cell(algos::Variant::kBaseline, 10,
              {race(RaceClass::kStaleReadTolerant, "cc.parent")}),
         cell(algos::Variant::kRaceFree, 0, {}, /*valid=*/false)});
    EXPECT_FALSE(gate.pass);
}

// -------------------------------------------- epsilon-gated tolerance

/** A PageRank cell carrying its harmful-tolerated float-accumulation
 *  race; the gate's acceptance must track the bounded-error verdict. */
static CellResult
prCell(algos::Variant variant, std::vector<ClassifiedReport> races,
       bool valid = true, std::string detail = "")
{
    CellResult r;
    r.cell.algo = harness::Algo::kPr;
    r.cell.variant = variant;
    r.cell.input = "d";
    r.output_valid = valid;
    r.detail = std::move(detail);
    r.total_pairs = races.empty() ? 0 : 4;
    r.races = std::move(races);
    return r;
}

TEST_F(GateTest, HarmfulToleratedWithinBoundPasses)
{
    // PR's lost float accumulations are classified harmful-tolerated:
    // unlike the benign classes they corrupt the output, but the paper
    // tolerates them while the L1 bound holds — so must the gate.
    config_.algos = {harness::Algo::kPr};
    config_.undirected_inputs = {};
    config_.directed_inputs = {"d"};
    const auto gate = evaluateGate(
        config_,
        {prCell(algos::Variant::kBaseline,
                {race(RaceClass::kHarmfulTolerated, "pr.pushed")}),
         prCell(algos::Variant::kRaceFree, {})});
    EXPECT_TRUE(gate.pass) << gate.failures.front();
}

TEST_F(GateTest, HarmfulToleratedPastBoundFailsNamingTheBound)
{
    // The same race with the bounded-error oracle exceeded: the gate
    // must fail and its message must carry the oracle's bound detail so
    // CI logs show how far the rank vector drifted.
    config_.algos = {harness::Algo::kPr};
    config_.undirected_inputs = {};
    config_.directed_inputs = {"d"};
    const std::string detail =
        "PR rank vector is L1=0.41 from the oracle (bound 0.05)";
    const auto gate = evaluateGate(
        config_,
        {prCell(algos::Variant::kBaseline,
                {race(RaceClass::kHarmfulTolerated, "pr.pushed")},
                /*valid=*/false, detail),
         prCell(algos::Variant::kRaceFree, {})});
    EXPECT_FALSE(gate.pass);
    bool named = false;
    for (const std::string& f : gate.failures)
        named |= f.find("exceeded its error bound") != std::string::npos &&
                 f.find("bound 0.05") != std::string::npos;
    EXPECT_TRUE(named) << gate.failures.front();
}

TEST_F(GateTest, HarmfulToleratedOnRaceFreeVariantStillFails)
{
    // The tolerance never extends to the converted code: a
    // harmful-tolerated pair on race-free PR is a conversion bug.
    config_.algos = {harness::Algo::kPr};
    config_.undirected_inputs = {};
    config_.directed_inputs = {"d"};
    auto free_cell = prCell(
        algos::Variant::kRaceFree,
        {race(RaceClass::kHarmfulTolerated, "pr.pushed")});
    const auto gate = evaluateGate(
        config_,
        {prCell(algos::Variant::kBaseline,
                {race(RaceClass::kHarmfulTolerated, "pr.pushed")}),
         free_cell});
    EXPECT_FALSE(gate.pass);
}

// ----------------------------------------------------------- runner

TEST(Runner, CellListIsStable)
{
    RunnerConfig config;
    config.algos = {harness::Algo::kCc, harness::Algo::kScc};
    config.undirected_inputs = {"a", "b"};
    config.directed_inputs = {"d"};
    config.include_apsp = true;
    const auto cells = racecheckCells(config);
    // cc: 2 variants x 2 inputs, scc: 2 variants x 1 input, apsp: 1.
    ASSERT_EQ(cells.size(), 7u);
    EXPECT_EQ(cellName(cells[0]), "CC/baseline/a");
    EXPECT_EQ(cellName(cells[1]), "CC/baseline/b");
    EXPECT_EQ(cellName(cells[2]), "CC/race-free/a");
    EXPECT_EQ(cellName(cells[4]), "SCC/baseline/d");
    EXPECT_TRUE(cells.back().apsp);
    EXPECT_EQ(cellName(cells.back()),
              "apsp/uniform-" + std::to_string(config.apsp_vertices));
}

TEST(Runner, SingleCellFindsClassifiedBaselineRaces)
{
    RunnerConfig config;
    config.graph_divisor = 32768;  // smallest catalog size
    RacecheckCell cell;
    cell.algo = harness::Algo::kCc;
    cell.variant = algos::Variant::kBaseline;
    cell.input = "rmat22.sym";
    const auto result = runRacecheckCell(config, cell, 7);
    EXPECT_TRUE(result.output_valid) << result.detail;
    EXPECT_GT(result.total_pairs, 0u);
    ASSERT_FALSE(result.races.empty());
    for (const auto& race : result.races) {
        EXPECT_TRUE(classIsBenign(race.cls))
            << race.report.describe() << " (" << race.reason << ")";
        EXPECT_EQ(race.report.allocation, "cc.parent");
    }
}

TEST(Runner, SingleCellIsDeterministicPerSeed)
{
    RunnerConfig config;
    config.graph_divisor = 32768;
    RacecheckCell cell;
    cell.algo = harness::Algo::kMis;
    cell.variant = algos::Variant::kBaseline;
    cell.input = "rmat22.sym";
    const auto a = runRacecheckCell(config, cell, 42);
    const auto b = runRacecheckCell(config, cell, 42);
    ASSERT_EQ(a.races.size(), b.races.size());
    EXPECT_EQ(a.total_pairs, b.total_pairs);
    EXPECT_EQ(a.checks, b.checks);
    for (size_t i = 0; i < a.races.size(); ++i)
        EXPECT_EQ(a.races[i].report.describe(),
                  b.races[i].report.describe());
}

TEST(Runner, RaceFreeCellIsClean)
{
    RunnerConfig config;
    config.graph_divisor = 32768;
    RacecheckCell cell;
    cell.algo = harness::Algo::kGc;
    cell.variant = algos::Variant::kRaceFree;
    cell.input = "rmat22.sym";
    const auto result = runRacecheckCell(config, cell, 7);
    EXPECT_TRUE(result.output_valid) << result.detail;
    EXPECT_EQ(result.total_pairs, 0u);
    EXPECT_TRUE(result.races.empty());
}

}  // namespace
}  // namespace eclsim::racecheck
