/**
 * @file
 * Golden-shape test of the ECL_SITE registry export
 * (`bench/racecheck --list-sites`): populateSiteRegistry interns every
 * instrumented kernel site deterministically, and makeSiteListTable
 * renders them sorted by source position with stable ids.
 *
 * Kept in its own test binary on purpose: the registry is process
 * global, so this binary's registry holds exactly what the populate
 * pass interns — no other test's probe sites can leak into the shape
 * being asserted.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "racecheck/runner.hpp"
#include "racecheck/sites.hpp"
#include "staticrace/runner.hpp"

namespace eclsim::racecheck {
namespace {

TEST(SiteExportTest, PopulateInternsEveryInstrumentedKernelSite)
{
    populateSiteRegistry();
    // ~60 sites shipped with PR 4 and the Graphalytics codes added
    // more; a conservative floor catches a silently skipped algorithm
    // without breaking on incidental site additions.
    EXPECT_GE(SiteRegistry::instance().size(), 40u);

    std::set<std::string> files;
    for (const Site& site : SiteRegistry::instance().snapshot())
        files.insert(site.file);
    for (const char* expected :
         {"cc.cpp", "gc.cpp", "mis.cpp", "mst.cpp", "scc.cpp", "pr.cpp",
          "bfs.cpp", "wcc.cpp"})
        EXPECT_TRUE(files.count(expected))
            << "no interned site from " << expected;
}

TEST(SiteExportTest, TableShapeIsSortedAndComplete)
{
    populateSiteRegistry();
    const TextTable table = makeSiteListTable();

    ASSERT_EQ(table.columns(), 5u);
    EXPECT_EQ(table.rows(), SiteRegistry::instance().size());

    const std::set<std::string> known_expectations = {
        "none",     "idempotent",    "monotonic",
        "stale-tolerant", "tearing", "bounded-error"};
    std::set<std::string> seen_ids;
    std::string prev_key;
    for (size_t row = 0; row < table.rows(); ++row) {
        // Unique, nonzero, numeric ids.
        const std::string& id = table.cell(row, 0);
        EXPECT_TRUE(seen_ids.insert(id).second)
            << "duplicate id " << id;
        EXPECT_NE(id, "0");
        // Sorted by (file, line, label). Zero-pad the line so the
        // string comparison matches the numeric sort order.
        std::string line = table.cell(row, 2);
        line.insert(0, 8 - std::min<size_t>(8, line.size()), '0');
        const std::string key =
            table.cell(row, 1) + "\x01" + line + "\x01" +
            table.cell(row, 3);
        EXPECT_LE(prev_key, key) << "row " << row << " out of order";
        prev_key = key;
        EXPECT_TRUE(known_expectations.count(table.cell(row, 4)))
            << "unknown expectation '" << table.cell(row, 4) << "'";
    }
}

TEST(SiteExportTest, RepeatedExportIsByteIdentical)
{
    populateSiteRegistry();
    const std::string first = makeSiteListTable().toCsv();
    populateSiteRegistry();  // idempotent
    const std::string second = makeSiteListTable().toCsv();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("Id,File,Line,Label,Expectation"),
              std::string::npos);
}

TEST(SiteExportTest, AnnotatedTableExtendsTheIdentityColumns)
{
    // `bench/racecheck --list-sites` ships the annotated table: the
    // five identity columns of makeSiteListTable, cell for cell, plus
    // observation columns from the one-shot annotation probe.
    const TextTable table = staticrace::makeAnnotatedSiteTable();
    const TextTable identity = makeSiteListTable();

    ASSERT_EQ(table.columns(), 9u);
    ASSERT_EQ(identity.columns(), 5u);
    ASSERT_EQ(table.rows(), identity.rows());
    EXPECT_EQ(table.rows(), SiteRegistry::instance().size());

    for (size_t row = 0; row < table.rows(); ++row) {
        for (size_t col = 0; col < identity.columns(); ++col)
            EXPECT_EQ(table.cell(row, col), identity.cell(row, col))
                << "identity mismatch at row " << row << " col " << col;
        // The probe runs every kernel, so every interned site must
        // carry a real observation ("-" marks a never-executed site).
        const std::string where =
            table.cell(row, 1) + ":" + table.cell(row, 3);
        EXPECT_NE(table.cell(row, 5), "-") << where;
        // Orders and Scope are populated together (atomic sites) or
        // dashed together (never-atomic sites).
        EXPECT_EQ(table.cell(row, 6) == "-", table.cell(row, 7) == "-")
            << where;
        // Barrier-phase interval renders as "[lo,hi]".
        const std::string& epochs = table.cell(row, 8);
        EXPECT_EQ(epochs.front(), '[') << where;
        EXPECT_EQ(epochs.back(), ']') << where;
        EXPECT_NE(epochs.find(','), std::string::npos) << where;
    }
}

TEST(SiteExportTest, AnnotatedJsonIsByteStable)
{
    const std::string first = staticrace::renderSiteListJson();
    const std::string second = staticrace::renderSiteListJson();
    EXPECT_EQ(first, second);
    for (const char* key : {"\"id\":", "\"expectation\":", "\"access\":",
                            "\"orders\":", "\"scope\":", "\"epochs\":"})
        EXPECT_NE(first.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace eclsim::racecheck
