/**
 * @file
 * Golden-shape test of the ECL_SITE registry export
 * (`bench/racecheck --list-sites`): populateSiteRegistry interns every
 * instrumented kernel site deterministically, and makeSiteListTable
 * renders them sorted by source position with stable ids.
 *
 * Kept in its own test binary on purpose: the registry is process
 * global, so this binary's registry holds exactly what the populate
 * pass interns — no other test's probe sites can leak into the shape
 * being asserted.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "racecheck/runner.hpp"
#include "racecheck/sites.hpp"

namespace eclsim::racecheck {
namespace {

TEST(SiteExportTest, PopulateInternsEveryInstrumentedKernelSite)
{
    populateSiteRegistry();
    // ~60 sites shipped with PR 4 and the Graphalytics codes added
    // more; a conservative floor catches a silently skipped algorithm
    // without breaking on incidental site additions.
    EXPECT_GE(SiteRegistry::instance().size(), 40u);

    std::set<std::string> files;
    for (const Site& site : SiteRegistry::instance().snapshot())
        files.insert(site.file);
    for (const char* expected :
         {"cc.cpp", "gc.cpp", "mis.cpp", "mst.cpp", "scc.cpp", "pr.cpp",
          "bfs.cpp", "wcc.cpp"})
        EXPECT_TRUE(files.count(expected))
            << "no interned site from " << expected;
}

TEST(SiteExportTest, TableShapeIsSortedAndComplete)
{
    populateSiteRegistry();
    const TextTable table = makeSiteListTable();

    ASSERT_EQ(table.columns(), 5u);
    EXPECT_EQ(table.rows(), SiteRegistry::instance().size());

    const std::set<std::string> known_expectations = {
        "none",     "idempotent",    "monotonic",
        "stale-tolerant", "tearing", "bounded-error"};
    std::set<std::string> seen_ids;
    std::string prev_key;
    for (size_t row = 0; row < table.rows(); ++row) {
        // Unique, nonzero, numeric ids.
        const std::string& id = table.cell(row, 0);
        EXPECT_TRUE(seen_ids.insert(id).second)
            << "duplicate id " << id;
        EXPECT_NE(id, "0");
        // Sorted by (file, line, label). Zero-pad the line so the
        // string comparison matches the numeric sort order.
        std::string line = table.cell(row, 2);
        line.insert(0, 8 - std::min<size_t>(8, line.size()), '0');
        const std::string key =
            table.cell(row, 1) + "\x01" + line + "\x01" +
            table.cell(row, 3);
        EXPECT_LE(prev_key, key) << "row " << row << " out of order";
        prev_key = key;
        EXPECT_TRUE(known_expectations.count(table.cell(row, 4)))
            << "unknown expectation '" << table.cell(row, 4) << "'";
    }
}

TEST(SiteExportTest, RepeatedExportIsByteIdentical)
{
    populateSiteRegistry();
    const std::string first = makeSiteListTable().toCsv();
    populateSiteRegistry();  // idempotent
    const std::string second = makeSiteListTable().toCsv();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("Id,File,Line,Label,Expectation"),
              std::string::npos);
}

}  // namespace
}  // namespace eclsim::racecheck
