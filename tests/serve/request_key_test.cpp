#include <gtest/gtest.h>

#include "serve/request.hpp"

namespace eclsim::serve {
namespace {

Request
parsedOrDie(const std::string& line)
{
    std::string error;
    const auto request = parseRequest(line, &error);
    EXPECT_TRUE(request.has_value()) << line << " -> " << error;
    return request.value_or(Request{});
}

std::string
parseError(const std::string& line)
{
    std::string error;
    const auto request = parseRequest(line, &error);
    EXPECT_FALSE(request.has_value()) << "accepted: " << line;
    return error;
}

TEST(ServeRequestKey, FieldOrderDoesNotChangeTheKey)
{
    const auto a = parsedOrDie(
        R"({"graph":"rmat16.sym","algo":"cc","seed":7,"reps":2})");
    const auto b = parsedOrDie(
        R"({"reps":2,"seed":7,"algo":"cc","graph":"rmat16.sym"})");
    EXPECT_EQ(requestKey(a), requestKey(b));
    EXPECT_EQ(requestKey(a).digest, requestKey(b).digest);
}

TEST(ServeRequestKey, OmittedDefaultsEqualExplicitDefaults)
{
    const auto implicit =
        parsedOrDie(R"({"graph":"rmat16.sym","algo":"cc"})");
    const auto explicit_defaults = parsedOrDie(
        R"({"graph":"rmat16.sym","algo":"cc","gpu":"Titan V",)"
        R"("seed":12345,"reps":3,"divisor":512,"cache_divisor":16})");
    EXPECT_EQ(requestKey(implicit), requestKey(explicit_defaults));
}

TEST(ServeRequestKey, NameAliasesCanonicalize)
{
    const auto a = parsedOrDie(
        R"({"graph":"rmat16.sym","algo":"CC","gpu":"titan v"})");
    const auto b = parsedOrDie(
        R"({"graph":"rmat16.sym","algo":"cc","gpu":"TitanV"})");
    const auto c = parsedOrDie(
        R"({"graph":"rmat16.sym","algo":"cc","gpu":"Titan V"})");
    EXPECT_EQ(requestKey(a), requestKey(b));
    EXPECT_EQ(requestKey(b), requestKey(c));
    EXPECT_EQ(a.gpu, "Titan V");
}

TEST(ServeRequestKey, ClientIdIsNotPartOfTheKey)
{
    const auto a = parsedOrDie(
        R"({"id":"alpha","graph":"rmat16.sym","algo":"mis"})");
    const auto b = parsedOrDie(
        R"({"id":"beta","graph":"rmat16.sym","algo":"mis"})");
    EXPECT_EQ(requestKey(a), requestKey(b));
    EXPECT_EQ(a.id, "alpha");
}

TEST(ServeRequestKey, EverySimulationFieldIsKeyed)
{
    const Request base = parsedOrDie(
        R"({"graph":"rmat16.sym","algo":"cc"})");
    Request r = base;
    r.seed = base.seed + 1;
    EXPECT_NE(requestKey(base), requestKey(r));
    r = base;
    r.reps = base.reps + 1;
    EXPECT_NE(requestKey(base), requestKey(r));
    r = base;
    r.divisor = base.divisor * 2;
    EXPECT_NE(requestKey(base), requestKey(r));
    r = base;
    r.cache_divisor = base.cache_divisor * 2;
    EXPECT_NE(requestKey(base), requestKey(r));
    r = base;
    r.algo = harness::Algo::kGc;
    EXPECT_NE(requestKey(base), requestKey(r));
    r = base;
    r.graph = "internet";
    EXPECT_NE(requestKey(base), requestKey(r));
    r = base;
    r.gpu = "A100";
    EXPECT_NE(requestKey(base), requestKey(r));
}

TEST(ServeRequestKey, MalformedLinesAreRejectedWithAReason)
{
    EXPECT_FALSE(parseError("not json at all").empty());
    EXPECT_FALSE(parseError(R"({"graph":"rmat16.sym")").empty());
    // Nested values are not part of the flat protocol.
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":{"x":1}})").empty());
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":["cc"]})").empty());
    // Required fields.
    EXPECT_FALSE(parseError(R"({"algo":"cc"})").empty());
    EXPECT_FALSE(parseError(R"({"graph":"rmat16.sym"})").empty());
    // Unknown names and fields.
    EXPECT_FALSE(parseError(R"({"graph":"nope","algo":"cc"})").empty());
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":"bogus"})").empty());
    EXPECT_FALSE(parseError(
                     R"({"graph":"rmat16.sym","algo":"cc","gpu":"Cray-1"})")
                     .empty());
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":"cc","frobnicate":1})")
            .empty());
    // Out-of-range numbers.
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":"cc","reps":0})").empty());
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":"cc","reps":65})")
            .empty());
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":"cc","reps":2.5})")
            .empty());
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":"cc","divisor":0})")
            .empty());
}

TEST(ServeRequestKey, AlgoGraphDirectionPairingIsValidated)
{
    // SCC needs a directed input; rmat16.sym is undirected.
    EXPECT_FALSE(
        parseError(R"({"graph":"rmat16.sym","algo":"scc"})").empty());
    // And the undirected algorithms reject directed inputs.
    EXPECT_FALSE(parseError(R"({"graph":"star","algo":"cc"})").empty());
    // The valid pairings parse.
    parsedOrDie(R"({"graph":"star","algo":"scc"})");
    parsedOrDie(R"({"graph":"rmat16.sym","algo":"mst"})");
}

TEST(ServeRequestKey, ResultFragmentRoundTripsThroughTheEnvelope)
{
    Response response;
    response.id = "req-1";
    response.key = "00c0ffee00c0ffee";
    response.cache = "miss";
    response.result_json = R"({"graph":"rmat16.sym","speedup":1.25})";
    const std::string line = response.encode();
    EXPECT_EQ(extractResultFragment(line),
              R"({"graph":"rmat16.sym","speedup":1.25})");
    // Error responses have no result fragment.
    Response error;
    error.status = ResponseStatus::kOverloaded;
    error.error = "pending queue is full";
    EXPECT_TRUE(extractResultFragment(error.encode()).empty());
}

}  // namespace
}  // namespace eclsim::serve
