#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/service.hpp"

namespace eclsim::serve {
namespace {

/** Minimal blocking line-oriented test client. */
class TestClient
{
  public:
    explicit TestClient(u16 port) { connect(port); }

    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    sendLine(const std::string& line)
    {
        const std::string framed = line + "\n";
        ASSERT_EQ(::write(fd_, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
    }

    /** Next '\n'-terminated line; empty string on EOF. */
    std::string
    recvLine()
    {
        for (;;) {
            const size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                std::string line = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                return line;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n <= 0)
                return {};
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

    std::string
    roundTrip(const std::string& line)
    {
        sendLine(line);
        return recvLine();
    }

  private:
    void
    connect(u16 port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)),
                  0)
            << std::strerror(errno);
    }

    int fd_ = -1;
    std::string buffer_;
};

constexpr const char* kRequest =
    R"({"graph":"rmat16.sym","algo":"cc","reps":1,"divisor":64})";

TEST(ServeServer, TcpClientsSeeTheSameBytesAsInProcessCalls)
{
    Service service(ServeOptions{.jobs = 2});
    Server server(service, 0);
    ASSERT_GT(server.port(), 0);

    TestClient client(server.port());
    const std::string pong = client.roundTrip(R"({"op":"ping"})");
    EXPECT_NE(pong.find("\"pong\":true"), std::string::npos) << pong;

    const std::string first = client.roundTrip(kRequest);
    EXPECT_NE(first.find("\"cache\":\"miss\""), std::string::npos) << first;
    const std::string second = client.roundTrip(kRequest);
    EXPECT_NE(second.find("\"cache\":\"hit\""), std::string::npos) << second;
    EXPECT_EQ(extractResultFragment(first), extractResultFragment(second));
    ASSERT_FALSE(extractResultFragment(first).empty());

    // An in-process handle on a fresh service sees identical result
    // bytes — the TCP layer adds framing, nothing else.
    Service fresh(ServeOptions{.jobs = 1});
    ServiceHandle handle(fresh);
    EXPECT_EQ(extractResultFragment(handle.call(std::string(kRequest))),
              extractResultFragment(first));
}

TEST(ServeServer, MalformedLinesDoNotKillTheConnection)
{
    Service service(ServeOptions{.jobs = 1});
    Server server(service, 0);
    TestClient client(server.port());

    const std::string error = client.roundTrip("this is not json");
    EXPECT_NE(error.find("\"status\":\"error\""), std::string::npos);
    // The connection survives; a valid request still works.
    const std::string ok = client.roundTrip(kRequest);
    EXPECT_NE(ok.find("\"status\":\"ok\""), std::string::npos) << ok;
}

TEST(ServeServer, ConcurrentTcpClientsAllGetIdenticalResults)
{
    Service service(ServeOptions{.jobs = 4, .queue_limit = 256});
    Server server(service, 0);

    constexpr int kClients = 8;
    std::vector<std::string> fragments(kClients);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            TestClient client(server.port());
            fragments[c] = extractResultFragment(client.roundTrip(kRequest));
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (int c = 0; c < kClients; ++c) {
        EXPECT_FALSE(fragments[c].empty());
        EXPECT_EQ(fragments[c], fragments[0]);
    }
}

TEST(ServeServer, DrainDisconnectsIdleClientsAndStopsAccepting)
{
    Service service(ServeOptions{.jobs = 1});
    Server server(service, 0);
    const u16 port = server.port();

    TestClient idle(port);
    ASSERT_FALSE(idle.roundTrip(R"({"op":"ping"})").empty());

    server.drain();
    // The idle connection's read side was closed: EOF, not a hang.
    EXPECT_TRUE(idle.recvLine().empty());
    EXPECT_EQ(server.connections(), 0u);
    EXPECT_TRUE(service.draining());

    // New connections are no longer served.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) {
        // A racing connect may be accepted by the OS backlog and then
        // closed by the server; it must never be answered.
        const std::string framed = std::string(R"({"op":"ping"})") + "\n";
        (void)!::write(fd, framed.data(), framed.size());
        char chunk[64];
        EXPECT_LE(::read(fd, chunk, sizeof(chunk)), 0);
    }
    ::close(fd);

    // Draining again is a no-op.
    server.drain();
}

}  // namespace
}  // namespace eclsim::serve
