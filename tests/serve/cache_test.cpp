#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"

namespace eclsim::serve {
namespace {

TEST(ServeResultCache, HitReplaysTheExactStoredBytes)
{
    ResultCache cache(8);
    const std::string bytes = R"("result":{"speedup":1.2500000000000004})";
    cache.put("k1", bytes);
    const auto hit = cache.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, bytes);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_FALSE(cache.get("absent").has_value());
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServeResultCache, InsertionPastTheBoundEvictsLeastRecentlyUsed)
{
    ResultCache cache(3);
    cache.put("a", "ra");
    cache.put("b", "rb");
    cache.put("c", "rc");
    // Touch "a" so "b" becomes the LRU victim.
    ASSERT_TRUE(cache.get("a").has_value());
    cache.put("d", "rd");
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("c").has_value());
    EXPECT_TRUE(cache.get("d").has_value());
}

TEST(ServeResultCache, OverwriteRefreshesInsteadOfGrowing)
{
    ResultCache cache(2);
    cache.put("a", "old");
    cache.put("b", "rb");
    cache.put("a", "new");  // refresh, not insert: "b" stays resident
    cache.put("c", "rc");   // evicts "b" (LRU), not "a"
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.get("b").has_value());
    ASSERT_TRUE(cache.get("a").has_value());
    EXPECT_EQ(*cache.get("a"), "new");
}

TEST(ServeResultCache, BoundOfZeroIsClampedToOne)
{
    ResultCache cache(0);
    EXPECT_EQ(cache.maxEntries(), 1u);
    cache.put("a", "ra");
    cache.put("b", "rb");
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.get("b").has_value());
}

TEST(ServeResultCache, ConcurrentMixedTrafficStaysBounded)
{
    ResultCache cache(16);
    constexpr int kThreads = 8;
    constexpr int kOps = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < kOps; ++i) {
                const std::string key =
                    "k" + std::to_string((t * 7 + i) % 40);
                if (i % 3 == 0) {
                    cache.put(key, "r" + key);
                } else if (auto hit = cache.get(key)) {
                    EXPECT_EQ(*hit, "r" + key);
                }
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_LE(cache.size(), 16u);
    // Each thread issues a get for every i with i % 3 != 0.
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<u64>(kThreads) * (kOps - (kOps + 2) / 3));
}

}  // namespace
}  // namespace eclsim::serve
