#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace eclsim::serve {
namespace {

/** Small, fast request population mixing graphs, algos, and seeds. */
std::vector<Request>
mixedRequests()
{
    std::vector<Request> requests;
    const std::vector<std::pair<std::string, harness::Algo>> cells = {
        {"rmat16.sym", harness::Algo::kCc},
        {"rmat16.sym", harness::Algo::kMis},
        {"internet", harness::Algo::kGc},
        {"internet", harness::Algo::kMst},
        {"star", harness::Algo::kScc},
    };
    for (u64 seed : {1ull, 2ull}) {
        for (const auto& [graph, algo] : cells) {
            Request request;
            request.graph = graph;
            request.algo = algo;
            request.seed = seed;
            request.reps = 1;
            request.divisor = 64;
            requests.push_back(request);
        }
    }
    return requests;
}

TEST(ServeService, CacheHitReplaysByteIdenticalResult)
{
    Service service(ServeOptions{.jobs = 2});
    ServiceHandle handle(service);

    Request request = mixedRequests().front();
    const Response first = handle.call(request);
    ASSERT_EQ(first.status, ResponseStatus::kOk);
    EXPECT_EQ(first.cache, "miss");
    ASSERT_FALSE(first.result_json.empty());

    const Response second = handle.call(request);
    ASSERT_EQ(second.status, ResponseStatus::kOk);
    EXPECT_EQ(second.cache, "hit");
    EXPECT_EQ(second.result_json, first.result_json);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(ServeService, EightConcurrentClientsMatchSerialReplayByteForByte)
{
    const std::vector<Request> population = mixedRequests();

    // Concurrent pass: 8 client threads replaying the population in
    // different orders against one multi-worker service.
    std::map<std::string, std::string> concurrent_results;
    std::mutex results_mutex;
    {
        Service service(ServeOptions{.jobs = 4, .queue_limit = 256});
        constexpr int kClients = 8;
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                ServiceHandle handle(service);
                for (size_t i = 0; i < population.size(); ++i) {
                    const Request& request =
                        population[(i + c) % population.size()];
                    const Response response = handle.call(request);
                    ASSERT_EQ(response.status, ResponseStatus::kOk);
                    std::lock_guard<std::mutex> lock(results_mutex);
                    auto [it, inserted] = concurrent_results.emplace(
                        requestKey(request).canonical,
                        response.result_json);
                    // Every client must observe the same bytes.
                    EXPECT_EQ(it->second, response.result_json);
                }
            });
        }
        for (auto& client : clients)
            client.join();
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.executed + stats.cache_hits + stats.coalesced,
                  static_cast<u64>(kClients) * population.size());
        EXPECT_EQ(stats.rejected, 0u);
    }

    // Serial pass: a fresh single-worker daemon must produce the exact
    // same result bytes for every request.
    Service serial(ServeOptions{.jobs = 1});
    ServiceHandle handle(serial);
    for (const Request& request : population) {
        const Response response = handle.call(request);
        ASSERT_EQ(response.status, ResponseStatus::kOk);
        EXPECT_EQ(response.result_json,
                  concurrent_results.at(requestKey(request).canonical))
            << "schedule-dependent result for " << request.graph;
    }
}

TEST(ServeService, OverloadIsRejectedNotQueuedForever)
{
    // queue_limit 0 makes admission control reject every execution,
    // which must come back as an explicit "overloaded" error promptly.
    Service service(ServeOptions{.jobs = 1, .queue_limit = 0});
    ServiceHandle handle(service);
    const Response response = handle.call(mixedRequests().front());
    EXPECT_EQ(response.status, ResponseStatus::kOverloaded);
    EXPECT_FALSE(response.error.empty());
    EXPECT_EQ(service.stats().rejected, 1u);

    // An overloaded request is not cached; the service stays usable
    // for later wire traffic (e.g. ping).
    const std::string pong = handle.call(std::string(R"({"op":"ping"})"));
    EXPECT_NE(pong.find("\"pong\":true"), std::string::npos);
}

TEST(ServeService, SaturatedServiceDisposesEveryRequest)
{
    // A tiny queue under 16 concurrent distinct requests: some execute,
    // some are rejected, but every call returns and the counters add up.
    Service service(ServeOptions{.jobs = 1, .queue_limit = 1});
    std::vector<Request> population = mixedRequests();
    std::vector<std::thread> clients;
    std::atomic<u64> ok{0};
    std::atomic<u64> overloaded{0};
    for (size_t i = 0; i < 16; ++i) {
        clients.emplace_back([&, i] {
            Request request = population[i % population.size()];
            request.seed = 1000 + i;  // all distinct: no memoization
            const Response response = service.call(request);
            if (response.status == ResponseStatus::kOk)
                ++ok;
            else if (response.status == ResponseStatus::kOverloaded)
                ++overloaded;
            else
                ADD_FAILURE() << "unexpected status "
                              << responseStatusName(response.status);
        });
    }
    for (auto& client : clients)
        client.join();
    EXPECT_EQ(ok.load() + overloaded.load(), 16u);
    EXPECT_GE(ok.load(), 1u);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.executed + stats.coalesced, ok.load());
    EXPECT_EQ(stats.rejected, overloaded.load());
}

TEST(ServeService, MalformedWireLinesGetErrorResponses)
{
    Service service(ServeOptions{.jobs = 1});
    ServiceHandle handle(service);
    const std::vector<std::string> bad = {
        "",
        "garbage",
        R"({"graph":"rmat16.sym"})",
        R"({"graph":"rmat16.sym","algo":"scc"})",
        R"({"graph":"rmat16.sym","algo":"cc","reps":-1})",
    };
    for (const std::string& line : bad) {
        const std::string response = handle.call(line);
        EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
            << line << " -> " << response;
        EXPECT_NE(response.find("\"error\":"), std::string::npos);
    }
    EXPECT_EQ(service.stats().malformed, bad.size());
}

TEST(ServeService, GracefulDrainCompletesInFlightWork)
{
    Service service(ServeOptions{.jobs = 2});
    const std::vector<Request> population = mixedRequests();

    std::vector<std::thread> clients;
    std::vector<Response> responses(4);
    for (size_t i = 0; i < responses.size(); ++i) {
        clients.emplace_back([&service, &population, &responses, i] {
            responses[i] = service.call(population[i]);
        });
    }
    // Drain while the clients are (likely) in flight: whatever was
    // admitted must complete and be delivered; the rest is refused
    // with an explicit "draining" status — nothing hangs or crashes.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    service.drain();
    for (auto& client : clients)
        client.join();
    for (const Response& response : responses) {
        EXPECT_TRUE(response.status == ResponseStatus::kOk ||
                    response.status == ResponseStatus::kDraining)
            << responseStatusName(response.status);
        if (response.status == ResponseStatus::kOk) {
            EXPECT_FALSE(response.result_json.empty());
        }
    }

    // After the drain every new request is refused...
    EXPECT_TRUE(service.draining());
    const Response late = service.call(population.back());
    EXPECT_EQ(late.status, ResponseStatus::kDraining);
    // ...and draining again is a harmless no-op.
    service.drain();
}

TEST(ServeService, PingAndStatsOpsAnswerInline)
{
    Service service(ServeOptions{.jobs = 1});
    ServiceHandle handle(service);
    const std::string pong = handle.call(std::string(R"({"op":"ping"})"));
    EXPECT_NE(pong.find("\"pong\":true"), std::string::npos);

    Request request = mixedRequests().front();
    ASSERT_EQ(handle.call(request).status, ResponseStatus::kOk);
    const std::string stats =
        handle.call(std::string(R"({"op":"stats"})"));
    EXPECT_NE(stats.find("\"executed\":1"), std::string::npos) << stats;
}

TEST(ServeService, PublishedGaugeCountersCoverCacheAndCatalog)
{
    Service service(ServeOptions{.jobs = 1});
    Request request = mixedRequests().front();
    ASSERT_EQ(service.call(request).status, ResponseStatus::kOk);
    ASSERT_EQ(service.call(request).status, ResponseStatus::kOk);
    service.publishGaugeCounters();
    const auto& counters = service.session().counters();
    EXPECT_EQ(counters.valueByName("serve/result_cache_size"), 1u);
    EXPECT_EQ(counters.valueByName("sim/catalog/resident_graphs"), 1u);
    EXPECT_GE(counters.valueByName("sim/catalog/resident_bytes"), 1u);
}

}  // namespace
}  // namespace eclsim::serve
