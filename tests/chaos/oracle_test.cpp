/**
 * @file
 * The validity oracles must accept correct solutions and reject
 * corrupted ones with a reason that names what broke. A campaign is
 * only as trustworthy as its oracles: every rejection path is
 * exercised here with a hand-built invalid solution.
 */
#include <gtest/gtest.h>

#include "chaos/oracle.hpp"

#include "graph/csr.hpp"

namespace eclsim::chaos {
namespace {

using graph::BuildOptions;
using graph::buildCsr;
using graph::Edge;

/** Undirected path 0-1-2-3. */
CsrGraph
path4()
{
    return buildCsr(4, {{0, 1}, {1, 2}, {2, 3}}, BuildOptions{});
}

// --- CC -------------------------------------------------------------------

TEST(ChaosOracleTest, CcAcceptsCorrectPartition)
{
    // Two components: 0-1 and 2-3. Labels only need to induce the same
    // partition, not use any particular representative.
    const auto graph = buildCsr(4, {{0, 1}, {2, 3}}, BuildOptions{});
    EXPECT_TRUE(checkCc(graph, {7, 7, 9, 9}).valid);
}

TEST(ChaosOracleTest, CcRejectsSplitComponent)
{
    const auto graph = path4();
    const auto verdict = checkCc(graph, {0, 0, 1, 1});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("components"), std::string::npos)
        << verdict.detail;
}

TEST(ChaosOracleTest, CcRejectsWrongLabelCount)
{
    EXPECT_FALSE(checkCc(path4(), {0, 0, 0}).valid);
}

// --- GC -------------------------------------------------------------------

TEST(ChaosOracleTest, GcAcceptsProperColoring)
{
    EXPECT_TRUE(checkGc(path4(), {0, 1, 0, 1}).valid);
}

TEST(ChaosOracleTest, GcRejectsImproperColoring)
{
    const auto verdict = checkGc(path4(), {0, 0, 1, 0});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("improper"), std::string::npos)
        << verdict.detail;
}

// --- MIS ------------------------------------------------------------------

TEST(ChaosOracleTest, MisAcceptsMaximalIndependentSet)
{
    EXPECT_TRUE(checkMis(path4(), {true, false, true, false}).valid);
}

TEST(ChaosOracleTest, MisRejectsDependentSet)
{
    // 0 and 1 are adjacent: not independent.
    const auto verdict = checkMis(path4(), {true, true, false, true});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("independent"), std::string::npos)
        << verdict.detail;
}

TEST(ChaosOracleTest, MisRejectsNonMaximalSet)
{
    // The empty set is trivially independent but never maximal on a
    // graph with vertices.
    const auto verdict =
        checkMis(path4(), {false, false, false, false});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("maximal"), std::string::npos)
        << verdict.detail;
}

// --- MST ------------------------------------------------------------------

TEST(ChaosOracleTest, MstAcceptsKruskalWeight)
{
    // Triangle with weights 1, 2, 3: the MST takes 1 + 2 = 3.
    BuildOptions options;
    options.keep_weights = true;
    const auto graph =
        buildCsr(3, {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}}, options);
    EXPECT_TRUE(checkMst(graph, 3).valid);
}

TEST(ChaosOracleTest, MstRejectsWrongForestWeight)
{
    BuildOptions options;
    options.keep_weights = true;
    const auto graph =
        buildCsr(3, {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}}, options);
    const auto verdict = checkMst(graph, 4);
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("Kruskal"), std::string::npos)
        << verdict.detail;
}

// --- SCC ------------------------------------------------------------------

TEST(ChaosOracleTest, SccAcceptsCorrectPartition)
{
    // Directed 3-cycle plus an isolated vertex: two SCCs.
    BuildOptions options;
    options.directed = true;
    const auto graph =
        buildCsr(4, {{0, 1}, {1, 2}, {2, 0}}, options);
    EXPECT_TRUE(checkScc(graph, {5, 5, 5, 9}).valid);
}

TEST(ChaosOracleTest, SccRejectsSplitCycle)
{
    BuildOptions options;
    options.directed = true;
    const auto graph =
        buildCsr(3, {{0, 1}, {1, 2}, {2, 0}}, options);
    const auto verdict = checkScc(graph, {0, 1, 2});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("Tarjan"), std::string::npos)
        << verdict.detail;
}

// --- PR -------------------------------------------------------------------

/** Directed 4-cycle: every rank is exactly 0.25. */
CsrGraph
cycle4()
{
    BuildOptions options;
    options.directed = true;
    return buildCsr(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, options);
}

TEST(ChaosOracleTest, PrAcceptsRanksWithinTheBound)
{
    const auto graph = cycle4();
    EXPECT_TRUE(checkPr(graph, {0.25f, 0.25f, 0.25f, 0.25f}).valid);
    // The equivalence is an L1 bound, not exactness: drift summing
    // below kPrL1Epsilon is tolerated (the harmful-tolerated contract).
    EXPECT_TRUE(
        checkPr(graph, {0.26f, 0.24f, 0.255f, 0.245f}).valid);
}

TEST(ChaosOracleTest, PrRejectsDriftPastTheBound)
{
    const auto verdict =
        checkPr(cycle4(), {0.30f, 0.20f, 0.28f, 0.22f});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("L1"), std::string::npos)
        << verdict.detail;
    EXPECT_NE(verdict.detail.find("bound"), std::string::npos);
}

TEST(ChaosOracleTest, PrRejectsShapeMismatch)
{
    const auto verdict = checkPr(cycle4(), {0.5f, 0.5f});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("count"), std::string::npos);
}

// --- BFS ------------------------------------------------------------------

/** 0 -> {1, 2} -> 3 diamond plus unreachable vertex 4. */
CsrGraph
diamond5()
{
    BuildOptions options;
    options.directed = true;
    return buildCsr(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, options);
}

TEST(ChaosOracleTest, BfsAcceptsOracleLevels)
{
    constexpr u32 kUnreached = ~u32{0};
    EXPECT_TRUE(
        checkBfs(diamond5(), {0, 1, 1, 2, kUnreached}).valid);
}

TEST(ChaosOracleTest, BfsRejectsWrongLevelNamingTheVertex)
{
    constexpr u32 kUnreached = ~u32{0};
    const auto verdict =
        checkBfs(diamond5(), {0, 1, 1, 3, kUnreached});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("level[3]"), std::string::npos)
        << verdict.detail;
}

TEST(ChaosOracleTest, BfsRejectsFiniteWhereUnreachable)
{
    const auto verdict = checkBfs(diamond5(), {0, 1, 1, 2, 7});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("unreached"), std::string::npos)
        << verdict.detail;
}

TEST(ChaosOracleTest, BfsRejectsShapeMismatch)
{
    const auto verdict = checkBfs(diamond5(), {0, 1, 1});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("count"), std::string::npos);
}

// --- WCC ------------------------------------------------------------------

TEST(ChaosOracleTest, WccAcceptsAnyPartitionEquivalentLabeling)
{
    // Two components (0-1, 2-3): representatives are free.
    const auto graph = buildCsr(4, {{0, 1}, {2, 3}}, BuildOptions{});
    EXPECT_TRUE(checkWcc(graph, {8, 8, 3, 3}).valid);
}

TEST(ChaosOracleTest, WccRejectsSplitComponentWithCounts)
{
    const auto verdict = checkWcc(path4(), {0, 0, 1, 1});
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("2 components"), std::string::npos)
        << verdict.detail;
}

TEST(ChaosOracleTest, WccRejectsMergedComponents)
{
    const auto graph = buildCsr(4, {{0, 1}, {2, 3}}, BuildOptions{});
    const auto verdict = checkWcc(graph, {5, 5, 5, 5});
    EXPECT_FALSE(verdict.valid);
}

// --- equivalence metadata -------------------------------------------------

TEST(ChaosOracleTest, EquivalenceForCoversEveryAlgorithm)
{
    using algos::Algo;
    EXPECT_EQ(equivalenceFor(Algo::kCc), Equivalence::kPartition);
    EXPECT_EQ(equivalenceFor(Algo::kScc), Equivalence::kPartition);
    EXPECT_EQ(equivalenceFor(Algo::kWcc), Equivalence::kPartition);
    EXPECT_EQ(equivalenceFor(Algo::kGc), Equivalence::kProperty);
    EXPECT_EQ(equivalenceFor(Algo::kMis), Equivalence::kProperty);
    EXPECT_EQ(equivalenceFor(Algo::kMst), Equivalence::kExact);
    EXPECT_EQ(equivalenceFor(Algo::kBfs), Equivalence::kExact);
    EXPECT_EQ(equivalenceFor(Algo::kPr), Equivalence::kEpsilonL1);
    EXPECT_STREQ(equivalenceName(Equivalence::kEpsilonL1),
                 "epsilon-l1");
}

// --- APSP -----------------------------------------------------------------

/** Weighted undirected path 0-(2)-1-(3)-2. */
CsrGraph
weightedPath3()
{
    BuildOptions options;
    options.keep_weights = true;
    return buildCsr(3, {{0, 1, 2}, {1, 2, 3}}, options);
}

algos::ApspResult
correctPath3Distances()
{
    algos::ApspResult result;
    result.n = 3;
    result.dist = {0, 2, 5,
                   2, 0, 3,
                   5, 3, 0};
    return result;
}

TEST(ChaosOracleTest, ApspAcceptsCorrectMatrix)
{
    EXPECT_TRUE(
        checkApsp(weightedPath3(), correctPath3Distances()).valid);
}

TEST(ChaosOracleTest, ApspRejectsWrongEntry)
{
    auto result = correctPath3Distances();
    result.dist[0 * 3 + 2] = 4;  // claims 0->2 costs 4, truth is 5
    const auto verdict = checkApsp(weightedPath3(), result);
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("[0][2]"), std::string::npos)
        << verdict.detail;
}

TEST(ChaosOracleTest, ApspRejectsFiniteWhereUnreachable)
{
    // Edge 0-1 plus an isolated vertex 2: distances to 2 are infinite.
    BuildOptions options;
    options.keep_weights = true;
    const auto graph = buildCsr(3, {{0, 1, 2}}, options);
    const i32 inf = algos::kApspInf;
    algos::ApspResult result;
    result.n = 3;
    result.dist = {0, 2, 7,
                   2, 0, inf,
                   7, inf, 0};  // claims 0-2 reachable; it is not
    EXPECT_FALSE(checkApsp(graph, result).valid);

    result.dist = {0, 2, inf,
                   2, 0, inf,
                   inf, inf, 0};
    EXPECT_TRUE(checkApsp(graph, result).valid);
}

TEST(ChaosOracleTest, ApspRejectsShapeMismatch)
{
    algos::ApspResult result;
    result.n = 2;
    result.dist = {0, 1, 1, 0};
    const auto verdict = checkApsp(weightedPath3(), result);
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("shape"), std::string::npos)
        << verdict.detail;
}

}  // namespace
}  // namespace eclsim::chaos
