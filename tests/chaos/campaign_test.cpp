/**
 * @file
 * End-to-end benignity campaigns: every benign policy must leave every
 * algorithm's output oracle-valid (the paper's claim), a harmful
 * perturbation must be caught (the oracles have teeth), and a fixed
 * seed must reproduce the campaign bit-identically at any job count
 * (the PR-2 determinism contract extended to chaos).
 */
#include <gtest/gtest.h>

#include "chaos/campaign.hpp"

#include "chaos/oracle.hpp"
#include "prof/trace.hpp"

namespace eclsim::chaos {
namespace {

/** A campaign small enough for a unit test: tiny graphs, one input per
 *  class, one seed per cell. */
CampaignConfig
tinyConfig()
{
    CampaignConfig config;
    config.undirected_inputs = {"internet"};
    config.directed_inputs = {"wikipedia"};
    config.seeds_per_cell = 1;
    config.graph_divisor = 8192;
    config.jobs = 1;
    return config;
}

TEST(ChaosCampaignTest, CellsEnumerateInStableOrder)
{
    auto config = tinyConfig();
    config.seeds_per_cell = 2;
    const auto cells = campaignCells(config);
    // 6 policies x (5 undirected algos x 1 input + 2 directed algos x
    // 1 input) x 2 reps (PR sits outside the benign-claim default).
    EXPECT_EQ(cells.size(), 6u * 7u * 2u);
    EXPECT_EQ(cells.front().policy, PolicyKind::kNone);
    EXPECT_EQ(cells.front().algo, Algo::kCc);
    EXPECT_EQ(cells.front().rep, 0u);
    EXPECT_EQ(cells[1].rep, 1u);
}

TEST(ChaosCampaignTest, BenignPoliciesKeepEveryAlgorithmValid)
{
    auto config = tinyConfig();
    config.intensity = 0.7;
    const auto outcomes = runCampaign(config);
    EXPECT_EQ(outcomes.size(), campaignCells(config).size());
    for (const CellOutcome& o : outcomes)
        EXPECT_TRUE(o.valid)
            << policyName(o.cell.policy) << " broke "
            << algos::algoName(o.cell.algo) << " on " << o.cell.input
            << ": " << o.detail;
    EXPECT_EQ(countViolations(outcomes), 0u);

    // The perturbations must actually have fired — a campaign that
    // never perturbs proves nothing.
    u64 events = 0;
    for (const CellOutcome& o : outcomes)
        events += o.stale_reads + o.delayed_stores + o.dup_stores +
                  o.snapshot_skips;
    EXPECT_GT(events, 0u);
}

TEST(ChaosCampaignTest, HarmfulDropAtomicIsCaughtByOracle)
{
    // Acceptance criterion: a deliberately harmful perturbation —
    // dropping non-racy atomic updates — must be caught. MST is the
    // target: its Boruvka rounds elect component-minimum edges through
    // atomicMin/CAS, so losing updates yields a wrong forest weight
    // while the host-side again-loop still terminates (updates are
    // retried every round and only half are dropped).
    CampaignConfig config = tinyConfig();
    config.policies = {PolicyKind::kDropAtomic};
    config.algos = {Algo::kMst};
    config.undirected_inputs = {"internet"};
    config.seeds_per_cell = 3;
    config.intensity = 1.0;

    const auto outcomes = runCampaign(config);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_GE(countViolations(outcomes), 1u);
    bool saw_weight_detail = false;
    u64 dropped = 0;
    for (const CellOutcome& o : outcomes) {
        dropped += o.dropped_atomics;
        if (!o.valid)
            saw_weight_detail |=
                o.detail.find("weight") != std::string::npos;
    }
    EXPECT_GT(dropped, 0u);
    EXPECT_TRUE(saw_weight_detail);
}

TEST(ChaosCampaignTest, PageRankBaselineHoldsItsBoundUnperturbed)
{
    // Control for the drop-atomic test below: on the fast path with no
    // perturbation, baseline PR's racy float accumulation stays inside
    // the declared L1 bound (PR sits outside the benign-claim default
    // algo list precisely because its race is tolerated, not benign).
    CampaignConfig config = tinyConfig();
    config.policies = {PolicyKind::kNone};
    config.algos = {Algo::kPr};
    const auto outcomes = runCampaign(config);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].valid) << outcomes[0].detail;
    EXPECT_EQ(countViolations(outcomes), 0u);
}

TEST(ChaosCampaignTest, DropAtomicPushesPageRankPastItsBound)
{
    // Satellite acceptance: the epsilon gate has teeth. Dropping
    // atomic updates at full intensity loses the pooled dangling mass,
    // pushing the rank vector far past kPrL1Epsilon — every seed must
    // be flagged, and the detail must name the violated bound.
    CampaignConfig config = tinyConfig();
    config.policies = {PolicyKind::kDropAtomic};
    config.algos = {Algo::kPr};
    config.seeds_per_cell = 2;
    config.intensity = 1.0;
    const auto outcomes = runCampaign(config);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(countViolations(outcomes), 2u);
    u64 dropped = 0;
    for (const CellOutcome& o : outcomes) {
        dropped += o.dropped_atomics;
        EXPECT_FALSE(o.valid);
        EXPECT_NE(o.detail.find("bound"), std::string::npos)
            << o.detail;
    }
    EXPECT_GT(dropped, 0u);
}

TEST(ChaosCampaignTest, FixedSeedReproducesByteIdenticalCsvAtAnyJobs)
{
    CampaignConfig config = tinyConfig();
    config.policies = parsePolicyList("none,store-delay,sched-bias");
    config.algos = {Algo::kCc, Algo::kMis};
    config.seeds_per_cell = 2;
    config.seed = 777;

    config.jobs = 1;
    const auto serial = runCampaign(config);
    config.jobs = 4;
    const auto parallel = runCampaign(config);

    EXPECT_EQ(makeCampaignTable(serial).toCsv(),
              makeCampaignTable(parallel).toCsv());
}

TEST(ChaosCampaignTest, CellReplaysBitIdentically)
{
    const auto config = tinyConfig();
    const CampaignCell cell{PolicyKind::kStoreDelay, Algo::kMis,
                            "internet", 0};
    const auto a = runCampaignCell(config, cell, 4242, nullptr);
    const auto b = runCampaignCell(config, cell, 4242, nullptr);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.ms, b.ms);
    EXPECT_EQ(a.delayed_stores, b.delayed_stores);
    EXPECT_EQ(a.stale_reads, b.stale_reads);
}

TEST(ChaosCampaignTest, StaleWindowDoesNotSpeedUpConvergence)
{
    // The paper's MIS mechanism: staleness cannot corrupt the output,
    // it can only delay convergence. Compare iterations against the
    // unperturbed control of the same seed.
    const auto config = tinyConfig();
    const CampaignCell control{PolicyKind::kNone, Algo::kMis,
                               "internet", 0};
    const CampaignCell stale{PolicyKind::kStaleWindow,
                             Algo::kMis, "internet", 0};
    const auto base = runCampaignCell(config, control, 1234, nullptr);
    const auto perturbed = runCampaignCell(config, stale, 1234, nullptr);
    ASSERT_TRUE(base.valid) << base.detail;
    ASSERT_TRUE(perturbed.valid) << perturbed.detail;
    EXPECT_GT(perturbed.snapshot_skips, 0u);
    EXPECT_GE(perturbed.iterations, base.iterations);
}

TEST(ChaosCampaignTest, SummaryGroupsByPolicyAndAlgo)
{
    CampaignConfig config = tinyConfig();
    config.policies = parsePolicyList("none,sm-stall");
    config.algos = {Algo::kCc};
    config.seeds_per_cell = 2;
    const auto outcomes = runCampaign(config);
    const auto summary = makeCampaignSummary(outcomes);
    const std::string text = summary.toText();
    EXPECT_NE(text.find("sm-stall"), std::string::npos);
    EXPECT_NE(text.find("CC"), std::string::npos);
    // The control group's inflation ratio against itself is 1.00.
    EXPECT_NE(text.find("1.00"), std::string::npos);
}

TEST(ChaosCampaignTest, TraceRecordsOneSpanPerCell)
{
    prof::TraceSession session;
    CampaignConfig config = tinyConfig();
    config.policies = {PolicyKind::kStoreDelay};
    config.algos = {Algo::kCc};
    config.trace = &session;
    const auto outcomes = runCampaign(config);
    EXPECT_EQ(outcomes.size(), 1u);
    EXPECT_GT(session.events().size(), 0u);
}

}  // namespace
}  // namespace eclsim::chaos
