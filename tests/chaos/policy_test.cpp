/**
 * @file
 * Mechanics of the perturbation hooks (simt::PerturbationHooks) and the
 * seeded chaos policies built on them: delayed-store visibility and
 * program order, duplicate delivery, atomic dropping, snapshot
 * staleness, adversarial block order, stall injection, and
 * bit-reproducible replay.
 */
#include <gtest/gtest.h>

#include "chaos/policy.hpp"

#include <algorithm>
#include <utility>

#include "core/rng.hpp"
#include "simt/engine.hpp"

namespace eclsim::chaos {
namespace {

using simt::AccessMode;
using simt::DeviceMemory;
using simt::Engine;
using simt::EngineOptions;
using simt::LaunchConfig;
using simt::launchFor;
using simt::MemRequest;
using simt::Task;
using simt::ThreadCtx;
using simt::ThreadInfo;
using simt::titanV;
using simt::Visibility;

// --- policy parsing -------------------------------------------------------

TEST(ChaosPolicyTest, NamesRoundTrip)
{
    for (PolicyKind kind :
         {PolicyKind::kNone, PolicyKind::kStaleWindow,
          PolicyKind::kStoreDelay, PolicyKind::kSchedBias,
          PolicyKind::kSmStall, PolicyKind::kDupStore,
          PolicyKind::kDropAtomic})
        EXPECT_EQ(parsePolicy(policyName(kind)), kind);
}

TEST(ChaosPolicyTest, AllExpandsToControlPlusBenign)
{
    const auto all = parsePolicyList("all");
    EXPECT_EQ(all.size(), 6u);
    EXPECT_EQ(all.front(), PolicyKind::kNone);
    for (PolicyKind kind : all)
        EXPECT_FALSE(policyIsHarmful(kind)) << policyName(kind);
}

TEST(ChaosPolicyTest, CommaListParses)
{
    const auto list = parsePolicyList("store-delay,drop-atomic");
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0], PolicyKind::kStoreDelay);
    EXPECT_EQ(list[1], PolicyKind::kDropAtomic);
    EXPECT_TRUE(policyIsHarmful(PolicyKind::kDropAtomic));
}

TEST(ChaosPolicyTest, NonePolicyInstallsNothing)
{
    EXPECT_EQ(makePolicy({PolicyKind::kNone, 1.0, 1}), nullptr);
    EXPECT_NE(makePolicy({PolicyKind::kStoreDelay, 1.0, 1}), nullptr);
}

// --- hook mechanics -------------------------------------------------------

/** Delays every racy store landing in [lo, hi) by a fixed window. */
struct DelayRangeHooks : simt::PerturbationHooks
{
    u64 lo = 0, hi = 0;
    u32 delay = 0;

    u32
    delayStoreAccesses(const ThreadInfo&, const MemRequest& req) override
    {
        return req.addr >= lo && req.addr < hi ? delay : 0;
    }
};

TEST(PerturbationHooksTest, DelayedStoreKeepsProgramOrderButHidesFromOthers)
{
    DeviceMemory memory;
    auto data = memory.alloc<u32>(1, "data");
    auto seen = memory.alloc<u32>(2, "seen");
    memory.write(data, 7u);

    DelayRangeHooks hooks;
    hooks.lo = data.raw();
    hooks.hi = data.raw() + sizeof(u32);
    hooks.delay = 1000;  // far beyond the launch's access count

    EngineOptions options;
    options.perturb = &hooks;
    Engine engine(titanV(), memory, options);

    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = 2;
    const auto stats =
        engine.launch("delay", cfg, [&](ThreadCtx& t) -> Task {
            if (t.threadInBlock() == 0)
                co_await t.store(data, 0, 42u);
            co_await t.syncthreads();
            // The writer must see its own buffered store (program
            // order); the other thread must still see the old value.
            const u32 v = co_await t.load(data, 0);
            co_await t.store(seen, t.threadInBlock(), v);
        });

    const auto host = memory.download(seen, 2);
    EXPECT_EQ(host[0], 42u) << "writer lost its own store";
    EXPECT_EQ(host[1], 7u) << "delayed store leaked early";
    EXPECT_EQ(stats.mem.delayed_stores, 1u);
    // Kernel boundaries synchronize: the host sees the final value.
    EXPECT_EQ(memory.read(data), 42u);
}

/** Redelivers every racy plain store to [lo, hi) after a fixed window. */
struct DupRangeHooks : simt::PerturbationHooks
{
    u64 lo = 0, hi = 0;
    u32 window = 0;

    u32
    duplicateStoreAfter(const ThreadInfo&, const MemRequest& req) override
    {
        return req.addr >= lo && req.addr < hi ? window : 0;
    }
};

TEST(PerturbationHooksTest, DuplicateDeliveryClobbersInterveningAtomic)
{
    DeviceMemory memory;
    auto data = memory.alloc<u32>(1, "data");
    auto scratch = memory.alloc<u32>(2, "scratch");

    DupRangeHooks hooks;
    hooks.lo = data.raw();
    hooks.hi = data.raw() + sizeof(u32);
    hooks.window = 20;

    EngineOptions options;
    options.perturb = &hooks;
    Engine engine(titanV(), memory, options);

    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = 2;
    const auto stats =
        engine.launch("dup", cfg, [&](ThreadCtx& t) -> Task {
            if (t.threadInBlock() == 0)
                co_await t.store(data, 0, 5u);  // dup scheduled
            co_await t.syncthreads();
            if (t.threadInBlock() == 1) {
                const u32 old =
                    co_await t.atomicCas(data, 0, 5u, 9u);
                co_await t.store(scratch, 0, old);
            }
            co_await t.syncthreads();
            // Walk the access clock past the redelivery window.
            for (u32 r = 0; r < 40; ++r)
                co_await t.load(scratch, t.threadInBlock());
        });

    // The CAS saw 5 and installed 9 — then the compiler's re-issued
    // plain store overwrote it. That is exactly why racy plain stores
    // cannot synchronize.
    EXPECT_EQ(memory.read(scratch), 5u) << "CAS should have seen 5";
    EXPECT_EQ(memory.read(data), 5u)
        << "duplicate delivery should clobber the atomic's 9";
    EXPECT_EQ(stats.mem.dup_stores, 1u);
}

/** Drops every atomic update. */
struct DropAllAtomics : simt::PerturbationHooks
{
    bool
    dropAtomicUpdate(const ThreadInfo&, const MemRequest&) override
    {
        return true;
    }
};

TEST(PerturbationHooksTest, DroppedAtomicUpdatesNeverLand)
{
    DeviceMemory memory;
    auto counter = memory.alloc<u32>(1, "counter");
    DropAllAtomics hooks;
    EngineOptions options;
    options.perturb = &hooks;
    Engine engine(titanV(), memory, options);

    const u32 n = 256;
    const auto stats =
        engine.launch("drop", launchFor(n, 64), [&](ThreadCtx& t) -> Task {
            if (t.globalThreadId() < n)
                co_await t.atomicAdd(counter, 0, u32{1});
        });
    EXPECT_EQ(memory.read(counter), 0u);
    EXPECT_EQ(stats.mem.dropped_atomics, n);
}

/** Never refreshes the sweep snapshot after launch 0. */
struct FreezeSnapshot : simt::PerturbationHooks
{
    bool
    refreshSnapshot(u32) override
    {
        return false;
    }
};

TEST(PerturbationHooksTest, SkippedSnapshotRefreshKeepsStaleValues)
{
    for (const bool freeze : {false, true}) {
        DeviceMemory memory;
        auto snap =
            memory.alloc<u32>(1, "snap", Visibility::kSweepSnapshot);
        auto out = memory.alloc<u32>(1, "out");
        memory.write(snap, 7u);

        FreezeSnapshot hooks;
        EngineOptions options;
        if (freeze)
            options.perturb = &hooks;
        Engine engine(titanV(), memory, options);

        LaunchConfig cfg;
        cfg.grid = 1;
        cfg.block_x = 2;
        engine.launch("write", cfg, [&](ThreadCtx& t) -> Task {
            if (t.threadInBlock() == 1)
                co_await t.store(snap, 0, 42u);
        });
        const auto stats =
            engine.launch("read", cfg, [&](ThreadCtx& t) -> Task {
                if (t.threadInBlock() == 0) {
                    const u32 v = co_await t.load(snap, 0);
                    co_await t.store(out, 0, v);
                }
            });

        if (freeze) {
            // Launch 2 still reads launch 1's begin-of-launch snapshot:
            // the amplified stale window.
            EXPECT_EQ(memory.read(out), 7u);
            EXPECT_EQ(stats.mem.snapshot_skips, 1u);
        } else {
            EXPECT_EQ(memory.read(out), 42u);
            EXPECT_EQ(stats.mem.snapshot_skips, 0u);
        }
    }
}

/** Reverses the block schedule. */
struct ReverseBlocks : simt::PerturbationHooks
{
    void
    reorderBlocks(std::vector<u32>& order, u32) override
    {
        std::reverse(order.begin(), order.end());
    }
};

TEST(PerturbationHooksTest, ReorderedBlocksRunInHookOrder)
{
    DeviceMemory memory;
    auto ticket = memory.alloc<u32>(1, "ticket");
    auto out = memory.alloc<u32>(8, "out");

    ReverseBlocks hooks;
    EngineOptions options;
    options.shuffle_blocks = false;  // isolate the hook's effect
    options.perturb = &hooks;
    Engine engine(titanV(), memory, options);

    LaunchConfig cfg;
    cfg.grid = 8;
    cfg.block_x = 1;
    engine.launch("tickets", cfg, [&](ThreadCtx& t) -> Task {
        const u32 my = co_await t.atomicAdd(ticket, 0, u32{1});
        co_await t.store(out, t.blockId(), my);
    });

    // Fast mode runs blocks sequentially in schedule order, so block 7
    // must draw ticket 0, block 6 ticket 1, ...
    const auto host = memory.download(out, 8);
    for (u32 b = 0; b < 8; ++b)
        EXPECT_EQ(host[b], 7 - b) << "block " << b;
}

/** Constant SM stall per block plus constant per-access latency. */
struct StallHooks : simt::PerturbationHooks
{
    u64 stall = 0;
    u64 latency = 0;

    u64
    smStallCycles(u32, u32) override
    {
        return stall;
    }
    u64
    extraAccessLatency(const ThreadInfo&, const MemRequest&) override
    {
        return latency;
    }
};

TEST(PerturbationHooksTest, StallsAndLatencySpikesSlowTheLaunch)
{
    auto run = [](simt::PerturbationHooks* hooks) {
        DeviceMemory memory;
        auto data = memory.alloc<u32>(256, "data");
        EngineOptions options;
        options.perturb = hooks;
        Engine engine(titanV(), memory, options);
        return engine
            .launch("touch", launchFor(256, 64),
                    [&](ThreadCtx& t) -> Task {
                        co_await t.store(data, t.globalThreadId() % 256,
                                         1u);
                    })
            .cycles;
    };

    StallHooks hooks;
    hooks.stall = 50000;
    hooks.latency = 100;
    const u64 control = run(nullptr);
    const u64 perturbed = run(&hooks);
    EXPECT_GT(perturbed, control + 50000);
}

// --- seeded policies ------------------------------------------------------

TEST(ChaosPolicyTest, StoreDelayPolicyReplaysBitIdentically)
{
    auto run = [](u64 policy_seed) {
        PolicyConfig config;
        config.kind = PolicyKind::kStoreDelay;
        config.intensity = 0.8;
        config.seed = policy_seed;
        const auto hooks = makePolicy(config);

        DeviceMemory memory;
        const u32 n = 512;
        auto data = memory.alloc<u32>(n, "data");
        EngineOptions options;
        options.seed = 33;
        options.perturb = hooks.get();
        Engine engine(titanV(), memory, options);
        const auto stats = engine.launch(
            "fill", launchFor(n, 64), [&](ThreadCtx& t) -> Task {
                const u32 v = t.globalThreadId();
                if (v < n) {
                    co_await t.store(data, v, hash32(v));
                    co_await t.load(data, (v + 1) % n);
                }
            });
        return std::pair(stats.mem.delayed_stores, stats.cycles);
    };

    const auto a = run(99);
    const auto b = run(99);
    EXPECT_GT(a.first, 0u) << "policy never fired at intensity 0.8";
    EXPECT_EQ(a, b) << "same (kind, intensity, seed) must replay";
}

TEST(ChaosPolicyTest, BenignPoliciesPreserveSingleWriterResults)
{
    // One writer per slot: any benign perturbation (delays, duplicates,
    // schedule bias, stalls) must still leave the written values intact
    // after the end-of-launch flush.
    for (PolicyKind kind :
         {PolicyKind::kStaleWindow, PolicyKind::kStoreDelay,
          PolicyKind::kSchedBias, PolicyKind::kSmStall,
          PolicyKind::kDupStore}) {
        PolicyConfig config;
        config.kind = kind;
        config.intensity = 1.0;
        config.seed = 5;
        const auto hooks = makePolicy(config);

        DeviceMemory memory;
        const u32 n = 1024;
        auto data = memory.alloc<u32>(n, "data");
        EngineOptions options;
        options.perturb = hooks.get();
        Engine engine(titanV(), memory, options);
        engine.launch("fill", launchFor(n, 128),
                      [&](ThreadCtx& t) -> Task {
                          const u32 v = t.globalThreadId();
                          if (v < n)
                              co_await t.store(data, v, v ^ 0x5a5au);
                      });
        const auto host = memory.download(data, n);
        for (u32 v = 0; v < n; ++v)
            ASSERT_EQ(host[v], v ^ 0x5a5au)
                << policyName(kind) << " corrupted slot " << v;
    }
}

}  // namespace
}  // namespace eclsim::chaos
