/**
 * @file
 * Tests of the statistics helpers the harness relies on: median (the
 * paper's median-of-9 protocol), geometric mean (the summary rows),
 * Pearson correlation (Table IX), and median relative deviation (the
 * 0.6% figure of Section VI).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/stats.hpp"

namespace eclsim::stats {
namespace {

TEST(Median, OddSample)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({5}), 5.0);
    EXPECT_DOUBLE_EQ(median({9, 1, 5, 3, 7}), 5.0);
}

TEST(Median, EvenSampleAveragesMiddle)
{
    EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(median({4, 1}), 2.5);
}

TEST(Median, NineRunsLikeThePaper)
{
    // The paper's protocol: nine runs, median reported. An outlier run
    // must not move the median.
    std::vector<double> runs = {10.1, 10.0, 10.2, 9.9, 10.0,
                                10.1, 99.0, 10.0, 10.1};
    EXPECT_DOUBLE_EQ(median(runs), 10.1);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // A speedup and its inverse cancel in the geomean.
    EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-12);
}

TEST(Geomean, MatchesLogDefinition)
{
    SplitMix64 rng(7);
    std::vector<double> values;
    double log_sum = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double v = 0.1 + rng.nextDouble() * 3.0;
        values.push_back(v);
        log_sum += std::log(v);
    }
    EXPECT_NEAR(geomean(values), std::exp(log_sum / 100.0), 1e-12);
}

TEST(MinMaxMeanStd, Basics)
{
    const std::vector<double> v = {2, 8, 4, 6};
    EXPECT_DOUBLE_EQ(minimum(v), 2.0);
    EXPECT_DOUBLE_EQ(maximum(v), 8.0);
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(stddev(v), std::sqrt((9 + 9 + 1 + 1) / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Pearson, PerfectCorrelations)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 4, 6}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({2, 4, 6}, {5, 5, 5}), 0.0);
}

TEST(Pearson, ScaleAndShiftInvariant)
{
    SplitMix64 rng(13);
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(rng.nextDouble());
        ys.push_back(rng.nextDouble());
    }
    const double base = pearson(xs, ys);
    std::vector<double> xs2;
    for (double x : xs)
        xs2.push_back(3.0 * x + 11.0);
    EXPECT_NEAR(pearson(xs2, ys), base, 1e-10);
}

TEST(Pearson, UncorrelatedIsNearZero)
{
    SplitMix64 rng(99);
    std::vector<double> xs, ys;
    for (int i = 0; i < 4000; ++i) {
        xs.push_back(rng.nextDouble());
        ys.push_back(rng.nextDouble());
    }
    EXPECT_LT(std::abs(pearson(xs, ys)), 0.05);
}

TEST(MedianRelativeDeviation, TightSampleIsSmall)
{
    // "The median relative deviation is only 0.6%" — the statistic on a
    // tight sample must be small and on a loose one large.
    EXPECT_LT(medianRelativeDeviation({10.0, 10.05, 9.95, 10.02, 9.98}),
              0.01);
    EXPECT_GT(medianRelativeDeviation({10.0, 20.0, 5.0, 15.0, 1.0}), 0.2);
    EXPECT_DOUBLE_EQ(medianRelativeDeviation({7.0, 7.0, 7.0}), 0.0);
}

}  // namespace
}  // namespace eclsim::stats
