/**
 * @file
 * Tests of core::ThreadPool: FIFO ordering on a single worker, result
 * and exception delivery through futures, worker indexing, exact
 * totals under contention, and drain-on-destruction shutdown.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"

namespace eclsim::core {
namespace {

TEST(ThreadPool, DeliversResultsThroughFutures)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto& f : futures)
        f.get();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionReachesTheFutureNotTheWorker)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("cell exploded"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error& e) {
                EXPECT_STREQ(e.what(), "cell exploded");
                throw;
            }
        },
        std::runtime_error);
    // The worker that ran the throwing task is still alive and serving.
    EXPECT_EQ(good.get(), 7);
    EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange)
{
    EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1);  // off-pool
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(
            pool.submit([] { return ThreadPool::currentWorkerIndex(); }));
    for (auto& f : futures) {
        const int index = f.get();
        EXPECT_GE(index, 0);
        EXPECT_LT(index, 3);
    }
    EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1);
}

TEST(ThreadPool, ContendedIncrementsSumExactly)
{
    constexpr int kTasks = 200;
    constexpr int kPerTask = 500;
    std::atomic<int> total{0};
    std::vector<std::future<void>> futures;
    ThreadPool pool(8);
    for (int i = 0; i < kTasks; ++i)
        futures.push_back(pool.submit([&total] {
            for (int j = 0; j < kPerTask; ++j)
                total.fetch_add(1, std::memory_order_relaxed);
        }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(total.load(), kTasks * kPerTask);
}

TEST(ThreadPool, DestructorDrainsEverySubmittedTask)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&ran] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                ran.fetch_add(1);
            });
        }
        // ~ThreadPool runs here with most of the queue still pending.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, PendingAndActiveTrackQueueDepth)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.pending(), 0u);
    EXPECT_EQ(pool.active(), 0u);

    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::promise<void> started;
    auto blocker = pool.submit([&] {
        started.set_value();
        gate.wait();
    });
    started.get_future().wait();  // the worker is now busy
    EXPECT_EQ(pool.active(), 1u);
    EXPECT_EQ(pool.pending(), 0u);

    auto queued = pool.submit([] {});
    EXPECT_EQ(pool.pending(), 1u);  // stuck behind the blocker

    release.set_value();
    blocker.get();
    queued.get();
    EXPECT_EQ(pool.pending(), 0u);
    EXPECT_EQ(pool.active(), 0u);
}

TEST(ThreadPool, TrySubmitFailsFastPastTheBound)
{
    ThreadPool pool(1);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::promise<void> started;
    auto blocker = pool.submit([&] {
        started.set_value();
        gate.wait();
    });
    started.get_future().wait();

    // Bound 2: two pending tasks are admitted, the third is rejected
    // without ever being enqueued.
    auto first = pool.trySubmit(2, [] { return 1; });
    auto second = pool.trySubmit(2, [] { return 2; });
    std::atomic<bool> third_ran{false};
    auto third = pool.trySubmit(2, [&] {
        third_ran = true;
        return 3;
    });
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_FALSE(third.has_value());

    release.set_value();
    blocker.get();
    EXPECT_EQ(first->get(), 1);
    EXPECT_EQ(second->get(), 2);
    EXPECT_FALSE(third_ran.load());

    // With the queue drained, trySubmit admits again.
    auto fourth = pool.trySubmit(2, [] { return 4; });
    ASSERT_TRUE(fourth.has_value());
    EXPECT_EQ(fourth->get(), 4);
}

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
    ThreadPool pool;  // 0 = defaultConcurrency()
    EXPECT_EQ(pool.size(), ThreadPool::defaultConcurrency());
}

}  // namespace
}  // namespace eclsim::core
