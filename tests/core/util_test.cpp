/**
 * @file
 * Tests of the small core utilities: strfmt, tables, flags, and the
 * deterministic RNG.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "core/flags.hpp"
#include "core/format.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"

namespace eclsim {
namespace {

// --- strfmt ---------------------------------------------------------------

TEST(Format, Placeholders)
{
    EXPECT_EQ(strfmt("a {} c {}", "b", 7), "a b c 7");
    EXPECT_EQ(strfmt("no args"), "no args");
    EXPECT_EQ(strfmt("{}", 3.5), "3.5");
}

TEST(Format, EscapedBraces)
{
    EXPECT_EQ(strfmt("{{}} {}", 1), "{} 1");
    EXPECT_EQ(strfmt("{{{}}}", "x"), "{x}");
}

TEST(Format, SurplusArgumentsAppended)
{
    EXPECT_EQ(strfmt("only", 1, 2), "only 1 2");
}

// --- TextTable -------------------------------------------------------------

TEST(Table, AlignmentAndRendering)
{
    TextTable table({"Name", "Value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "23"});
    const auto text = table.toText();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("23"), std::string::npos);
    // Right-aligned numeric column: "23" ends at same offset as header.
    EXPECT_EQ(table.cell(1, 1), "23");
    EXPECT_EQ(table.rows(), 2u);
    EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, MarkdownShape)
{
    TextTable table({"A", "B"});
    table.addRow({"x", "y"});
    const auto md = table.toMarkdown();
    EXPECT_NE(md.find("| A | B |"), std::string::npos);
    EXPECT_NE(md.find("| x | y |"), std::string::npos);
    EXPECT_NE(md.find("---"), std::string::npos);
}

TEST(Table, CsvEscaping)
{
    TextTable table({"A", "B"});
    table.addRow({"has,comma", "has\"quote"});
    const auto csv = table.toCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripFile)
{
    TextTable table({"k", "v"});
    table.addRow({"a", "1"});
    const std::string path = ::testing::TempDir() + "/eclsim_table.csv";
    table.writeCsv(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "k,v");
    std::getline(in, line);
    EXPECT_EQ(line, "a,1");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtFixed(0.666, 2), "0.67");
    EXPECT_EQ(fmtFixed(1.0, 2), "1.00");
    EXPECT_EQ(fmtGrouped(0), "0");
    EXPECT_EQ(fmtGrouped(999), "999");
    EXPECT_EQ(fmtGrouped(4190208), "4,190,208");
    EXPECT_EQ(fmtGrouped(1000), "1,000");
}

// --- Flags -----------------------------------------------------------------

TEST(Flags, AllForms)
{
    const char* argv[] = {"prog",     "--reps=9",   "--divisor=256",
                          "--verify", "positional", "--ratio=0.5"};
    Flags flags(6, argv);
    EXPECT_EQ(flags.getInt("reps", 0), 9);
    EXPECT_EQ(flags.getInt("divisor", 0), 256);
    EXPECT_TRUE(flags.getBool("verify", false));
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio", 0.0), 0.5);
    EXPECT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "positional");
    EXPECT_EQ(flags.getString("absent", "dflt"), "dflt");
    EXPECT_FALSE(flags.has("absent"));
}

TEST(Flags, BooleanSpellings)
{
    const char* argv[] = {"prog", "--a=true", "--b=0", "--c=no", "--d=1"};
    Flags flags(5, argv);
    EXPECT_TRUE(flags.getBool("a", false));
    EXPECT_FALSE(flags.getBool("b", true));
    EXPECT_FALSE(flags.getBool("c", true));
    EXPECT_TRUE(flags.getBool("d", false));
}

// --- RNG --------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed)
{
    SplitMix64 a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundsRespected)
{
    SplitMix64 rng(1);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RoughlyUniform)
{
    SplitMix64 rng(2);
    std::vector<int> buckets(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextBelow(10)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 10 - n / 50);
        EXPECT_LT(count, n / 10 + n / 50);
    }
}

TEST(Rng, HashesAvalanche)
{
    // Flipping one input bit should flip many output bits on average.
    std::set<u32> seen32;
    for (u32 i = 0; i < 1000; ++i)
        seen32.insert(hash32(i));
    EXPECT_EQ(seen32.size(), 1000u);  // no collisions on a small range

    std::set<u64> seen64;
    for (u64 i = 0; i < 1000; ++i)
        seen64.insert(hash64(i));
    EXPECT_EQ(seen64.size(), 1000u);
}

}  // namespace
}  // namespace eclsim
