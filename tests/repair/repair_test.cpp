/**
 * @file
 * Tests of eclsim::repair: proposal derivation from classified race
 * reports (dedup across reports, worst-class-governs order choice,
 * partner closure, unattributed accounting), the advisor end to end on
 * CC (every baseline racing site proposed, verified race-silent, clean
 * verdict), byte-identical reports across --jobs, and the racecheck
 * runner's site-override plumbing (identical site tables at any jobs
 * value with a table installed).
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "repair/advisor.hpp"
#include "repair/proposal.hpp"

namespace eclsim::repair {
namespace {

using racecheck::AccessSig;
using racecheck::ClassifiedReport;
using racecheck::RaceClass;
using racecheck::RaceKind;
using racecheck::RaceReport;
using racecheck::SiteId;

AccessSig
plainSig(simt::MemOpKind kind)
{
    AccessSig sig;
    sig.kind = kind;
    sig.mode = simt::AccessMode::kPlain;
    return sig;
}

AccessSig
atomicSig(simt::MemOpKind kind)
{
    AccessSig sig;
    sig.kind = kind;
    sig.mode = simt::AccessMode::kAtomic;
    return sig;
}

ClassifiedReport
makeReport(const std::string& alloc, RaceKind kind, SiteId a,
           const AccessSig& sig_a, SiteId b, const AccessSig& sig_b,
           u64 count, RaceClass cls)
{
    ClassifiedReport out;
    out.report.allocation = alloc;
    out.report.kind = kind;
    out.report.site_a = a;
    out.report.sig_a = sig_a;
    out.report.site_b = b;
    out.report.sig_b = sig_b;
    out.report.count = count;
    out.cls = cls;
    out.reason = "test";
    return out;
}

struct ProbeSites
{
    SiteId writer;
    SiteId reader;
    SiteId atomic_partner;
};

ProbeSites
probeSites()
{
    auto& registry = racecheck::SiteRegistry::instance();
    return {registry.intern("repair_test.cpp", 10, "probe writer"),
            registry.intern("repair_test.cpp", 20, "probe reader"),
            registry.intern("repair_test.cpp", 30, "probe atomic")};
}

TEST(RepairProposalTest, EachRacySideGetsOneDedupedProposal)
{
    const ProbeSites sites = probeSites();
    racecheck::CellResult cell;
    // The same W/W pair reported twice (two allocations): one proposal
    // per site, pairs summed, partners recorded once.
    cell.races.push_back(makeReport(
        "alloc_a", RaceKind::kWriteWrite, sites.writer,
        plainSig(simt::MemOpKind::kStore), sites.reader,
        plainSig(simt::MemOpKind::kStore), 3, RaceClass::kMonotonicUpdate));
    cell.races.push_back(makeReport(
        "alloc_b", RaceKind::kWriteWrite, sites.writer,
        plainSig(simt::MemOpKind::kStore), sites.reader,
        plainSig(simt::MemOpKind::kStore), 4, RaceClass::kMonotonicUpdate));

    const ProposalSet set = proposeFixes({cell});
    ASSERT_EQ(set.proposals.size(), 2u);
    EXPECT_EQ(set.unattributed_pairs, 0u);
    for (const FixProposal& p : set.proposals) {
        EXPECT_EQ(p.pairs, 7u);
        EXPECT_EQ(p.fix.mode, simt::AccessMode::kAtomic);
        EXPECT_EQ(p.fix.order, simt::MemoryOrder::kRelaxed);
        EXPECT_EQ(p.cls, RaceClass::kMonotonicUpdate);
        ASSERT_EQ(p.partners.size(), 1u);
        EXPECT_EQ(p.allocations, "alloc_a, alloc_b");
    }
    EXPECT_EQ(set.proposals[0].partners[0], set.proposals[1].site);
    EXPECT_EQ(set.proposals[1].partners[0], set.proposals[0].site);
}

TEST(RepairProposalTest, WorstClassGovernsAndUnknownHarmfulGetsSeqCst)
{
    const ProbeSites sites = probeSites();
    racecheck::CellResult cell;
    cell.races.push_back(makeReport(
        "alloc", RaceKind::kReadWrite, sites.writer,
        plainSig(simt::MemOpKind::kStore), sites.reader,
        plainSig(simt::MemOpKind::kLoad), 1,
        RaceClass::kStaleReadTolerant));
    cell.races.push_back(makeReport(
        "alloc", RaceKind::kWriteWrite, sites.writer,
        plainSig(simt::MemOpKind::kStore), sites.atomic_partner,
        atomicSig(simt::MemOpKind::kStore), 1,
        RaceClass::kUnknownHarmful));

    const ProposalSet set = proposeFixes({cell});
    // The atomic side needs no conversion: two proposals, not three.
    ASSERT_EQ(set.proposals.size(), 2u);
    const FixProposal* writer = nullptr;
    const FixProposal* reader = nullptr;
    for (const FixProposal& p : set.proposals) {
        if (p.site == sites.writer)
            writer = &p;
        if (p.site == sites.reader)
            reader = &p;
        EXPECT_NE(p.site, sites.atomic_partner);
    }
    ASSERT_NE(writer, nullptr);
    ASSERT_NE(reader, nullptr);
    // Worst class across the writer's two reports is unknown-harmful:
    // no benignity argument, so the conservative seq_cst order.
    EXPECT_EQ(writer->cls, RaceClass::kUnknownHarmful);
    EXPECT_EQ(writer->fix.order, simt::MemoryOrder::kSeqCst);
    EXPECT_EQ(reader->cls, RaceClass::kStaleReadTolerant);
    EXPECT_EQ(reader->fix.order, simt::MemoryOrder::kRelaxed);
    // The atomic partner is not a racy partner (nothing to close over).
    ASSERT_EQ(writer->partners.size(), 1u);
    EXPECT_EQ(writer->partners[0], sites.reader);
}

TEST(RepairProposalTest, SiteReadAndWrittenGetsDistinctProposalsPerKind)
{
    const ProbeSites sites = probeSites();
    racecheck::CellResult cell;
    // The regression: one site races as a reader in one pair and as a
    // writer in another, with different classes. A SiteId-keyed dedup
    // would swallow both into one proposal; the (site, kind) key must
    // keep them distinct, each with its own class-derived order.
    cell.races.push_back(makeReport(
        "alloc", RaceKind::kReadWrite, sites.writer,
        plainSig(simt::MemOpKind::kStore), sites.reader,
        plainSig(simt::MemOpKind::kLoad), 2,
        RaceClass::kStaleReadTolerant));
    cell.races.push_back(makeReport(
        "alloc", RaceKind::kWriteWrite, sites.reader,
        plainSig(simt::MemOpKind::kStore), sites.writer,
        plainSig(simt::MemOpKind::kStore), 3,
        RaceClass::kUnknownHarmful));

    const ProposalSet set = proposeFixes({cell});
    ASSERT_EQ(set.proposals.size(), 3u);
    const FixProposal* as_load = nullptr;
    const FixProposal* as_store = nullptr;
    for (const FixProposal& p : set.proposals) {
        if (p.site != sites.reader)
            continue;
        if (p.kind == simt::MemOpKind::kLoad)
            as_load = &p;
        if (p.kind == simt::MemOpKind::kStore)
            as_store = &p;
    }
    ASSERT_NE(as_load, nullptr);
    ASSERT_NE(as_store, nullptr);
    EXPECT_EQ(as_load->cls, RaceClass::kStaleReadTolerant);
    EXPECT_EQ(as_load->fix.order, simt::MemoryOrder::kRelaxed);
    EXPECT_EQ(as_load->pairs, 2u);
    EXPECT_EQ(as_store->cls, RaceClass::kUnknownHarmful);
    EXPECT_EQ(as_store->fix.order, simt::MemoryOrder::kSeqCst);
    EXPECT_EQ(as_store->pairs, 3u);

    // The engine has one override slot per site: table builders merge
    // the two proposals worst-wins, so the slot carries seq_cst.
    const simt::SiteOverrideTable full = fullTable(set);
    EXPECT_EQ(full.size(), 2u);
    const simt::SiteOverride* slot = full.find(sites.reader);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(slot->order, simt::MemoryOrder::kSeqCst);
}

TEST(RepairProposalTest, UninstrumentedRacySidesAreCountedNotProposed)
{
    const ProbeSites sites = probeSites();
    racecheck::CellResult cell;
    cell.races.push_back(makeReport(
        "alloc", RaceKind::kWriteWrite, racecheck::kUnknownSite,
        plainSig(simt::MemOpKind::kStore), sites.writer,
        plainSig(simt::MemOpKind::kStore), 5,
        RaceClass::kIdempotentWrite));

    const ProposalSet set = proposeFixes({cell});
    EXPECT_EQ(set.unattributed_pairs, 5u);
    ASSERT_EQ(set.proposals.size(), 1u);
    EXPECT_EQ(set.proposals[0].site, sites.writer);
    EXPECT_TRUE(set.proposals[0].partners.empty());
}

TEST(RepairProposalTest, ClosureAndFullTables)
{
    const ProbeSites sites = probeSites();
    racecheck::CellResult cell;
    cell.races.push_back(makeReport(
        "alloc", RaceKind::kReadWrite, sites.writer,
        plainSig(simt::MemOpKind::kStore), sites.reader,
        plainSig(simt::MemOpKind::kLoad), 2,
        RaceClass::kStaleReadTolerant));

    const ProposalSet set = proposeFixes({cell});
    ASSERT_EQ(set.proposals.size(), 2u);

    const simt::SiteOverrideTable full = fullTable(set);
    EXPECT_EQ(full.size(), 2u);
    EXPECT_NE(full.find(sites.writer), nullptr);
    EXPECT_NE(full.find(sites.reader), nullptr);

    // Each closure contains the root and its racy partner: converting
    // one side of a plain/plain pair alone would leave it racing.
    for (size_t i = 0; i < set.proposals.size(); ++i) {
        const simt::SiteOverrideTable closure = closureTable(set, i);
        EXPECT_EQ(closure.size(), 2u);
        EXPECT_NE(closure.find(sites.writer), nullptr);
        EXPECT_NE(closure.find(sites.reader), nullptr);
    }
}

AdvisorConfig
quickConfig(algos::Algo algo, u32 jobs)
{
    AdvisorConfig config;
    config.algo = algo;
    config.jobs = jobs;
    config.reps = 2;
    config.exposure_seeds = 1;
    return config;
}

TEST(RepairAdvisorTest, CcAdvisorRepairsEveryBaselineRacingSite)
{
    const AdvisorResult result =
        runAdvisor(quickConfig(algos::Algo::kCc, 0));

    EXPECT_TRUE(advisorClean(result));
    EXPECT_FALSE(result.rows.empty());
    EXPECT_GT(result.baseline_pairs, 0u);
    EXPECT_EQ(result.unattributed_pairs, 0u);
    EXPECT_TRUE(result.repaired_silent);
    EXPECT_TRUE(result.repaired_valid);
    EXPECT_GT(result.baseline_ms, 0.0);
    EXPECT_GT(result.repaired_ms, result.baseline_ms)
        << "converting every racing site to atomics must cost time";
    for (const SiteRow& row : result.rows) {
        EXPECT_TRUE(row.verified_silent) << row.proposal.site_desc;
        EXPECT_GT(row.solo_ms, 0.0);
        EXPECT_GT(row.solo_slowdown, 0.0);
        EXPECT_GT(row.exposed_cells, 0u)
            << "a CC race that no schedule exposes should not exist: "
            << row.proposal.site_desc;
        EXPECT_EQ(row.proposal.fix.mode, simt::AccessMode::kAtomic);
    }
}

TEST(RepairAdvisorTest, MisEmergentRacesAreRepairedByFixpointRounds)
{
    // MIS's out-store never races under the baseline schedule; it
    // emerges only once the knockout/neighbor sites are atomic. The
    // single-round advisor cannot repair it — the fixpoint must take
    // at least one extra detection round and still end CLEAN.
    const AdvisorResult result =
        runAdvisor(quickConfig(algos::Algo::kMis, 0));

    EXPECT_TRUE(advisorClean(result));
    EXPECT_GE(result.fixpoint_rounds, 2u);
    bool emergent = false;
    for (const SiteRow& row : result.rows) {
        EXPECT_TRUE(row.verified_silent) << row.proposal.site_desc;
        emergent |= row.round >= 1;
    }
    EXPECT_TRUE(emergent)
        << "no proposal was attributed to a later fixpoint round";
}

TEST(RepairAdvisorTest, ReportIsByteIdenticalAcrossJobs)
{
    const AdvisorResult serial =
        runAdvisor(quickConfig(algos::Algo::kCc, 1));
    const AdvisorResult parallel =
        runAdvisor(quickConfig(algos::Algo::kCc, 4));

    EXPECT_EQ(renderRepairJson(serial), renderRepairJson(parallel));
    EXPECT_EQ(makeRepairTable(serial).toCsv(),
              makeRepairTable(parallel).toCsv());
    EXPECT_EQ(makeRepairSummary(serial).toCsv(),
              makeRepairSummary(parallel).toCsv());
}

TEST(RepairRunnerOverrideTest, SiteTablesIdenticalAcrossJobsWithOverrides)
{
    // Satellite contract: override + racecheck produces identical site
    // tables at --jobs=1 and --jobs=8. Override every cc.cpp site (the
    // full repair), leaving wcc racing, so the sweep exercises both a
    // silenced and a racing cell under the table.
    racecheck::populateSiteRegistry();
    simt::SiteOverrideTable table;
    simt::SiteOverride fix;
    for (const racecheck::Site& site :
         racecheck::SiteRegistry::instance().snapshot())
        if (site.file == "cc.cpp")
            table.set(site.id, fix);
    ASSERT_GT(table.size(), 0u);

    racecheck::RunnerConfig config;
    config.algos = {algos::Algo::kCc, algos::Algo::kWcc};
    config.variants = {algos::Variant::kBaseline};
    config.include_apsp = false;
    config.site_overrides = &table;

    config.jobs = 1;
    const auto serial = racecheck::runRacecheck(config);
    config.jobs = 8;
    const auto parallel = racecheck::runRacecheck(config);

    const std::string serial_csv =
        racecheck::makeSiteTable(serial).toCsv();
    EXPECT_EQ(serial_csv, racecheck::makeSiteTable(parallel).toCsv());
    EXPECT_EQ(racecheck::renderRacecheckJson(serial),
              racecheck::renderRacecheckJson(parallel));

    // The overridden CC baseline is race-silent; WCC still races.
    for (const racecheck::CellResult& cell : serial) {
        if (cell.cell.algo == algos::Algo::kCc)
            EXPECT_TRUE(cell.races.empty())
                << "cc baseline still races under its full override";
        else
            EXPECT_FALSE(cell.races.empty())
                << "wcc baseline should still race (no override)";
    }
}

}  // namespace
}  // namespace eclsim::repair
