/**
 * @file
 * Tests of the experiment harness: measurement plumbing, table
 * rendering, and the headline shape assertions of the paper (run on
 * heavily scaled inputs so they stay fast).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graph/catalog.hpp"
#include "harness/experiment.hpp"
#include "harness/paper_reference.hpp"

namespace eclsim::harness {
namespace {

ExperimentConfig
quickConfig()
{
    ExperimentConfig config;
    config.reps = 1;
    config.graph_divisor = 4096;  // tiny stand-ins: tests stay fast
    config.verify = true;         // every run is checked vs the oracles
    return config;
}

TEST(Measure, ProducesPositiveTimesAndProperties)
{
    const auto graph = graph::makeInput("amazon0601", 4096);
    const auto m = measure(simt::titanV(), graph, "amazon0601",
                           Algo::kCc, quickConfig());
    EXPECT_GT(m.baseline_ms, 0.0);
    EXPECT_GT(m.racefree_ms, 0.0);
    EXPECT_GT(m.speedup(), 0.0);
    EXPECT_EQ(m.input, "amazon0601");
    EXPECT_EQ(m.gpu, "Titan V");
    EXPECT_DOUBLE_EQ(m.vertices,
                     static_cast<double>(graph.numVertices()));
    EXPECT_DOUBLE_EQ(m.edges, static_cast<double>(graph.numArcs()));
}

TEST(Measure, DeterministicForFixedSeed)
{
    const auto graph = graph::makeInput("internet", 4096);
    const auto a = measure(simt::a100(), graph, "internet", Algo::kMis,
                           quickConfig());
    const auto b = measure(simt::a100(), graph, "internet", Algo::kMis,
                           quickConfig());
    EXPECT_DOUBLE_EQ(a.baseline_ms, b.baseline_ms);
    EXPECT_DOUBLE_EQ(a.racefree_ms, b.racefree_ms);
}

TEST(Suite, UndirectedCoversSeventeenInputsTimesFourAlgos)
{
    const auto ms = runUndirectedSuite(simt::rtx2070Super(), quickConfig());
    EXPECT_EQ(ms.size(), 17u * 4u);
}

TEST(Suite, SccCoversTenInputs)
{
    const auto ms = runSccSuite(simt::rtx2070Super(), quickConfig());
    EXPECT_EQ(ms.size(), 10u);
    for (const auto& m : ms)
        EXPECT_EQ(m.algo, Algo::kScc);
}

TEST(Tables, SpeedupTableShape)
{
    const auto ms = runUndirectedSuite(simt::titanV(), quickConfig());
    const auto table = makeSpeedupTable(ms);
    EXPECT_EQ(table.columns(), 5u);  // Input CC GC MIS MST
    EXPECT_EQ(table.rows(), 17u + 3u);  // inputs + Min/Geomean/Max
    EXPECT_EQ(table.cell(17, 0), "Min Speedup");
    EXPECT_EQ(table.cell(18, 0), "Geomean Speedup");
    EXPECT_EQ(table.cell(19, 0), "Max Speedup");
    // Every speedup cell parses as a positive number.
    for (size_t r = 0; r < table.rows(); ++r)
        for (size_t c = 1; c < table.columns(); ++c)
            EXPECT_GT(std::stod(table.cell(r, c)), 0.0);
}

TEST(Tables, GpuAndInputTablesMatchPaperCounts)
{
    EXPECT_EQ(makeGpuTable().rows(), 4u);
    EXPECT_EQ(makeInputTable(false, false, 512).rows(), 17u);
    EXPECT_EQ(makeInputTable(true, false, 512).rows(), 10u);
    EXPECT_EQ(makeInputTable(false, true, 4096).rows(), 17u);
}

TEST(Tables, CorrelationTableInBounds)
{
    auto ms = runUndirectedSuite(simt::titanV(), quickConfig());
    const auto table = makeCorrelationTable(ms);
    // One GPU header row + 3 property rows.
    ASSERT_EQ(table.rows(), 4u);
    for (size_t c = 1; c <= 4; ++c) {
        const double r = std::stod(table.cell(1, c));
        EXPECT_GE(r, -1.0);
        EXPECT_LE(r, 1.0);
    }
}

// --- the paper's headline shapes (Section VI / Fig. 6) -------------------

class ShapeTest : public ::testing::Test
{
  protected:
    static const std::vector<Measurement>&
    titanVMeasurements()
    {
        static const std::vector<Measurement> ms = [] {
            ExperimentConfig config;
            config.reps = 1;
            config.graph_divisor = 1024;
            return runUndirectedSuite(simt::titanV(), config);
        }();
        return ms;
    }
};

TEST_F(ShapeTest, RaceFreeCcIsSubstantiallySlower)
{
    const double g =
        geomeanSpeedup(titanVMeasurements(), Algo::kCc, "Titan V");
    EXPECT_LT(g, 0.90) << "paper: CC geomean 0.45-0.88";
    EXPECT_GT(g, 0.30);
}

TEST_F(ShapeTest, RaceFreeGcIsNearlyUnaffected)
{
    const double g =
        geomeanSpeedup(titanVMeasurements(), Algo::kGc, "Titan V");
    EXPECT_GT(g, 0.92) << "paper: GC geomean 0.96-1.00";
    EXPECT_LT(g, 1.05);
}

TEST_F(ShapeTest, RaceFreeMisIsFaster)
{
    const double g =
        geomeanSpeedup(titanVMeasurements(), Algo::kMis, "Titan V");
    EXPECT_GT(g, 1.0) << "paper: MIS geomean 1.05-1.11 (the headline)";
}

TEST_F(ShapeTest, RaceFreeMstIsMildlySlower)
{
    const double g =
        geomeanSpeedup(titanVMeasurements(), Algo::kMst, "Titan V");
    EXPECT_GT(g, 0.90) << "paper: MST geomean 0.93-0.97";
    EXPECT_LE(g, 1.02);
}

TEST(ShapeScc, RaceFreeSccIsSubstantiallySlower)
{
    ExperimentConfig config;
    config.reps = 1;
    config.graph_divisor = 1024;
    const auto ms = runSccSuite(simt::rtx4090(), config);
    const double g = geomeanSpeedup(ms, Algo::kScc, "4090");
    EXPECT_LT(g, 0.90) << "paper: SCC geomean 0.50-0.81";
    EXPECT_GT(g, 0.30);
}

TEST(Speedup, ZeroTimeCellsAreSkippedNotGeomeanPoison)
{
    // Regression: a cell with racefree_ms == 0 reports speedup() 0.0,
    // and feeding that 0.0 into the geomean meant log(0) = -inf. The
    // summaries must skip undefined cells instead.
    Measurement ok;
    ok.input = "good";
    ok.algo = Algo::kCc;
    ok.gpu = "Titan V";
    ok.baseline_ms = 4.0;
    ok.racefree_ms = 2.0;

    Measurement zero = ok;
    zero.input = "degenerate";
    zero.racefree_ms = 0.0;
    EXPECT_DOUBLE_EQ(zero.speedup(), 0.0);

    const std::vector<Measurement> ms = {ok, zero};
    const double g = geomeanSpeedup(ms, Algo::kCc, "Titan V");
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_DOUBLE_EQ(g, 2.0);  // the defined cell alone

    // The summary rows of the rendered table skip the cell too...
    const auto table = makeSpeedupTable(ms);
    EXPECT_EQ(table.cell(2, 0), "Min Speedup");
    EXPECT_EQ(table.cell(2, 1), "2.00");
    EXPECT_EQ(table.cell(3, 1), "2.00");  // geomean
    EXPECT_EQ(table.cell(4, 1), "2.00");  // max
    // ...while the per-input cell still shows the 0.00 sentinel.
    EXPECT_EQ(table.cell(1, 0), "degenerate");
    EXPECT_EQ(table.cell(1, 1), "0.00");
}

TEST(AlgoNames, Complete)
{
    EXPECT_STREQ(algoName(Algo::kCc), "CC");
    EXPECT_STREQ(algoName(Algo::kGc), "GC");
    EXPECT_STREQ(algoName(Algo::kMis), "MIS");
    EXPECT_STREQ(algoName(Algo::kMst), "MST");
    EXPECT_STREQ(algoName(Algo::kScc), "SCC");
    EXPECT_EQ(undirectedAlgos().size(), 4u);
}

TEST(PaperReference, TwentySummariesCoverEveryGpuAlgoPair)
{
    EXPECT_EQ(paperSummaries().size(), 20u);
    for (const auto& gpu : simt::evaluationGpus()) {
        for (Algo algo : {Algo::kCc, Algo::kGc, Algo::kMis, Algo::kMst,
                          Algo::kScc}) {
            const auto& s = paperSummary(gpu.name, algo);
            EXPECT_GT(s.min, 0.0);
            EXPECT_LE(s.min, s.geomean);
            EXPECT_LE(s.geomean, s.max);
        }
    }
}

TEST(PaperReference, HeadlineNumbersTranscribedCorrectly)
{
    // Spot-check against the paper's abstract and summary text.
    EXPECT_DOUBLE_EQ(paperSummary("Titan V", Algo::kMis).geomean, 1.11);
    EXPECT_DOUBLE_EQ(paperSummary("2070 Super", Algo::kMis).geomean,
                     1.05);
    EXPECT_DOUBLE_EQ(paperSummary("4090", Algo::kCc).geomean, 0.45);
    EXPECT_DOUBLE_EQ(paperSummary("A100", Algo::kScc).geomean, 0.50);
    EXPECT_DOUBLE_EQ(paperSummary("Titan V", Algo::kMis).max, 2.05);
    EXPECT_DEATH(paperSummary("H100", Algo::kCc), "no paper summary");
}

}  // namespace
}  // namespace eclsim::harness
