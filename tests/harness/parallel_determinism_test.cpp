/**
 * @file
 * Determinism-under-parallelism tests of the suite runners: a sweep
 * sharded over 8 workers must produce Measurement vectors that are
 * field-for-field identical to the serial path, stable across repeated
 * parallel runs, with identical profiling counter totals and a merged
 * trace that still passes the golden-shape checks.
 */
#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.hpp"
#include "prof/trace.hpp"
#include "prof/trace_export.hpp"

namespace eclsim::harness {
namespace {

ExperimentConfig
configWithJobs(u32 jobs)
{
    ExperimentConfig config;
    config.reps = 2;
    config.graph_divisor = 4096;  // tiny stand-ins: tests stay fast
    config.jobs = jobs;
    return config;
}

void
expectIdentical(const std::vector<Measurement>& a,
                const std::vector<Measurement>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " (" + a[i].input +
                     ")");
        EXPECT_EQ(a[i].input, b[i].input);
        EXPECT_EQ(a[i].algo, b[i].algo);
        EXPECT_EQ(a[i].gpu, b[i].gpu);
        EXPECT_EQ(a[i].baseline_ms, b[i].baseline_ms);
        EXPECT_EQ(a[i].racefree_ms, b[i].racefree_ms);
        EXPECT_EQ(a[i].baseline_iterations, b[i].baseline_iterations);
        EXPECT_EQ(a[i].racefree_iterations, b[i].racefree_iterations);
        EXPECT_EQ(a[i].edges, b[i].edges);
        EXPECT_EQ(a[i].vertices, b[i].vertices);
        EXPECT_EQ(a[i].avg_degree, b[i].avg_degree);
    }
}

TEST(ParallelDeterminism, UndirectedSuiteMatchesSerialBitForBit)
{
    const auto serial =
        runUndirectedSuite(simt::titanV(), configWithJobs(1));
    const auto parallel =
        runUndirectedSuite(simt::titanV(), configWithJobs(8));
    expectIdentical(serial, parallel);
}

TEST(ParallelDeterminism, SccSuiteMatchesSerialBitForBit)
{
    const auto serial = runSccSuite(simt::a100(), configWithJobs(1));
    const auto parallel = runSccSuite(simt::a100(), configWithJobs(8));
    expectIdentical(serial, parallel);
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable)
{
    const auto first = runSccSuite(simt::rtx4090(), configWithJobs(8));
    const auto second = runSccSuite(simt::rtx4090(), configWithJobs(8));
    expectIdentical(first, second);
}

TEST(ParallelDeterminism, CellSeedIsStableAndDecorrelated)
{
    EXPECT_EQ(cellSeed(12345, 0), cellSeed(12345, 0));
    EXPECT_NE(cellSeed(12345, 0), cellSeed(12345, 1));
    EXPECT_NE(cellSeed(12345, 0), cellSeed(54321, 0));
}

TEST(ParallelDeterminism, CounterTotalsMatchSerialExactly)
{
    prof::TraceSession serial_session, parallel_session;

    auto serial_config = configWithJobs(1);
    serial_config.trace = &serial_session;
    auto parallel_config = configWithJobs(8);
    parallel_config.trace = &parallel_session;

    const auto serial = runSccSuite(simt::titanV(), serial_config);
    const auto parallel = runSccSuite(simt::titanV(), parallel_config);
    expectIdentical(serial, parallel);

    const auto a = serial_session.counters().snapshot();
    const auto b = parallel_session.counters().snapshot();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 0u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].value, b[i].value) << a[i].name;
    }
}

TEST(ParallelDeterminism, MergedTraceKeepsGoldenShape)
{
    prof::TraceSession session;
    auto config = configWithJobs(4);
    config.reps = 1;
    config.trace = &session;
    runSccSuite(simt::rtx2070Super(), config);

    EXPECT_GT(session.events().size(), 0u);
    // Worker-tagged tracks: every track of a parallel run is w<k>/...
    bool worker_track = false;
    for (const auto& track : session.tracks())
        if (track.name.rfind("w", 0) == 0)
            worker_track = true;
    EXPECT_TRUE(worker_track);

    // Golden shape: per-track monotone timestamps, matched begin/end.
    std::map<prof::TrackId, u64> last_ts;
    std::map<prof::TrackId, int> open_spans;
    for (const auto& e : session.events()) {
        auto [it, first] = last_ts.try_emplace(e.track, e.ts);
        if (!first) {
            EXPECT_GE(e.ts, it->second)
                << "timestamps must be monotone within track "
                << session.tracks()[e.track].name;
            it->second = e.ts;
        }
        if (e.phase == prof::EventPhase::kBegin)
            ++open_spans[e.track];
        if (e.phase == prof::EventPhase::kEnd) {
            --open_spans[e.track];
            EXPECT_GE(open_spans[e.track], 0);
        }
    }
    for (const auto& [track, open] : open_spans)
        EXPECT_EQ(open, 0) << "unclosed span on track "
                           << session.tracks()[track].name;

    // And the export is still syntactically sound.
    const std::string json = prof::toChromeTraceJson(session);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("w"), std::string::npos);
}

}  // namespace
}  // namespace eclsim::harness
