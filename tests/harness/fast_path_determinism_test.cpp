/**
 * @file
 * End-to-end determinism regression for the hookless fast access path:
 * a table4_titanv-style harness cell measured with the fast path and
 * with EngineOptions::force_slow_path must produce byte-identical
 * Measurements — enabling or disabling the optimization can change
 * wall-clock time but never a simulated result, so every paper table
 * is path-independent.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "graph/input_catalog.hpp"
#include "harness/experiment.hpp"
#include "simt/gpu_spec.hpp"

namespace eclsim::harness {
namespace {

ExperimentConfig
cellConfig(bool force_slow)
{
    ExperimentConfig config;
    config.reps = 2;
    config.graph_divisor = 4096;
    config.seed = 12345;
    config.jobs = 1;
    config.force_slow_path = force_slow;
    return config;
}

/** Bit-exact double comparison: the contract is byte identity, not
 *  epsilon closeness. */
::testing::AssertionResult
sameBits(double a, double b)
{
    if (std::memcmp(&a, &b, sizeof(double)) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " vs " << b << " differ in bits";
}

void
expectIdentical(const Measurement& fast, const Measurement& slow)
{
    EXPECT_EQ(fast.input, slow.input);
    EXPECT_EQ(fast.gpu, slow.gpu);
    EXPECT_TRUE(sameBits(fast.baseline_ms, slow.baseline_ms));
    EXPECT_TRUE(sameBits(fast.racefree_ms, slow.racefree_ms));
    EXPECT_EQ(fast.baseline_iterations, slow.baseline_iterations);
    EXPECT_EQ(fast.racefree_iterations, slow.racefree_iterations);
    EXPECT_TRUE(sameBits(fast.edges, slow.edges));
    EXPECT_TRUE(sameBits(fast.vertices, slow.vertices));
    EXPECT_TRUE(sameBits(fast.avg_degree, slow.avg_degree));
}

class FastPathCellTest : public ::testing::TestWithParam<Algo>
{
};

TEST_P(FastPathCellTest, MeasurementIsPathIndependent)
{
    auto& catalog = graph::InputCatalog::shared();
    const auto graph =
        GetParam() == Algo::kMst
            ? catalog.getWeighted("as-skitter", 4096)
            : catalog.get("as-skitter", 4096);

    const auto fast = measureSeeded(simt::titanV(), *graph, "as-skitter",
                                    GetParam(), cellConfig(false),
                                    cellSeed(12345, 0));
    const auto slow = measureSeeded(simt::titanV(), *graph, "as-skitter",
                                    GetParam(), cellConfig(true),
                                    cellSeed(12345, 0));
    expectIdentical(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Suite, FastPathCellTest,
                         ::testing::Values(Algo::kCc, Algo::kMis,
                                           Algo::kMst),
                         [](const auto& info) {
                             switch (info.param) {
                               case Algo::kCc: return "cc";
                               case Algo::kMis: return "mis";
                               case Algo::kMst: return "mst";
                               default: return "other";
                             }
                         });

TEST(FastPathCellTest, RepeatedFastRunsAreDeterministic)
{
    // Guards the scratch-reuse changes: recycled blockOrder / shared /
    // thread buffers must not leak state from one launch into the next.
    const auto graph =
        graph::InputCatalog::shared().get("as-skitter", 4096);
    const auto first = measureSeeded(simt::titanV(), *graph, "as-skitter",
                                     Algo::kGc, cellConfig(false),
                                     cellSeed(12345, 0));
    const auto second = measureSeeded(simt::titanV(), *graph, "as-skitter",
                                      Algo::kGc, cellConfig(false),
                                      cellSeed(12345, 0));
    expectIdentical(first, second);
}

}  // namespace
}  // namespace eclsim::harness
