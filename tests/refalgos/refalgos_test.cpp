/**
 * @file
 * Tests of the sequential reference oracles themselves (they guard the
 * whole suite, so they get their own hand-checked cases).
 */
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::refalgos {
namespace {

using graph::buildCsr;

TEST(ConnectedComponents, HandCase)
{
    auto g = buildCsr(6, {{0, 1}, {1, 2}, {4, 5}}, {});
    const auto labels = connectedComponents(g);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
    EXPECT_EQ(labels[4], labels[5]);
    EXPECT_NE(labels[0], labels[3]);
    EXPECT_NE(labels[0], labels[4]);
    EXPECT_EQ(countDistinct(labels), 3u);
    // labels are the minimum vertex of each component
    EXPECT_EQ(labels[2], 0u);
    EXPECT_EQ(labels[5], 4u);
}

TEST(SamePartition, DetectsRenamesAndSplits)
{
    EXPECT_TRUE(samePartition({0, 0, 2, 2}, {7, 7, 9, 9}));
    EXPECT_FALSE(samePartition({0, 0, 2, 2}, {7, 7, 7, 9}));  // merged
    EXPECT_FALSE(samePartition({0, 0, 0, 0}, {1, 1, 2, 2}));  // split
    EXPECT_FALSE(samePartition({0, 0}, {0, 0, 0}));           // size
    EXPECT_TRUE(samePartition({}, {}));
}

TEST(Coloring, ValidityChecker)
{
    auto g = buildCsr(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, {});
    EXPECT_TRUE(isValidColoring(g, {0, 1, 0, 1}));
    EXPECT_FALSE(isValidColoring(g, {0, 0, 1, 1}));
    EXPECT_FALSE(isValidColoring(g, {0, 1}));  // wrong size
    EXPECT_EQ(countColors({0, 1, 0, 1}), 2u);
}

TEST(Coloring, GreedyBound)
{
    auto cycle = buildCsr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, {});
    const auto k = greedyColorCount(cycle);
    EXPECT_GE(k, 2u);  // odd cycle actually needs 3
    EXPECT_LE(k, 3u);
}

TEST(Mis, Checkers)
{
    auto path = buildCsr(4, {{0, 1}, {1, 2}, {2, 3}}, {});
    EXPECT_TRUE(isIndependentSet(path, {true, false, true, false}));
    EXPECT_TRUE(
        isMaximalIndependentSet(path, {true, false, true, false}));
    // independent but not maximal: vertex 3 could be added
    EXPECT_TRUE(isIndependentSet(path, {true, false, false, false}));
    EXPECT_FALSE(
        isMaximalIndependentSet(path, {true, false, false, false}));
    // not independent
    EXPECT_FALSE(isIndependentSet(path, {true, true, false, false}));
}

TEST(Mst, HandCase)
{
    //     1       4
    //  0 --- 1 ------ 2
    //   \----------/
    //        2
    auto g = buildCsr(3, {{0, 1, 1}, {1, 2, 4}, {0, 2, 2}},
                      {.keep_weights = true});
    EXPECT_EQ(minimumSpanningForestWeight(g), 3u);  // edges 1 and 2
}

TEST(Mst, ForestOverComponents)
{
    auto g = buildCsr(5, {{0, 1, 10}, {1, 2, 20}, {3, 4, 5}},
                      {.keep_weights = true});
    EXPECT_EQ(minimumSpanningForestWeight(g), 35u);
}

TEST(Scc, HandCase)
{
    // 0->1->2->0 cycle, 3 dangling, 2->3
    auto g = buildCsr(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}},
                      {.directed = true});
    const auto labels = stronglyConnectedComponents(g);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
    EXPECT_NE(labels[0], labels[3]);
    EXPECT_EQ(labels[0], 0u);  // min-vertex labeling
}

TEST(Scc, LargeRandomAgreesWithComponentAlgebra)
{
    // Property: condensing SCCs yields a DAG — no two distinct SCCs can
    // reach each other. Spot-check via the mesh generator (one SCC).
    auto mesh = graph::makeDirectedMesh(300, 0.5, false, 2);
    EXPECT_EQ(countDistinct(stronglyConnectedComponents(mesh)), 1u);
}

TEST(Apsp, HandCase)
{
    auto g = buildCsr(3, {{0, 1, 5}, {1, 2, 2}},
                      {.directed = true, .keep_weights = true});
    const auto d = allPairsShortestPaths(g);
    EXPECT_EQ(d[0 * 3 + 1], 5);
    EXPECT_EQ(d[0 * 3 + 2], 7);
    EXPECT_EQ(d[1 * 3 + 2], 2);
    EXPECT_GE(d[2 * 3 + 0], kApspInfinity);
    EXPECT_EQ(d[1 * 3 + 1], 0);
}

TEST(Apsp, PicksShorterOfParallelRoutes)
{
    auto g = buildCsr(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 5}},
                      {.directed = true, .keep_weights = true});
    const auto d = allPairsShortestPaths(g);
    EXPECT_EQ(d[0 * 3 + 2], 2);  // via vertex 1, not the direct arc
}

TEST(PageRankOracle, DirectedCycleIsExactlyUniform)
{
    // On a directed 4-cycle the uniform vector is the fixed point:
    // every update is 0.15/4 + 0.85 * 0.25 = 0.25, at any iteration
    // count and damping.
    auto g = buildCsr(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
                      {.directed = true});
    const auto ranks = pageRank(g, 10, 0.85f);
    ASSERT_EQ(ranks.size(), 4u);
    for (double r : ranks)
        EXPECT_NEAR(r, 0.25, 1e-12);
}

TEST(PageRankOracle, StarMatchesClosedForm)
{
    // Bidirectional 4-vertex star. The fixed point solves
    //   c = 0.15/4 + 0.85 * 3l,  l = 0.15/4 + 0.85 * c/3
    // giving c = 0.133125 / 0.2775, l = (1 - c) / 3. 200 iterations
    // converge far below the comparison tolerance, which itself allows
    // for the float damping constant (0.85f != 0.85 by ~1.2e-8).
    auto g = buildCsr(
        4, {{0, 1}, {1, 0}, {0, 2}, {2, 0}, {0, 3}, {3, 0}},
        {.directed = true});
    const auto ranks = pageRank(g, 200, 0.85f);
    const double center = 0.133125 / 0.2775;
    const double leaf = (1.0 - center) / 3.0;
    EXPECT_NEAR(ranks[0], center, 1e-7);
    for (int v = 1; v < 4; ++v)
        EXPECT_NEAR(ranks[v], leaf, 1e-7);
}

TEST(PageRankOracle, DanglingMassKeepsTheSumAtOne)
{
    // Vertices 1 and 2 are sinks; without dangling-rank pooling the
    // total mass would decay every iteration.
    auto g = buildCsr(3, {{0, 1}, {0, 2}}, {.directed = true});
    const auto ranks = pageRank(g, 50, 0.85f);
    double sum = 0.0;
    for (double r : ranks)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(ranks[1], ranks[2], 1e-15);  // symmetric targets
}

TEST(BfsOracle, DiamondDagHandLevels)
{
    // 0 -> {1, 2} -> 3, vertex 4 unreachable: levels 0, 1, 1, 2, and
    // the unreached sentinel.
    auto g = buildCsr(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}},
                      {.directed = true});
    const auto levels = bfsLevels(g, 0);
    const std::vector<u32> expect = {0, 1, 1, 2, kBfsUnreached};
    EXPECT_EQ(levels, expect);
}

TEST(BfsOracle, SourceIsItsOwnLevelZero)
{
    auto g = buildCsr(3, {{0, 1}, {1, 2}}, {.directed = true});
    const auto levels = bfsLevels(g, 2);
    EXPECT_EQ(levels[2], 0u);
    EXPECT_EQ(levels[0], kBfsUnreached);  // no arc back to 0
    EXPECT_EQ(levels[1], kBfsUnreached);
}

TEST(ConnectedComponents, MultiComponentCounts)
{
    // Triangle + edge + two isolated vertices: four components.
    auto g = buildCsr(7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}}, {});
    EXPECT_EQ(countDistinct(connectedComponents(g)), 4u);
}

}  // namespace
}  // namespace eclsim::refalgos
