/**
 * @file
 * Tests of the binary graph IO, the Tables II/III input catalog, and
 * the InputCatalog graph cache used by the parallel suite runner.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <thread>
#include <vector>

#include "graph/catalog.hpp"
#include "graph/generators.hpp"
#include "graph/input_catalog.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "prof/counters.hpp"

namespace eclsim::graph {
namespace {

TEST(GraphIo, RoundTripUnweighted)
{
    const auto g = makeRmat(9, 2000, RmatParams{}, 1);
    const std::string path = ::testing::TempDir() + "/io_unweighted.eg";
    writeGraph(g, path);
    EXPECT_TRUE(readGraph(path) == g);
}

TEST(GraphIo, RoundTripWeightedDirected)
{
    RmatParams params;
    params.directed = true;
    const auto g =
        withSyntheticWeights(makeRmat(8, 900, params, 2), 50, 3);
    const std::string path = ::testing::TempDir() + "/io_weighted.eg";
    writeGraph(g, path);
    const auto back = readGraph(path);
    EXPECT_TRUE(back == g);
    EXPECT_TRUE(back.directed());
    EXPECT_TRUE(back.weighted());
}

TEST(GraphIo, RejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/io_garbage.eg";
    std::ofstream(path) << "this is not a graph";
    EXPECT_DEATH(readGraph(path), "not an eclsim graph");
}

// --- negative paths: every fatal() must name the path and what broke ------

namespace {

/** A small valid graph file to corrupt: n=4, m=4, offsets [0,1,3,4,4].
 *  Layout: magic[8], flags u32 @8, n u32 @12, m u64 @16,
 *  row_offsets (EdgeId) @24, col_indices (VertexId) @64. */
std::string
writeSmallGraphFile(const std::string& name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    writeGraph(buildCsr(4, {{0, 1}, {1, 2}}, {}), path);
    return path;
}

void
truncateFile(const std::string& path, size_t keep_bytes)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), keep_bytes);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(),
               static_cast<std::streamsize>(keep_bytes));
}

template <typename T>
void
patchFile(const std::string& path, std::streamoff offset, T value)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(offset);
    f.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace

TEST(GraphIo, MissingFileReportsErrnoText)
{
    EXPECT_DEATH(readGraph("/no/such/dir/io_missing.eg"),
                 "cannot open.*No such file or directory");
}

TEST(GraphIo, TruncatedOffsetsArrayNamesTheField)
{
    const auto path = writeSmallGraphFile("io_trunc_offsets.eg");
    truncateFile(path, 40);  // header + half the row_offsets array
    EXPECT_DEATH(readGraph(path),
                 "truncated graph file.*while reading row_offsets");
}

TEST(GraphIo, TruncatedHeaderNamesTheField)
{
    const auto path = writeSmallGraphFile("io_trunc_header.eg");
    truncateFile(path, 14);  // magic + flags + half of num_vertices
    EXPECT_DEATH(readGraph(path),
                 "truncated graph file.*while reading num_vertices");
}

TEST(GraphIo, WeightedFlagWithoutWeightsNamesTheField)
{
    const auto path = writeSmallGraphFile("io_flag_mismatch.eg");
    patchFile<u32>(path, 8, 1u << 1);  // claim weighted; no weights follow
    EXPECT_DEATH(readGraph(path),
                 "truncated graph file.*while reading weights");
}

TEST(GraphIo, UnknownFlagBitsRejected)
{
    const auto path = writeSmallGraphFile("io_unknown_flags.eg");
    patchFile<u32>(path, 8, 1u << 2);
    EXPECT_DEATH(readGraph(path), "unknown flag bits");
}

TEST(GraphIo, ArcCountDisagreeingWithOffsetsRejected)
{
    const auto path = writeSmallGraphFile("io_bad_arc_count.eg");
    patchFile<u64>(path, 16, u64{5});  // row_offsets still end at 4
    EXPECT_DEATH(readGraph(path), "disagrees with num_arcs");
}

TEST(GraphIo, DecreasingOffsetsRejected)
{
    const auto path = writeSmallGraphFile("io_bad_offsets.eg");
    patchFile<u64>(path, 24 + 8, u64{1000});  // row_offsets[1]
    EXPECT_DEATH(readGraph(path), "row_offsets.*decreases");
}

TEST(GraphIo, OutOfRangeTargetRejected)
{
    const auto path = writeSmallGraphFile("io_bad_target.eg");
    patchFile<u32>(path, 64, 99u);  // col_indices[0], only 4 vertices
    EXPECT_DEATH(readGraph(path), "col_indices.*out of range");
}

TEST(Catalog, SeventeenUndirectedTenDirected)
{
    EXPECT_EQ(undirectedCatalog().size(), 17u);  // Table II
    EXPECT_EQ(directedCatalog().size(), 10u);    // Table III
}

TEST(Catalog, PaperStatisticsMatchTable2)
{
    const auto& e = findCatalogEntry("2d-2e20.sym");
    EXPECT_EQ(e.paper_edges, 4190208u);
    EXPECT_EQ(e.paper_vertices, 1048576u);
    EXPECT_DOUBLE_EQ(e.paper_davg, 4.0);
    EXPECT_EQ(e.paper_dmax, 4u);
    EXPECT_EQ(e.type, "grid");

    const auto& k = findCatalogEntry("kron_g500-logn21");
    EXPECT_EQ(k.paper_edges, 182081864u);
    EXPECT_EQ(k.paper_dmax, 213904u);
}

TEST(Catalog, PaperStatisticsMatchTable3)
{
    const auto& e = findCatalogEntry("wikipedia");
    EXPECT_TRUE(e.directed);
    EXPECT_EQ(e.paper_edges, 39383235u);
    EXPECT_EQ(e.paper_vertices, 3148440u);
    const auto& star = findCatalogEntry("star");
    EXPECT_DOUBLE_EQ(star.paper_davg, 2.0);
    EXPECT_EQ(star.paper_dmax, 2u);
}

TEST(Catalog, StandInsMatchDirectionAndRoughDegree)
{
    // Every stand-in must have the right directedness and an average
    // degree within 2.5x of the paper's (the structural families drive
    // the paper's per-input variation).
    for (const auto& entry : undirectedCatalog()) {
        // makeInput, not entry.make: the shared build path also asserts
        // the emitted flag matches the entry's declaration.
        const auto g = makeInput(entry.name, 2048);
        EXPECT_FALSE(g.directed()) << entry.name;
        const auto props = computeProperties(g);
        EXPECT_GT(props.num_vertices, 500u) << entry.name;
        EXPECT_GT(props.avg_degree, entry.paper_davg / 2.5) << entry.name;
        EXPECT_LT(props.avg_degree, entry.paper_davg * 2.5) << entry.name;
    }
    for (const auto& entry : directedCatalog()) {
        const auto g = makeInput(entry.name, 2048);
        EXPECT_TRUE(g.directed()) << entry.name;
        const auto props = computeProperties(g);
        EXPECT_GT(props.avg_degree, entry.paper_davg / 2.5) << entry.name;
        EXPECT_LT(props.avg_degree, entry.paper_davg * 2.5) << entry.name;
    }
}

TEST(Catalog, SizeOrderingPreservedByScaling)
{
    // Bigger paper inputs must yield bigger stand-ins (until the clamp):
    // europe_osm (50.9M vertices) > internet (124k vertices).
    const auto big = makeInput("europe_osm", 512);
    const auto small = makeInput("internet", 512);
    EXPECT_GT(big.numVertices(), small.numVertices());
}

TEST(Catalog, UnknownNameDies)
{
    EXPECT_DEATH(findCatalogEntry("no-such-graph"),
                 "unknown catalog input");
}

TEST(InputCatalog, RepeatedLookupsReturnTheSameObject)
{
    InputCatalog cache;
    const GraphPtr first = cache.get("internet", 4096);
    EXPECT_EQ(cache.get("internet", 4096).get(), first.get());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    // The cached graph is exactly what the generator recipe builds.
    EXPECT_TRUE(*first == makeInput("internet", 4096));
}

TEST(InputCatalog, DistinctDivisorsAreDistinctObjects)
{
    InputCatalog cache;
    const GraphPtr big = cache.get("internet", 2048);
    const GraphPtr small = cache.get("internet", 4096);
    EXPECT_NE(big.get(), small.get());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(InputCatalog, WeightedVariantIsCachedSeparately)
{
    InputCatalog cache;
    const GraphPtr plain = cache.get("internet", 4096);
    const GraphPtr weighted = cache.getWeighted("internet", 4096);
    EXPECT_NE(plain.get(), weighted.get());
    EXPECT_FALSE(plain->weighted());
    EXPECT_TRUE(weighted->weighted());
    EXPECT_EQ(cache.getWeighted("internet", 4096).get(), weighted.get());
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    // Outstanding pointers survive a clear.
    EXPECT_GT(plain->numVertices(), 0u);
}

TEST(InputCatalog, ConcurrentLookupsBuildExactlyOnce)
{
    InputCatalog cache;
    constexpr int kThreads = 8;
    std::vector<GraphPtr> seen(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&cache, &seen, t] { seen[t] = cache.get("star", 4096); });
    for (auto& thread : threads)
        thread.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t].get(), seen[0].get());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits(), static_cast<u64>(kThreads - 1));
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(InputCatalog, DirectedLookupsKeepByteAccountingUnchanged)
{
    // BFS/PageRank fetch directed inputs through the same cache the
    // undirected algorithms always used; the accounting identities
    // existing callers rely on must hold unchanged with both families
    // resident.
    InputCatalog cache;
    const GraphPtr u = cache.get("internet", 4096);
    const u64 undirected_bytes = cache.sizeBytes();
    EXPECT_EQ(undirected_bytes, graphBytes(*u));

    const GraphPtr d = cache.get("wikipedia", 4096);
    EXPECT_TRUE(d->directed());
    EXPECT_FALSE(u->directed());
    EXPECT_EQ(cache.sizeBytes(), undirected_bytes + graphBytes(*d));
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);

    // Re-fetching the undirected caller's graph is a hit on the same
    // object with the same bytes — the directed entry changed nothing
    // for it.
    const GraphPtr again = cache.get("internet", 4096);
    EXPECT_EQ(again.get(), u.get());
    EXPECT_EQ(graphBytes(*again), undirected_bytes);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(InputCatalog, WeightedDirectedStandInsKeepTheirFlag)
{
    // withSyntheticWeights must carry the directed flag through: a
    // weighted directed stand-in is still directed.
    InputCatalog cache;
    const GraphPtr wd = cache.getWeighted("wikipedia", 8192);
    EXPECT_TRUE(wd->directed());
    EXPECT_TRUE(wd->weighted());
    // Derived from the cached unweighted parent: both are resident and
    // both are accounted.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.sizeBytes(),
              graphBytes(*wd) +
                  graphBytes(*cache.get("wikipedia", 8192)));
}

TEST(InputCatalog, SharedInstanceIsProcessWide)
{
    EXPECT_EQ(&InputCatalog::shared(), &InputCatalog::shared());
}

TEST(InputCatalog, AccountsResidentBytes)
{
    InputCatalog cache;
    EXPECT_EQ(cache.sizeBytes(), 0u);
    const GraphPtr g = cache.get("internet", 4096);
    EXPECT_EQ(cache.sizeBytes(), graphBytes(*g));
    const GraphPtr h = cache.get("star", 4096);
    EXPECT_EQ(cache.sizeBytes(), graphBytes(*g) + graphBytes(*h));
    cache.clear();
    EXPECT_EQ(cache.sizeBytes(), 0u);
}

TEST(InputCatalog, CapacityCapEvictsLeastRecentlyUsed)
{
    InputCatalog cache;
    const GraphPtr a = cache.get("internet", 4096);   // oldest
    const GraphPtr b = cache.get("star", 4096);
    cache.get("internet", 4096);                      // touch a: b is LRU

    // A cap that fits only one of the two evicts the LRU entry (b).
    cache.setCapacityBytes(graphBytes(*a) + graphBytes(*b) - 1);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.sizeBytes(), graphBytes(*a));

    // The evicted graph is still alive through the outstanding pointer,
    // and the survivor is still served from cache.
    EXPECT_GT(b->numVertices(), 0u);
    EXPECT_EQ(cache.get("internet", 4096).get(), a.get());

    // Re-requesting the evicted key rebuilds (a fresh object).
    const GraphPtr b2 = cache.get("star", 4096);
    EXPECT_NE(b2.get(), b.get());
    EXPECT_TRUE(*b2 == *b);
    // ...and that insert pushed the older entry out in turn.
    EXPECT_EQ(cache.evictions(), 2u);
}

TEST(InputCatalog, EvictionNeverDropsTheEntryBeingInserted)
{
    InputCatalog cache;
    cache.setCapacityBytes(1);  // smaller than any graph
    const GraphPtr g = cache.get("internet", 4096);
    EXPECT_GT(g->numVertices(), 0u);
    // The just-built entry stays resident even though it exceeds the
    // cap on its own (there is nothing else to evict).
    EXPECT_EQ(cache.size(), 1u);
    // The next insert evicts it (now LRU) but never the new one.
    const GraphPtr h = cache.get("star", 4096);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.sizeBytes(), graphBytes(*h));
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(InputCatalog, PublishesCatalogCounters)
{
    InputCatalog cache;
    cache.get("internet", 4096);
    cache.get("internet", 4096);
    prof::CounterRegistry registry;
    cache.publishCounters(registry);
    EXPECT_EQ(registry.valueByName("sim/catalog/hits"), 1u);
    EXPECT_EQ(registry.valueByName("sim/catalog/misses"), 1u);
    EXPECT_EQ(registry.valueByName("sim/catalog/evictions"), 0u);
    EXPECT_EQ(registry.valueByName("sim/catalog/resident_graphs"), 1u);
    EXPECT_EQ(registry.valueByName("sim/catalog/resident_bytes"),
              cache.sizeBytes());
}

TEST(Properties, CountsIsolatedAndDegrees)
{
    auto g = buildCsr(5, {{0, 1}, {1, 2}}, {});
    const auto props = computeProperties(g);
    EXPECT_EQ(props.num_vertices, 5u);
    EXPECT_EQ(props.num_arcs, 4u);
    EXPECT_EQ(props.max_degree, 2u);
    EXPECT_EQ(props.min_degree, 0u);
    EXPECT_EQ(props.isolated_vertices, 2u);
    EXPECT_DOUBLE_EQ(props.avg_degree, 0.8);
}

}  // namespace
}  // namespace eclsim::graph
