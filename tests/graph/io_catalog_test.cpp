/**
 * @file
 * Tests of the binary graph IO and the Tables II/III input catalog.
 */
#include <gtest/gtest.h>

#include <fstream>

#include "graph/catalog.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace eclsim::graph {
namespace {

TEST(GraphIo, RoundTripUnweighted)
{
    const auto g = makeRmat(9, 2000, RmatParams{}, 1);
    const std::string path = ::testing::TempDir() + "/io_unweighted.eg";
    writeGraph(g, path);
    EXPECT_TRUE(readGraph(path) == g);
}

TEST(GraphIo, RoundTripWeightedDirected)
{
    RmatParams params;
    params.directed = true;
    const auto g =
        withSyntheticWeights(makeRmat(8, 900, params, 2), 50, 3);
    const std::string path = ::testing::TempDir() + "/io_weighted.eg";
    writeGraph(g, path);
    const auto back = readGraph(path);
    EXPECT_TRUE(back == g);
    EXPECT_TRUE(back.directed());
    EXPECT_TRUE(back.weighted());
}

TEST(GraphIo, RejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/io_garbage.eg";
    std::ofstream(path) << "this is not a graph";
    EXPECT_DEATH(readGraph(path), "not an eclsim graph");
}

TEST(Catalog, SeventeenUndirectedTenDirected)
{
    EXPECT_EQ(undirectedCatalog().size(), 17u);  // Table II
    EXPECT_EQ(directedCatalog().size(), 10u);    // Table III
}

TEST(Catalog, PaperStatisticsMatchTable2)
{
    const auto& e = findCatalogEntry("2d-2e20.sym");
    EXPECT_EQ(e.paper_edges, 4190208u);
    EXPECT_EQ(e.paper_vertices, 1048576u);
    EXPECT_DOUBLE_EQ(e.paper_davg, 4.0);
    EXPECT_EQ(e.paper_dmax, 4u);
    EXPECT_EQ(e.type, "grid");

    const auto& k = findCatalogEntry("kron_g500-logn21");
    EXPECT_EQ(k.paper_edges, 182081864u);
    EXPECT_EQ(k.paper_dmax, 213904u);
}

TEST(Catalog, PaperStatisticsMatchTable3)
{
    const auto& e = findCatalogEntry("wikipedia");
    EXPECT_TRUE(e.directed);
    EXPECT_EQ(e.paper_edges, 39383235u);
    EXPECT_EQ(e.paper_vertices, 3148440u);
    const auto& star = findCatalogEntry("star");
    EXPECT_DOUBLE_EQ(star.paper_davg, 2.0);
    EXPECT_EQ(star.paper_dmax, 2u);
}

TEST(Catalog, StandInsMatchDirectionAndRoughDegree)
{
    // Every stand-in must have the right directedness and an average
    // degree within 2.5x of the paper's (the structural families drive
    // the paper's per-input variation).
    for (const auto& entry : undirectedCatalog()) {
        const auto g = entry.make(2048);
        EXPECT_FALSE(g.directed()) << entry.name;
        const auto props = computeProperties(g);
        EXPECT_GT(props.num_vertices, 500u) << entry.name;
        EXPECT_GT(props.avg_degree, entry.paper_davg / 2.5) << entry.name;
        EXPECT_LT(props.avg_degree, entry.paper_davg * 2.5) << entry.name;
    }
    for (const auto& entry : directedCatalog()) {
        const auto g = entry.make(2048);
        EXPECT_TRUE(g.directed()) << entry.name;
        const auto props = computeProperties(g);
        EXPECT_GT(props.avg_degree, entry.paper_davg / 2.5) << entry.name;
        EXPECT_LT(props.avg_degree, entry.paper_davg * 2.5) << entry.name;
    }
}

TEST(Catalog, SizeOrderingPreservedByScaling)
{
    // Bigger paper inputs must yield bigger stand-ins (until the clamp):
    // europe_osm (50.9M vertices) > internet (124k vertices).
    const auto big = makeInput("europe_osm", 512);
    const auto small = makeInput("internet", 512);
    EXPECT_GT(big.numVertices(), small.numVertices());
}

TEST(Catalog, UnknownNameDies)
{
    EXPECT_DEATH(findCatalogEntry("no-such-graph"),
                 "unknown catalog input");
}

TEST(Properties, CountsIsolatedAndDegrees)
{
    auto g = buildCsr(5, {{0, 1}, {1, 2}}, {});
    const auto props = computeProperties(g);
    EXPECT_EQ(props.num_vertices, 5u);
    EXPECT_EQ(props.num_arcs, 4u);
    EXPECT_EQ(props.max_degree, 2u);
    EXPECT_EQ(props.min_degree, 0u);
    EXPECT_EQ(props.isolated_vertices, 2u);
    EXPECT_DOUBLE_EQ(props.avg_degree, 0.8);
}

}  // namespace
}  // namespace eclsim::graph
