/**
 * @file
 * Tests of the CSR graph type, the edge-list builder, reversal, and
 * synthetic weights.
 */
#include <gtest/gtest.h>

#include "graph/csr.hpp"

namespace eclsim::graph {
namespace {

TEST(BuildCsr, UndirectedMirrorsEdges)
{
    auto g = buildCsr(4, {{0, 1}, {1, 2}}, {});
    EXPECT_FALSE(g.directed());
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numArcs(), 4u);  // both directions stored
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_EQ(g.degree(3), 0u);
    EXPECT_EQ(g.arcTarget(g.rowBegin(0)), 1u);
}

TEST(BuildCsr, DirectedKeepsArcs)
{
    auto g = buildCsr(3, {{0, 1}, {1, 2}, {2, 0}}, {.directed = true});
    EXPECT_TRUE(g.directed());
    EXPECT_EQ(g.numArcs(), 3u);
    EXPECT_EQ(g.degree(0), 1u);
}

TEST(BuildCsr, DedupAndSelfLoops)
{
    auto g = buildCsr(3, {{0, 1}, {0, 1}, {1, 0}, {2, 2}}, {});
    EXPECT_EQ(g.numArcs(), 2u);  // one undirected edge, no self loop
    auto keep = buildCsr(3, {{2, 2}},
                         {.directed = true, .remove_self_loops = false});
    EXPECT_EQ(keep.numArcs(), 1u);
    auto nodedup =
        buildCsr(3, {{0, 1}, {0, 1}}, {.directed = true, .dedup = false});
    EXPECT_EQ(nodedup.numArcs(), 2u);
}

TEST(BuildCsr, AdjacencyIsSorted)
{
    auto g = buildCsr(5, {{0, 4}, {0, 2}, {0, 1}, {0, 3}},
                      {.directed = true});
    for (EdgeId e = g.rowBegin(0) + 1; e < g.rowEnd(0); ++e)
        EXPECT_LT(g.arcTarget(e - 1), g.arcTarget(e));
}

TEST(BuildCsr, WeightsCarriedAndMirrored)
{
    auto g = buildCsr(3, {{0, 1, 7}, {1, 2, 3}}, {.keep_weights = true});
    ASSERT_TRUE(g.weighted());
    // find the 1->0 arc; its weight must equal the 0->1 arc's.
    for (EdgeId e = g.rowBegin(1); e < g.rowEnd(1); ++e) {
        if (g.arcTarget(e) == 0) {
            EXPECT_EQ(g.arcWeight(e), 7);
        }
        if (g.arcTarget(e) == 2) {
            EXPECT_EQ(g.arcWeight(e), 3);
        }
    }
}

TEST(Reversed, FlipsEveryArc)
{
    auto g = buildCsr(4, {{0, 1}, {0, 2}, {3, 0}}, {.directed = true});
    auto r = g.reversed();
    EXPECT_EQ(r.numArcs(), g.numArcs());
    EXPECT_EQ(r.degree(1), 1u);
    EXPECT_EQ(r.arcTarget(r.rowBegin(1)), 0u);
    EXPECT_EQ(r.degree(0), 1u);  // only 3->0 reversed gives 0->3
    EXPECT_EQ(r.arcTarget(r.rowBegin(0)), 3u);
    // Reversing twice restores the original adjacency structure.
    auto rr = r.reversed();
    EXPECT_EQ(rr.rowOffsets(), g.rowOffsets());
    EXPECT_EQ(rr.colIndices(), g.colIndices());
}

TEST(Reversed, CarriesWeights)
{
    auto g = buildCsr(3, {{0, 1, 9}, {1, 2, 4}},
                      {.directed = true, .keep_weights = true});
    auto r = g.reversed();
    ASSERT_TRUE(r.weighted());
    EXPECT_EQ(r.arcWeight(r.rowBegin(1)), 9);
    EXPECT_EQ(r.arcWeight(r.rowBegin(2)), 4);
}

TEST(SyntheticWeights, SymmetricAndInRange)
{
    auto g = buildCsr(50, {{0, 1}, {1, 2}, {2, 3}, {10, 20}, {20, 30}},
                      {});
    auto w = withSyntheticWeights(g, 10, 77);
    ASSERT_TRUE(w.weighted());
    for (VertexId v = 0; v < w.numVertices(); ++v)
        for (EdgeId e = w.rowBegin(v); e < w.rowEnd(v); ++e) {
            const i32 weight = w.arcWeight(e);
            EXPECT_GE(weight, 1);
            EXPECT_LE(weight, 10);
            // Mirror arc has the same weight.
            const VertexId t = w.arcTarget(e);
            bool found = false;
            for (EdgeId b = w.rowBegin(t); b < w.rowEnd(t); ++b)
                if (w.arcTarget(b) == v) {
                    EXPECT_EQ(w.arcWeight(b), weight);
                    found = true;
                }
            EXPECT_TRUE(found);
        }
}

TEST(SyntheticWeights, SeedChangesWeights)
{
    auto g = buildCsr(20, {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}}, {});
    auto a = withSyntheticWeights(g, 1000000, 1);
    auto b = withSyntheticWeights(g, 1000000, 2);
    EXPECT_NE(a.weights(), b.weights());
    auto c = withSyntheticWeights(g, 1000000, 1);
    EXPECT_EQ(a.weights(), c.weights());
}

}  // namespace
}  // namespace eclsim::graph
