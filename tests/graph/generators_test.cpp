/**
 * @file
 * Tests of the synthetic graph generators: structural invariants,
 * determinism, and the degree characteristics each family stands in for.
 */
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::graph {
namespace {

void
expectNoSelfLoopsOrDuplicates(const CsrGraph& g)
{
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        std::set<VertexId> seen;
        for (EdgeId e = g.rowBegin(v); e < g.rowEnd(v); ++e) {
            const VertexId t = g.arcTarget(e);
            EXPECT_NE(t, v) << "self loop at " << v;
            EXPECT_TRUE(seen.insert(t).second) << "dup arc " << v;
        }
    }
}

void
expectSymmetric(const CsrGraph& g)
{
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.rowBegin(v); e < g.rowEnd(v); ++e) {
            const VertexId t = g.arcTarget(e);
            bool back = false;
            for (EdgeId b = g.rowBegin(t); b < g.rowEnd(t); ++b)
                if (g.arcTarget(b) == v)
                    back = true;
            EXPECT_TRUE(back) << "missing mirror " << t << "->" << v;
        }
}

TEST(Grid2d, StructureAndDegrees)
{
    auto g = makeGrid2d(10, 8);
    EXPECT_EQ(g.numVertices(), 80u);
    // interior degree 4, corners 2
    const auto props = computeProperties(g);
    EXPECT_EQ(props.max_degree, 4u);
    EXPECT_EQ(props.min_degree, 2u);
    EXPECT_NEAR(props.avg_degree, 4.0, 0.6);
    expectSymmetric(g);
    expectNoSelfLoopsOrDuplicates(g);
    // a grid is connected
    EXPECT_EQ(refalgos::countDistinct(refalgos::connectedComponents(g)),
              1u);
}

TEST(TriangulatedGrid, AveragesNearSix)
{
    auto g = makeTriangulatedGrid(24, 24);
    const auto props = computeProperties(g);
    EXPECT_NEAR(props.avg_degree, 6.0, 0.8);  // the delaunay_n24 family
    EXPECT_EQ(refalgos::countDistinct(refalgos::connectedComponents(g)),
              1u);
}

TEST(RoadNetwork, SparseLikeRoadmaps)
{
    auto g = makeRoadNetwork(40, 40, 0.5, 5);
    const auto props = computeProperties(g);
    EXPECT_GT(props.avg_degree, 1.5);
    EXPECT_LT(props.avg_degree, 3.5);  // europe_osm is 2.1
    EXPECT_LE(props.max_degree, 6u);
    expectSymmetric(g);
}

TEST(RandomUniform, EdgeCountApproximate)
{
    auto g = makeRandomUniform(2000, 8000, 3);
    // each undirected edge stored twice; duplicates/self loops removed
    EXPECT_GT(g.numArcs(), 14000u);
    EXPECT_LE(g.numArcs(), 16000u);
    expectSymmetric(g);
    expectNoSelfLoopsOrDuplicates(g);
}

TEST(Rmat, PowerLawSkew)
{
    auto g = makeRmat(12, 40000, RmatParams{}, 9);
    EXPECT_EQ(g.numVertices(), 4096u);
    const auto props = computeProperties(g);
    // Kronecker graphs have hubs far above the average degree.
    EXPECT_GT(static_cast<double>(props.max_degree),
              8.0 * props.avg_degree);
    expectSymmetric(g);
}

TEST(Rmat, DirectedVariant)
{
    RmatParams params;
    params.directed = true;
    auto g = makeRmat(10, 8000, params, 9);
    EXPECT_TRUE(g.directed());
}

TEST(Rmat, DeterministicInSeed)
{
    auto a = makeRmat(10, 5000, RmatParams{}, 4);
    auto b = makeRmat(10, 5000, RmatParams{}, 4);
    auto c = makeRmat(10, 5000, RmatParams{}, 5);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(PrefAttach, HubsEmerge)
{
    auto g = makePrefAttach(3000, 4, 6);
    const auto props = computeProperties(g);
    EXPECT_NEAR(props.avg_degree, 8.0, 1.5);  // 2*m arcs per vertex
    EXPECT_GT(props.max_degree, 40u);         // rich get richer
    EXPECT_EQ(refalgos::countDistinct(refalgos::connectedComponents(g)),
              1u);  // attachment keeps it connected
}

TEST(Clustered, HighAverageDegree)
{
    auto g = makeClustered(1000, 25, 1.0, 7);
    const auto props = computeProperties(g);
    EXPECT_GT(props.avg_degree, 20.0);  // the coPapersDBLP family (56.4)
    expectSymmetric(g);
}

TEST(DirectedMesh, LowDegreeOneBigScc)
{
    auto g = makeDirectedMesh(2000, 0.7, false, 8);
    EXPECT_TRUE(g.directed());
    const auto props = computeProperties(g);
    EXPECT_GT(props.avg_degree, 1.5);
    EXPECT_LT(props.avg_degree, 3.2);  // Table III meshes: 2.0-3.0
    // the base cycle makes the whole mesh one SCC
    EXPECT_EQ(refalgos::countDistinct(
                  refalgos::stronglyConnectedComponents(g)),
              1u);
}

TEST(DirectedStar, ExactlyOutDegreeTwo)
{
    auto g = makeDirectedStar(512, 9);
    const auto props = computeProperties(g);
    EXPECT_EQ(props.max_degree, 2u);   // Table III: d-avg 2.00, d-max 2
    EXPECT_EQ(props.min_degree, 2u);
    EXPECT_EQ(refalgos::countDistinct(
                  refalgos::stronglyConnectedComponents(g)),
              1u);
}

TEST(DirectedPowerLaw, GiantButPartialScc)
{
    auto g = makeDirectedPowerLaw(11, 16000, 0.35, 10);
    EXPECT_TRUE(g.directed());
    const auto labels = refalgos::stronglyConnectedComponents(g);
    const auto sccs = refalgos::countDistinct(labels);
    // power-law inputs decompose into many SCCs including a big one
    EXPECT_GT(sccs, 10u);
    EXPECT_LT(sccs, g.numVertices());
}

TEST(KleinBottleTwist, StillOneScc)
{
    auto g = makeDirectedMesh(1500, 0.25, true, 11);
    EXPECT_EQ(refalgos::countDistinct(
                  refalgos::stronglyConnectedComponents(g)),
              1u);
}

}  // namespace
}  // namespace eclsim::graph
