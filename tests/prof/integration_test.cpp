/**
 * @file
 * End-to-end profiling tests: run real algorithm code with a trace
 * session attached and check that the counters reproduce the paper's
 * profiling narrative — the baseline CC hits in the L1 where the
 * race-free conversion goes to the L2 (Section VI-A) — and that race
 * reports surface as both counters and instant trace events.
 */
#include <gtest/gtest.h>

#include "algos/cc.hpp"
#include "graph/generators.hpp"
#include "prof/trace.hpp"
#include "simt/engine.hpp"

namespace eclsim::prof {
namespace {

struct ProfiledCc
{
    TraceSession session;
    double ms = 0.0;
};

void
runProfiledCc(const graph::CsrGraph& graph, algos::Variant variant,
              bool detect_races, ProfiledCc& out)
{
    simt::DeviceMemory memory;
    simt::EngineOptions options;
    options.detect_races = detect_races;
    options.trace = &out.session;
    simt::Engine engine(simt::titanV(), memory, options);
    out.ms = algos::runCc(engine, graph, variant).stats.ms;
}

TEST(ProfIntegration, BaselineCcHitsL1WhereRaceFreeGoesToL2)
{
    const auto graph = graph::makePrefAttach(4000, 8, /*seed=*/1);
    ProfiledCc base, free_;
    runProfiledCc(graph, algos::Variant::kBaseline, false, base);
    runProfiledCc(graph, algos::Variant::kRaceFree, false, free_);

    const u64 base_l1 = base.session.counters().valueByName("sim/mem/l1_hit");
    const u64 free_l1 = free_.session.counters().valueByName("sim/mem/l1_hit");
    // Section VI-A: the conversion moves the pointer-jumping reads out
    // of the L1, collapsing the hit count.
    EXPECT_GT(base_l1, free_l1);
    // ...and turns them into L2 atomic traffic.
    EXPECT_GT(free_.session.counters().valueByName("sim/mem/atomic_access"),
              base.session.counters().valueByName("sim/mem/atomic_access"));
    // Both runs exercised the plain load path at least somewhere.
    EXPECT_GT(base.session.counters().valueByName("sim/mem/load"), 0u);
    EXPECT_GT(free_.session.counters().valueByName("sim/mem/load"), 0u);
}

TEST(ProfIntegration, RaceDetectionFeedsCountersAndInstantEvents)
{
    const auto graph = graph::makePrefAttach(2000, 8, /*seed=*/2);
    ProfiledCc base;
    runProfiledCc(graph, algos::Variant::kBaseline, /*detect_races=*/true,
                  base);

    // Every shadowed access was counted...
    EXPECT_GT(base.session.counters().valueByName("sim/race/checks"), 0u);
    // ...the racy baseline produced conflicts...
    EXPECT_GT(base.session.counters().valueByName("sim/race/conflicts"),
              0u);
    // ...and each report surfaced as an instant event on the timeline.
    bool race_instant = false;
    for (const TraceEvent& e : base.session.events()) {
        if (e.phase == EventPhase::kInstant &&
            e.name.rfind("race:", 0) == 0)
            race_instant = true;
    }
    EXPECT_TRUE(race_instant);
}

TEST(ProfIntegration, RaceFreeCcReportsNoConflicts)
{
    const auto graph = graph::makePrefAttach(2000, 8, /*seed=*/3);
    ProfiledCc free_;
    runProfiledCc(graph, algos::Variant::kRaceFree, /*detect_races=*/true,
                  free_);
    EXPECT_GT(free_.session.counters().valueByName("sim/race/checks"), 0u);
    EXPECT_EQ(free_.session.counters().valueByName("sim/race/conflicts"),
              0u);
}

TEST(ProfIntegration, LaunchStatsAccumulate)
{
    simt::LaunchStats total;
    simt::LaunchStats a;
    a.cycles = 10;
    a.ms = 0.5;
    a.mem.loads = 3;
    simt::LaunchStats b;
    b.cycles = 32;
    b.ms = 1.5;
    b.mem.loads = 4;
    total += a;
    total += b;
    EXPECT_EQ(total.cycles, 42u);
    EXPECT_DOUBLE_EQ(total.ms, 2.0);
    EXPECT_EQ(total.mem.loads, 7u);
}

}  // namespace
}  // namespace eclsim::prof
