/**
 * @file
 * Tests of the TraceSession and the Chrome-trace exporter: track
 * bookkeeping, the shared timeline cursor, and the golden shape of the
 * exported JSON (syntactically valid, monotone per-track timestamps,
 * every begin matched by an end) — both for hand-built sessions and for
 * a real engine launch.
 */
#include <gtest/gtest.h>

#include <map>

#include "prof/trace.hpp"
#include "prof/trace_export.hpp"
#include "simt/engine.hpp"

namespace eclsim::prof {
namespace {

/**
 * Minimal JSON syntax checker: verifies string escaping and that
 * braces/brackets balance outside of strings. Not a full parser, but it
 * catches every way the exporter's string concatenation could go wrong
 * (unescaped quote, trailing comma is the viewers' problem, unbalanced
 * nesting).
 */
bool
looksLikeValidJson(const std::string& text)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            else if (static_cast<unsigned char>(c) < 0x20)
                return false;  // raw control character inside a string
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            ++depth;
            break;
          case '}':
          case ']':
            if (--depth < 0)
                return false;
            break;
          default:
            break;
        }
    }
    return depth == 0 && !in_string;
}

TEST(TraceSession, TracksAreCreatedOnceAndSmTracksNamed)
{
    TraceSession session;
    const TrackId kernels = session.track("kernels");
    EXPECT_EQ(session.track("kernels"), kernels);
    const TrackId sm0 = session.smTrack(0);
    const TrackId sm3 = session.smTrack(3);
    EXPECT_NE(sm0, sm3);
    EXPECT_EQ(session.smTrack(3), sm3);
    EXPECT_EQ(session.tracks()[sm3].name, "SM 3");
    // SM tracks sort after named tracks so the viewer shows kernels first.
    EXPECT_GT(session.tracks()[sm0].sort_index,
              session.tracks()[kernels].sort_index);
}

TEST(TraceSession, CursorOnlyMovesForward)
{
    TraceSession session;
    EXPECT_EQ(session.cursor(), 0u);
    session.advanceCursor(100);
    session.advanceCursor(40);  // backward, ignored
    EXPECT_EQ(session.cursor(), 100u);
    session.advanceCursor(250);
    EXPECT_EQ(session.cursor(), 250u);
}

TEST(TraceSession, RecordsSpansInstantsAndSamples)
{
    TraceSession session;
    const TrackId t = session.track("kernels");
    session.beginSpan(t, "init", 0, {{"grid", "4"}});
    session.instant(t, "race: parent", 5);
    session.counterSample(t, "l1_hits", 9, 123);
    session.endSpan(t, 10);

    ASSERT_EQ(session.events().size(), 4u);
    EXPECT_EQ(session.events()[0].phase, EventPhase::kBegin);
    EXPECT_EQ(session.events()[0].name, "init");
    EXPECT_EQ(session.events()[1].phase, EventPhase::kInstant);
    EXPECT_EQ(session.events()[2].phase, EventPhase::kCounter);
    EXPECT_EQ(session.events()[2].value, 123u);
    EXPECT_EQ(session.events()[3].phase, EventPhase::kEnd);
    EXPECT_EQ(session.events()[3].ts, 10u);

    session.clear();
    EXPECT_TRUE(session.events().empty());
    EXPECT_TRUE(session.tracks().empty());
    EXPECT_EQ(session.cursor(), 0u);
}

/** Per-track golden-shape check: monotone timestamps, matched B/E. */
void
expectWellFormed(const TraceSession& session)
{
    std::map<TrackId, u64> last_ts;
    std::map<TrackId, int> open_spans;
    for (const TraceEvent& e : session.events()) {
        auto [it, first] = last_ts.try_emplace(e.track, e.ts);
        if (!first) {
            EXPECT_GE(e.ts, it->second)
                << "timestamps must be monotone within track "
                << session.tracks()[e.track].name;
            it->second = e.ts;
        }
        if (e.phase == EventPhase::kBegin)
            ++open_spans[e.track];
        if (e.phase == EventPhase::kEnd) {
            --open_spans[e.track];
            EXPECT_GE(open_spans[e.track], 0)
                << "end without begin on track "
                << session.tracks()[e.track].name;
        }
    }
    for (const auto& [track, open] : open_spans)
        EXPECT_EQ(open, 0) << "unclosed span on track "
                           << session.tracks()[track].name;
}

TEST(TraceExport, HandBuiltSessionExportsValidJson)
{
    TraceSession session;
    const TrackId t = session.track("kernels");
    session.beginSpan(t, "sweep \"quoted\" \\ and\ncontrol", 1,
                      {{"key", "value\twith\ttabs"}});
    session.endSpan(t, 7);

    const std::string json = toChromeTraceJson(session);
    EXPECT_TRUE(looksLikeValidJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    // Metadata names the track.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("kernels"), std::string::npos);
    expectWellFormed(session);
}

TEST(TraceExport, CountersCsvIsSortedNameValue)
{
    CounterRegistry reg;
    reg.add(reg.id("b/two"), 2);
    reg.add(reg.id("a/one"), 1);
    EXPECT_EQ(countersCsv(reg), "counter,value\na/one,1\nb/two,2\n");
    const TextTable table = counterTable(reg);
    EXPECT_NE(table.toText().find("a/one"), std::string::npos);
}

TEST(TraceExport, EngineLaunchProducesWellFormedTrace)
{
    TraceSession session;
    simt::DeviceMemory memory;
    simt::EngineOptions options;
    options.trace = &session;
    simt::Engine engine(simt::titanV(), memory, options);

    const u32 n = 4096;
    auto data = memory.alloc<u32>(n, "data");
    for (int launch = 0; launch < 2; ++launch) {
        engine.launch("fill", simt::launchFor(n),
                      [&](simt::ThreadCtx& t) -> simt::Task {
                          const u32 v = t.globalThreadId();
                          if (v < n)
                              co_await t.store(data, v, v);
                      });
    }

    expectWellFormed(session);
    EXPECT_GT(session.cursor(), 0u);
    // One kernel span per launch plus per-SM residency spans.
    int kernel_begins = 0;
    bool sm_span = false;
    for (const TraceEvent& e : session.events()) {
        if (e.phase != EventPhase::kBegin)
            continue;
        if (session.tracks()[e.track].name == "kernels")
            ++kernel_begins;
        else if (session.tracks()[e.track].name.rfind("SM ", 0) == 0)
            sm_span = true;
    }
    EXPECT_EQ(kernel_begins, 2);
    EXPECT_TRUE(sm_span);
    // The memory-path counters saw the stores.
    EXPECT_GT(session.counters().valueByName("sim/mem/store"), 0u);

    const std::string json = toChromeTraceJson(session);
    EXPECT_TRUE(looksLikeValidJson(json));
}

}  // namespace
}  // namespace eclsim::prof
