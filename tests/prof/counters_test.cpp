/**
 * @file
 * Tests of the CounterRegistry: lazy registration, accumulation, reset,
 * and the name-sorted snapshot used by the exporters.
 */
#include <gtest/gtest.h>

#include "prof/counters.hpp"

namespace eclsim::prof {
namespace {

TEST(CounterRegistry, RegistersLazilyAndDeduplicates)
{
    CounterRegistry reg;
    EXPECT_EQ(reg.size(), 0u);
    const CounterId a = reg.id("sim/mem/l1_hit");
    const CounterId b = reg.id("sim/mem/l2_hit");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.id("sim/mem/l1_hit"), a);  // same name, same id
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.name(a), "sim/mem/l1_hit");
}

TEST(CounterRegistry, AddAccumulates)
{
    CounterRegistry reg;
    const CounterId a = reg.id("sim/race/checks");
    EXPECT_EQ(reg.value(a), 0u);
    reg.add(a);
    reg.add(a, 41);
    EXPECT_EQ(reg.value(a), 42u);
    EXPECT_EQ(reg.valueByName("sim/race/checks"), 42u);
}

TEST(CounterRegistry, ValueByNameOfUnregisteredIsZero)
{
    CounterRegistry reg;
    EXPECT_EQ(reg.valueByName("never/registered"), 0u);
    EXPECT_EQ(reg.size(), 0u);  // the query must not register it
}

TEST(CounterRegistry, ResetKeepsRegistrations)
{
    CounterRegistry reg;
    const CounterId a = reg.id("x");
    reg.add(a, 7);
    reg.reset();
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.value(a), 0u);
    EXPECT_EQ(reg.id("x"), a);
}

TEST(CounterRegistry, SnapshotIsNameSorted)
{
    CounterRegistry reg;
    reg.add(reg.id("sim/mem/l2_hit"), 2);
    reg.add(reg.id("sim/mem/l1_hit"), 1);
    reg.add(reg.id("host/phase"), 3);

    const auto samples = reg.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "host/phase");
    EXPECT_EQ(samples[0].value, 3u);
    EXPECT_EQ(samples[1].name, "sim/mem/l1_hit");
    EXPECT_EQ(samples[1].value, 1u);
    EXPECT_EQ(samples[2].name, "sim/mem/l2_hit");
    EXPECT_EQ(samples[2].value, 2u);
}

}  // namespace
}  // namespace eclsim::prof
