/**
 * @file
 * Tests of the CounterRegistry: lazy registration, accumulation, reset,
 * the name-sorted snapshot used by the exporters, and the shard-merge
 * path the parallel suite runner uses (per-worker registries folded
 * into one must reproduce the serial totals exactly).
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "prof/counters.hpp"

namespace eclsim::prof {
namespace {

TEST(CounterRegistry, RegistersLazilyAndDeduplicates)
{
    CounterRegistry reg;
    EXPECT_EQ(reg.size(), 0u);
    const CounterId a = reg.id("sim/mem/l1_hit");
    const CounterId b = reg.id("sim/mem/l2_hit");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.id("sim/mem/l1_hit"), a);  // same name, same id
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.name(a), "sim/mem/l1_hit");
}

TEST(CounterRegistry, AddAccumulates)
{
    CounterRegistry reg;
    const CounterId a = reg.id("sim/race/checks");
    EXPECT_EQ(reg.value(a), 0u);
    reg.add(a);
    reg.add(a, 41);
    EXPECT_EQ(reg.value(a), 42u);
    EXPECT_EQ(reg.valueByName("sim/race/checks"), 42u);
}

TEST(CounterRegistry, ValueByNameOfUnregisteredIsZero)
{
    CounterRegistry reg;
    EXPECT_EQ(reg.valueByName("never/registered"), 0u);
    EXPECT_EQ(reg.size(), 0u);  // the query must not register it
}

TEST(CounterRegistry, ResetKeepsRegistrations)
{
    CounterRegistry reg;
    const CounterId a = reg.id("x");
    reg.add(a, 7);
    reg.reset();
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.value(a), 0u);
    EXPECT_EQ(reg.id("x"), a);
}

TEST(CounterRegistry, MergeAddsAndRegistersMissingNames)
{
    CounterRegistry a;
    a.add(a.id("shared"), 10);
    a.add(a.id("only_a"), 1);

    CounterRegistry b;
    b.add(b.id("only_b"), 5);     // different registration order than a
    b.add(b.id("shared"), 32);
    b.id("zero_valued");          // registered but never bumped

    a.merge(b);
    EXPECT_EQ(a.valueByName("shared"), 42u);
    EXPECT_EQ(a.valueByName("only_a"), 1u);
    EXPECT_EQ(a.valueByName("only_b"), 5u);
    EXPECT_EQ(a.valueByName("zero_valued"), 0u);
    EXPECT_EQ(a.size(), 4u);  // zero-valued names merge too
}

TEST(CounterRegistry, ShardedThreadsMergeToExactSerialTotals)
{
    constexpr int kThreads = 8;
    constexpr u64 kIters = 20000;

    // Serial reference: one registry, one thread.
    CounterRegistry serial;
    for (int t = 0; t < kThreads; ++t) {
        const CounterId hit = serial.id("sim/mem/l1_hit");
        const CounterId rmw = serial.id("sim/mem/atomic_rmw");
        for (u64 i = 0; i < kIters; ++i) {
            serial.add(hit);
            if (i % 3 == 0)
                serial.add(rmw, 2);
        }
    }

    // Sharded: one private registry per thread, merged on join.
    std::vector<CounterRegistry> shards(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&shards, t] {
            CounterRegistry& reg = shards[t];
            const CounterId hit = reg.id("sim/mem/l1_hit");
            const CounterId rmw = reg.id("sim/mem/atomic_rmw");
            for (u64 i = 0; i < kIters; ++i) {
                reg.add(hit);
                if (i % 3 == 0)
                    reg.add(rmw, 2);
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    CounterRegistry merged;
    for (const CounterRegistry& shard : shards)
        merged.merge(shard);

    const auto expect = serial.snapshot();
    const auto got = merged.snapshot();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[i].name, expect[i].name);
        EXPECT_EQ(got[i].value, expect[i].value) << expect[i].name;
    }
}

TEST(CounterRegistry, SnapshotIsNameSorted)
{
    CounterRegistry reg;
    reg.add(reg.id("sim/mem/l2_hit"), 2);
    reg.add(reg.id("sim/mem/l1_hit"), 1);
    reg.add(reg.id("host/phase"), 3);

    const auto samples = reg.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "host/phase");
    EXPECT_EQ(samples[0].value, 3u);
    EXPECT_EQ(samples[1].name, "sim/mem/l1_hit");
    EXPECT_EQ(samples[1].value, 1u);
    EXPECT_EQ(samples[2].name, "sim/mem/l2_hit");
    EXPECT_EQ(samples[2].value, 2u);
}

}  // namespace
}  // namespace eclsim::prof
