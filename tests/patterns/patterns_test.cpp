/**
 * @file
 * Detector precision/recall over the labeled pattern microsuite: every
 * racy pattern must be flagged, every clean one must stay quiet, and
 * every clean pattern must also compute the right answer (in both
 * engine modes). This is the DataRaceBench-style evaluation the paper's
 * Section III surveys, applied to eclsim's own detector.
 */
#include <gtest/gtest.h>

#include "patterns/patterns.hpp"

namespace eclsim::patterns {
namespace {

std::unique_ptr<simt::Engine>
detectorEngine(simt::DeviceMemory& memory, u64 seed)
{
    simt::EngineOptions options;
    options.mode = simt::ExecMode::kInterleaved;
    options.detect_races = true;
    options.seed = seed;
    return std::make_unique<simt::Engine>(simt::titanV(), memory,
                                          options);
}

class PatternTest : public ::testing::TestWithParam<Pattern>
{
};

TEST_P(PatternTest, DetectorVerdictMatchesGroundTruth)
{
    const Pattern& pattern = GetParam();
    // Racy patterns may only manifest under some interleavings; give
    // the detector several seeds before concluding. Clean patterns must
    // stay quiet under every seed (no false positives, ever).
    bool flagged = false;
    for (u64 seed = 1; seed <= 8; ++seed) {
        simt::DeviceMemory memory;
        auto engine = detectorEngine(memory, seed);
        pattern.run(*engine);
        const bool races = engine->raceDetector()->totalRaces() > 0;
        if (!pattern.racy) {
            ASSERT_FALSE(races)
                << "false positive on '" << pattern.name << "' (seed "
                << seed << "):\n"
                << engine->raceDetector()->summary();
        }
        flagged = flagged || races;
    }
    if (pattern.racy) {
        EXPECT_TRUE(flagged)
            << "false negative: '" << pattern.name << "' never flagged";
    }
}

TEST_P(PatternTest, CleanPatternsComputeCorrectly)
{
    const Pattern& pattern = GetParam();
    if (pattern.racy)
        GTEST_SKIP() << "racy patterns have no guaranteed result";
    for (simt::ExecMode mode :
         {simt::ExecMode::kFast, simt::ExecMode::kInterleaved}) {
        simt::DeviceMemory memory;
        simt::EngineOptions options;
        options.mode = mode;
        simt::Engine engine(simt::rtx4090(), memory, options);
        EXPECT_TRUE(pattern.run(engine)) << pattern.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, PatternTest,
                         ::testing::ValuesIn(patternSuite()),
                         [](const auto& info) {
                             std::string name = info.param.name;
                             for (char& ch : name)
                                 if (ch == '-')
                                     ch = '_';
                             return name;
                         });

TEST(PatternSuite, BalancedAndComplete)
{
    size_t racy = 0, clean = 0;
    for (const Pattern& pattern : patternSuite())
        (pattern.racy ? racy : clean) += 1;
    EXPECT_GE(racy, 5u);
    EXPECT_GE(clean, 7u);
    EXPECT_EQ(findPattern("lost-update").racy, true);
    EXPECT_EQ(findPattern("atomic-counter").racy, false);
    EXPECT_DEATH(findPattern("nope"), "unknown pattern");
}

TEST(PatternSuite, RacyOutcomesCanActuallyGoWrong)
{
    // The racy lost-update must not only race but also demonstrably lose
    // updates under at least one interleaving (otherwise it would be a
    // "benign"-looking race, which is the paper's warning case).
    bool lost = false;
    for (u64 seed = 1; seed <= 16 && !lost; ++seed) {
        simt::DeviceMemory memory;
        simt::EngineOptions options;
        options.mode = simt::ExecMode::kInterleaved;
        options.seed = seed;
        simt::Engine engine(simt::titanV(), memory, options);
        lost = !findPattern("lost-update").run(engine);
    }
    EXPECT_TRUE(lost) << "lost-update never actually lost an update";
}

}  // namespace
}  // namespace eclsim::patterns
