/**
 * @file
 * Tests of eclsim::staticrace: exact affine recovery of the classic GPU
 * access shapes (strided, blocked, two-variable), sound widening of
 * data-dependent streams, the soundness gate end to end on a real sweep
 * — including the planted-miss negative case, where a may-set stripped
 * of one covering pair must hard-fail the gate — and the determinism
 * contract (byte-identical JSON at --jobs=1 and --jobs=8).
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "staticrace/runner.hpp"
#include "staticrace/summary.hpp"

namespace eclsim::staticrace {
namespace {

TEST(AffineFitterTest, RecoversStridedAccess)
{
    // The grid-stride idiom: thread t touches base + 4t, one access
    // per thread.
    AffineFitter fitter;
    for (u32 t = 0; t < 64; ++t)
        fitter.add(t, 0, 4096 + 4ull * t);
    const AffineModel model = fitter.done();
    ASSERT_TRUE(model.affine);
    EXPECT_EQ(model.base, 4096);
    EXPECT_EQ(model.ct, 4);
    EXPECT_EQ(model.ci, 0);
}

TEST(AffineFitterTest, RecoversBlockedAccess)
{
    // Blocked partitioning: thread t owns a 32-byte chunk and walks it
    // 4 bytes per iteration.
    AffineFitter fitter;
    for (u32 t = 0; t < 16; ++t)
        for (u32 i = 0; i < 8; ++i)
            fitter.add(t, i, 256 + 32ull * t + 4ull * i);
    const AffineModel model = fitter.done();
    ASSERT_TRUE(model.affine);
    EXPECT_EQ(model.base, 256);
    EXPECT_EQ(model.ct, 32);
    EXPECT_EQ(model.ci, 4);
}

TEST(AffineFitterTest, RecoversTwoVariableSamplesOutOfOrder)
{
    // Samples varying in both thread and iter arrive before either
    // coefficient is pinned; the pending list must re-verify them once
    // single-variable samples resolve ct and ci.
    AffineFitter fitter;
    fitter.add(0, 0, 1000);                        // base point
    fitter.add(3, 5, 1000 + 8ull * 3 + 4ull * 5);  // both vary: parked
    fitter.add(7, 2, 1000 + 8ull * 7 + 4ull * 2);  // both vary: parked
    fitter.add(1, 0, 1000 + 8);                    // pins ct
    fitter.add(0, 1, 1000 + 4);                    // pins ci, drains
    const AffineModel model = fitter.done();
    ASSERT_TRUE(model.affine);
    EXPECT_EQ(model.base, 1000);
    EXPECT_EQ(model.ct, 8);
    EXPECT_EQ(model.ci, 4);
}

TEST(AffineFitterTest, WidensDataDependentStream)
{
    // A pointer-chase shape (CC's parent[] hooks): addresses jump by a
    // data-dependent amount. No affine model fits; the fitter must
    // fail so the consumer widens to ⊤ rather than trusting the hull.
    AffineFitter fitter;
    u64 addr = 512;
    for (u32 t = 0; t < 32; ++t) {
        fitter.add(t, 0, addr);
        addr = 512 + (addr * 2654435761ull) % 4096 / 4 * 4;
    }
    const AffineModel model = fitter.done();
    EXPECT_FALSE(model.affine);
    EXPECT_TRUE(fitter.failed());
}

TEST(AffineFitterTest, WidensWhenCoefficientStaysUnresolved)
{
    // Two threads, identical iteration pattern, but the thread
    // coefficient is never witnessed by a single-variable sample and
    // the streams contradict an affine fit.
    AffineFitter fitter;
    fitter.add(0, 0, 100);
    fitter.add(0, 1, 104);
    fitter.add(1, 0, 120);
    fitter.add(1, 1, 116);  // ci flips sign for the second thread
    const AffineModel model = fitter.done();
    EXPECT_FALSE(model.affine);
}

racecheck::RunnerConfig
smallConfig(u32 jobs)
{
    racecheck::RunnerConfig config;
    config.algos = {algos::Algo::kCc};
    config.variants = {algos::Variant::kBaseline,
                       algos::Variant::kRaceFree};
    config.include_apsp = false;
    config.jobs = jobs;
    return config;
}

TEST(StaticraceGateTest, CcSweepIsSoundAndRacefreeIsClean)
{
    const racecheck::RunnerConfig config = smallConfig(1);
    const std::vector<StaticCellResult> statics =
        runStaticrace(config);
    const std::vector<racecheck::CellResult> dynamics =
        racecheck::runRacecheck(config);
    const SoundnessResult verdict =
        evaluateSoundness(config, statics, dynamics);

    EXPECT_TRUE(verdict.pass) << (verdict.failures.empty()
                                      ? std::string("?")
                                      : verdict.failures.front());
    ASSERT_EQ(verdict.rows.size(), statics.size());
    bool any_dynamic = false;
    for (const CoverageRow& row : verdict.rows) {
        EXPECT_EQ(row.covered, row.dynamic_races) << row.cell;
        EXPECT_TRUE(row.misses.empty()) << row.cell;
        any_dynamic |= row.dynamic_races > 0;
    }
    EXPECT_TRUE(any_dynamic) << "cc baseline must report races";
}

TEST(StaticraceGateTest, PlantedMissFailsTheGate)
{
    // Soundness is the whole contract: strip the static may-set of a
    // racing cell and the gate must hard-fail with the uncovered
    // dynamic reports named.
    const racecheck::RunnerConfig config = smallConfig(1);
    std::vector<StaticCellResult> statics = runStaticrace(config);
    const std::vector<racecheck::CellResult> dynamics =
        racecheck::runRacecheck(config);

    bool planted = false;
    for (size_t i = 0; i < dynamics.size(); ++i) {
        if (dynamics[i].races.empty())
            continue;
        statics[i].pairs.clear();
        planted = true;
        break;
    }
    ASSERT_TRUE(planted) << "no racing cell to plant a miss in";

    const SoundnessResult verdict =
        evaluateSoundness(config, statics, dynamics);
    EXPECT_FALSE(verdict.pass);
    EXPECT_FALSE(verdict.failures.empty());
    u64 misses = 0;
    for (const CoverageRow& row : verdict.rows)
        misses += row.misses.size();
    EXPECT_GT(misses, 0u);
}

TEST(StaticraceDeterminismTest, JsonIsByteIdenticalAcrossJobs)
{
    const std::vector<StaticCellResult> serial =
        runStaticrace(smallConfig(1));
    const std::vector<StaticCellResult> parallel =
        runStaticrace(smallConfig(8));
    EXPECT_EQ(renderStaticraceJson(serial),
              renderStaticraceJson(parallel));
    EXPECT_EQ(makePairTable(serial).toCsv(),
              makePairTable(parallel).toCsv());
}

}  // namespace
}  // namespace eclsim::staticrace
