/**
 * @file
 * Correctness tests of the simulated level-synchronous BFS (both
 * variants, both engine modes) against the sequential level oracle —
 * BFS's declared equivalence is exact.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/bfs.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kDirectedKinds;
using test::makeEngine;
using test::smallDirected;

struct BfsCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class BfsTest : public ::testing::TestWithParam<BfsCase>
{
};

TEST_P(BfsTest, MatchesLevelOracle)
{
    const auto& param = GetParam();
    const auto graph = smallDirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    test::expectOracleValid(*engine, graph, Algo::kBfs, param.variant);
}

std::vector<BfsCase>
bfsCases()
{
    std::vector<BfsCase> cases;
    for (const char* kind : kDirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved})
                cases.push_back({kind, variant, mode});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, BfsTest, ::testing::ValuesIn(bfsCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base"
                                                         : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(BfsEdgeCases, NonzeroSourceMatchesOracle)
{
    const auto graph = smallDirected("powerlaw");
    const VertexId source = graph.numVertices() / 2;
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runBfs(*engine, graph, v, source);
        EXPECT_EQ(result.levels, refalgos::bfsLevels(graph, source))
            << variantName(v);
    }
}

TEST(BfsEdgeCases, UnreachableVerticesKeepTheSentinel)
{
    // 0 -> 1 -> 2; 3 has no in-arcs: unreachable from 0.
    auto g = graph::buildCsr(4, {{0, 1}, {1, 2}},
                             graph::BuildOptions{.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runBfs(*engine, g, v);
        EXPECT_EQ(result.levels[0], 0u);
        EXPECT_EQ(result.levels[1], 1u);
        EXPECT_EQ(result.levels[2], 2u);
        EXPECT_EQ(result.levels[3], kBfsUnvisited);
    }
}

TEST(BfsEdgeCases, SingleVertexIsLevelZero)
{
    graph::CsrGraph g({0, 0}, {}, {}, true);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runBfs(*engine, g, Variant::kRaceFree);
    ASSERT_EQ(result.levels.size(), 1u);
    EXPECT_EQ(result.levels[0], 0u);
}

TEST(BfsEdgeCases, DiamondTakesTheShortestPath)
{
    // 0 -> {1, 2} -> 3 and a long detour 0 -> 4 -> 5 -> 3: vertex 3 is
    // on level 2, discovered concurrently by 1 and 2 (the baseline's
    // duplicate-frontier race), never on level 3 via the detour.
    auto g = graph::buildCsr(
        6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 4}, {4, 5}, {5, 3}},
        graph::BuildOptions{.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runBfs(*engine, g, v);
        const std::vector<u32> expect = {0, 1, 1, 2, 1, 2};
        EXPECT_EQ(result.levels, expect) << variantName(v);
    }
}

TEST(BfsStats, IterationsEqualDeepestLevelSweeps)
{
    // The 0 -> 1 -> 2 chain needs two expanding sweeps plus the final
    // empty-frontier sweep that detects the fixpoint.
    auto g = graph::buildCsr(3, {{0, 1}, {1, 2}},
                             graph::BuildOptions{.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runBfs(*engine, g, Variant::kRaceFree);
    EXPECT_GE(result.stats.iterations, 2u);
    EXPECT_LE(result.stats.iterations, 3u);
}

TEST(BfsVariants, RaceFreeClaimsWithCas)
{
    const auto graph = smallDirected("mesh");
    simt::DeviceMemory mem_base, mem_free;
    auto engine_base = makeEngine(mem_base);
    auto engine_free = makeEngine(mem_free);
    const auto base = runBfs(*engine_base, graph, Variant::kBaseline);
    const auto free = runBfs(*engine_free, graph, Variant::kRaceFree);
    EXPECT_EQ(base.levels, free.levels);
    // Claiming via atomicCAS makes the race-free variant strictly more
    // RMW-heavy than the plain check-then-store baseline.
    EXPECT_GT(free.stats.mem.rmws, base.stats.mem.rmws);
}

}  // namespace
}  // namespace eclsim::algos
