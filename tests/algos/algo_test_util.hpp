/**
 * @file
 * Shared helpers for the algorithm test suites.
 */
#pragma once

#include <memory>
#include <string>

#include "algos/common.hpp"
#include "graph/catalog.hpp"
#include "graph/generators.hpp"
#include "simt/engine.hpp"

namespace eclsim::test {

/** Fresh engine with small caches, suitable for unit tests. */
inline std::unique_ptr<simt::Engine>
makeEngine(simt::DeviceMemory& memory,
           simt::ExecMode mode = simt::ExecMode::kFast,
           bool detect_races = false, u64 seed = 7)
{
    simt::EngineOptions options;
    options.mode = mode;
    options.detect_races = detect_races;
    options.seed = seed;
    return std::make_unique<simt::Engine>(simt::titanV(), memory, options);
}

/** Small undirected test graphs exercising distinct topologies. */
inline graph::CsrGraph
smallUndirected(const std::string& kind)
{
    using namespace graph;
    if (kind == "grid")
        return makeGrid2d(16, 16);
    if (kind == "tri")
        return makeTriangulatedGrid(12, 12);
    if (kind == "rmat")
        return makeRmat(9, 2048, RmatParams{}, 42);
    if (kind == "pref")
        return makePrefAttach(400, 3, 43);
    if (kind == "clustered")
        return makeClustered(300, 10, 1.0, 44);
    if (kind == "road")
        return makeRoadNetwork(20, 20, 0.5, 45);
    if (kind == "random")
        return makeRandomUniform(500, 1500, 46);
    return makeGrid2d(8, 8);
}

/** Small directed test graphs for SCC. */
inline graph::CsrGraph
smallDirected(const std::string& kind)
{
    using namespace graph;
    if (kind == "mesh")
        return makeDirectedMesh(600, 0.6, false, 50);
    if (kind == "twisted")
        return makeDirectedMesh(500, 0.3, true, 51);
    if (kind == "star")
        return makeDirectedStar(256, 52);
    if (kind == "powerlaw")
        return makeDirectedPowerLaw(9, 3000, 0.35, 53);
    return makeDirectedMesh(100, 0.5, false, 54);
}

inline const char* const kUndirectedKinds[] = {
    "grid", "tri", "rmat", "pref", "clustered", "road", "random"};
inline const char* const kDirectedKinds[] = {"mesh", "twisted", "star",
                                             "powerlaw"};

}  // namespace eclsim::test
