/**
 * @file
 * Correctness and quality tests of the simulated ECL-GC.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/gc.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kUndirectedKinds;
using test::makeEngine;
using test::smallUndirected;

struct GcCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class GcTest : public ::testing::TestWithParam<GcCase>
{
};

TEST_P(GcTest, ProducesValidColoring)
{
    const auto& param = GetParam();
    const auto graph = smallUndirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    // Shared differential harness: structural validity (proper coloring).
    test::expectOracleValid(*engine, graph, Algo::kGc, param.variant);
}

TEST_P(GcTest, ColorCountIsReasonable)
{
    // Jones-Plassmann LDF should not need more colors than max degree + 1
    // and should be in the ballpark of greedy.
    const auto& param = GetParam();
    const auto graph = smallUndirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);

    const auto result = runGc(*engine, graph, param.variant);
    u64 max_degree = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        max_degree = std::max(max_degree, graph.degree(v));
    EXPECT_LE(result.num_colors, max_degree + 1);
    EXPECT_LE(result.num_colors,
              2 * refalgos::greedyColorCount(graph) + 2);
}

std::vector<GcCase>
gcCases()
{
    std::vector<GcCase> cases;
    for (const char* kind : kUndirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved})
                cases.push_back({kind, variant, mode});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, GcTest, ::testing::ValuesIn(gcCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base" : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(GcEdgeCases, BipartiteNeedsTwoColors)
{
    // A path graph is 2-colorable; LDF on a path must not explode.
    std::vector<graph::Edge> edges;
    for (u32 v = 0; v + 1 < 64; ++v)
        edges.push_back({v, v + 1});
    auto g = graph::buildCsr(64, std::move(edges), {});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runGc(*engine, g, Variant::kRaceFree);
    EXPECT_TRUE(refalgos::isValidColoring(g, result.colors));
    EXPECT_LE(result.num_colors, 3u);
}

TEST(GcEdgeCases, CompleteGraphNeedsAllColors)
{
    std::vector<graph::Edge> edges;
    const u32 n = 10;
    for (u32 a = 0; a < n; ++a)
        for (u32 b = a + 1; b < n; ++b)
            edges.push_back({a, b});
    auto g = graph::buildCsr(n, std::move(edges), {});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runGc(*engine, g, v);
        EXPECT_EQ(result.num_colors, n) << variantName(v);
    }
}

TEST(GcEdgeCases, IsolatedVerticesAllColorZero)
{
    graph::CsrGraph g({0, 0, 0, 0}, {}, {}, false);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runGc(*engine, g, Variant::kBaseline);
    EXPECT_EQ(result.num_colors, 1u);
    for (u32 c : result.colors)
        EXPECT_EQ(c, 0u);
}

TEST(GcQuality, LargestDegreeFirstNeverWorseThanRandomOnHubs)
{
    // ECL-GC's LDF heuristic exists for color quality (Section II-B).
    u64 ldf_total = 0, random_total = 0;
    for (const char* kind : {"rmat", "pref", "clustered"}) {
        const auto graph = smallUndirected(kind);
        simt::DeviceMemory mem_a, mem_b;
        auto engine_a = makeEngine(mem_a);
        auto engine_b = makeEngine(mem_b);
        ldf_total += runGc(*engine_a, graph, Variant::kRaceFree)
                         .num_colors;
        GcOptions random_order;
        random_order.priority = GcPriorityMode::kRandom;
        random_order.priority_seed = 7;
        random_total +=
            runGc(*engine_b, graph, Variant::kRaceFree, random_order)
                .num_colors;
    }
    EXPECT_LE(ldf_total, random_total);
}

TEST(GcQuality, RandomOrderStillValid)
{
    for (const char* kind : kUndirectedKinds) {
        const auto graph = smallUndirected(kind);
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory);
        GcOptions random_order;
        random_order.priority = GcPriorityMode::kRandom;
        const auto result =
            runGc(*engine, graph, Variant::kBaseline, random_order);
        EXPECT_TRUE(refalgos::isValidColoring(graph, result.colors))
            << kind;
    }
}

TEST(GcVariants, BaselineUsesVolatileNotL1)
{
    // The published GC baseline keeps its shared arrays volatile, so the
    // converted code should see nearly the same L1 traffic (none on the
    // shared arrays) — which is why GC barely slows down in the paper.
    const auto graph = smallUndirected("rmat");
    simt::DeviceMemory mem_base, mem_free;
    auto engine_base = makeEngine(mem_base);
    auto engine_free = makeEngine(mem_free);

    const auto base = runGc(*engine_base, graph, Variant::kBaseline);
    const auto free = runGc(*engine_free, graph, Variant::kRaceFree);
    // Identical sweep counts (both read live values)...
    EXPECT_EQ(base.stats.iterations, free.stats.iterations);
    // ...and the same number of memory operations.
    EXPECT_EQ(base.stats.mem.loads, free.stats.mem.loads);
    EXPECT_EQ(base.stats.mem.stores, free.stats.mem.stores);
    // The only difference: race-free accesses are atomic.
    EXPECT_GT(free.stats.mem.atomic_accesses,
              base.stats.mem.atomic_accesses);
}

}  // namespace
}  // namespace eclsim::algos
