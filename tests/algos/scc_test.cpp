/**
 * @file
 * Correctness tests of the simulated ECL-SCC against Tarjan.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/scc.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kDirectedKinds;
using test::makeEngine;
using test::smallDirected;

struct SccCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class SccTest : public ::testing::TestWithParam<SccCase>
{
};

TEST_P(SccTest, MatchesTarjan)
{
    const auto& param = GetParam();
    const auto graph = smallDirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    // Shared differential harness: partition equality vs Tarjan.
    test::expectOracleValid(*engine, graph, Algo::kScc, param.variant);
}

std::vector<SccCase>
sccCases()
{
    std::vector<SccCase> cases;
    for (const char* kind : kDirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved})
                cases.push_back({kind, variant, mode});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, SccTest, ::testing::ValuesIn(sccCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base" : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(SccEdgeCases, DirectedCycleIsOneScc)
{
    std::vector<graph::Edge> edges;
    const u32 n = 50;
    for (u32 v = 0; v < n; ++v)
        edges.push_back({v, (v + 1) % n});
    auto g = graph::buildCsr(n, std::move(edges), {.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runScc(*engine, g, variant);
        EXPECT_EQ(refalgos::countDistinct(result.labels), 1u);
    }
}

TEST(SccEdgeCases, DagIsAllSingletons)
{
    std::vector<graph::Edge> edges;
    const u32 n = 40;
    for (u32 v = 0; v + 1 < n; ++v) {
        edges.push_back({v, v + 1});
        if (v + 2 < n)
            edges.push_back({v, v + 2});
    }
    auto g = graph::buildCsr(n, std::move(edges), {.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runScc(*engine, g, Variant::kRaceFree);
    EXPECT_EQ(refalgos::countDistinct(result.labels), n);
}

TEST(SccEdgeCases, TwoCyclesJoinedByOneArc)
{
    // cycle A: 0-1-2-0, cycle B: 3-4-5-3, bridge 2->3
    auto g = graph::buildCsr(
        6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}},
        {.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runScc(*engine, g, variant);
        EXPECT_EQ(refalgos::countDistinct(result.labels), 2u);
        EXPECT_EQ(result.labels[0], result.labels[1]);
        EXPECT_EQ(result.labels[3], result.labels[5]);
        EXPECT_NE(result.labels[0], result.labels[3]);
    }
}

TEST(SccEdgeCases, SelfLoopsAndIsolated)
{
    auto g = graph::buildCsr(4, {{0, 0}, {1, 2}},
                             {.directed = true,
                              .remove_self_loops = false});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runScc(*engine, g, Variant::kBaseline);
    EXPECT_EQ(refalgos::countDistinct(result.labels), 4u);
}

TEST(SccTrimming, MatchesTarjanOnAllTopologies)
{
    for (const char* kind : kDirectedKinds) {
        const auto graph = smallDirected(kind);
        const auto oracle = refalgos::stronglyConnectedComponents(graph);
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
            simt::DeviceMemory memory;
            auto engine = makeEngine(memory);
            SccOptions options;
            options.trim_trivial = true;
            const auto result = runScc(*engine, graph, variant, options);
            EXPECT_TRUE(refalgos::samePartition(result.labels, oracle))
                << kind << " " << variantName(variant);
        }
    }
}

TEST(SccTrimming, DagIsFullyTrimmedWithoutPropagation)
{
    // A DAG consists solely of trivial SCCs: trimming should retire
    // every vertex and the propagation fixpoint should be immediate.
    std::vector<graph::Edge> edges;
    const u32 n = 60;
    for (u32 v = 0; v + 1 < n; ++v)
        edges.push_back({v, v + 1});
    auto g = graph::buildCsr(n, std::move(edges), {.directed = true});

    simt::DeviceMemory mem_plain, mem_trim;
    auto engine_plain = makeEngine(mem_plain);
    auto engine_trim = makeEngine(mem_trim);
    const auto plain = runScc(*engine_plain, g, Variant::kRaceFree);
    SccOptions options;
    options.trim_trivial = true;
    const auto trimmed =
        runScc(*engine_trim, g, Variant::kRaceFree, options);

    EXPECT_TRUE(refalgos::samePartition(plain.labels, trimmed.labels));
    // The chain DAG costs the untrimmed code O(n) propagation sweeps;
    // trimming peels it in far fewer kernel launches.
    EXPECT_LT(trimmed.stats.launches, plain.stats.launches / 2);
}

TEST(SccTrimming, PowerLawKeepsGiantSccIntact)
{
    const auto graph = smallDirected("powerlaw");
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    SccOptions options;
    options.trim_trivial = true;
    const auto result =
        runScc(*engine, graph, Variant::kBaseline, options);
    EXPECT_TRUE(refalgos::samePartition(
        result.labels,
        refalgos::stronglyConnectedComponents(graph)));
}

TEST(SccReversedGraphProperty, SamePartition)
{
    // The SCCs of a graph and of its reverse are identical.
    const auto graph = smallDirected("powerlaw");
    const auto reversed = graph.reversed();
    simt::DeviceMemory mem_a, mem_b;
    auto engine_a = makeEngine(mem_a);
    auto engine_b = makeEngine(mem_b);
    const auto fwd = runScc(*engine_a, graph, Variant::kRaceFree);
    const auto bwd = runScc(*engine_b, reversed, Variant::kRaceFree);
    EXPECT_TRUE(refalgos::samePartition(fwd.labels, bwd.labels));
}

}  // namespace
}  // namespace eclsim::algos
