/**
 * @file
 * Correctness tests of the simulated ECL-MST against Kruskal.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/mst.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kUndirectedKinds;
using test::makeEngine;
using test::smallUndirected;

graph::CsrGraph
weighted(const std::string& kind, u64 seed = 0xabc)
{
    return graph::withSyntheticWeights(smallUndirected(kind), 100, seed);
}

struct MstCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class MstTest : public ::testing::TestWithParam<MstCase>
{
};

TEST_P(MstTest, WeightMatchesKruskal)
{
    const auto& param = GetParam();
    const auto graph = weighted(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    // Shared differential harness: exact forest weight vs Kruskal.
    test::expectOracleValid(*engine, graph, Algo::kMst, param.variant);
}

TEST_P(MstTest, EdgeCountIsVerticesMinusComponents)
{
    const auto& param = GetParam();
    const auto graph = weighted(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);

    const auto result = runMst(*engine, graph, param.variant);
    const auto components = refalgos::countDistinct(
        refalgos::connectedComponents(graph));
    EXPECT_EQ(result.num_edges, graph.numVertices() - components);
}

std::vector<MstCase>
mstCases()
{
    std::vector<MstCase> cases;
    for (const char* kind : kUndirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved})
                cases.push_back({kind, variant, mode});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, MstTest, ::testing::ValuesIn(mstCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base" : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(MstEdgeCases, SingleEdge)
{
    auto g = graph::buildCsr(2, {{0, 1, 7}}, {.keep_weights = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runMst(*engine, g, Variant::kRaceFree);
    EXPECT_EQ(result.total_weight, 7u);
    EXPECT_EQ(result.num_edges, 1u);
}

TEST(MstEdgeCases, DisconnectedForest)
{
    auto g = graph::buildCsr(
        6, {{0, 1, 3}, {1, 2, 5}, {0, 2, 9}, {3, 4, 2}},
        {.keep_weights = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runMst(*engine, g, v);
        EXPECT_EQ(result.total_weight, 10u) << variantName(v);  // 3+5+2
        EXPECT_EQ(result.num_edges, 3u);
    }
}

TEST(MstEdgeCases, EqualWeightsStillFormTree)
{
    // All weights equal: the arc-id tiebreak must avoid cycles.
    std::vector<graph::Edge> edges;
    const u32 n = 24;
    for (u32 a = 0; a < n; ++a)
        for (u32 b = a + 1; b < n; ++b)
            edges.push_back({a, b, 5});
    auto g = graph::buildCsr(n, std::move(edges), {.keep_weights = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runMst(*engine, g, v);
        EXPECT_EQ(result.num_edges, n - 1u);
        EXPECT_EQ(result.total_weight, 5u * (n - 1));
    }
}

TEST(MstSeeds, ManyWeightAssignmentsAgreeWithKruskal)
{
    // Property sweep: random weight assignments on a fixed topology.
    const auto base = smallUndirected("random");
    for (u64 seed = 1; seed <= 8; ++seed) {
        const auto graph = graph::withSyntheticWeights(base, 50, seed);
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory);
        const auto result = runMst(*engine, graph, Variant::kRaceFree);
        EXPECT_EQ(result.total_weight,
                  refalgos::minimumSpanningForestWeight(graph))
            << "seed " << seed;
    }
}

}  // namespace
}  // namespace eclsim::algos
