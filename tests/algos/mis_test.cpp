/**
 * @file
 * Correctness and property tests of the simulated ECL-MIS.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/mis.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kUndirectedKinds;
using test::makeEngine;
using test::smallUndirected;

struct MisCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class MisTest : public ::testing::TestWithParam<MisCase>
{
};

TEST_P(MisTest, ProducesMaximalIndependentSet)
{
    const auto& param = GetParam();
    const auto graph = smallUndirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    // Shared differential harness: independence + maximality.
    test::expectOracleValid(*engine, graph, Algo::kMis, param.variant);
}

std::vector<MisCase>
misCases()
{
    std::vector<MisCase> cases;
    for (const char* kind : kUndirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved})
                cases.push_back({kind, variant, mode});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, MisTest, ::testing::ValuesIn(misCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base" : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(MisPriority, AlwaysUndecidedRange)
{
    for (VertexId v = 0; v < 5000; ++v)
        for (u64 deg : {0ull, 1ull, 5ull, 100ull, 100000ull}) {
            const u8 p = misPriority(v, deg);
            EXPECT_NE(p, kMisIn);
            EXPECT_NE(p, kMisOut);
            EXPECT_GE(p, 2);
        }
}

TEST(MisPriority, FavorsLowDegree)
{
    // Averaged over many vertices, low-degree vertices must outrank
    // high-degree ones (the ECL-MIS set-size optimization).
    double low = 0.0, high = 0.0;
    const u32 n = 2000;
    for (VertexId v = 0; v < n; ++v) {
        low += misPriority(v, 2);
        high += misPriority(v, 64);
    }
    EXPECT_GT(low / n, high / n);
}

TEST(MisEdgeCases, EmptyGraphPutsEveryoneInSet)
{
    graph::CsrGraph g({0, 0, 0, 0}, {}, {}, false);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runMis(*engine, g, Variant::kRaceFree);
    EXPECT_EQ(result.set_size, 3u);
}

TEST(MisEdgeCases, CompleteGraphPicksExactlyOne)
{
    std::vector<graph::Edge> edges;
    const u32 n = 12;
    for (u32 a = 0; a < n; ++a)
        for (u32 b = a + 1; b < n; ++b)
            edges.push_back({a, b});
    auto g = graph::buildCsr(n, std::move(edges), {});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runMis(*engine, g, v);
        EXPECT_EQ(result.set_size, 1u) << variantName(v);
    }
}

TEST(MisVisibility, BaselineNeedsMoreSweepsThanRaceFree)
{
    // The paper's MIS speedup mechanism: the baseline's delayed update
    // visibility slows value propagation, so it needs at least as many
    // decision sweeps as the race-free code with live atomic reads.
    const auto graph = smallUndirected("rmat");
    simt::DeviceMemory mem_base, mem_free;
    auto engine_base = makeEngine(mem_base);
    auto engine_free = makeEngine(mem_free);

    const auto base = runMis(*engine_base, graph, Variant::kBaseline);
    const auto free = runMis(*engine_free, graph, Variant::kRaceFree);
    EXPECT_GE(base.stats.iterations, free.stats.iterations);
    EXPECT_GT(base.stats.iterations, 1u);
}

TEST(MisQuality, DegreeWeightedPrioritiesGiveLargerSets)
{
    // ECL-MIS's degree-inverse priorities exist to find large sets
    // (paper Section II-B; the TOPC'18 paper reports ~10% larger sets).
    // Summed across skewed topologies, the degree-weighted sets must
    // beat plain uniform (Luby) priorities.
    u64 weighted_total = 0, uniform_total = 0;
    for (const char* kind : {"rmat", "pref", "random"}) {
        const auto graph = smallUndirected(kind);
        simt::DeviceMemory mem_a, mem_b;
        auto engine_a = makeEngine(mem_a);
        auto engine_b = makeEngine(mem_b);
        weighted_total +=
            runMis(*engine_a, graph, Variant::kRaceFree).set_size;
        MisOptions uniform;
        uniform.priority = MisPriorityMode::kUniform;
        uniform_total +=
            runMis(*engine_b, graph, Variant::kRaceFree, uniform)
                .set_size;
    }
    EXPECT_GT(weighted_total, uniform_total);
}

TEST(MisQuality, UniformPrioritiesStillValid)
{
    for (const char* kind : kUndirectedKinds) {
        const auto graph = smallUndirected(kind);
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory);
        MisOptions uniform;
        uniform.priority = MisPriorityMode::kUniform;
        uniform.priority_seed = 99;
        const auto result =
            runMis(*engine, graph, Variant::kBaseline, uniform);
        EXPECT_TRUE(refalgos::isMaximalIndependentSet(graph,
                                                      result.in_set))
            << kind;
    }
}

TEST(MisVariants, BothVariantsSolveTheSameProblem)
{
    for (const char* kind : kUndirectedKinds) {
        const auto graph = smallUndirected(kind);
        simt::DeviceMemory mem_base, mem_free;
        auto engine_base = makeEngine(mem_base);
        auto engine_free = makeEngine(mem_free);
        const auto base = runMis(*engine_base, graph, Variant::kBaseline);
        const auto free = runMis(*engine_free, graph, Variant::kRaceFree);
        // Different schedules may pick different sets, but both must be
        // valid and of comparable quality (within 2x of each other).
        EXPECT_TRUE(refalgos::isMaximalIndependentSet(graph, base.in_set));
        EXPECT_TRUE(refalgos::isMaximalIndependentSet(graph, free.in_set));
        EXPECT_LT(base.set_size, 2 * free.set_size + 2);
        EXPECT_LT(free.set_size, 2 * base.set_size + 2);
    }
}

}  // namespace
}  // namespace eclsim::algos
