/**
 * @file
 * Property-based differential test harness shared by every algorithm
 * suite (the eight Algo values plus APSP).
 *
 * One differential cell is (algorithm, variant, topology kind, engine
 * mode). The harness runs each cell through chaos::runChecked — the
 * same run+verdict switch the campaign, the racecheck runner, and the
 * harness --verify path use — and judges the output under the
 * algorithm's *declared* equivalence (chaos::equivalenceFor):
 *
 *   kExact      bit-exact against the sequential oracle (MST, BFS)
 *   kPartition  same partition, any representatives (CC, SCC, WCC)
 *   kProperty   structural validity (GC proper, MIS independent+maximal)
 *   kEpsilonL1  within an L1 error bound of the oracle (PageRank)
 *
 * On top of per-cell validity the harness asserts the repo's PR-2
 * determinism contract as a differential property: the same cell set
 * run at jobs=1 and jobs=8 must render byte-identical measurement CSVs
 * (cell i always seeds from cellSeed(base, i) and lands at index i, so
 * the thread schedule must not leak into any measurement).
 *
 * The checking core (checkDifferential) is assertion-free and takes an
 * injectable cell runner, so the negative tests can plant wrong labels,
 * off-by-epsilon rank vectors, and worker-index-dependent measurements
 * and watch the harness catch them — a harness is only as trustworthy
 * as its failure detection.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "algos/common.hpp"
#include "chaos/oracle.hpp"
#include "graph/csr.hpp"
#include "simt/engine.hpp"

namespace eclsim::test {

/** Identity of one differential cell. */
struct DiffCell
{
    bool apsp = false;  ///< APSP (single variant, race free by construction)
    algos::Algo algo = algos::Algo::kCc;
    algos::Variant variant = algos::Variant::kBaseline;
    std::string kind;  ///< topology kind (see diffGraph)
    simt::ExecMode mode = simt::ExecMode::kFast;
};

/** Printable subject: "CC/baseline/grid/fast", "apsp/ring/ilv". */
std::string diffCellName(const DiffCell& cell);

/** The test graph a cell runs on: smallUndirected / smallDirected by
 *  algoNeedsDirected (weighted for MST), small weighted directed
 *  graphs for APSP. */
graph::CsrGraph diffGraph(const DiffCell& cell);

/**
 * The cell set for one algorithm: a representative topology subset x
 * variants x engine modes (topology *breadth* stays in the per-algo
 * suites; this suite checks the cross-cutting property). PageRank's
 * baseline is exempt from kInterleaved: the adversarial scheduler
 * loses nearly every racy float accumulation, far past any useful L1
 * bound — the bounded-error claim is about the production fast path,
 * the same reasoning as the racecheck runner's fast-path control run.
 */
std::vector<DiffCell> diffCells(algos::Algo algo);

/** APSP cells: topology kinds x engine modes. */
std::vector<DiffCell> diffCellsApsp();

/** Every algorithm's cells concatenated (8 Algo values + APSP). */
std::vector<DiffCell> allDiffCells();

/** Result of one cell. */
struct DiffResult
{
    DiffCell cell;
    chaos::Verdict verdict;  ///< under the declared equivalence
    algos::RunStats stats;   ///< the measurement the CSV renders
};

/** Run one cell with an explicit engine seed. */
DiffResult runDiffCell(const DiffCell& cell, u64 seed);

/** Injectable cell runner (negative tests plant misbehaving ones). */
using DiffRunnerFn = std::function<DiffResult(const DiffCell&, u64)>;

/** Run cells over `jobs` pool workers. Cell i seeds from
 *  cellSeed(base_seed, i) and is placed at index i, so the result
 *  vector is independent of the job count (PR-2 contract). */
std::vector<DiffResult> runDiffCells(const std::vector<DiffCell>& cells,
                                     u64 base_seed, u32 jobs,
                                     const DiffRunnerFn& runner = {});

/** Fixed-format per-cell measurement table (ms, cycles, launches,
 *  iterations, memory counters) rendered as CSV. */
std::string measurementCsv(const std::vector<DiffResult>& results);

/** Outcome of one differential check (assertion-free core). */
struct DiffSummary
{
    /** One entry per oracle-rejected cell: "cell: reason". */
    std::vector<std::string> failures;
    /** jobs=1 and jobs=8 measurement CSVs byte-identical. */
    bool deterministic = true;
    std::string csv;           ///< jobs=1 measurement CSV
    std::string parallel_csv;  ///< jobs=8 measurement CSV

    bool pass() const { return failures.empty() && deterministic; }
};

/** Run the cell set at jobs=1 (validity) and jobs=8 (determinism). */
DiffSummary checkDifferential(const std::vector<DiffCell>& cells,
                              u64 base_seed,
                              const DiffRunnerFn& runner = {});

/** checkDifferential + gtest assertions on both properties. */
void expectDifferentialProperty(const std::vector<DiffCell>& cells,
                                u64 base_seed = 99);

/** One-shot oracle check for the per-algorithm suites: run the
 *  algorithm on the given engine and assert the output is valid under
 *  its declared equivalence (replaces the suites' hand-rolled oracle
 *  comparisons with the shared chaos::runChecked implementation). */
void expectOracleValid(simt::Engine& engine, const graph::CsrGraph& graph,
                       algos::Algo algo, algos::Variant variant);

}  // namespace eclsim::test
