/**
 * @file
 * The paper's validation claim, as tests (Section IV): every studied
 * baseline contains data races on its shared arrays, and every converted
 * race-free variant is clean under the dynamic race detector. This is
 * the role Compute Sanitizer and iGuard play in the paper.
 *
 * The runs use the interleaved engine so conflicting accesses from
 * different threads genuinely interleave in simulated time.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/cc.hpp"
#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "algos/mst.hpp"
#include "algos/scc.hpp"

namespace eclsim::algos {
namespace {

using test::makeEngine;
using test::smallDirected;
using test::smallUndirected;

std::unique_ptr<simt::Engine>
raceEngine(simt::DeviceMemory& memory)
{
    return makeEngine(memory, simt::ExecMode::kInterleaved,
                      /*detect_races=*/true);
}

// --- baselines: the races the paper identifies in Section IV-A ----------

TEST(RaceValidation, BaselineCcRacesOnParentArray)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runCc(*engine, smallUndirected("rmat"), Variant::kBaseline);
    EXPECT_TRUE(engine->raceDetector()->hasRaceOn("cc.parent"))
        << engine->raceDetector()->summary();
}

TEST(RaceValidation, BaselineGcRacesOnColorArrays)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runGc(*engine, smallUndirected("rmat"), Variant::kBaseline);
    // "The GC code records the possible colors and chosen color of each
    // vertex in shared int arrays ... using unprotected accesses."
    const auto* detector = engine->raceDetector();
    EXPECT_TRUE(detector->hasRaceOn("gc.color") ||
                detector->hasRaceOn("gc.posscol") ||
                detector->hasRaceOn("gc.again"))
        << detector->summary();
}

TEST(RaceValidation, BaselineMisRacesOnStatusArray)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runMis(*engine, smallUndirected("rmat"), Variant::kBaseline);
    EXPECT_TRUE(engine->raceDetector()->hasRaceOn("mis.node_stat"))
        << engine->raceDetector()->summary();
}

TEST(RaceValidation, BaselineMstRacesOnSharedArrays)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    const auto graph = graph::withSyntheticWeights(
        smallUndirected("random"), 100, 3);
    runMst(*engine, graph, Variant::kBaseline);
    const auto* detector = engine->raceDetector();
    EXPECT_TRUE(detector->hasRaceOn("mst.parent") ||
                detector->hasRaceOn("mst.best") ||
                detector->hasRaceOn("mst.again"))
        << detector->summary();
}

TEST(RaceValidation, BaselineSccRacesOnPairArray)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runScc(*engine, smallDirected("powerlaw"), Variant::kBaseline);
    const auto* detector = engine->raceDetector();
    EXPECT_TRUE(detector->hasRaceOn("scc.pair") ||
                detector->hasRaceOn("scc.repeat"))
        << detector->summary();
}

// --- race-free variants: clean reports ----------------------------------

TEST(RaceValidation, RaceFreeCcIsClean)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runCc(*engine, smallUndirected("rmat"), Variant::kRaceFree);
    EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
        << engine->raceDetector()->summary();
}

TEST(RaceValidation, RaceFreeGcIsClean)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runGc(*engine, smallUndirected("rmat"), Variant::kRaceFree);
    EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
        << engine->raceDetector()->summary();
}

TEST(RaceValidation, RaceFreeMisIsClean)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runMis(*engine, smallUndirected("rmat"), Variant::kRaceFree);
    EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
        << engine->raceDetector()->summary();
}

TEST(RaceValidation, RaceFreeMstIsClean)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    const auto graph = graph::withSyntheticWeights(
        smallUndirected("random"), 100, 3);
    runMst(*engine, graph, Variant::kRaceFree);
    EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
        << engine->raceDetector()->summary();
}

TEST(RaceValidation, RaceFreeSccIsClean)
{
    simt::DeviceMemory memory;
    auto engine = raceEngine(memory);
    runScc(*engine, smallDirected("powerlaw"), Variant::kRaceFree);
    EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
        << engine->raceDetector()->summary();
}

// Every race-free variant must stay clean across all test topologies,
// not just one — the paper validates on the full input set.
TEST(RaceValidation, RaceFreeSuiteCleanOnAllTopologies)
{
    for (const char* kind : test::kUndirectedKinds) {
        simt::DeviceMemory memory;
        auto engine = raceEngine(memory);
        const auto graph = smallUndirected(kind);
        runCc(*engine, graph, Variant::kRaceFree);
        runGc(*engine, graph, Variant::kRaceFree);
        runMis(*engine, graph, Variant::kRaceFree);
        runMst(*engine, graph::withSyntheticWeights(graph, 64, 9),
               Variant::kRaceFree);
        EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
            << kind << ":\n"
            << engine->raceDetector()->summary();
    }
    for (const char* kind : test::kDirectedKinds) {
        simt::DeviceMemory memory;
        auto engine = raceEngine(memory);
        runScc(*engine, smallDirected(kind), Variant::kRaceFree);
        EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
            << kind << ":\n"
            << engine->raceDetector()->summary();
    }
}

}  // namespace
}  // namespace eclsim::algos
