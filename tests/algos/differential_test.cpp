/**
 * @file
 * The differential suite: every algorithm (the eight Algo values plus
 * APSP) swept over (variant x topology x engine mode) cells, each
 * checked against its sequential oracle under the algorithm's declared
 * equivalence, with the jobs=1 and jobs=8 measurement CSVs compared
 * byte for byte (the PR-2 determinism contract as a differential
 * property).
 *
 * The negative half plants defects — a wrong WCC label, an
 * off-by-epsilon PageRank vector, a worker-index-dependent measurement
 * — and asserts the harness catches each one: a harness that cannot
 * fail proves nothing.
 */
#include <gtest/gtest.h>

#include "differential_harness.hpp"

#include "algo_test_util.hpp"
#include "algos/pr.hpp"
#include "core/thread_pool.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::test {
namespace {

using algos::Algo;

// --- cell enumeration -----------------------------------------------------

TEST(DifferentialCells, StableNamesAndCounts)
{
    // 4 kinds x 2 variants x 3 modes for the undirected codes...
    EXPECT_EQ(diffCells(Algo::kCc).size(), 24u);
    EXPECT_EQ(diffCells(Algo::kWcc).size(), 24u);
    // ...and for the directed ones (4 directed kinds)...
    EXPECT_EQ(diffCells(Algo::kScc).size(), 24u);
    EXPECT_EQ(diffCells(Algo::kBfs).size(), 24u);
    // ...except PageRank, whose baseline skips the interleaved mode
    // (see diffCells doc).
    EXPECT_EQ(diffCells(Algo::kPr).size(), 20u);
    EXPECT_EQ(diffCellsApsp().size(), 9u);
    // 7 algos x 24 + PR's 20 + APSP's 9.
    EXPECT_EQ(allDiffCells().size(), 7u * 24u + 20u + 9u);

    const auto cc = diffCells(Algo::kCc);
    EXPECT_EQ(diffCellName(cc.front()), "CC/baseline/grid/fast");
    EXPECT_EQ(diffCellName(diffCellsApsp().front()), "apsp/sparse/fast");
}

TEST(DifferentialCells, PrBaselineNeverRunsInterleaved)
{
    for (const DiffCell& cell : diffCells(Algo::kPr))
        if (cell.variant == algos::Variant::kBaseline)
            EXPECT_NE(cell.mode, simt::ExecMode::kInterleaved)
                << diffCellName(cell);
}

// --- the property, per algorithm ------------------------------------------

TEST(Differential, Cc) { expectDifferentialProperty(diffCells(Algo::kCc)); }
TEST(Differential, Gc) { expectDifferentialProperty(diffCells(Algo::kGc)); }
TEST(Differential, Mis)
{
    expectDifferentialProperty(diffCells(Algo::kMis));
}
TEST(Differential, Mst)
{
    expectDifferentialProperty(diffCells(Algo::kMst));
}
TEST(Differential, Scc)
{
    expectDifferentialProperty(diffCells(Algo::kScc));
}
TEST(Differential, Pr) { expectDifferentialProperty(diffCells(Algo::kPr)); }
TEST(Differential, Bfs)
{
    expectDifferentialProperty(diffCells(Algo::kBfs));
}
TEST(Differential, Wcc)
{
    expectDifferentialProperty(diffCells(Algo::kWcc));
}
TEST(Differential, Apsp) { expectDifferentialProperty(diffCellsApsp()); }

// --- negative: the harness must catch planted defects ---------------------

/** One cheap cell to plant defects into. */
DiffCell
wccCell()
{
    DiffCell cell;
    cell.algo = Algo::kWcc;
    cell.variant = algos::Variant::kRaceFree;
    cell.kind = "grid";
    cell.mode = simt::ExecMode::kFast;
    return cell;
}

TEST(DifferentialNegative, PlantedWrongWccLabelIsCaught)
{
    // The runner computes a correct component labeling, then moves one
    // vertex into the wrong component — the partition check must
    // reject, and checkDifferential must name the cell.
    const DiffRunnerFn plant = [](const DiffCell& cell, u64 seed) {
        DiffResult r = runDiffCell(cell, seed);
        const auto graph = diffGraph(cell);
        auto labels = refalgos::connectedComponents(graph);
        labels[0] = labels[0] + 1;  // grid is one component: now split
        r.verdict = chaos::checkWcc(graph, labels);
        return r;
    };
    const auto summary = checkDifferential({wccCell()}, 5, plant);
    ASSERT_EQ(summary.failures.size(), 1u);
    EXPECT_NE(summary.failures[0].find("WCC/race-free/grid/fast"),
              std::string::npos);
    EXPECT_FALSE(summary.pass());
}

TEST(DifferentialNegative, OffByEpsilonPageRankVectorIsCaught)
{
    // A rank vector exactly the oracle's except one entry pushed past
    // the L1 bound must be rejected; a perturbation inside the bound
    // must be accepted (the bound is a tolerance, not exactness).
    const auto graph = smallDirected("mesh");
    auto ranks_d = refalgos::pageRank(graph, algos::kPrIterations,
                                      algos::kPrDamping);
    std::vector<float> ranks(ranks_d.begin(), ranks_d.end());
    EXPECT_TRUE(chaos::checkPr(graph, ranks).valid);

    auto inside = ranks;
    inside[0] += 0.6f * static_cast<float>(algos::kPrL1Epsilon);
    EXPECT_TRUE(chaos::checkPr(graph, inside).valid);

    auto outside = ranks;
    outside[0] += 2.0f * static_cast<float>(algos::kPrL1Epsilon);
    const auto verdict = chaos::checkPr(graph, outside);
    EXPECT_FALSE(verdict.valid);
    EXPECT_NE(verdict.detail.find("L1"), std::string::npos);
}

TEST(DifferentialNegative, WorkerDependentMeasurementBreaksDeterminism)
{
    // A runner whose measurement leaks the pool worker index renders
    // different CSVs at jobs=1 (caller thread, index -1) and jobs=8
    // (workers 0..7): the byte-compare must catch the nondeterminism.
    const DiffRunnerFn leaky = [](const DiffCell& cell, u64 seed) {
        DiffResult r = runDiffCell(cell, seed);
        r.stats.ms +=
            static_cast<double>(core::ThreadPool::currentWorkerIndex()) +
            2.0;
        return r;
    };
    std::vector<DiffCell> cells;
    for (int i = 0; i < 4; ++i)
        cells.push_back(wccCell());
    const auto summary = checkDifferential(cells, 5, leaky);
    EXPECT_TRUE(summary.failures.empty());
    EXPECT_FALSE(summary.deterministic);
    EXPECT_FALSE(summary.pass());
    EXPECT_NE(summary.csv, summary.parallel_csv);
}

}  // namespace
}  // namespace eclsim::test
