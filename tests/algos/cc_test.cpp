/**
 * @file
 * Correctness tests of the simulated ECL-CC (both variants, both engine
 * modes) against the BFS oracle.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/cc.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kUndirectedKinds;
using test::makeEngine;
using test::smallUndirected;

struct CcCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class CcTest : public ::testing::TestWithParam<CcCase>
{
};

TEST_P(CcTest, MatchesBfsOracle)
{
    const auto& param = GetParam();
    const auto graph = smallUndirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    // Shared differential harness: partition equality vs the BFS oracle
    // (the same check the chaos campaign and racecheck gate apply).
    test::expectOracleValid(*engine, graph, Algo::kCc, param.variant);
}

std::vector<CcCase>
ccCases()
{
    std::vector<CcCase> cases;
    for (const char* kind : kUndirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved})
                cases.push_back({kind, variant, mode});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, CcTest, ::testing::ValuesIn(ccCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base" : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(CcEdgeCases, SingleVertexNoEdges)
{
    graph::CsrGraph g({0, 0}, {}, {}, false);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runCc(*engine, g, Variant::kRaceFree);
    ASSERT_EQ(result.labels.size(), 1u);
    EXPECT_EQ(result.labels[0], 0u);
}

TEST(CcEdgeCases, AllIsolatedVertices)
{
    graph::CsrGraph g({0, 0, 0, 0, 0}, {}, {}, false);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runCc(*engine, g, Variant::kBaseline);
    EXPECT_EQ(refalgos::countDistinct(result.labels), 4u);
}

TEST(CcEdgeCases, TwoComponents)
{
    // 0-1-2 and 3-4
    auto g = graph::buildCsr(5, {{0, 1}, {1, 2}, {3, 4}}, {});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runCc(*engine, g, v);
        EXPECT_EQ(refalgos::countDistinct(result.labels), 2u);
        EXPECT_EQ(result.labels[0], result.labels[1]);
        EXPECT_EQ(result.labels[1], result.labels[2]);
        EXPECT_EQ(result.labels[3], result.labels[4]);
        EXPECT_NE(result.labels[0], result.labels[3]);
    }
}

TEST(CcStats, ReportsThreeLaunches)
{
    const auto graph = smallUndirected("grid");
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runCc(*engine, graph, Variant::kBaseline);
    EXPECT_EQ(result.stats.launches, 3u);  // init, compute, flatten
    EXPECT_GT(result.stats.ms, 0.0);
}

TEST(CcGranularity, HeavyVertexOffloadStillCorrect)
{
    // ECL-CC's coarser processing granularity for hub vertices must not
    // change the computed components, in either variant or engine mode.
    for (const char* kind : kUndirectedKinds) {
        const auto graph = smallUndirected(kind);
        const auto oracle = refalgos::connectedComponents(graph);
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved}) {
                simt::DeviceMemory memory;
                auto engine = makeEngine(memory, mode);
                CcOptions options;
                options.heavy_vertex_offload = true;
                options.heavy_degree_threshold = 8;  // offload plenty
                const auto result =
                    runCc(*engine, graph, variant, options);
                EXPECT_TRUE(refalgos::samePartition(result.labels, oracle))
                    << kind << " " << variantName(variant);
            }
        }
    }
}

TEST(CcGranularity, OffloadAddsHeavyKernelOnSkewedGraphs)
{
    const auto graph = smallUndirected("pref");  // has hubs
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    CcOptions options;
    options.heavy_vertex_offload = true;
    options.heavy_degree_threshold = 16;
    const auto result =
        runCc(*engine, graph, Variant::kBaseline, options);
    EXPECT_EQ(result.stats.launches, 4u);  // init, compute, heavy, flatten
}

TEST(CcGranularity, NoHeavyVerticesMeansNoExtraLaunch)
{
    const auto graph = smallUndirected("grid");  // max degree 4
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    CcOptions options;
    options.heavy_vertex_offload = true;
    options.heavy_degree_threshold = 16;
    const auto result =
        runCc(*engine, graph, Variant::kRaceFree, options);
    EXPECT_EQ(result.stats.launches, 3u);
}

TEST(CcVariants, RaceFreeUsesAtomicsBaselineDoesNot)
{
    const auto graph = smallUndirected("rmat");
    simt::DeviceMemory mem_base, mem_free;
    auto engine_base = makeEngine(mem_base);
    auto engine_free = makeEngine(mem_free);

    const auto base = runCc(*engine_base, graph, Variant::kBaseline);
    const auto free = runCc(*engine_free, graph, Variant::kRaceFree);
    // Baseline atomics: only the CAS hooks. Race-free: every parent access.
    EXPECT_GT(free.stats.mem.atomic_accesses,
              base.stats.mem.atomic_accesses * 2);
    // The baseline enjoys L1 hits on the parent array; the race-free code
    // bypasses the L1 for them (the paper's profiling observation).
    EXPECT_GT(base.stats.mem.l1.hits(), free.stats.mem.l1.hits());
}

}  // namespace
}  // namespace eclsim::algos
