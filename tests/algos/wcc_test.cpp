/**
 * @file
 * Correctness tests of the simulated min-label-propagation WCC (both
 * variants, both engine modes) against the BFS component oracle —
 * WCC's declared equivalence is partition equality.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/wcc.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kUndirectedKinds;
using test::makeEngine;
using test::smallUndirected;

struct WccCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class WccTest : public ::testing::TestWithParam<WccCase>
{
};

TEST_P(WccTest, MatchesComponentOracle)
{
    const auto& param = GetParam();
    const auto graph = smallUndirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    test::expectOracleValid(*engine, graph, Algo::kWcc, param.variant);
}

std::vector<WccCase>
wccCases()
{
    std::vector<WccCase> cases;
    for (const char* kind : kUndirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved})
                cases.push_back({kind, variant, mode});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, WccTest, ::testing::ValuesIn(wccCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base"
                                                         : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(WccEdgeCases, LabelsAreComponentMinima)
{
    // 0-1-2 and 3-4: min-label propagation must converge to the
    // component-minimum vertex id, not just any partition.
    auto g = graph::buildCsr(5, {{0, 1}, {1, 2}, {3, 4}}, {});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runWcc(*engine, g, v);
        const std::vector<VertexId> expect = {0, 0, 0, 3, 3};
        EXPECT_EQ(result.labels, expect) << variantName(v);
    }
}

TEST(WccEdgeCases, MultiComponentCountMatchesOracle)
{
    // Three components: a triangle, an edge, an isolated vertex.
    auto g = graph::buildCsr(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}}, {});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runWcc(*engine, g, v);
        EXPECT_EQ(refalgos::countDistinct(result.labels), 3u);
        EXPECT_TRUE(refalgos::samePartition(
            result.labels, refalgos::connectedComponents(g)));
    }
}

TEST(WccEdgeCases, SingleVertexNoEdges)
{
    graph::CsrGraph g({0, 0}, {}, {}, false);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runWcc(*engine, g, Variant::kBaseline);
    ASSERT_EQ(result.labels.size(), 1u);
    EXPECT_EQ(result.labels[0], 0u);
}

TEST(WccEdgeCases, RejectsDirectedInputs)
{
    auto g = graph::buildCsr(4, {{0, 1}, {1, 2}},
                             graph::BuildOptions{.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    EXPECT_DEATH(runWcc(*engine, g, Variant::kBaseline), "undirected");
}

TEST(WccVariants, AgreeOnEveryTopologyAndUseDifferentAtomics)
{
    const auto graph = smallUndirected("pref");
    simt::DeviceMemory mem_base, mem_free;
    auto engine_base = makeEngine(mem_base);
    auto engine_free = makeEngine(mem_free);
    const auto base = runWcc(*engine_base, graph, Variant::kBaseline);
    const auto free = runWcc(*engine_free, graph, Variant::kRaceFree);
    EXPECT_TRUE(refalgos::samePartition(base.labels, free.labels));
    // atomicMin claims replace plain min-stores.
    EXPECT_GT(free.stats.mem.rmws, base.stats.mem.rmws);
}

}  // namespace
}  // namespace eclsim::algos
