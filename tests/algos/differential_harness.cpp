#include "differential_harness.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <future>

#include "algo_test_util.hpp"
#include "algos/apsp.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"

namespace eclsim::test {

namespace {

/** Small weighted directed graphs for APSP; the O(n^3) kernels cap the
 *  vertex count well below the other suites' topologies. */
graph::CsrGraph
apspGraph(const std::string& kind)
{
    using namespace graph;
    if (kind == "sparse") {
        RmatParams params;
        params.directed = true;
        return withSyntheticWeights(makeRmat(6, 200, params, 61), 20, 62);
    }
    if (kind == "dense") {
        RmatParams params;
        params.directed = true;
        return withSyntheticWeights(makeRmat(6, 700, params, 63), 20, 64);
    }
    // "ring": a directed mesh — every pair reachable.
    return withSyntheticWeights(makeDirectedMesh(64, 0.4, false, 65), 20,
                                66);
}

const char* const kApspKinds[] = {"sparse", "dense", "ring"};

/** The representative topology subset the differential suite sweeps
 *  (breadth stays in the per-algo suites). */
const char* const kDiffUndirectedKinds[] = {"grid", "rmat", "pref",
                                            "road"};

std::string
modeTag(simt::ExecMode mode)
{
    switch (mode) {
    case simt::ExecMode::kFast:
        return "fast";
    case simt::ExecMode::kInterleaved:
        return "ilv";
    case simt::ExecMode::kWarpBatched:
        return "batch";
    }
    return "?";
}

}  // namespace

std::string
diffCellName(const DiffCell& cell)
{
    if (cell.apsp)
        return "apsp/" + cell.kind + "/" + modeTag(cell.mode);
    return std::string(algos::algoName(cell.algo)) + "/" +
           algos::variantName(cell.variant) + "/" + cell.kind + "/" +
           modeTag(cell.mode);
}

graph::CsrGraph
diffGraph(const DiffCell& cell)
{
    if (cell.apsp)
        return apspGraph(cell.kind);
    if (cell.algo == algos::Algo::kMst)
        return graph::withSyntheticWeights(smallUndirected(cell.kind),
                                           100, 0xabc);
    return algos::algoNeedsDirected(cell.algo)
               ? smallDirected(cell.kind)
               : smallUndirected(cell.kind);
}

std::vector<DiffCell>
diffCells(algos::Algo algo)
{
    std::vector<DiffCell> cells;
    std::vector<std::string> kinds;
    if (algos::algoNeedsDirected(algo))
        kinds.assign(std::begin(kDirectedKinds), std::end(kDirectedKinds));
    else
        kinds.assign(std::begin(kDiffUndirectedKinds),
                     std::end(kDiffUndirectedKinds));
    for (const std::string& kind : kinds)
        for (algos::Variant variant :
             {algos::Variant::kBaseline, algos::Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved,
                  simt::ExecMode::kWarpBatched}) {
                // See diffCells doc: PR baseline under the adversarial
                // interleaver sits outside any useful L1 bound.
                if (algo == algos::Algo::kPr &&
                    variant == algos::Variant::kBaseline &&
                    mode == simt::ExecMode::kInterleaved)
                    continue;
                DiffCell cell;
                cell.algo = algo;
                cell.variant = variant;
                cell.kind = kind;
                cell.mode = mode;
                cells.push_back(cell);
            }
    return cells;
}

std::vector<DiffCell>
diffCellsApsp()
{
    std::vector<DiffCell> cells;
    for (const char* kind : kApspKinds)
        for (simt::ExecMode mode :
             {simt::ExecMode::kFast, simt::ExecMode::kInterleaved,
              simt::ExecMode::kWarpBatched}) {
            DiffCell cell;
            cell.apsp = true;
            cell.kind = kind;
            cell.mode = mode;
            cells.push_back(cell);
        }
    return cells;
}

std::vector<DiffCell>
allDiffCells()
{
    std::vector<DiffCell> cells;
    for (algos::Algo algo :
         {algos::Algo::kCc, algos::Algo::kGc, algos::Algo::kMis,
          algos::Algo::kMst, algos::Algo::kScc, algos::Algo::kPr,
          algos::Algo::kBfs, algos::Algo::kWcc}) {
        const auto algo_cells = diffCells(algo);
        cells.insert(cells.end(), algo_cells.begin(), algo_cells.end());
    }
    const auto apsp = diffCellsApsp();
    cells.insert(cells.end(), apsp.begin(), apsp.end());
    return cells;
}

DiffResult
runDiffCell(const DiffCell& cell, u64 seed)
{
    DiffResult out;
    out.cell = cell;
    const auto graph = diffGraph(cell);

    simt::EngineOptions options;
    options.mode = cell.mode;
    options.seed = seed;
    simt::DeviceMemory memory;
    simt::Engine engine(simt::titanV(), memory, options);

    if (cell.apsp) {
        const auto r = algos::runApsp(engine, graph);
        out.stats = r.stats;
        out.verdict = chaos::checkApsp(graph, r);
        return out;
    }
    const chaos::RunOutcome run =
        chaos::runChecked(engine, graph, cell.algo, cell.variant);
    out.stats = run.stats;
    out.verdict = run.verdict;
    return out;
}

std::vector<DiffResult>
runDiffCells(const std::vector<DiffCell>& cells, u64 base_seed, u32 jobs,
             const DiffRunnerFn& runner)
{
    const DiffRunnerFn run = runner ? runner : runDiffCell;
    std::vector<DiffResult> out(cells.size());
    if (jobs <= 1 || cells.size() <= 1) {
        for (size_t i = 0; i < cells.size(); ++i)
            out[i] = run(cells[i], cellSeed(base_seed, i));
        return out;
    }
    core::ThreadPool pool(
        static_cast<u32>(std::min<size_t>(jobs, cells.size())));
    std::vector<std::future<void>> done;
    done.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i)
        done.push_back(pool.submit(
            [&, i] { out[i] = run(cells[i], cellSeed(base_seed, i)); }));
    for (auto& future : done)
        future.get();
    return out;
}

std::string
measurementCsv(const std::vector<DiffResult>& results)
{
    TextTable table({"Cell", "ms", "Cycles", "Launches", "Iterations",
                     "Loads", "Stores", "Rmws", "Atomics", "DramBytes"});
    for (const DiffResult& r : results) {
        char ms[32];
        std::snprintf(ms, sizeof(ms), "%.6f", r.stats.ms);
        table.addRow({diffCellName(r.cell), ms,
                      std::to_string(r.stats.cycles),
                      std::to_string(r.stats.launches),
                      std::to_string(r.stats.iterations),
                      std::to_string(r.stats.mem.loads),
                      std::to_string(r.stats.mem.stores),
                      std::to_string(r.stats.mem.rmws),
                      std::to_string(r.stats.mem.atomic_accesses),
                      std::to_string(r.stats.mem.dram_bytes)});
    }
    return table.toCsv();
}

DiffSummary
checkDifferential(const std::vector<DiffCell>& cells, u64 base_seed,
                  const DiffRunnerFn& runner)
{
    DiffSummary summary;
    const auto serial = runDiffCells(cells, base_seed, 1, runner);
    for (const DiffResult& r : serial) {
        if (!r.verdict.valid)
            summary.failures.push_back(diffCellName(r.cell) + ": " +
                                       r.verdict.detail);
    }
    summary.csv = measurementCsv(serial);
    const auto parallel = runDiffCells(cells, base_seed, 8, runner);
    summary.parallel_csv = measurementCsv(parallel);
    summary.deterministic = summary.csv == summary.parallel_csv;
    return summary;
}

void
expectDifferentialProperty(const std::vector<DiffCell>& cells,
                           u64 base_seed)
{
    const DiffSummary summary = checkDifferential(cells, base_seed);
    for (const std::string& failure : summary.failures)
        ADD_FAILURE() << "oracle rejection: " << failure;
    EXPECT_TRUE(summary.deterministic)
        << "jobs=1 and jobs=8 measurement CSVs differ:\n--- jobs=1\n"
        << summary.csv << "--- jobs=8\n"
        << summary.parallel_csv;
}

void
expectOracleValid(simt::Engine& engine, const graph::CsrGraph& graph,
                  algos::Algo algo, algos::Variant variant)
{
    const chaos::RunOutcome run =
        chaos::runChecked(engine, graph, algo, variant);
    EXPECT_TRUE(run.verdict.valid)
        << algos::algoName(algo) << "/" << algos::variantName(variant)
        << " rejected under "
        << chaos::equivalenceName(chaos::equivalenceFor(algo)) << ": "
        << run.verdict.detail;
}

}  // namespace eclsim::test
