/**
 * @file
 * Property sweeps: randomized graphs over many seeds, every algorithm,
 * both variants, validated against the sequential oracles. These catch
 * interleaving- or topology-dependent bugs the hand-picked cases miss.
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/cc.hpp"
#include "core/rng.hpp"
#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "algos/mst.hpp"
#include "algos/scc.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::makeEngine;

class SeedSweep : public ::testing::TestWithParam<u64>
{
  protected:
    graph::CsrGraph
    randomUndirected() const
    {
        const u64 seed = GetParam();
        // Vary both size and density with the seed.
        const VertexId n = 200 + (hash64(seed) % 800);
        const u64 m = n + hash64(seed ^ 1) % (4 * n);
        return graph::makeRandomUniform(n, m, seed);
    }

    graph::CsrGraph
    randomDirected() const
    {
        const u64 seed = GetParam();
        return graph::makeDirectedPowerLaw(
            9, 1500 + hash64(seed) % 4000, 0.2 + (seed % 5) * 0.1, seed);
    }
};

TEST_P(SeedSweep, CcMatchesOracleBothVariants)
{
    const auto graph = randomUndirected();
    const auto oracle = refalgos::connectedComponents(graph);
    for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory, simt::ExecMode::kFast, false,
                                 GetParam());
        const auto result = runCc(*engine, graph, variant);
        ASSERT_TRUE(refalgos::samePartition(result.labels, oracle))
            << "seed " << GetParam() << " " << variantName(variant);
    }
}

TEST_P(SeedSweep, GcValidBothVariants)
{
    const auto graph = randomUndirected();
    for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory, simt::ExecMode::kFast, false,
                                 GetParam());
        const auto result = runGc(*engine, graph, variant);
        ASSERT_TRUE(refalgos::isValidColoring(graph, result.colors))
            << "seed " << GetParam();
        u64 max_degree = 0;
        for (VertexId v = 0; v < graph.numVertices(); ++v)
            max_degree = std::max(max_degree, graph.degree(v));
        ASSERT_LE(result.num_colors, max_degree + 1);
    }
}

TEST_P(SeedSweep, MisMaximalBothVariants)
{
    const auto graph = randomUndirected();
    for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory, simt::ExecMode::kFast, false,
                                 GetParam());
        const auto result = runMis(*engine, graph, variant);
        ASSERT_TRUE(refalgos::isMaximalIndependentSet(graph,
                                                      result.in_set))
            << "seed " << GetParam();
    }
}

TEST_P(SeedSweep, MstWeightMatchesKruskalBothVariants)
{
    const auto graph = graph::withSyntheticWeights(randomUndirected(),
                                                   1 + GetParam() % 200,
                                                   GetParam());
    const u64 expect = refalgos::minimumSpanningForestWeight(graph);
    for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory, simt::ExecMode::kFast, false,
                                 GetParam());
        const auto result = runMst(*engine, graph, variant);
        ASSERT_EQ(result.total_weight, expect) << "seed " << GetParam();
    }
}

TEST_P(SeedSweep, SccMatchesTarjanBothVariants)
{
    const auto graph = randomDirected();
    const auto oracle = refalgos::stronglyConnectedComponents(graph);
    for (Variant variant : {Variant::kBaseline, Variant::kRaceFree}) {
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory, simt::ExecMode::kFast, false,
                                 GetParam());
        const auto result = runScc(*engine, graph, variant);
        ASSERT_TRUE(refalgos::samePartition(result.labels, oracle))
            << "seed " << GetParam();
    }
}

TEST_P(SeedSweep, InterleavedEngineAgreesOnDeterministicOutputs)
{
    // CC labels and MST weight are schedule-independent: the two engines
    // must agree exactly.
    const auto graph = graph::withSyntheticWeights(randomUndirected(),
                                                   64, GetParam());
    u64 weights[2];
    size_t components[2];
    int i = 0;
    for (simt::ExecMode mode :
         {simt::ExecMode::kFast, simt::ExecMode::kInterleaved}) {
        simt::DeviceMemory memory;
        auto engine = makeEngine(memory, mode, false, GetParam());
        components[i] = refalgos::countDistinct(
            runCc(*engine, graph, Variant::kRaceFree).labels);
        weights[i] =
            runMst(*engine, graph, Variant::kRaceFree).total_weight;
        ++i;
    }
    EXPECT_EQ(components[0], components[1]);
    EXPECT_EQ(weights[0], weights[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace eclsim::algos
