/**
 * @file
 * Differential properties of ExecMode::kWarpBatched across the full
 * algorithm portfolio (the eight Algo values plus APSP):
 *
 *  - batch ≡ fast, bit-exact per cell: every algorithm kernel is a
 *    scalar coroutine, so a batch-mode launch falls back to the fast
 *    route (BatchFallback::kScalarKernel) and every measurement —
 *    simulated ms, cycles, launches, iterations, and all memory
 *    counters — must match the kFast run exactly. This is what keeps
 *    the paper-table CSVs byte-identical across --exec-mode.
 *  - three-way access-count parity on APSP: APSP is race free by
 *    construction, so even the interleaved scheduler must perform the
 *    same loads/stores/RMWs (timing differs; the work must not).
 *  - batch-mode cells obey the PR-2 determinism contract: jobs=1 and
 *    jobs=8 render byte-identical measurement CSVs.
 */
#include <gtest/gtest.h>

#include "algos/apsp.hpp"
#include "differential_harness.hpp"

namespace eclsim::test {
namespace {

/** The cell set of one algorithm restricted to `mode` (topology x
 *  variant breadth comes from diffCells). */
std::vector<DiffCell>
cellsInMode(const std::vector<DiffCell>& all, simt::ExecMode mode)
{
    std::vector<DiffCell> out;
    for (DiffCell cell : all) {
        if (cell.mode != simt::ExecMode::kFast)
            continue;
        cell.mode = mode;
        out.push_back(cell);
    }
    return out;
}

void
expectCellBitExact(const DiffResult& a, const DiffResult& b)
{
    const std::string name = diffCellName(a.cell);
    EXPECT_EQ(a.verdict.valid, b.verdict.valid) << name;
    EXPECT_EQ(a.stats.ms, b.stats.ms) << name;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << name;
    EXPECT_EQ(a.stats.launches, b.stats.launches) << name;
    EXPECT_EQ(a.stats.iterations, b.stats.iterations) << name;
    EXPECT_EQ(a.stats.mem.loads, b.stats.mem.loads) << name;
    EXPECT_EQ(a.stats.mem.stores, b.stats.mem.stores) << name;
    EXPECT_EQ(a.stats.mem.rmws, b.stats.mem.rmws) << name;
    EXPECT_EQ(a.stats.mem.atomic_accesses, b.stats.mem.atomic_accesses)
        << name;
    EXPECT_EQ(a.stats.mem.stale_reads, b.stats.mem.stale_reads) << name;
    EXPECT_EQ(a.stats.mem.dram_bytes, b.stats.mem.dram_bytes) << name;
}

void
expectBatchMatchesFast(const std::vector<DiffCell>& all_cells)
{
    const auto fast_cells = cellsInMode(all_cells, simt::ExecMode::kFast);
    const auto batch_cells =
        cellsInMode(all_cells, simt::ExecMode::kWarpBatched);
    ASSERT_FALSE(fast_cells.empty());
    const auto fast = runDiffCells(fast_cells, 99, 1);
    const auto batch = runDiffCells(batch_cells, 99, 1);
    ASSERT_EQ(fast.size(), batch.size());
    for (size_t i = 0; i < fast.size(); ++i)
        expectCellBitExact(fast[i], batch[i]);
}

TEST(WarpBatchDifferentialTest, BatchMatchesFastBitExactUndirected)
{
    for (algos::Algo algo :
         {algos::Algo::kCc, algos::Algo::kGc, algos::Algo::kMis,
          algos::Algo::kMst, algos::Algo::kWcc})
        expectBatchMatchesFast(diffCells(algo));
}

TEST(WarpBatchDifferentialTest, BatchMatchesFastBitExactDirected)
{
    for (algos::Algo algo :
         {algos::Algo::kScc, algos::Algo::kPr, algos::Algo::kBfs})
        expectBatchMatchesFast(diffCells(algo));
}

TEST(WarpBatchDifferentialTest, BatchMatchesFastBitExactApsp)
{
    expectBatchMatchesFast(diffCellsApsp());
}

TEST(WarpBatchDifferentialTest, ThreeModeAccessCountsAgreeForApsp)
{
    // APSP is race free by construction: the interleaved scheduler may
    // charge different cycles, but the simulated *work* must be
    // identical in all three modes.
    for (const auto& fast_cell :
         cellsInMode(diffCellsApsp(), simt::ExecMode::kFast)) {
        DiffCell batch_cell = fast_cell;
        batch_cell.mode = simt::ExecMode::kWarpBatched;
        DiffCell inter_cell = fast_cell;
        inter_cell.mode = simt::ExecMode::kInterleaved;

        const auto fast = runDiffCell(fast_cell, 7);
        const auto batch = runDiffCell(batch_cell, 7);
        const auto inter = runDiffCell(inter_cell, 7);
        const std::string name = diffCellName(fast_cell);
        for (const auto* r : {&batch, &inter}) {
            EXPECT_EQ(fast.stats.mem.loads, r->stats.mem.loads) << name;
            EXPECT_EQ(fast.stats.mem.stores, r->stats.mem.stores) << name;
            EXPECT_EQ(fast.stats.mem.rmws, r->stats.mem.rmws) << name;
            EXPECT_EQ(fast.stats.iterations, r->stats.iterations) << name;
        }
    }
}

TEST(WarpBatchDifferentialTest, BatchModeCellsAreJobsDeterministic)
{
    // A representative batch-mode subset through the full jobs=1 vs
    // jobs=8 CSV-identity check (the all-modes sweep lives in
    // algos_differential_test).
    auto cells = cellsInMode(diffCells(algos::Algo::kCc),
                             simt::ExecMode::kWarpBatched);
    const auto apsp =
        cellsInMode(diffCellsApsp(), simt::ExecMode::kWarpBatched);
    cells.insert(cells.end(), apsp.begin(), apsp.end());
    expectDifferentialProperty(cells);
}

}  // namespace
}  // namespace eclsim::test
