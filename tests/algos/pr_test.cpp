/**
 * @file
 * Correctness tests of the simulated push-style PageRank against the
 * sequential double-precision power-iteration oracle, under the
 * declared L1-norm equivalence (PR's baseline race is harmful but
 * tolerated — see algos/pr.hpp).
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/pr.hpp"
#include "differential_harness.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::kDirectedKinds;
using test::makeEngine;
using test::smallDirected;

struct PrCase
{
    std::string kind;
    Variant variant;
    simt::ExecMode mode;
};

class PrTest : public ::testing::TestWithParam<PrCase>
{
};

TEST_P(PrTest, WithinL1BoundOfPowerIteration)
{
    const auto& param = GetParam();
    const auto graph = smallDirected(param.kind);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, param.mode);
    test::expectOracleValid(*engine, graph, Algo::kPr, param.variant);
}

std::vector<PrCase>
prCases()
{
    std::vector<PrCase> cases;
    for (const char* kind : kDirectedKinds)
        for (Variant variant : {Variant::kBaseline, Variant::kRaceFree})
            for (simt::ExecMode mode :
                 {simt::ExecMode::kFast, simt::ExecMode::kInterleaved}) {
                // The baseline's lost float accumulations under the
                // maximally adversarial interleaver sit far outside any
                // useful L1 bound; its tolerance claim is about the
                // fast path (same rule as the racecheck gate's control
                // run and the differential suite).
                if (variant == Variant::kBaseline &&
                    mode == simt::ExecMode::kInterleaved)
                    continue;
                cases.push_back({kind, variant, mode});
            }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, PrTest, ::testing::ValuesIn(prCases()),
    [](const auto& info) {
        return info.param.kind + std::string("_") +
               (info.param.variant == Variant::kBaseline ? "base"
                                                         : "free") +
               (info.param.mode == simt::ExecMode::kFast ? "_fast"
                                                         : "_ilv");
    });

TEST(PrProperties, RanksSumToOne)
{
    const auto graph = smallDirected("mesh");
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runPr(*engine, graph, v);
        double sum = 0.0;
        for (float r : result.ranks)
            sum += r;
        EXPECT_NEAR(sum, 1.0, 1e-3) << variantName(v);
    }
}

TEST(PrProperties, RunsExactlyTheFixedIterationCount)
{
    const auto graph = smallDirected("star");
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runPr(*engine, graph, Variant::kRaceFree);
    EXPECT_EQ(result.stats.iterations, kPrIterations);
}

TEST(PrProperties, RaceFreeUsesFloatAtomics)
{
    const auto graph = smallDirected("powerlaw");
    simt::DeviceMemory mem_base, mem_free;
    auto engine_base = makeEngine(mem_base);
    auto engine_free = makeEngine(mem_free);
    const auto base = runPr(*engine_base, graph, Variant::kBaseline);
    const auto free = runPr(*engine_free, graph, Variant::kRaceFree);
    // The race-free push replaces the plain load/store accumulation
    // with atomicAdd(float*): strictly more RMWs than the baseline
    // (which only keeps the dangling-pool atomic).
    EXPECT_GT(free.stats.mem.rmws, base.stats.mem.rmws);
}

TEST(PrEdgeCases, SingleVertexNoArcs)
{
    graph::CsrGraph g({0, 0}, {}, {}, true);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runPr(*engine, g, Variant::kRaceFree);
    ASSERT_EQ(result.ranks.size(), 1u);
    EXPECT_NEAR(result.ranks[0], 1.0f, 1e-5f);
}

TEST(PrEdgeCases, DanglingVerticesRedistributeRank)
{
    // 0 -> 1, 0 -> 2; vertices 1 and 2 are dangling sinks. Without
    // dangling-rank pooling their mass would leak; with it the vector
    // still sums to ~1 and matches the oracle.
    auto g = graph::buildCsr(3, {{0, 1}, {0, 2}},
                             graph::BuildOptions{.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runPr(*engine, g, v);
        double sum = 0.0;
        for (float r : result.ranks)
            sum += r;
        EXPECT_NEAR(sum, 1.0, 1e-4) << variantName(v);
        // Symmetric targets of the only source get equal rank.
        EXPECT_NEAR(result.ranks[1], result.ranks[2], 1e-6f);
    }
}

TEST(PrEdgeCases, MatchesOracleOnCycleExactly)
{
    // A directed 4-cycle is rank-symmetric: every vertex 0.25, in both
    // variants, to float accuracy (no races fire: out-degree 1).
    auto g = graph::buildCsr(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
                             graph::BuildOptions{.directed = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    for (Variant v : {Variant::kBaseline, Variant::kRaceFree}) {
        const auto result = runPr(*engine, g, v);
        for (float r : result.ranks)
            EXPECT_NEAR(r, 0.25f, 1e-5f) << variantName(v);
    }
}

}  // namespace
}  // namespace eclsim::algos
