/**
 * @file
 * Correctness tests of the simulated ECL-APSP (blocked Floyd-Warshall)
 * against the plain Floyd-Warshall oracle, plus the paper's claim that
 * APSP is race free (Section IV-A).
 */
#include <gtest/gtest.h>

#include "algo_test_util.hpp"
#include "algos/apsp.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::algos {
namespace {

using test::makeEngine;

graph::CsrGraph
weightedDirected(u32 n, u64 arcs, u64 seed)
{
    graph::RmatParams params;
    params.directed = true;
    u32 scale = 1;
    while ((u32{1} << scale) < n)
        ++scale;
    auto g = graph::makeRmat(scale, arcs, params, seed);
    return graph::withSyntheticWeights(g, 20, seed + 1);
}

void
expectMatchesOracle(const graph::CsrGraph& graph,
                    const ApspResult& result)
{
    const auto oracle = refalgos::allPairsShortestPaths(graph);
    const u32 n = graph.numVertices();
    ASSERT_EQ(result.n, n);
    for (u32 i = 0; i < n; ++i)
        for (u32 j = 0; j < n; ++j) {
            const i64 expect = oracle[static_cast<size_t>(i) * n + j];
            const i32 got = result.at(i, j);
            if (expect >= refalgos::kApspInfinity)
                EXPECT_GE(got, kApspInf) << i << "->" << j;
            else
                EXPECT_EQ(got, expect) << i << "->" << j;
        }
}

class ApspTest : public ::testing::TestWithParam<simt::ExecMode>
{
};

TEST_P(ApspTest, MatchesFloydWarshallOracle)
{
    const auto graph = weightedDirected(48, 300, 11);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, GetParam());
    const auto result = runApsp(*engine, graph);
    expectMatchesOracle(graph, result);
}

TEST_P(ApspTest, TileMultipleDimension)
{
    // n an exact multiple of the tile size (no padding path).
    const auto graph = weightedDirected(kApspTile * 4, 500, 12);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, GetParam());
    const auto result = runApsp(*engine, graph);
    expectMatchesOracle(graph, result);
}

TEST_P(ApspTest, SingleTileGraph)
{
    const auto graph = weightedDirected(kApspTile - 3, 80, 13);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, GetParam());
    const auto result = runApsp(*engine, graph);
    expectMatchesOracle(graph, result);
}

INSTANTIATE_TEST_SUITE_P(BothModes, ApspTest,
                         ::testing::Values(simt::ExecMode::kFast,
                                           simt::ExecMode::kInterleaved),
                         [](const auto& info) {
                             return info.param == simt::ExecMode::kFast
                                        ? "Fast"
                                        : "Interleaved";
                         });

TEST(ApspRaces, RegularCodeHasNoDataRaces)
{
    // The paper's Section IV-A: APSP is the one regular code, and its
    // baseline has no data races. Run it under the race detector in
    // interleaved mode and expect a clean report.
    const auto graph = weightedDirected(40, 250, 14);
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory, simt::ExecMode::kInterleaved,
                             /*detect_races=*/true);
    runApsp(*engine, graph);
    ASSERT_NE(engine->raceDetector(), nullptr);
    EXPECT_EQ(engine->raceDetector()->totalRaces(), 0u)
        << engine->raceDetector()->summary();
}

TEST(ApspEdgeCases, DisconnectedPairsStayInfinite)
{
    auto g = graph::buildCsr(6, {{0, 1, 4}, {2, 3, 2}},
                             {.directed = true, .keep_weights = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runApsp(*engine, g);
    EXPECT_EQ(result.at(0, 1), 4);
    EXPECT_GE(result.at(1, 0), kApspInf);
    EXPECT_GE(result.at(0, 5), kApspInf);
    EXPECT_EQ(result.at(4, 4), 0);
}

TEST(ApspEdgeCases, PathGraphDistancesAreCumulative)
{
    std::vector<graph::Edge> edges;
    const u32 n = 20;
    for (u32 v = 0; v + 1 < n; ++v)
        edges.push_back({v, v + 1, static_cast<i32>(v + 1)});
    auto g = graph::buildCsr(n, std::move(edges),
                             {.directed = true, .keep_weights = true});
    simt::DeviceMemory memory;
    auto engine = makeEngine(memory);
    const auto result = runApsp(*engine, g);
    i32 sum = 0;
    for (u32 v = 1; v < n; ++v) {
        sum += static_cast<i32>(v);
        EXPECT_EQ(result.at(0, v), sum);
    }
}

}  // namespace
}  // namespace eclsim::algos
