/**
 * @file
 * Tests of the hookless fast access path: selection logic (fast mode,
 * no hooks, not forced off) and the bit-identity contract — the fast
 * and general paths must produce identical simulated memory contents,
 * cycle counts, memory counters, and cache statistics, including for
 * sweep-snapshot allocations.
 */
#include <gtest/gtest.h>

#include "simt/engine.hpp"

namespace eclsim::simt {
namespace {

void
expectSameCacheStats(const CacheStats& a, const CacheStats& b,
                     const char* which)
{
    EXPECT_EQ(a.load_hits, b.load_hits) << which;
    EXPECT_EQ(a.load_misses, b.load_misses) << which;
    EXPECT_EQ(a.store_hits, b.store_hits) << which;
    EXPECT_EQ(a.store_misses, b.store_misses) << which;
}

void
expectSameCounters(const MemoryCounters& a, const MemoryCounters& b)
{
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.rmws, b.rmws);
    EXPECT_EQ(a.atomic_accesses, b.atomic_accesses);
    EXPECT_EQ(a.stale_reads, b.stale_reads);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    expectSameCacheStats(a.l1, b.l1, "l1");
    expectSameCacheStats(a.l2, b.l2, "l2");
}

/** Runs a mixed-operation kernel (plain loads/stores, shared memory,
 *  barriers, global and CAS atomics, stale snapshot reads) and returns
 *  the launch stats plus the final memory image. */
LaunchStats
runMixedKernel(bool force_slow, std::vector<u32>* image_out,
               bool* used_fast_out = nullptr)
{
    EngineOptions options;
    options.seed = 7;
    options.force_slow_path = force_slow;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);

    const u32 n = 1 << 12;
    auto data = memory.alloc<u32>(n, "data");
    auto snap = memory.alloc<u32>(n, "snap", Visibility::kSweepSnapshot);
    auto hist = memory.alloc<u32>(64, "hist");
    auto best = memory.alloc<u32>(1, "best");
    memory.fill(best, 1, ~u32{0});

    LaunchConfig cfg;
    cfg.grid = 16;
    cfg.block_x = 128;
    cfg.shared_bytes = 128 * sizeof(u32);

    const auto stats = engine.launch("mixed", cfg, [&](ThreadCtx& t) -> Task {
        u32* tile = t.sharedArray<u32>(128);
        tile[t.threadInBlock()] = t.globalThreadId();
        co_await t.syncthreads();
        const u32 neighbor = tile[(t.threadInBlock() + 1) % 128];
        for (u32 i = t.globalThreadId(); i < n; i += t.gridSize()) {
            const u32 stale = co_await t.load(snap, i);
            co_await t.store(data, i, stale + neighbor);
            const u32 back = co_await t.load(data, i);
            co_await t.atomicAdd(hist, back % 64, u32{1});
            co_await t.atomicMin(best, 0, back);
            co_await t.atomicCas(snap, i, stale, back);
        }
    });

    if (used_fast_out != nullptr)
        *used_fast_out = engine.usedFastPath();
    if (image_out != nullptr) {
        *image_out = memory.download(data, n);
        const auto snap_img = memory.download(snap, n);
        const auto hist_img = memory.download(hist, 64);
        image_out->insert(image_out->end(), snap_img.begin(),
                          snap_img.end());
        image_out->insert(image_out->end(), hist_img.begin(),
                          hist_img.end());
        image_out->push_back(memory.read(best));
    }
    return stats;
}

TEST(FastPathTest, FastAndSlowPathsAreBitIdentical)
{
    std::vector<u32> fast_image, slow_image;
    bool used_fast = false, used_slow_fast = true;
    const auto fast = runMixedKernel(false, &fast_image, &used_fast);
    const auto slow = runMixedKernel(true, &slow_image, &used_slow_fast);

    EXPECT_TRUE(used_fast) << "hookless fast-mode launch must select "
                              "the fast path";
    EXPECT_FALSE(used_slow_fast)
        << "force_slow_path must route through the general path";

    EXPECT_EQ(fast_image, slow_image)
        << "simulated memory diverged between the two paths";
    EXPECT_EQ(fast.cycles, slow.cycles);
    EXPECT_EQ(fast.ms, slow.ms);  // derived from cycles; exact
    expectSameCounters(fast.mem, slow.mem);
}

TEST(FastPathTest, InstalledHooksDisableTheFastPath)
{
    // Race detection is a hook: the engine must take the general path.
    EngineOptions options;
    options.detect_races = true;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);
    auto out = memory.alloc<u32>(64, "out");
    engine.launch("hooked", launchFor(64, 64), [&](ThreadCtx& t) -> Task {
        co_await t.store(out, t.globalThreadId(), 1u);
    });
    EXPECT_FALSE(engine.usedFastPath());
}

TEST(FastPathTest, InterleavedModeNeverUsesTheFastPath)
{
    EngineOptions options;
    options.mode = ExecMode::kInterleaved;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);
    auto out = memory.alloc<u32>(64, "out");
    engine.launch("interleaved", launchFor(64, 64),
                  [&](ThreadCtx& t) -> Task {
                      co_await t.store(out, t.globalThreadId(), 1u);
                  });
    EXPECT_FALSE(engine.usedFastPath());
}

}  // namespace
}  // namespace eclsim::simt
