/**
 * @file
 * Tests of the GPU presets (they must match the paper's Table I) and of
 * the relative cost structure the evaluation depends on.
 */
#include <gtest/gtest.h>

#include "simt/gpu_spec.hpp"

namespace eclsim::simt {
namespace {

TEST(GpuSpec, TableOneValues)
{
    const auto tv = titanV();
    EXPECT_EQ(tv.architecture, "Volta");
    EXPECT_EQ(tv.cores, 5120u);
    EXPECT_EQ(tv.num_sms, 80u);
    EXPECT_EQ(tv.l1_bytes, 96u * 1024);
    EXPECT_EQ(tv.l2_bytes, 4608u * 1024);
    EXPECT_DOUBLE_EQ(tv.mem_bandwidth_gbps, 652.0);
    EXPECT_EQ(tv.nvcc_version, "10.1");
    EXPECT_EQ(tv.nvcc_flags, "-O3 -arch=sm_70");

    const auto t2070 = rtx2070Super();
    EXPECT_EQ(t2070.architecture, "Turing");
    EXPECT_EQ(t2070.cores, 2560u);
    EXPECT_EQ(t2070.num_sms, 40u);

    const auto ta100 = a100();
    EXPECT_EQ(ta100.architecture, "Ampere");
    EXPECT_EQ(ta100.cores, 6912u);
    EXPECT_EQ(ta100.num_sms, 108u);
    EXPECT_EQ(ta100.l1_bytes, 192u * 1024);
    EXPECT_EQ(ta100.l2_bytes, 40u * 1024 * 1024);
    EXPECT_DOUBLE_EQ(ta100.mem_bandwidth_gbps, 1555.0);

    const auto t4090 = rtx4090();
    EXPECT_EQ(t4090.architecture, "Ada Lovelace");
    EXPECT_EQ(t4090.cores, 16384u);
    EXPECT_EQ(t4090.num_sms, 128u);
    EXPECT_EQ(t4090.l2_bytes, 72u * 1024 * 1024);
}

TEST(GpuSpec, FourEvaluationGpusInPaperOrder)
{
    const auto& gpus = evaluationGpus();
    ASSERT_EQ(gpus.size(), 4u);
    EXPECT_EQ(gpus[0].name, "Titan V");
    EXPECT_EQ(gpus[1].name, "2070 Super");
    EXPECT_EQ(gpus[2].name, "A100");
    EXPECT_EQ(gpus[3].name, "4090");
}

TEST(GpuSpec, FindByName)
{
    EXPECT_EQ(findGpu("A100").architecture, "Ampere");
    EXPECT_DEATH(findGpu("H100"), "unknown GPU");
}

TEST(GpuSpec, CostStructureInvariants)
{
    for (const auto& gpu : evaluationGpus()) {
        // Latency ordering drives the whole study: L1 < L2 < DRAM.
        EXPECT_LT(gpu.l1_latency, gpu.l2_latency) << gpu.name;
        EXPECT_LT(gpu.l2_latency, gpu.dram_latency) << gpu.name;
        // Atomics are never free and RMWs cost more than atomic loads.
        EXPECT_GT(gpu.atomic_extra, 0u) << gpu.name;
        EXPECT_GT(gpu.rmw_extra, 0u) << gpu.name;
        EXPECT_GE(gpu.latency_hiding, 1.0) << gpu.name;
        EXPECT_GT(gpu.issue_cycles, 0u) << gpu.name;
        EXPECT_GT(gpu.clock_ghz, 0.5) << gpu.name;
    }
}

TEST(GpuSpec, NewerGpusPenalizeAtomicsRelativelyMore)
{
    // The paper's Fig. 6 trend ("more slowdown on newer GPUs") comes
    // from the atomic path growing relative to the regular L1 path.
    auto relative_penalty = [](const GpuSpec& g) {
        const double plain = g.issue_cycles +
                             static_cast<double>(g.l1_latency) /
                                 g.latency_hiding;
        const double atomic = g.issue_cycles +
                              static_cast<double>(g.l2_latency +
                                                  g.atomic_extra) /
                                  g.latency_hiding;
        return atomic / plain;
    };
    // The 2070 Super shows the mildest penalty in the paper's tables;
    // the A100 and 4090 the harshest.
    EXPECT_LT(relative_penalty(rtx2070Super()),
              relative_penalty(titanV()));
    EXPECT_GT(relative_penalty(a100()), relative_penalty(rtx2070Super()));
    EXPECT_GT(relative_penalty(rtx4090()),
              relative_penalty(rtx2070Super()));
}

}  // namespace
}  // namespace eclsim::simt
