/**
 * @file
 * Word tearing (paper Fig. 1 and Section II-A) as executable tests: on
 * the interleaved engine's 32-bit-native target, plain and volatile
 * 64-bit accesses can tear into observable chimera values; atomic
 * accesses never do. Also covers the engine-level race detection of the
 * same scenario.
 */
#include <gtest/gtest.h>

#include <set>

#include "simt/engine.hpp"

namespace eclsim::simt {
namespace {

constexpr u64 kAllOnes = ~u64{0};
constexpr u64 kChimeraHi = 0xffffffff00000000ULL;
constexpr u64 kChimeraLo = 0x00000000ffffffffULL;

/** Fig. 1: T1 stores 0 over -1; readers poll. Returns observed values. */
std::set<u64>
fig1Observed(AccessMode mode, u32 trials)
{
    std::set<u64> observed;
    for (u32 trial = 0; trial < trials; ++trial) {
        DeviceMemory memory;
        EngineOptions options;
        options.mode = ExecMode::kInterleaved;
        options.seed = trial * 7 + 1;
        Engine engine(titanV(), memory, options);

        auto val = memory.alloc<u64>(1, "val");
        auto seen = memory.alloc<u64>(96, "seen");
        memory.write(val, kAllOnes);

        LaunchConfig cfg;
        cfg.grid = 1;
        cfg.block_x = 96;
        engine.launch("fig1", cfg, [&](ThreadCtx& t) -> Task {
            const u32 i = t.threadInBlock();
            if (i == 0) {
                co_await t.store(val, 0, u64{0}, mode);
            } else {
                u64 v = 0;
                for (u32 poll = 0; poll <= i % 6; ++poll)
                    v = co_await t.load(val, 0, mode);
                co_await t.store(seen, i, v);
            }
        });
        for (u32 i = 1; i < 96; ++i)
            observed.insert(memory.read(seen, i));
    }
    return observed;
}

TEST(WordTearing, PlainAccessesProduceChimeras)
{
    const auto observed = fig1Observed(AccessMode::kPlain, 64);
    EXPECT_TRUE(observed.count(kChimeraHi) || observed.count(kChimeraLo))
        << "expected at least one torn value across 64 interleavings";
    // Every observed value is one of the four possible ones.
    for (u64 v : observed)
        EXPECT_TRUE(v == 0 || v == kAllOnes || v == kChimeraHi ||
                    v == kChimeraLo);
}

TEST(WordTearing, VolatileDoesNotPreventTearing)
{
    // Section II-A: "marking a variable as volatile does not prevent
    // word tearing".
    const auto observed = fig1Observed(AccessMode::kVolatile, 64);
    EXPECT_TRUE(observed.count(kChimeraHi) || observed.count(kChimeraLo));
}

TEST(WordTearing, AtomicAccessesNeverTear)
{
    const auto observed = fig1Observed(AccessMode::kAtomic, 64);
    for (u64 v : observed)
        EXPECT_TRUE(v == 0 || v == kAllOnes)
            << "atomic reader saw torn value " << v;
}

TEST(WordTearing, FastEngineModelsNative64BitGpus)
{
    // The evaluation GPUs transfer 64-bit words natively; the fast
    // engine never tears even for plain accesses.
    DeviceMemory memory;
    Engine engine(titanV(), memory);
    auto val = memory.alloc<u64>(1, "val");
    auto seen = memory.alloc<u64>(64, "seen");
    memory.write(val, kAllOnes);

    engine.launch("fig1", launchFor(64, 64), [&](ThreadCtx& t) -> Task {
        const u32 i = t.globalThreadId();
        if (i == 0)
            co_await t.store(val, 0, u64{0});
        else if (i < 64)
            co_await t.store(seen, i, co_await t.load(val, 0));
    });
    for (u32 i = 1; i < 64; ++i) {
        const u64 v = memory.read(seen, i);
        EXPECT_TRUE(v == 0 || v == kAllOnes);
    }
}

TEST(WordTearing, TornRmwScenarioFromSection2)
{
    // Fig. 1's T3 discussion: an atomicAdd is one indivisible
    // transaction; combined with a torn plain store the final value can
    // be nonsensical, but the RMW itself never splits. With atomic
    // accesses everywhere the result must be exactly 6 (T1's store of 0
    // first, then +6) or 0 (the add hit the initial -1 first and T1's
    // store landed last) — never a chimera-derived value.
    std::set<u64> finals;
    for (u32 trial = 0; trial < 32; ++trial) {
        DeviceMemory memory;
        EngineOptions options;
        options.mode = ExecMode::kInterleaved;
        options.seed = trial + 100;
        Engine engine(titanV(), memory, options);
        auto val = memory.alloc<u64>(1, "val");
        memory.write(val, kAllOnes);

        engine.launch("t1t3", launchFor(2, 2), [&](ThreadCtx& t) -> Task {
            if (t.globalThreadId() == 0)
                co_await t.store(val, 0, u64{0}, AccessMode::kAtomic);
            else
                co_await t.atomicAdd(val, 0, u64{6});
        });
        finals.insert(memory.read(val));
    }
    for (u64 v : finals)
        EXPECT_TRUE(v == 6 || v == 0) << v;
}

TEST(WordTearing, DetectorFlagsTheFig1Race)
{
    DeviceMemory memory;
    EngineOptions options;
    options.mode = ExecMode::kInterleaved;
    options.detect_races = true;
    Engine engine(titanV(), memory, options);
    auto val = memory.alloc<u64>(1, "val");
    memory.write(val, kAllOnes);

    engine.launch("fig1", launchFor(8, 8), [&](ThreadCtx& t) -> Task {
        if (t.globalThreadId() == 0)
            co_await t.store(val, 0, u64{0});
        else
            co_await t.load(val, 0);
    });
    EXPECT_TRUE(engine.raceDetector()->hasRaceOn("val"));
}

}  // namespace
}  // namespace eclsim::simt
