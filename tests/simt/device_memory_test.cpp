/**
 * @file
 * Tests of the device memory arena: allocation, host access, the
 * allocation registry, and the sweep-snapshot visibility machinery.
 */
#include <gtest/gtest.h>

#include "simt/device_memory.hpp"

namespace eclsim::simt {
namespace {

TEST(DeviceMemory, AllocAlignmentAndZeroInit)
{
    DeviceMemory memory;
    auto a = memory.alloc<u8>(3, "a");
    auto b = memory.alloc<u64>(2, "b");
    EXPECT_EQ(a.raw() % 128, 0u);
    EXPECT_EQ(b.raw() % 128, 0u);
    EXPECT_EQ(memory.read(b), 0u);
    EXPECT_EQ(memory.read(a), 0u);
}

TEST(DeviceMemory, HostReadWriteRoundTrip)
{
    DeviceMemory memory;
    auto p = memory.alloc<i32>(10, "data");
    memory.writeAt(p, 3, -123);
    EXPECT_EQ(memory.read(p, 3), -123);
    memory.fill(p, 10, 7);
    for (u64 i = 0; i < 10; ++i)
        EXPECT_EQ(memory.read(p, i), 7);
}

TEST(DeviceMemory, UploadDownload)
{
    DeviceMemory memory;
    auto p = memory.alloc<u32>(5, "v");
    memory.upload(p, {1, 2, 3, 4, 5});
    EXPECT_EQ(memory.download(p, 5), (std::vector<u32>{1, 2, 3, 4, 5}));
}

TEST(DeviceMemory, AllocationRegistryFindsByAddress)
{
    DeviceMemory memory;
    auto a = memory.alloc<u32>(100, "first");
    auto b = memory.alloc<u32>(100, "second");
    EXPECT_EQ(memory.allocationAt(a.rawAt(50)).name, "first");
    EXPECT_EQ(memory.allocationAt(b.rawAt(0)).name, "second");
    EXPECT_EQ(memory.allocationAt(b.rawAt(99)).name, "second");
    EXPECT_EQ(memory.numAllocations(), 2u);
}

TEST(DeviceMemory, CapacityEnforced)
{
    DeviceMemory memory(1024);
    memory.alloc<u8>(512, "ok");
    EXPECT_DEATH(memory.alloc<u8>(4096, "too-big"),
                 "device memory exhausted");
}

TEST(DeviceMemory, LoadStoreLiveLittleEndianSizes)
{
    DeviceMemory memory;
    auto p = memory.alloc<u64>(1, "x");
    memory.storeLive(p.raw(), 8, 0x1122334455667788ULL);
    EXPECT_EQ(memory.loadLive(p.raw(), 8), 0x1122334455667788ULL);
    EXPECT_EQ(memory.loadLive(p.raw(), 4), 0x55667788u);
    EXPECT_EQ(memory.loadLive(p.raw(), 1), 0x88u);
    EXPECT_EQ(memory.loadLive(p.raw() + 4, 4), 0x11223344u);
}

TEST(DeviceMemory, SnapshotVisibility)
{
    DeviceMemory memory;
    auto p = memory.alloc<u32>(4, "stat", Visibility::kSweepSnapshot);
    memory.writeAt(p, 0, u32{111});
    memory.snapshotSweepAllocations();

    // Thread 5 overwrites the live value.
    memory.storeLive(p.raw(), 4, 222);
    memory.noteWriter(p.raw(), 4, 5);

    // Thread 5 reads its own write; thread 9 still sees the snapshot.
    EXPECT_EQ(memory.loadSnapshotAware(p.raw(), 4, 5), 222u);
    EXPECT_EQ(memory.loadSnapshotAware(p.raw(), 4, 9), 111u);
    // The live value is 222 for atomic readers.
    EXPECT_EQ(memory.loadLive(p.raw(), 4), 222u);

    // After the next snapshot everyone sees the new value.
    memory.snapshotSweepAllocations();
    EXPECT_EQ(memory.loadSnapshotAware(p.raw(), 4, 9), 222u);
}

TEST(DeviceMemory, SnapshotIsByteGranular)
{
    DeviceMemory memory;
    auto p = memory.alloc<u8>(4, "bytes", Visibility::kSweepSnapshot);
    memory.upload(p, {10, 20, 30, 40});
    memory.snapshotSweepAllocations();

    // Thread 1 rewrites byte 2 only.
    memory.storeLive(p.rawAt(2), 1, 99);
    memory.noteWriter(p.rawAt(2), 1, 1);

    // A 4-byte read by thread 1 mixes its own byte with the snapshot.
    EXPECT_EQ(memory.loadSnapshotAware(p.raw(), 4, 1),
              (u32{40} << 24) | (u32{99} << 16) | (u32{20} << 8) | 10);
    // Thread 2 sees the pure snapshot.
    EXPECT_EQ(memory.loadSnapshotAware(p.raw(), 4, 2),
              (u32{40} << 24) | (u32{30} << 16) | (u32{20} << 8) | 10);
}

TEST(DevicePtr, ArithmeticAndCast)
{
    DevicePtr<u32> p(256);
    EXPECT_EQ(p.rawAt(3), 256u + 12);
    EXPECT_EQ((p + 2).raw(), 256u + 8);
    auto bytes = p.cast<u8>();
    EXPECT_EQ(bytes.rawAt(5), 261u);
    EXPECT_TRUE(DevicePtr<u32>().null());
    EXPECT_FALSE(p.null());
}

}  // namespace
}  // namespace eclsim::simt
