/**
 * @file
 * Tests of the cache model and the race detector (unit level).
 */
#include <gtest/gtest.h>

#include "simt/cache.hpp"
#include "simt/race_detector.hpp"

namespace eclsim::simt {
namespace {

// --- CacheModel -------------------------------------------------------------

TEST(Cache, HitAfterMiss)
{
    CacheModel cache(4096, 128, 4);
    EXPECT_FALSE(cache.access(0, false));
    EXPECT_TRUE(cache.access(0, false));
    EXPECT_TRUE(cache.access(64, false));  // same 128B line
    EXPECT_FALSE(cache.access(128, false));
    EXPECT_EQ(cache.stats().load_hits, 2u);
    EXPECT_EQ(cache.stats().load_misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2 sets x 2 ways of 128B lines = 512 B.
    CacheModel cache(512, 128, 2);
    ASSERT_EQ(cache.numSets(), 2u);
    // Three lines mapping to set 0: line addrs 0, 2, 4 (even lines).
    cache.access(0 * 128, false);
    cache.access(2 * 128, false);
    cache.access(0 * 128, false);   // touch line 0 -> line 2 becomes LRU
    cache.access(4 * 128, false);   // evicts line 2
    EXPECT_TRUE(cache.contains(0 * 128));
    EXPECT_FALSE(cache.contains(2 * 128));
    EXPECT_TRUE(cache.contains(4 * 128));
}

TEST(Cache, StoreCountersSeparate)
{
    CacheModel cache(4096, 128, 4);
    cache.access(0, true);
    cache.access(0, true);
    cache.access(0, false);
    EXPECT_EQ(cache.stats().store_misses, 1u);
    EXPECT_EQ(cache.stats().store_hits, 1u);
    EXPECT_EQ(cache.stats().load_hits, 1u);
    EXPECT_NEAR(cache.stats().hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, ClearInvalidates)
{
    CacheModel cache(4096, 128, 4);
    cache.access(0, false);
    cache.clear();
    EXPECT_FALSE(cache.contains(0));
}

TEST(Cache, WorkingSetBeyondCapacityThrashes)
{
    CacheModel cache(2048, 128, 2);  // 16 lines
    // Stream 64 distinct lines twice: second pass must still miss.
    for (int pass = 0; pass < 2; ++pass)
        for (u64 line = 0; line < 64; ++line)
            cache.access(line * 128, false);
    EXPECT_EQ(cache.stats().load_hits, 0u);
}

// --- RaceDetector -----------------------------------------------------------

class RaceDetectorTest : public ::testing::Test
{
  protected:
    RaceDetectorTest() : detector_(memory_)
    {
        data_ = memory_.alloc<u32>(16, "shared");
    }

    ThreadInfo
    thread(u32 id, u32 block = 0, u16 epoch = 0, u32 launch = 1)
    {
        return ThreadInfo{launch, id, block, epoch};
    }

    DeviceMemory memory_;
    RaceDetector detector_;
    DevicePtr<u32> data_;
};

TEST_F(RaceDetectorTest, WriteWriteConflict)
{
    detector_.onAccess(thread(1), data_.raw(), 4, true, false);
    detector_.onAccess(thread(2), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
    EXPECT_TRUE(detector_.hasRaceOn("shared"));
    EXPECT_EQ(detector_.reports()[0].kind, RaceKind::kWriteWrite);
}

TEST_F(RaceDetectorTest, ReadWriteConflictBothOrders)
{
    detector_.onAccess(thread(1), data_.raw(), 4, false, false);
    detector_.onAccess(thread(2), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);

    detector_.reset();
    detector_.onAccess(thread(1), data_.raw(), 4, true, false);
    detector_.onAccess(thread(2), data_.raw(), 4, false, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, ReadReadIsFine)
{
    detector_.onAccess(thread(1), data_.raw(), 4, false, false);
    detector_.onAccess(thread(2), data_.raw(), 4, false, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, AtomicPairSynchronizes)
{
    detector_.onAccess(thread(1), data_.raw(), 4, true, true);
    detector_.onAccess(thread(2), data_.raw(), 4, true, true);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, AtomicNonAtomicStillRaces)
{
    // Mixed atomic/plain on the same location is still a data race.
    detector_.onAccess(thread(1), data_.raw(), 4, true, true);
    detector_.onAccess(thread(2), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, SameThreadIsProgramOrdered)
{
    detector_.onAccess(thread(1), data_.raw(), 4, true, false);
    detector_.onAccess(thread(1), data_.raw(), 4, true, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, BarrierOrdersSameBlock)
{
    detector_.onAccess(thread(1, /*block=*/3, /*epoch=*/0), data_.raw(), 4,
                       true, false);
    detector_.onAccess(thread(2, /*block=*/3, /*epoch=*/1), data_.raw(), 4,
                       true, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, BarrierDoesNotOrderAcrossBlocks)
{
    detector_.onAccess(thread(1, /*block=*/3, /*epoch=*/0), data_.raw(), 4,
                       true, false);
    detector_.onAccess(thread(2, /*block=*/4, /*epoch=*/1), data_.raw(), 4,
                       true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, KernelBoundaryOrdersEverything)
{
    detector_.onAccess(thread(1, 0, 0, /*launch=*/1), data_.raw(), 4, true,
                       false);
    detector_.onAccess(thread(2, 0, 0, /*launch=*/2), data_.raw(), 4, true,
                       false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, OverlapIsByteGranular)
{
    // Writes to adjacent, non-overlapping bytes do not conflict.
    detector_.onAccess(thread(1), data_.raw(), 1, true, false);
    detector_.onAccess(thread(2), data_.raw() + 1, 1, true, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
    // But a 4-byte write overlapping byte 1 does.
    detector_.onAccess(thread(3), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, ReportsAggregatePerAllocation)
{
    for (u32 i = 0; i < 100; ++i)
        detector_.onAccess(thread(i), data_.rawAt(i % 8), 4, true, false);
    // Many conflicts, but one write-write report line for "shared".
    size_t ww_reports = 0;
    for (const auto& r : detector_.reports())
        if (r.kind == RaceKind::kWriteWrite)
            ++ww_reports;
    EXPECT_EQ(ww_reports, 1u);
    EXPECT_GT(detector_.totalRaces(), 50u);
    EXPECT_NE(detector_.summary().find("write-write race on 'shared'"),
              std::string::npos);
}

TEST_F(RaceDetectorTest, ResetClears)
{
    detector_.onAccess(thread(1), data_.raw(), 4, true, false);
    detector_.onAccess(thread(2), data_.raw(), 4, true, false);
    detector_.reset();
    EXPECT_EQ(detector_.totalRaces(), 0u);
    EXPECT_EQ(detector_.summary(), "no data races detected\n");
}

}  // namespace
}  // namespace eclsim::simt
