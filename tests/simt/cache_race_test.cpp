/**
 * @file
 * Tests of the cache model and the race detector (unit level).
 */
#include <gtest/gtest.h>

#include "simt/cache.hpp"
#include "simt/race_detector.hpp"

namespace eclsim::simt {
namespace {

// --- CacheModel -------------------------------------------------------------

TEST(Cache, HitAfterMiss)
{
    CacheModel cache(4096, 128, 4);
    EXPECT_FALSE(cache.access(0, false));
    EXPECT_TRUE(cache.access(0, false));
    EXPECT_TRUE(cache.access(64, false));  // same 128B line
    EXPECT_FALSE(cache.access(128, false));
    EXPECT_EQ(cache.stats().load_hits, 2u);
    EXPECT_EQ(cache.stats().load_misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2 sets x 2 ways of 128B lines = 512 B.
    CacheModel cache(512, 128, 2);
    ASSERT_EQ(cache.numSets(), 2u);
    // Three lines mapping to set 0: line addrs 0, 2, 4 (even lines).
    cache.access(0 * 128, false);
    cache.access(2 * 128, false);
    cache.access(0 * 128, false);   // touch line 0 -> line 2 becomes LRU
    cache.access(4 * 128, false);   // evicts line 2
    EXPECT_TRUE(cache.contains(0 * 128));
    EXPECT_FALSE(cache.contains(2 * 128));
    EXPECT_TRUE(cache.contains(4 * 128));
}

TEST(Cache, StoreCountersSeparate)
{
    CacheModel cache(4096, 128, 4);
    cache.access(0, true);
    cache.access(0, true);
    cache.access(0, false);
    EXPECT_EQ(cache.stats().store_misses, 1u);
    EXPECT_EQ(cache.stats().store_hits, 1u);
    EXPECT_EQ(cache.stats().load_hits, 1u);
    EXPECT_NEAR(cache.stats().hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, ClearInvalidates)
{
    CacheModel cache(4096, 128, 4);
    cache.access(0, false);
    cache.clear();
    EXPECT_FALSE(cache.contains(0));
}

TEST(Cache, WorkingSetBeyondCapacityThrashes)
{
    CacheModel cache(2048, 128, 2);  // 16 lines
    // Stream 64 distinct lines twice: second pass must still miss.
    for (int pass = 0; pass < 2; ++pass)
        for (u64 line = 0; line < 64; ++line)
            cache.access(line * 128, false);
    EXPECT_EQ(cache.stats().load_hits, 0u);
}

// --- RaceDetector -----------------------------------------------------------

class RaceDetectorTest : public ::testing::Test
{
  protected:
    RaceDetectorTest() : detector_(memory_)
    {
        data_ = memory_.alloc<u32>(16, "shared");
    }

    ThreadInfo
    thread(u32 id, u32 block = 0, u32 epoch = 0, u32 launch = 1)
    {
        return ThreadInfo{launch, id, block, epoch};
    }

    /** Issue one plain/atomic load/store/RMW against the detector. */
    void
    access(const ThreadInfo& who, u64 addr, u8 size, bool is_write,
           bool is_atomic, Scope scope = Scope::kDevice)
    {
        MemRequest req;
        req.addr = addr;
        req.size = size;
        if (is_atomic) {
            req.kind = MemOpKind::kRmw;
            req.rmw = RmwOp::kAdd;
            req.scope = scope;
        } else {
            req.kind = is_write ? MemOpKind::kStore : MemOpKind::kLoad;
        }
        detector_.onAccess(who, req, addr, size, /*value_bits=*/1,
                           /*old_bits=*/0);
    }

    DeviceMemory memory_;
    RaceDetector detector_;
    DevicePtr<u32> data_;
};

TEST_F(RaceDetectorTest, WriteWriteConflict)
{
    access(thread(1), data_.raw(), 4, true, false);
    access(thread(2), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
    EXPECT_TRUE(detector_.hasRaceOn("shared"));
    EXPECT_EQ(detector_.reports()[0].kind, RaceKind::kWriteWrite);
}

TEST_F(RaceDetectorTest, ReadWriteConflictBothOrders)
{
    access(thread(1), data_.raw(), 4, false, false);
    access(thread(2), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);

    detector_.reset();
    access(thread(1), data_.raw(), 4, true, false);
    access(thread(2), data_.raw(), 4, false, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, ReadReadIsFine)
{
    access(thread(1), data_.raw(), 4, false, false);
    access(thread(2), data_.raw(), 4, false, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, AtomicPairSynchronizes)
{
    access(thread(1), data_.raw(), 4, true, true);
    access(thread(2), data_.raw(), 4, true, true);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, AtomicNonAtomicStillRaces)
{
    // Mixed atomic/plain on the same location is still a data race.
    access(thread(1), data_.raw(), 4, true, true);
    access(thread(2), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, BlockScopeAtomicsSynchronizeWithinBlock)
{
    access(thread(1, /*block=*/3), data_.raw(), 4, true, true,
           Scope::kBlock);
    access(thread(2, /*block=*/3), data_.raw(), 4, true, true,
           Scope::kBlock);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, BlockScopeAtomicsRaceAcrossBlocks)
{
    // cuda::thread_scope_block atomicity does not reach other blocks —
    // the scope-blind excuse the old detector applied. Both sides
    // being "atomic" must not silence the report.
    access(thread(1, /*block=*/3), data_.raw(), 4, true, true,
           Scope::kBlock);
    access(thread(2, /*block=*/4), data_.raw(), 4, true, true,
           Scope::kBlock);
    EXPECT_GT(detector_.totalRaces(), 0u);
    EXPECT_TRUE(detector_.hasRaceOn("shared"));
}

TEST_F(RaceDetectorTest, MixedScopeAtomicRacesAcrossBlocks)
{
    access(thread(1, /*block=*/3), data_.raw(), 4, true, true,
           Scope::kBlock);
    access(thread(2, /*block=*/4), data_.raw(), 4, true, true,
           Scope::kDevice);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, DeviceScopeAtomicsSynchronizeAcrossBlocks)
{
    access(thread(1, /*block=*/3), data_.raw(), 4, true, true,
           Scope::kDevice);
    access(thread(2, /*block=*/4), data_.raw(), 4, true, true,
           Scope::kSystem);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, SameThreadIsProgramOrdered)
{
    access(thread(1), data_.raw(), 4, true, false);
    access(thread(1), data_.raw(), 4, true, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, BarrierOrdersSameBlock)
{
    access(thread(1, /*block=*/3, /*epoch=*/0), data_.raw(), 4, true,
           false);
    access(thread(2, /*block=*/3, /*epoch=*/1), data_.raw(), 4, true,
           false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, BarrierDoesNotOrderAcrossBlocks)
{
    access(thread(1, /*block=*/3, /*epoch=*/0), data_.raw(), 4, true,
           false);
    access(thread(2, /*block=*/4, /*epoch=*/1), data_.raw(), 4, true,
           false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, EpochCounterDoesNotWrapAt65536)
{
    // Regression: the epoch field used to be u16, so barrier epoch
    // 65539 aliased epoch 3 and two barrier-separated accesses of a
    // long-running kernel looked concurrent again. With the widened
    // u32 epoch the ordering survives past 2^16 barriers.
    access(thread(1, /*block=*/3, /*epoch=*/3), data_.raw(), 4, true,
           false);
    access(thread(2, /*block=*/3, /*epoch=*/65539), data_.raw(), 4, true,
           false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, KernelBoundaryOrdersEverything)
{
    access(thread(1, 0, 0, /*launch=*/1), data_.raw(), 4, true, false);
    access(thread(2, 0, 0, /*launch=*/2), data_.raw(), 4, true, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, OverlapIsByteGranular)
{
    // Writes to adjacent, non-overlapping bytes do not conflict.
    access(thread(1), data_.raw(), 1, true, false);
    access(thread(2), data_.raw() + 1, 1, true, false);
    EXPECT_EQ(detector_.totalRaces(), 0u);
    // But a 4-byte write overlapping byte 1 does.
    access(thread(3), data_.raw(), 4, true, false);
    EXPECT_GT(detector_.totalRaces(), 0u);
}

TEST_F(RaceDetectorTest, ReportsAggregatePerAllocation)
{
    for (u32 i = 0; i < 100; ++i)
        access(thread(i), data_.rawAt(i % 8), 4, true, false);
    // Many conflicts, but one write-write report line for "shared".
    size_t ww_reports = 0;
    for (const auto& r : detector_.reports())
        if (r.kind == RaceKind::kWriteWrite)
            ++ww_reports;
    EXPECT_EQ(ww_reports, 1u);
    EXPECT_GT(detector_.totalRaces(), 50u);
    EXPECT_NE(detector_.summary().find("write-write race on 'shared'"),
              std::string::npos);
}

TEST_F(RaceDetectorTest, ResetClears)
{
    access(thread(1), data_.raw(), 4, true, false);
    access(thread(2), data_.raw(), 4, true, false);
    detector_.reset();
    EXPECT_EQ(detector_.totalRaces(), 0u);
    EXPECT_EQ(detector_.summary(), "no data races detected\n");
}

}  // namespace
}  // namespace eclsim::simt
