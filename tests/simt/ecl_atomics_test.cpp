/**
 * @file
 * Tests of the ecl:: device library — the paper's Figs. 2-5 helpers.
 */
#include <gtest/gtest.h>

#include "simt/ecl_atomics.hpp"

namespace eclsim::ecl {
namespace {

using simt::DeviceMemory;
using simt::Engine;
using simt::EngineOptions;
using simt::ExecMode;
using simt::Task;
using simt::ThreadCtx;

class EclAtomicsTest : public ::testing::TestWithParam<ExecMode>
{
  protected:
    EngineOptions
    options() const
    {
        EngineOptions o;
        o.mode = GetParam();
        return o;
    }
};

TEST_P(EclAtomicsTest, Fig2AtomicReadWrite)
{
    DeviceMemory memory;
    Engine engine(simt::titanV(), memory, options());
    auto data = memory.alloc<u32>(8, "data");
    memory.writeAt(data, 3, u32{41});

    auto out = memory.alloc<u32>(1, "out");
    engine.launch("fig2", simt::launchFor(1, 32),
                  [&](ThreadCtx& t) -> Task {
                      if (t.globalThreadId() != 0)
                          co_return;
                      const u32 v = co_await atomicRead(t, data, 3);
                      co_await atomicWrite(t, out, 0, v + 1);
                  });
    EXPECT_EQ(memory.read(out), 42u);
}

TEST_P(EclAtomicsTest, Fig3ByteExtractionAllLanes)
{
    DeviceMemory memory;
    Engine engine(simt::titanV(), memory, options());
    auto stat = memory.alloc<u8>(8, "stat");
    memory.upload(stat, {0x10, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe});

    auto out = memory.alloc<u32>(8, "out");
    engine.launch("fig3", simt::launchFor(8, 32),
                  [&](ThreadCtx& t) -> Task {
                      const u32 v = t.globalThreadId();
                      if (v >= 8)
                          co_return;
                      const u32 word =
                          co_await atomicReadByteWord(t, stat, v);
                      co_await t.store(out, v,
                                       u32{extractByte(word, v)});
                  });
    const u8 expect[] = {0x10, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe};
    for (u32 v = 0; v < 8; ++v)
        EXPECT_EQ(memory.read(out, v), expect[v]) << "lane " << v;
}

TEST_P(EclAtomicsTest, Fig4MaskedByteWritesDontTouchNeighbors)
{
    DeviceMemory memory;
    Engine engine(simt::titanV(), memory, options());
    auto stat = memory.alloc<u8>(4, "stat");
    memory.upload(stat, {0xaa, 0xbb, 0xcc, 0xdd});

    engine.launch("fig4", simt::launchFor(1, 32),
                  [&](ThreadCtx& t) -> Task {
                      if (t.globalThreadId() != 0)
                          co_return;
                      // Zero byte 1 (Fig. 4b), set bits of byte 2.
                      co_await atomicByteAnd(t, stat, 1, 0x00);
                      co_await atomicByteOr(t, stat, 2, 0x11);
                  });
    EXPECT_EQ(memory.read(stat, 0), 0xaa);
    EXPECT_EQ(memory.read(stat, 1), 0x00);
    EXPECT_EQ(memory.read(stat, 2), 0xcc | 0x11);
    EXPECT_EQ(memory.read(stat, 3), 0xdd);
}

TEST_P(EclAtomicsTest, Fig4ConcurrentByteWritesAreIndependent)
{
    // 256 threads each clear their own byte of a shared array via the
    // masked atomic AND; no byte may be lost (a plain read-modify-write
    // of the covering int would lose updates).
    DeviceMemory memory;
    Engine engine(simt::titanV(), memory, options());
    const u32 n = 256;
    auto stat = memory.alloc<u8>(n, "stat");
    memory.fill(stat, n, u8{0xff});

    engine.launch("clear", simt::launchFor(n, 64),
                  [&](ThreadCtx& t) -> Task {
                      const u32 v = t.globalThreadId();
                      if (v < n)
                          co_await atomicByteAnd(t, stat, v, 0x00);
                  });
    for (u32 v = 0; v < n; ++v)
        EXPECT_EQ(memory.read(stat, v), 0x00) << "byte " << v;
}

TEST_P(EclAtomicsTest, Fig5PairHalves)
{
    DeviceMemory memory;
    Engine engine(simt::titanV(), memory, options());
    auto pairs = memory.alloc<u64>(4, "pairs");
    memory.writeAt(pairs, 2, (u64{0xdddddddd} << 32) | 0xcccccccc);

    auto out = memory.alloc<u32>(2, "out");
    engine.launch("fig5", simt::launchFor(1, 32),
                  [&](ThreadCtx& t) -> Task {
                      if (t.globalThreadId() != 0)
                          co_return;
                      const u32 first = co_await readFirst(t, pairs, 2);
                      const u32 second = co_await readSecond(t, pairs, 2);
                      co_await t.store(out, 0, first);
                      co_await t.store(out, 1, second);
                      co_await writeFirst(t, pairs, 1, 0x1111);
                      co_await writeSecond(t, pairs, 1, 0x2222);
                  });
    EXPECT_EQ(memory.read(out, 0), 0xccccccccu);
    EXPECT_EQ(memory.read(out, 1), 0xddddddddu);
    EXPECT_EQ(memory.read(pairs, 1), (u64{0x2222} << 32) | 0x1111);
    EXPECT_EQ(memory.read(pairs, 0), 0u);  // untouched neighbors
    EXPECT_EQ(memory.read(pairs, 3), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, EclAtomicsTest,
                         ::testing::Values(ExecMode::kFast,
                                           ExecMode::kInterleaved),
                         [](const auto& info) {
                             return info.param == ExecMode::kFast
                                        ? "Fast"
                                        : "Interleaved";
                         });

TEST(ExtractByte, PureFunction)
{
    EXPECT_EQ(extractByte(0x44332211u, 0), 0x11);
    EXPECT_EQ(extractByte(0x44332211u, 1), 0x22);
    EXPECT_EQ(extractByte(0x44332211u, 2), 0x33);
    EXPECT_EQ(extractByte(0x44332211u, 3), 0x44);
    EXPECT_EQ(extractByte(0x44332211u, 7), 0x44);  // index mod 4
}

}  // namespace
}  // namespace eclsim::ecl
