/**
 * @file
 * Tests of the memory-ordering and thread-scope cost model (paper
 * Sections I/II-A: libcu++ atomics take optional memory orders and
 * scopes; relaxed is the cheapest sufficient choice and the seq_cst
 * default can cost real performance).
 */
#include <gtest/gtest.h>

#include "simt/engine.hpp"

namespace eclsim::simt {
namespace {

/** Cycles for n atomic loads with the given order/scope. */
u64
atomicLoadCycles(MemoryOrder order, Scope scope)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory);
    const u32 n = 1024;
    auto data = memory.alloc<u32>(n, "data");
    const auto stats = engine.launch(
        "loads", launchFor(n), [&](ThreadCtx& t) -> Task {
            const u32 v = t.globalThreadId();
            if (v < n)
                co_await t.load(data, v, AccessMode::kAtomic, order,
                                scope);
        });
    return stats.cycles;
}

TEST(MemoryOrder, RelaxedIsCheapestSeqCstIsDearest)
{
    const u64 relaxed =
        atomicLoadCycles(MemoryOrder::kRelaxed, Scope::kDevice);
    const u64 acquire =
        atomicLoadCycles(MemoryOrder::kAcquire, Scope::kDevice);
    const u64 release =
        atomicLoadCycles(MemoryOrder::kRelease, Scope::kDevice);
    const u64 seq_cst =
        atomicLoadCycles(MemoryOrder::kSeqCst, Scope::kDevice);
    EXPECT_LT(relaxed, acquire);
    EXPECT_EQ(acquire, release);
    EXPECT_LT(acquire, seq_cst);
}

TEST(MemoryOrder, ScopeCosts)
{
    const u64 block =
        atomicLoadCycles(MemoryOrder::kRelaxed, Scope::kBlock);
    const u64 device =
        atomicLoadCycles(MemoryOrder::kRelaxed, Scope::kDevice);
    const u64 system =
        atomicLoadCycles(MemoryOrder::kRelaxed, Scope::kSystem);
    EXPECT_LT(block, device) << "block scope resolves in the SM";
    EXPECT_LT(device, system) << "system scope pays host visibility";
}

TEST(MemoryOrder, OrderingDoesNotChangeValues)
{
    // Functional equivalence: ordering is a timing property here.
    for (MemoryOrder order :
         {MemoryOrder::kRelaxed, MemoryOrder::kSeqCst}) {
        DeviceMemory memory;
        Engine engine(titanV(), memory);
        auto counter = memory.alloc<u64>(1, "counter");
        engine.launch("count", launchFor(512),
                      [&](ThreadCtx& t) -> Task {
                          if (t.globalThreadId() < 512)
                              co_await t.atomicAdd(counter, 0, u64{1},
                                                   order);
                      });
        EXPECT_EQ(memory.read(counter), 512u);
    }
}

TEST(MemoryOrder, EngineOverrideForcesSeqCst)
{
    // The ablation hook: force seq_cst on a kernel that asked for
    // relaxed and observe the fence cost.
    u64 cycles[2];
    for (int forced = 0; forced < 2; ++forced) {
        DeviceMemory memory;
        EngineOptions options;
        options.override_atomic_order = forced == 1;
        options.forced_atomic_order = MemoryOrder::kSeqCst;
        Engine engine(titanV(), memory, options);
        const u32 n = 1024;
        auto data = memory.alloc<u32>(n, "data");
        cycles[forced] =
            engine
                .launch("loads", launchFor(n),
                        [&](ThreadCtx& t) -> Task {
                            const u32 v = t.globalThreadId();
                            if (v < n)
                                co_await t.load(data, v,
                                                AccessMode::kAtomic);
                        })
                .cycles;
    }
    EXPECT_GT(cycles[1], cycles[0]);
}

TEST(MemoryOrder, OverrideDoesNotTouchPlainAccesses)
{
    u64 cycles[2];
    for (int forced = 0; forced < 2; ++forced) {
        DeviceMemory memory;
        EngineOptions options;
        options.override_atomic_order = forced == 1;
        options.forced_atomic_order = MemoryOrder::kSeqCst;
        Engine engine(titanV(), memory, options);
        const u32 n = 1024;
        auto data = memory.alloc<u32>(n, "data");
        cycles[forced] =
            engine
                .launch("loads", launchFor(n),
                        [&](ThreadCtx& t) -> Task {
                            const u32 v = t.globalThreadId();
                            if (v < n)
                                co_await t.load(data, v);
                        })
                .cycles;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(MemoryOrder, BlockScopeAtomicCountsStillCorrectWithinBlock)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory);
    auto counter = memory.alloc<u32>(1, "counter");
    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = 128;
    engine.launch("blockcount", cfg, [&](ThreadCtx& t) -> Task {
        co_await t.atomicAdd(counter, 0, u32{1}, MemoryOrder::kRelaxed,
                             Scope::kBlock);
    });
    EXPECT_EQ(memory.read(counter), 128u);
}

}  // namespace
}  // namespace eclsim::simt
