/**
 * @file
 * Tests of the ThreadCtx::sharedArray bounds check: a kernel that
 * carves more shared memory than its LaunchConfig declared must die
 * with a diagnostic instead of silently corrupting the heap, and an
 * exact-fit carve (including alignment padding) must keep working.
 */
#include <gtest/gtest.h>

#include "simt/engine.hpp"

namespace eclsim::simt {
namespace {

TEST(SharedBoundsTest, ExactFitCarveSucceeds)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory, EngineOptions{});
    auto out = memory.alloc<u32>(64, "out");

    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = 64;
    cfg.shared_bytes = 64 * sizeof(u32) + 8;  // tile + aligned u64 pair

    engine.launch("fit", cfg, [&](ThreadCtx& t) -> Task {
        u32* tile = t.sharedArray<u32>(64);
        u64* wide = t.sharedArray<u64>(1);  // aligns to 8, still fits
        tile[t.threadInBlock()] = t.threadInBlock();
        if (t.threadInBlock() == 0)
            *wide = 42;
        co_await t.syncthreads();
        co_await t.store(out, t.threadInBlock(),
                         tile[t.threadInBlock()] +
                             static_cast<u32>(*wide));
    });

    const auto host = memory.download(out, 64);
    for (u32 i = 0; i < 64; ++i)
        EXPECT_EQ(host[i], i + 42);
}

TEST(SharedBoundsTest, OverflowingCarveDies)
{
    auto overflow = [] {
        DeviceMemory memory;
        Engine engine(titanV(), memory, EngineOptions{});
        LaunchConfig cfg;
        cfg.grid = 1;
        cfg.block_x = 32;
        cfg.shared_bytes = 16;
        engine.launch("overflow", cfg, [&](ThreadCtx& t) -> Task {
            // 32 bytes against a 16-byte declaration.
            u32* tile = t.sharedArray<u32>(8);
            tile[0] = t.threadInBlock();
            co_return;
        });
    };
    EXPECT_DEATH(overflow(), "overflows shared memory");
}

TEST(SharedBoundsTest, AlignmentPaddingCountsAgainstTheLimit)
{
    // One u8 pushes the cursor to 1; the u64 carve aligns to 8 and
    // needs bytes [8, 16) — a 12-byte declaration must die even though
    // 1 + 8 <= 12.
    auto overflow = [] {
        DeviceMemory memory;
        Engine engine(titanV(), memory, EngineOptions{});
        LaunchConfig cfg;
        cfg.grid = 1;
        cfg.block_x = 1;
        cfg.shared_bytes = 12;
        engine.launch("align", cfg, [&](ThreadCtx& t) -> Task {
            t.sharedArray<u8>(1);
            u64* wide = t.sharedArray<u64>(1);
            *wide = t.threadInBlock();
            co_return;
        });
    };
    EXPECT_DEATH(overflow(), "overflows shared memory");
}

}  // namespace
}  // namespace eclsim::simt
