/**
 * @file
 * Tests of the SIMT engine: launches, grid-stride coverage, barriers,
 * atomics, timing accounting, and fast/interleaved equivalence.
 */
#include <gtest/gtest.h>

#include "simt/engine.hpp"

#include "core/rng.hpp"

namespace eclsim::simt {
namespace {

EngineOptions
withMode(ExecMode mode)
{
    EngineOptions options;
    options.mode = mode;
    return options;
}

class EngineModesTest : public ::testing::TestWithParam<ExecMode>
{
};

TEST_P(EngineModesTest, EveryThreadWritesItsSlot)
{
    DeviceMemory memory;
    Engine engine(rtx2070Super(), memory, withMode(GetParam()));
    const u32 n = 1000;
    auto out = memory.alloc<u32>(n, "out");

    auto cfg = launchFor(n, 64);
    engine.launch("fill", cfg, [&](ThreadCtx& t) -> Task {
        const u32 v = t.globalThreadId();
        if (v < n)
            co_await t.store(out, v, v * 3 + 1);
    });

    const auto host = memory.download(out, n);
    for (u32 v = 0; v < n; ++v)
        EXPECT_EQ(host[v], v * 3 + 1) << "vertex " << v;
}

TEST_P(EngineModesTest, AtomicAddCountsEveryThread)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory, withMode(GetParam()));
    auto counter = memory.alloc<u64>(1, "counter");

    const u32 n = 2048;
    engine.launch("count", launchFor(n, 256), [&](ThreadCtx& t) -> Task {
        if (t.globalThreadId() < n)
            co_await t.atomicAdd(counter, 0, u64{1});
    });
    EXPECT_EQ(memory.read(counter), n);
}

TEST_P(EngineModesTest, AtomicMinMaxConverge)
{
    DeviceMemory memory;
    Engine engine(a100(), memory, withMode(GetParam()));
    auto lo = memory.alloc<u32>(1, "lo");
    auto hi = memory.alloc<u32>(1, "hi");
    memory.write(lo, ~u32{0});

    const u32 n = 777;
    engine.launch("minmax", launchFor(n, 128), [&](ThreadCtx& t) -> Task {
        const u32 v = t.globalThreadId();
        if (v >= n)
            co_return;
        co_await t.atomicMin(lo, 0, v + 5);
        co_await t.atomicMax(hi, 0, v + 5);
    });
    EXPECT_EQ(memory.read(lo), 5u);
    EXPECT_EQ(memory.read(hi), n + 4);
}

TEST_P(EngineModesTest, CasIsAtomicExactlyOneWinner)
{
    DeviceMemory memory;
    Engine engine(rtx4090(), memory, withMode(GetParam()));
    auto slot = memory.alloc<u32>(1, "slot");
    auto winners = memory.alloc<u32>(1, "winners");

    const u32 n = 512;
    engine.launch("race", launchFor(n, 64), [&](ThreadCtx& t) -> Task {
        const u32 v = t.globalThreadId();
        if (v >= n)
            co_return;
        const u32 old = co_await t.atomicCas(slot, 0, u32{0}, v + 1);
        if (old == 0)
            co_await t.atomicAdd(winners, 0, u32{1});
    });
    EXPECT_EQ(memory.read(winners), 1u);
    EXPECT_NE(memory.read(slot), 0u);
}

TEST_P(EngineModesTest, BarrierOrdersBlockPhases)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory, withMode(GetParam()));
    const u32 block = 64;
    auto data = memory.alloc<u32>(block, "data");
    auto sums = memory.alloc<u32>(block, "sums");

    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = block;
    engine.launch("phases", cfg, [&](ThreadCtx& t) -> Task {
        const u32 i = t.threadInBlock();
        co_await t.store(data, i, i + 1);
        co_await t.syncthreads();
        // After the barrier every sibling's write must be visible.
        u32 sum = 0;
        for (u32 j = 0; j < block; ++j)
            sum += co_await t.load(data, j);
        co_await t.store(sums, i, sum);
    });

    const u32 expect = block * (block + 1) / 2;
    const auto host = memory.download(sums, block);
    for (u32 i = 0; i < block; ++i)
        EXPECT_EQ(host[i], expect);
}

TEST_P(EngineModesTest, SharedMemoryIsPerBlock)
{
    DeviceMemory memory;
    Engine engine(rtx2070Super(), memory, withMode(GetParam()));
    const u32 blocks = 8, block = 32;
    auto out = memory.alloc<u32>(blocks, "out");

    LaunchConfig cfg;
    cfg.grid = blocks;
    cfg.block_x = block;
    cfg.shared_bytes = block * sizeof(u32);
    engine.launch("shared", cfg, [&](ThreadCtx& t) -> Task {
        u32* buf = t.sharedArray<u32>(block);
        buf[t.threadInBlock()] = t.blockId() + 1;
        co_await t.syncthreads();
        if (t.threadInBlock() == 0) {
            u32 sum = 0;
            for (u32 j = 0; j < block; ++j)
                sum += buf[j];
            co_await t.store(out, t.blockId(), sum);
        }
    });

    const auto host = memory.download(out, blocks);
    for (u32 b = 0; b < blocks; ++b)
        EXPECT_EQ(host[b], block * (b + 1)) << "block " << b;
}

TEST_P(EngineModesTest, LaunchReportsNonzeroTime)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory, withMode(GetParam()));
    auto data = memory.alloc<u32>(4096, "data");
    const auto stats =
        engine.launch("touch", launchFor(4096), [&](ThreadCtx& t) -> Task {
            co_await t.store(data, t.globalThreadId() % 4096,
                             t.globalThreadId());
        });
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.ms, 0.0);
    EXPECT_EQ(stats.mem.stores, 4096u);
    EXPECT_DOUBLE_EQ(engine.elapsedMs(), stats.ms);
}

INSTANTIATE_TEST_SUITE_P(BothModes, EngineModesTest,
                         ::testing::Values(ExecMode::kFast,
                                           ExecMode::kInterleaved),
                         [](const auto& info) {
                             return info.param == ExecMode::kFast
                                        ? "Fast"
                                        : "Interleaved";
                         });

TEST(EngineTest, GridStrideLoopCoversAllWork)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory);
    const u32 n = 10000;
    auto out = memory.alloc<u32>(n, "out");

    LaunchConfig cfg;
    cfg.grid = 4;  // far fewer threads than work items
    cfg.block_x = 128;
    engine.launch("stride", cfg, [&](ThreadCtx& t) -> Task {
        for (u32 v = t.globalThreadId(); v < n; v += t.gridSize())
            co_await t.store(out, v, v ^ 0xabcdu);
    });
    const auto host = memory.download(out, n);
    for (u32 v = 0; v < n; ++v)
        ASSERT_EQ(host[v], v ^ 0xabcdu);
}

TEST(EngineTest, VolatileAccessesBypassL1)
{
    DeviceMemory memory;
    EngineOptions options;
    Engine engine(titanV(), memory, options);
    auto data = memory.alloc<u32>(1024, "data");

    auto stats = engine.launch(
        "volatile", launchFor(1024), [&](ThreadCtx& t) -> Task {
            const u32 v = t.globalThreadId();
            if (v < 1024)
                co_await t.load(data, v, AccessMode::kVolatile);
        });
    EXPECT_EQ(stats.mem.l1.hits() + stats.mem.l1.misses(), 0u)
        << "volatile loads must not touch the L1";
    EXPECT_GT(stats.mem.l2.hits() + stats.mem.l2.misses(), 0u);
}

TEST(EngineTest, PlainAccessesUseL1)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory);
    auto data = memory.alloc<u32>(1024, "data");

    auto stats =
        engine.launch("plain", launchFor(1024), [&](ThreadCtx& t) -> Task {
            const u32 v = t.globalThreadId();
            if (v >= 1024)
                co_return;
            co_await t.load(data, v);
            co_await t.load(data, v);  // second read should hit
        });
    EXPECT_GT(stats.mem.l1.hits(), 0u);
}

TEST(EngineTest, AtomicsCostMoreThanPlainHits)
{
    // The relative cost of atomic vs plain accesses is the paper's core
    // mechanism; verify the model orders them correctly.
    DeviceMemory memory;
    Engine engine(rtx4090(), memory);
    auto data = memory.alloc<u32>(256, "data");

    auto plain =
        engine.launch("plain", launchFor(256, 256), [&](ThreadCtx& t) -> Task {
            for (u32 r = 0; r < 16; ++r)
                co_await t.load(data, t.globalThreadId() % 256);
        });
    auto atomic = engine.launch(
        "atomic", launchFor(256, 256), [&](ThreadCtx& t) -> Task {
            for (u32 r = 0; r < 16; ++r)
                co_await t.load(data, t.globalThreadId() % 256,
                                AccessMode::kAtomic);
        });
    EXPECT_GT(atomic.cycles, plain.cycles);
}

TEST(EngineTest, SeedChangesBlockOrderButNotResults)
{
    const u32 n = 4096;
    std::vector<u32> first;
    for (u64 seed : {1ull, 99ull}) {
        DeviceMemory memory;
        EngineOptions options;
        options.seed = seed;
        Engine engine(titanV(), memory, options);
        auto out = memory.alloc<u32>(n, "out");
        engine.launch("fill", launchFor(n), [&](ThreadCtx& t) -> Task {
            const u32 v = t.globalThreadId();
            if (v < n)
                co_await t.store(out, v, hash32(v));
        });
        auto host = memory.download(out, n);
        if (first.empty())
            first = host;
        else
            EXPECT_EQ(first, host);
    }
}

}  // namespace
}  // namespace eclsim::simt
