/**
 * @file
 * Tests of the warp-batched execution route (ExecMode::kWarpBatched):
 * bit-identity between the batched SoA path and the per-lane routes
 * (including tail warps and partial-count ops), the per-launch
 * eligibility checks and their fallback reasons, the coalescing
 * counters (one line probe per touched 128-byte line), and the
 * sim/mem/batch/* profiling counters.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "prof/trace.hpp"
#include "simt/engine.hpp"
#include "simt/observer.hpp"
#include "simt/perturb.hpp"
#include "simt/site_override.hpp"

namespace eclsim::simt {
namespace {

void
expectSameCacheStats(const CacheStats& a, const CacheStats& b,
                     const char* which)
{
    EXPECT_EQ(a.load_hits, b.load_hits) << which;
    EXPECT_EQ(a.load_misses, b.load_misses) << which;
    EXPECT_EQ(a.store_hits, b.store_hits) << which;
    EXPECT_EQ(a.store_misses, b.store_misses) << which;
}

void
expectSameCounters(const MemoryCounters& a, const MemoryCounters& b)
{
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.rmws, b.rmws);
    EXPECT_EQ(a.atomic_accesses, b.atomic_accesses);
    EXPECT_EQ(a.stale_reads, b.stale_reads);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    expectSameCacheStats(a.l1, b.l1, "l1");
    expectSameCacheStats(a.l2, b.l2, "l2");
}

/**
 * Runs a mixed warp kernel — coalesced loads/stores, a volatile store,
 * scattered atomicAdds, same-address RMW folding (atomicMin with
 * old-value capture), exchange and CAS — over a shape with tail warps
 * (block_x = 48: warps of 32 and 16 lanes) and partial-count ops (the
 * grid-stride tail clamps `count` below lanes()). Returns the stats
 * and the final memory image.
 */
LaunchStats
runWarpMixed(EngineOptions options, std::vector<u32>* image_out,
             BatchLaunchInfo* batch_out = nullptr)
{
    options.seed = 7;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);

    const u32 n = 1 << 12;
    auto data = memory.alloc<u32>(n, "data");
    auto hist = memory.alloc<u32>(64, "hist");
    auto best = memory.alloc<u32>(1, "best");
    auto casbuf = memory.alloc<u32>(n, "casbuf");
    memory.fill(best, 1, ~u32{0});

    LaunchConfig cfg;
    cfg.grid = 8;
    cfg.block_x = 48;  // not a warp multiple: every block has a 16-lane
                       // tail warp
    const u32 stride = cfg.totalThreads();

    const auto stats = engine.launch(
        "warp_mixed", cfg, [&](WarpCtx& w) {
            u32 v[WarpCtx::kMaxLanes];
            u32 old[WarpCtx::kMaxLanes];
            for (u32 i = w.warpBase(); i < n; i += stride) {
                const u32 cnt = std::min(w.lanes(), n - i);
                const auto idx = [i](u32 l) { return i + l; };
                w.load(data, idx, v, cnt);
                w.store(
                    data, idx, [&](u32 l) { return v[l] + 1; }, cnt);
                w.store(
                    data, idx, [&](u32 l) { return v[l] ^ l; }, cnt,
                    AccessMode::kVolatile);
                w.atomicAdd(
                    hist,
                    [&](u32 l) { return ((i + l) * 2654435761u) % 64; },
                    [](u32) { return u32{1}; }, nullptr, cnt);
                // Same-address RMW: lanes fold sequentially, each
                // observing the previous lane's result.
                w.atomicMin(
                    best, [](u32) { return u32{0}; },
                    [&](u32 l) { return v[l] + i; }, old, cnt);
                w.atomicMax(
                    hist, [&](u32 l) { return (i + l) % 64; },
                    [&](u32 l) { return old[l] % 977; }, nullptr, cnt);
                w.atomicExch(
                    casbuf, idx, [&](u32 l) { return old[l]; }, nullptr,
                    cnt);
                w.atomicCas(
                    casbuf, idx, [&](u32 l) { return old[l]; },
                    [&](u32 l) { return v[l] + 3 * l; }, old, cnt);
            }
        });

    if (batch_out != nullptr)
        *batch_out = engine.lastBatch();
    if (image_out != nullptr) {
        *image_out = memory.download(data, n);
        const auto hist_img = memory.download(hist, 64);
        const auto cas_img = memory.download(casbuf, n);
        image_out->insert(image_out->end(), hist_img.begin(),
                          hist_img.end());
        image_out->insert(image_out->end(), cas_img.begin(),
                          cas_img.end());
        image_out->push_back(memory.read(best));
    }
    return stats;
}

EngineOptions
modeOptions(ExecMode mode, bool force_slow = false)
{
    EngineOptions options;
    options.mode = mode;
    options.force_slow_path = force_slow;
    return options;
}

TEST(WarpBatchTest, BatchedAndPerLaneRoutesAreBitIdentical)
{
    std::vector<u32> batch_image, fast_image, slow_image;
    BatchLaunchInfo batch_info, fast_info, slow_info;
    const auto batch = runWarpMixed(modeOptions(ExecMode::kWarpBatched),
                                    &batch_image, &batch_info);
    const auto fast =
        runWarpMixed(modeOptions(ExecMode::kFast), &fast_image, &fast_info);
    const auto slow = runWarpMixed(
        modeOptions(ExecMode::kWarpBatched, true), &slow_image, &slow_info);

    EXPECT_TRUE(batch_info.batched);
    EXPECT_EQ(batch_info.reason, BatchFallback::kNone);
    EXPECT_FALSE(fast_info.batched);
    EXPECT_EQ(fast_info.reason, BatchFallback::kNotBatchMode);
    EXPECT_FALSE(slow_info.batched);
    EXPECT_EQ(slow_info.reason, BatchFallback::kForcedSlow);

    EXPECT_EQ(batch_image, fast_image)
        << "batched route diverged from the per-lane fast route";
    EXPECT_EQ(batch_image, slow_image)
        << "batched route diverged from the forced general route";
    EXPECT_EQ(batch.cycles, fast.cycles);
    EXPECT_EQ(batch.cycles, slow.cycles);
    EXPECT_EQ(batch.ms, fast.ms);
    expectSameCounters(batch.mem, fast.mem);
    expectSameCounters(batch.mem, slow.mem);
}

TEST(WarpBatchTest, InterleavedModeRunsWarpKernelsWithSameResults)
{
    // Warp kernels never suspend; in interleaved mode they take the
    // same per-lane route and must produce identical results.
    std::vector<u32> batch_image, inter_image;
    BatchLaunchInfo inter_info;
    const auto batch =
        runWarpMixed(modeOptions(ExecMode::kWarpBatched), &batch_image);
    const auto inter = runWarpMixed(modeOptions(ExecMode::kInterleaved),
                                    &inter_image, &inter_info);
    EXPECT_FALSE(inter_info.batched);
    EXPECT_EQ(inter_info.reason, BatchFallback::kNotBatchMode);
    EXPECT_EQ(batch_image, inter_image);
    expectSameCounters(batch.mem, inter.mem);
}

TEST(WarpBatchTest, ScalarKernelsFallBackAndMatchFastMode)
{
    // Coroutine kernels are conservatively ineligible (the engine
    // cannot prove their lanes converge): in kWarpBatched mode they run
    // exactly as kFast would, which keeps every paper-table CSV
    // byte-identical across --exec-mode.
    const auto run = [](ExecMode mode, std::vector<u32>* image,
                        BatchLaunchInfo* info) {
        EngineOptions options;
        options.mode = mode;
        options.seed = 7;
        DeviceMemory memory;
        Engine engine(titanV(), memory, options);
        const u32 n = 1 << 10;
        auto data = memory.alloc<u32>(n, "data");
        auto hist = memory.alloc<u32>(32, "hist");
        const auto stats = engine.launch(
            "scalar", launchFor(n, 128), [&](ThreadCtx& t) -> Task {
                const u32 i = t.globalThreadId();
                const u32 v = co_await t.load(data, i % n);
                co_await t.store(data, i % n, v + i);
                co_await t.atomicAdd(hist, i % 32, u32{1});
            });
        *info = engine.lastBatch();
        *image = memory.download(data, n);
        const auto hist_img = memory.download(hist, 32);
        image->insert(image->end(), hist_img.begin(), hist_img.end());
        return stats;
    };

    std::vector<u32> batch_image, fast_image;
    BatchLaunchInfo batch_info, fast_info;
    const auto batch =
        run(ExecMode::kWarpBatched, &batch_image, &batch_info);
    const auto fast = run(ExecMode::kFast, &fast_image, &fast_info);

    EXPECT_TRUE(batch_info.attempted);
    EXPECT_FALSE(batch_info.batched);
    EXPECT_EQ(batch_info.reason, BatchFallback::kScalarKernel);
    EXPECT_FALSE(fast_info.attempted)
        << "scalar launches outside kWarpBatched are not candidates";

    EXPECT_EQ(batch_image, fast_image);
    EXPECT_EQ(batch.cycles, fast.cycles);
    expectSameCounters(batch.mem, fast.mem);
}

/** Runs a trivial warp kernel under the given options; returns the
 *  engine's last batch outcome and fallback count. */
BatchLaunchInfo
runTrivialWarp(EngineOptions options, u64* fallbacks_out = nullptr)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);
    auto out = memory.alloc<u32>(256, "out");
    LaunchConfig cfg;
    cfg.grid = 2;
    cfg.block_x = 128;
    engine.launch("trivial", cfg, [&](WarpCtx& w) {
        w.at(3).store(
            out, [&](u32 l) { return w.warpBase() + l; },
            [&](u32 l) { return l; });
    });
    if (fallbacks_out != nullptr)
        *fallbacks_out = engine.batchFallbackLaunches();
    return engine.lastBatch();
}

TEST(WarpBatchTest, PerturbHooksForceFallback)
{
    PerturbationHooks hooks;  // even do-nothing hooks disable batching
    EngineOptions options = modeOptions(ExecMode::kWarpBatched);
    options.perturb = &hooks;
    u64 fallbacks = 0;
    const auto info = runTrivialWarp(options, &fallbacks);
    EXPECT_FALSE(info.batched);
    EXPECT_EQ(info.reason, BatchFallback::kPerturbHooks);
    EXPECT_EQ(fallbacks, 1u);
}

TEST(WarpBatchTest, RaceDetectorForcesFallback)
{
    EngineOptions options = modeOptions(ExecMode::kWarpBatched);
    options.detect_races = true;
    const auto info = runTrivialWarp(options);
    EXPECT_FALSE(info.batched);
    EXPECT_EQ(info.reason, BatchFallback::kRaceDetector);
}

TEST(WarpBatchTest, ObserverForcesFallback)
{
    struct NullObserver final : AccessObserver
    {
        void
        onAccess(const ThreadInfo&, const MemRequest&, u64, u8) override
        {
        }
    } observer;
    EngineOptions options = modeOptions(ExecMode::kWarpBatched);
    options.observer = &observer;
    const auto info = runTrivialWarp(options);
    EXPECT_FALSE(info.batched);
    EXPECT_EQ(info.reason, BatchFallback::kObserver);
}

TEST(WarpBatchTest, NonUniformSiteOverridesForceFallback)
{
    SiteOverrideTable table;
    table.set(3, {AccessMode::kAtomic, MemoryOrder::kRelaxed,
                  Scope::kDevice});
    table.set(4, {AccessMode::kAtomic, MemoryOrder::kSeqCst,
                  Scope::kSystem});
    ASSERT_FALSE(table.warpUniform());
    EngineOptions options = modeOptions(ExecMode::kWarpBatched);
    options.site_overrides = &table;
    const auto info = runTrivialWarp(options);
    EXPECT_FALSE(info.batched);
    EXPECT_EQ(info.reason, BatchFallback::kSiteOverrides);
}

TEST(WarpBatchTest, UniformSiteOverridesStillBatchWithParity)
{
    SiteOverrideTable table;
    table.set(3, {AccessMode::kAtomic, MemoryOrder::kRelaxed,
                  Scope::kDevice});
    table.set(5, {AccessMode::kAtomic, MemoryOrder::kRelaxed,
                  Scope::kDevice});
    ASSERT_TRUE(table.warpUniform());

    const auto run = [&](ExecMode mode) {
        EngineOptions options = modeOptions(mode);
        options.site_overrides = &table;
        options.seed = 7;
        DeviceMemory memory;
        Engine engine(titanV(), memory, options);
        auto out = memory.alloc<u32>(256, "out");
        LaunchConfig cfg;
        cfg.grid = 2;
        cfg.block_x = 128;
        const auto stats = engine.launch(
            "uniform", cfg, [&](WarpCtx& w) {
                // Site 3 is overridden to atomic; site 9 is not.
                w.at(3).store(
                    out, [&](u32 l) { return w.warpBase() + l; },
                    [&](u32 l) { return l + 1; });
                w.at(9).store(
                    out, [&](u32 l) { return w.warpBase() + l; },
                    [&](u32 l) { return l + 2; });
            });
        EXPECT_EQ(engine.lastBatch().batched,
                  mode == ExecMode::kWarpBatched);
        return std::make_pair(stats, memory.download(out, 256));
    };

    const auto [batch, batch_img] = run(ExecMode::kWarpBatched);
    const auto [fast, fast_img] = run(ExecMode::kFast);
    EXPECT_EQ(batch_img, fast_img);
    EXPECT_EQ(batch.cycles, fast.cycles);
    expectSameCounters(batch.mem, fast.mem);
    // The override took effect on both routes: one atomic store per
    // thread (site 3), one plain store per thread (site 9).
    EXPECT_EQ(batch.mem.atomic_accesses, 256u);
    EXPECT_EQ(batch.mem.stores, 512u);
}

TEST(WarpBatchTest, CoalescedLanesProbeOneLinePerOp)
{
    EngineOptions options = modeOptions(ExecMode::kWarpBatched);
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);
    const u32 n = 1 << 10;
    auto data = memory.alloc<u32>(n, "data");
    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = 256;  // 8 full warps
    engine.launch("coalesced", cfg, [&](WarpCtx& w) {
        // 32 consecutive u32 lanes = exactly one 128-byte line.
        w.store(
            data, [&](u32 l) { return w.warpBase() + l; },
            [](u32 l) { return l; });
    });
    ASSERT_TRUE(engine.lastBatch().batched);
    const auto& c = engine.memorySubsystem().warpBatchCounters();
    EXPECT_EQ(c.warp_ops, 8u);
    EXPECT_EQ(c.lanes, 256u);
    EXPECT_EQ(c.line_probes, 8u)
        << "a fully coalesced warp op must probe exactly one line";
    EXPECT_EQ(c.coalesced_lanes, 256u - 8u);

    // Scattered lanes (one line each): every lane pays its own probe.
    auto wide = memory.alloc<u32>(256 * 32, "wide");
    engine.launch("scattered", cfg, [&](WarpCtx& w) {
        w.store(
            wide, [&](u32 l) { return (w.warpBase() + l) * 32; },
            [](u32 l) { return l; });
    });
    const auto& c2 = engine.memorySubsystem().warpBatchCounters();
    EXPECT_EQ(c2.warp_ops, 16u);
    EXPECT_EQ(c2.line_probes, 8u + 256u)
        << "line-per-lane scatter must probe once per lane";
    EXPECT_EQ(c2.coalesced_lanes, 256u - 8u);
}

TEST(WarpBatchTest, ProfCountersRecordBatchedOpsAndFallbacks)
{
    prof::TraceSession session;
    EngineOptions options = modeOptions(ExecMode::kWarpBatched);
    options.trace = &session;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);
    auto data = memory.alloc<u32>(512, "data");
    LaunchConfig cfg;
    cfg.grid = 2;
    cfg.block_x = 256;
    engine.launch("profiled", cfg, [&](WarpCtx& w) {
        w.store(
            data, [&](u32 l) { return (w.warpBase() + l) % 512; },
            [](u32 l) { return l; });
    });
    // A scalar launch in batch mode records a per-reason fallback.
    engine.launch("scalar", launchFor(64, 64), [&](ThreadCtx& t) -> Task {
        co_await t.store(data, t.globalThreadId() % 512, 9u);
    });

    const auto& reg = session.counters();
    EXPECT_EQ(reg.valueByName("sim/mem/batch/launches"), 2u);
    EXPECT_EQ(reg.valueByName("sim/mem/batch/batched"), 1u);
    EXPECT_EQ(reg.valueByName("sim/mem/batch/fallbacks"), 1u);
    EXPECT_EQ(reg.valueByName("sim/mem/batch/fallback/scalar_kernel"), 1u);
    EXPECT_EQ(reg.valueByName("sim/mem/batch/warp_ops"), 16u);
    EXPECT_GT(reg.valueByName("sim/mem/batch/line_probes"), 0u);
    EXPECT_GT(reg.valueByName("sim/mem/batch/lanes_coalesced"), 0u);
}

TEST(WarpBatchTest, ExecModeNamesRoundTrip)
{
    EXPECT_STREQ(execModeName(ExecMode::kFast), "fast");
    EXPECT_STREQ(execModeName(ExecMode::kInterleaved), "interleaved");
    EXPECT_STREQ(execModeName(ExecMode::kWarpBatched), "batch");
    EXPECT_EQ(parseExecMode("fast"), ExecMode::kFast);
    EXPECT_EQ(parseExecMode("interleaved"), ExecMode::kInterleaved);
    EXPECT_EQ(parseExecMode("batch"), ExecMode::kWarpBatched);
}

}  // namespace
}  // namespace eclsim::simt
