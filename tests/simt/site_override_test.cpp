/**
 * @file
 * Tests of the per-site access-mode override table (the repair
 * subsystem's applier): strengthening-only rewrite semantics, no-op on
 * already-atomic sites, fast-path vs forced-slow-path parity with
 * overrides active, and the end-to-end property the repair loop rests
 * on — an overridden racing pair goes silent under the happens-before
 * detector.
 */
#include <gtest/gtest.h>

#include "racecheck/sites.hpp"
#include "simt/engine.hpp"
#include "simt/site_override.hpp"

namespace eclsim::simt {
namespace {

SiteOverride
relaxedAtomic()
{
    SiteOverride fix;
    fix.mode = AccessMode::kAtomic;
    fix.order = MemoryOrder::kRelaxed;
    fix.scope = Scope::kDevice;
    return fix;
}

TEST(SiteOverrideTableTest, SetFindClear)
{
    SiteOverrideTable table;
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.find(3), nullptr);

    table.set(3, relaxedAtomic());
    EXPECT_FALSE(table.empty());
    EXPECT_EQ(table.size(), 1u);
    ASSERT_NE(table.find(3), nullptr);
    EXPECT_EQ(table.find(3)->order, MemoryOrder::kRelaxed);
    EXPECT_EQ(table.find(2), nullptr);
    EXPECT_EQ(table.find(4), nullptr);
    EXPECT_EQ(table.find(100000), nullptr);

    SiteOverride seq = relaxedAtomic();
    seq.order = MemoryOrder::kSeqCst;
    table.set(3, seq);  // replace, not duplicate
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.find(3)->order, MemoryOrder::kSeqCst);

    table.clear();
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.find(3), nullptr);
}

TEST(SiteOverrideTableTest, ApplyStrengthensOnlyNonAtomicAccesses)
{
    SiteOverrideTable table;
    table.set(7, relaxedAtomic());

    MemRequest plain;
    plain.site = 7;
    plain.kind = MemOpKind::kStore;
    plain.mode = AccessMode::kPlain;
    EXPECT_TRUE(table.wouldChange(plain));
    table.apply(plain);
    EXPECT_EQ(plain.mode, AccessMode::kAtomic);
    EXPECT_EQ(plain.order, MemoryOrder::kRelaxed);
    EXPECT_EQ(plain.scope, Scope::kDevice);

    MemRequest vol;
    vol.site = 7;
    vol.kind = MemOpKind::kLoad;
    vol.mode = AccessMode::kVolatile;
    table.apply(vol);
    EXPECT_EQ(vol.mode, AccessMode::kAtomic);

    // Already atomic: untouched, including its original order/scope.
    MemRequest atomic_req;
    atomic_req.site = 7;
    atomic_req.kind = MemOpKind::kStore;
    atomic_req.mode = AccessMode::kAtomic;
    atomic_req.order = MemoryOrder::kSeqCst;
    atomic_req.scope = Scope::kBlock;
    EXPECT_FALSE(table.wouldChange(atomic_req));
    table.apply(atomic_req);
    EXPECT_EQ(atomic_req.order, MemoryOrder::kSeqCst);
    EXPECT_EQ(atomic_req.scope, Scope::kBlock);

    // RMWs are atomic by construction: untouched.
    MemRequest rmw;
    rmw.site = 7;
    rmw.kind = MemOpKind::kRmw;
    rmw.mode = AccessMode::kPlain;  // mode is ignored for RMWs
    EXPECT_FALSE(table.wouldChange(rmw));
    table.apply(rmw);
    EXPECT_EQ(rmw.kind, MemOpKind::kRmw);
    EXPECT_EQ(rmw.mode, AccessMode::kPlain);

    // Unlisted site: untouched.
    MemRequest other = plain;
    other.site = 8;
    other.mode = AccessMode::kPlain;
    EXPECT_FALSE(table.wouldChange(other));
    table.apply(other);
    EXPECT_EQ(other.mode, AccessMode::kPlain);
}

/** Run a kernel whose every data access is attributed to `site`, with
 *  the given qualification, under an optional override table. */
LaunchStats
runAttributedKernel(u32 site, AccessMode mode,
                    const SiteOverrideTable* overrides, bool force_slow,
                    std::vector<u32>* image_out,
                    bool* used_fast_out = nullptr)
{
    EngineOptions options;
    options.seed = 11;
    options.site_overrides = overrides;
    options.force_slow_path = force_slow;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);

    const u32 n = 1 << 10;
    auto data = memory.alloc<u32>(n, "data");
    const auto stats = engine.launch(
        "attributed", launchFor(n, 128), [&](ThreadCtx& t) -> Task {
            const u32 i = t.globalThreadId();
            if (i >= n)
                co_return;
            co_await t.at(site).store(data, i, i * 3u, mode);
            const u32 back = co_await t.at(site).load(data, i, mode);
            co_await t.at(site).store(data, i, back + 1u, mode);
        });
    if (used_fast_out != nullptr)
        *used_fast_out = engine.usedFastPath();
    if (image_out != nullptr)
        *image_out = memory.download(data, n);
    return stats;
}

TEST(SiteOverrideEngineTest, OverrideOnAlreadyAtomicSiteIsANoOp)
{
    const u32 site = racecheck::SiteRegistry::instance().intern(
        "site_override_test.cpp", 1, "already-atomic probe");
    SiteOverrideTable table;
    table.set(site, relaxedAtomic());

    std::vector<u32> with_image, without_image;
    const auto with = runAttributedKernel(site, AccessMode::kAtomic,
                                          &table, false, &with_image);
    const auto without = runAttributedKernel(site, AccessMode::kAtomic,
                                             nullptr, false,
                                             &without_image);
    EXPECT_EQ(with_image, without_image);
    EXPECT_EQ(with.cycles, without.cycles);
    EXPECT_EQ(with.mem.atomic_accesses, without.mem.atomic_accesses);
    EXPECT_EQ(with.mem.loads, without.mem.loads);
    EXPECT_EQ(with.mem.stores, without.mem.stores);
}

TEST(SiteOverrideEngineTest, PlainSiteIsStrengthenedToAtomic)
{
    const u32 site = racecheck::SiteRegistry::instance().intern(
        "site_override_test.cpp", 2, "plain-to-atomic probe");
    SiteOverrideTable table;
    table.set(site, relaxedAtomic());

    std::vector<u32> plain_image, fixed_image;
    const auto plain = runAttributedKernel(site, AccessMode::kPlain,
                                           nullptr, false, &plain_image);
    const auto fixed = runAttributedKernel(site, AccessMode::kPlain,
                                           &table, false, &fixed_image);

    // Single-threaded per element: the functional result is identical...
    EXPECT_EQ(plain_image, fixed_image);
    // ...but the accesses now execute as atomics (and are priced so).
    EXPECT_EQ(plain.mem.atomic_accesses, 0u);
    EXPECT_EQ(fixed.mem.atomic_accesses,
              fixed.mem.loads + fixed.mem.stores);
    EXPECT_GT(fixed.cycles, plain.cycles);
}

TEST(SiteOverrideEngineTest, FastAndForcedSlowPathsAgreeUnderOverrides)
{
    const u32 site = racecheck::SiteRegistry::instance().intern(
        "site_override_test.cpp", 3, "path-parity probe");
    SiteOverrideTable table;
    table.set(site, relaxedAtomic());

    std::vector<u32> fast_image, slow_image;
    bool used_fast = false, used_slow_fast = true;
    const auto fast = runAttributedKernel(
        site, AccessMode::kPlain, &table, false, &fast_image, &used_fast);
    const auto slow =
        runAttributedKernel(site, AccessMode::kPlain, &table, true,
                            &slow_image, &used_slow_fast);

    EXPECT_TRUE(used_fast)
        << "a site-override table must not disable the fast path";
    EXPECT_FALSE(used_slow_fast);
    EXPECT_EQ(fast_image, slow_image);
    EXPECT_EQ(fast.cycles, slow.cycles);
    EXPECT_EQ(fast.mem.atomic_accesses, slow.mem.atomic_accesses);
    EXPECT_EQ(fast.mem.loads, slow.mem.loads);
    EXPECT_EQ(fast.mem.stores, slow.mem.stores);
}

/** A genuine cross-block W/W race on one cell, both sides attributed. */
u64
racyPairCount(const SiteOverrideTable* overrides, u32 store_site,
              u32 load_site)
{
    EngineOptions options;
    options.mode = ExecMode::kInterleaved;
    options.detect_races = true;
    options.shuffle_blocks = true;
    options.seed = 21;
    options.site_overrides = overrides;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);

    auto cell = memory.alloc<u32>(1, "cell");
    engine.launch("racy", launchFor(64, 32), [&](ThreadCtx& t) -> Task {
        co_await t.at(store_site).store(cell, 0, t.globalThreadId());
        (void)co_await t.at(load_site).load(cell, 0);
    });
    return engine.raceDetector()->totalRaces();
}

TEST(SiteOverrideEngineTest, OverriddenRacingPairGoesSilent)
{
    auto& registry = racecheck::SiteRegistry::instance();
    const u32 store_site = registry.intern("site_override_test.cpp", 4,
                                           "racy-store probe");
    const u32 load_site = registry.intern("site_override_test.cpp", 5,
                                          "racy-load probe");

    ASSERT_GT(racyPairCount(nullptr, store_site, load_site), 0u)
        << "the unrepaired kernel must race";

    // One side converted: the plain side still conflicts with it.
    SiteOverrideTable store_only;
    store_only.set(store_site, relaxedAtomic());
    EXPECT_GT(racyPairCount(&store_only, store_site, load_site), 0u);

    // Both sides converted (the fix closure): atomic/atomic pairs are
    // excused — the repaired run is race-silent.
    SiteOverrideTable closure;
    closure.set(store_site, relaxedAtomic());
    closure.set(load_site, relaxedAtomic());
    EXPECT_EQ(racyPairCount(&closure, store_site, load_site), 0u);
}

}  // namespace
}  // namespace eclsim::simt
