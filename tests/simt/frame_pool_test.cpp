/**
 * @file
 * Tests of the coroutine-frame pool: direct allocator mechanics
 * (bucketing, reuse, oversized bypass, out-of-scope fallback) and the
 * engine-level recycling contract — steady-state launches allocate no
 * new frames, and every frame is back in the pool between launches, in
 * both execution modes and on early kernel exit.
 */
#include <gtest/gtest.h>

#include "simt/frame_pool.hpp"

#include "simt/engine.hpp"

namespace eclsim::simt {
namespace {

TEST(FramePoolTest, RecyclesSameSizeClass)
{
    FramePool pool;
    FramePool::Scope scope(pool);

    void* first = FramePool::allocateFrame(100);
    EXPECT_EQ(pool.systemAllocs(), 1u);
    EXPECT_EQ(pool.outstanding(), 1u);
    FramePool::deallocateFrame(first);
    EXPECT_EQ(pool.outstanding(), 0u);
    EXPECT_EQ(pool.freeFrames(), 1u);

    // 100 and 128 bytes share the 64..128 size class: the freed frame
    // is handed back instead of a fresh allocation.
    void* second = FramePool::allocateFrame(128);
    EXPECT_EQ(second, first);
    EXPECT_EQ(pool.systemAllocs(), 1u);
    EXPECT_EQ(pool.reuses(), 1u);
    FramePool::deallocateFrame(second);
}

TEST(FramePoolTest, DistinctSizeClassesGetDistinctFrames)
{
    FramePool pool;
    FramePool::Scope scope(pool);

    void* small = FramePool::allocateFrame(64);
    void* large = FramePool::allocateFrame(600);
    EXPECT_EQ(pool.systemAllocs(), 2u);
    FramePool::deallocateFrame(small);
    FramePool::deallocateFrame(large);
    EXPECT_EQ(pool.freeFrames(), 2u);

    // A 600-byte request must not be served from the 64-byte class.
    void* again = FramePool::allocateFrame(600);
    EXPECT_EQ(again, large);
    EXPECT_EQ(pool.reuses(), 1u);
    FramePool::deallocateFrame(again);
}

TEST(FramePoolTest, OversizedFramesBypassThePool)
{
    FramePool pool;
    FramePool::Scope scope(pool);

    // Over 64 classes x 64 bytes: straight malloc/free, not pooled.
    void* huge = FramePool::allocateFrame(1u << 20);
    EXPECT_EQ(pool.systemAllocs(), 0u);
    EXPECT_EQ(pool.outstanding(), 0u);
    FramePool::deallocateFrame(huge);
    EXPECT_EQ(pool.freeFrames(), 0u);
}

TEST(FramePoolTest, AllocationOutsideAnyScopeFallsBackToMalloc)
{
    void* frame = FramePool::allocateFrame(256);
    ASSERT_NE(frame, nullptr);
    // Writable and freeable without any pool in scope.
    static_cast<char*>(frame)[255] = 1;
    FramePool::deallocateFrame(frame);
    FramePool::deallocateFrame(nullptr);  // must be a no-op
}

TEST(FramePoolTest, FrameFreedAfterScopeEndsReturnsToItsOwner)
{
    FramePool pool;
    void* frame = nullptr;
    {
        FramePool::Scope scope(pool);
        frame = FramePool::allocateFrame(96);
    }
    // The scope is gone (and no pool is current), but the frame header
    // still names its owner: it must land on the owner's free list.
    FramePool::deallocateFrame(frame);
    EXPECT_EQ(pool.outstanding(), 0u);
    EXPECT_EQ(pool.freeFrames(), 1u);
}

TEST(FramePoolTest, ScopesNest)
{
    FramePool outer;
    FramePool inner;
    FramePool::Scope outer_scope(outer);
    void* a = FramePool::allocateFrame(64);
    {
        FramePool::Scope inner_scope(inner);
        void* b = FramePool::allocateFrame(64);
        EXPECT_EQ(inner.outstanding(), 1u);
        FramePool::deallocateFrame(b);
    }
    // Back to the outer pool after the inner scope unwinds.
    void* c = FramePool::allocateFrame(64);
    EXPECT_EQ(outer.outstanding(), 2u);
    FramePool::deallocateFrame(a);
    FramePool::deallocateFrame(c);
    EXPECT_EQ(outer.outstanding(), 0u);
}

// --- engine-level recycling ----------------------------------------------

TEST(FramePoolEngineTest, SteadyStateLaunchesAllocateNoNewFrames)
{
    DeviceMemory memory;
    Engine engine(titanV(), memory, EngineOptions{});
    const u32 n = 4096;
    auto out = memory.alloc<u32>(n, "out");

    const auto kernel = [&](ThreadCtx& t) -> Task {
        if (t.globalThreadId() < n)
            co_await t.store(out, t.globalThreadId(), t.blockId());
    };

    engine.launch("warmup", launchFor(n, 128), kernel);
    const u64 after_first = engine.framePool().systemAllocs();
    EXPECT_GT(after_first, 0u);
    EXPECT_EQ(engine.framePool().outstanding(), 0u)
        << "frames must all be back in the pool between launches";

    for (int i = 0; i < 3; ++i)
        engine.launch("steady", launchFor(n, 128), kernel);

    // Same shape, same frame size: every later launch is served
    // entirely from the free lists.
    EXPECT_EQ(engine.framePool().systemAllocs(), after_first);
    EXPECT_GE(engine.framePool().reuses(), 3u * after_first);
    EXPECT_EQ(engine.framePool().outstanding(), 0u);
}

TEST(FramePoolEngineTest, InterleavedModeReturnsFramesOnEarlyExit)
{
    EngineOptions options;
    options.mode = ExecMode::kInterleaved;
    DeviceMemory memory;
    Engine engine(titanV(), memory, options);
    auto counter = memory.alloc<u32>(1, "counter");

    LaunchConfig cfg;
    cfg.grid = 4;
    cfg.block_x = 64;
    engine.launch("early-exit", cfg, [&](ThreadCtx& t) -> Task {
        // Three quarters of the threads exit before their first access.
        if (t.globalThreadId() % 4 != 0)
            co_return;
        co_await t.atomicAdd(counter, 0, u32{1});
    });

    EXPECT_EQ(memory.read(counter), cfg.totalThreads() / 4);
    EXPECT_EQ(engine.framePool().outstanding(), 0u)
        << "early-exiting interleaved frames must return to the pool";
    EXPECT_GT(engine.framePool().systemAllocs(), 0u);

    // And a second interleaved launch recycles them.
    const u64 allocs = engine.framePool().systemAllocs();
    engine.launch("again", cfg, [&](ThreadCtx& t) -> Task {
        if (t.globalThreadId() % 4 != 0)
            co_return;
        co_await t.atomicAdd(counter, 0, u32{1});
    });
    EXPECT_EQ(engine.framePool().systemAllocs(), allocs);
    EXPECT_EQ(engine.framePool().outstanding(), 0u);
}

TEST(FramePoolEngineTest, EnginesDoNotShareFrames)
{
    DeviceMemory mem_a;
    DeviceMemory mem_b;
    Engine a(titanV(), mem_a, EngineOptions{});
    Engine b(titanV(), mem_b, EngineOptions{});
    auto out_a = mem_a.alloc<u32>(64, "a");
    auto out_b = mem_b.alloc<u32>(64, "b");

    a.launch("a", launchFor(64, 64), [&](ThreadCtx& t) -> Task {
        co_await t.store(out_a, t.globalThreadId(), 1u);
    });
    b.launch("b", launchFor(64, 64), [&](ThreadCtx& t) -> Task {
        co_await t.store(out_b, t.globalThreadId(), 1u);
    });

    EXPECT_GT(a.framePool().systemAllocs(), 0u);
    EXPECT_GT(b.framePool().systemAllocs(), 0u);
    EXPECT_EQ(a.framePool().outstanding(), 0u);
    EXPECT_EQ(b.framePool().outstanding(), 0u);
}

}  // namespace
}  // namespace eclsim::simt
