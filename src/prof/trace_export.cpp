#include "prof/trace_export.hpp"

#include <cstdio>
#include <fstream>

#include "core/logging.hpp"

namespace eclsim::prof {

namespace {

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string& in)
{
    std::string out;
    out.reserve(in.size() + 2);
    for (const char c : in) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendCommon(std::string& out, const char* ph, TrackId track, u64 ts)
{
    out += "{\"ph\":\"";
    out += ph;
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(track);
    out += ",\"ts\":";
    out += std::to_string(ts);
}

void
appendArgs(std::string& out, const EventArgs& args)
{
    out += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : args) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(key);
        out += "\":\"";
        out += jsonEscape(value);
        out += '"';
    }
    out += '}';
}

}  // namespace

std::string
toChromeTraceJson(const TraceSession& session)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string& event) {
        if (!first)
            out += ",\n";
        first = false;
        out += event;
    };

    // Metadata: one simulated process, one named thread per track.
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"eclsim\"}}");
    for (TrackId t = 0; t < session.tracks().size(); ++t) {
        const Track& track = session.tracks()[t];
        std::string e = "{\"ph\":\"M\",\"pid\":0,\"tid\":" +
                        std::to_string(t) +
                        ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                        jsonEscape(track.name) + "\"}}";
        emit(e);
        e = "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(t) +
            ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
            std::to_string(track.sort_index) + "}}";
        emit(e);
    }

    for (const TraceEvent& event : session.events()) {
        std::string e;
        switch (event.phase) {
          case EventPhase::kBegin:
            appendCommon(e, "B", event.track, event.ts);
            e += ",\"name\":\"" + jsonEscape(event.name) + '"';
            if (!event.args.empty())
                appendArgs(e, event.args);
            break;
          case EventPhase::kEnd:
            appendCommon(e, "E", event.track, event.ts);
            break;
          case EventPhase::kInstant:
            appendCommon(e, "i", event.track, event.ts);
            e += ",\"name\":\"" + jsonEscape(event.name) +
                 "\",\"s\":\"t\"";
            if (!event.args.empty())
                appendArgs(e, event.args);
            break;
          case EventPhase::kCounter:
            appendCommon(e, "C", event.track, event.ts);
            e += ",\"name\":\"" + jsonEscape(event.name) +
                 "\",\"args\":{\"value\":" + std::to_string(event.value) +
                 '}';
            break;
        }
        e += '}';
        emit(e);
    }

    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

void
writeChromeTrace(const TraceSession& session, const std::string& path)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open '{}' for writing", path);
    file << toChromeTraceJson(session);
    if (!file)
        fatal("failed writing '{}'", path);
}

std::string
countersCsv(const CounterRegistry& registry)
{
    std::string out = "counter,value\n";
    for (const auto& sample : registry.snapshot()) {
        out += sample.name;
        out += ',';
        out += std::to_string(sample.value);
        out += '\n';
    }
    return out;
}

void
writeCountersCsv(const CounterRegistry& registry, const std::string& path)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open '{}' for writing", path);
    file << countersCsv(registry);
    if (!file)
        fatal("failed writing '{}'", path);
}

TextTable
counterTable(const CounterRegistry& registry)
{
    TextTable table({"Counter", "Value"});
    for (const auto& sample : registry.snapshot())
        table.addRow({sample.name, fmtGrouped(sample.value)});
    return table;
}

}  // namespace eclsim::prof
