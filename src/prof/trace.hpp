/**
 * @file
 * Trace event sink for the SIMT simulator.
 *
 * A TraceSession records timeline events — spans (kernel launches,
 * harness cells, per-SM block residency) and instant events (race
 * reports, visibility-stale reads) — stamped with *simulated* cycles,
 * plus per-launch counter samples. Events live on named tracks that map
 * onto Chrome-trace threads: one per SM, one for the kernel launches,
 * one for the host-side harness phases.
 *
 * Because every engine restarts its per-launch clock at zero, the
 * session also owns the shared timeline cursor: an engine opens each
 * launch at cursor() and advances it past the launch's end, so launches
 * from successive engines (e.g. the harness's baseline and race-free
 * runs) stack end-to-end on one coherent timeline instead of
 * overlapping at zero. One trace timestamp unit equals one simulated
 * cycle (exported as "microseconds" for the viewers).
 *
 * The session embeds the CounterRegistry so a single
 * `EngineOptions::trace` pointer turns on both spans and counters;
 * instrumented code guards every hook with a null test, which is the
 * whole cost of a disabled run.
 */
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "prof/counters.hpp"

namespace eclsim::prof {

/** Handle of one timeline track (a Chrome-trace thread). */
using TrackId = u32;

/** What a recorded event is. */
enum class EventPhase : u8 {
    kBegin,    ///< span open  (Chrome "B")
    kEnd,      ///< span close (Chrome "E")
    kInstant,  ///< point event (Chrome "i")
    kCounter,  ///< counter sample (Chrome "C")
};

/** Optional key/value annotations shown in the trace viewer. */
using EventArgs = std::vector<std::pair<std::string, std::string>>;

/** One recorded event. */
struct TraceEvent
{
    EventPhase phase = EventPhase::kInstant;
    TrackId track = 0;
    u64 ts = 0;        ///< simulated cycles on the session timeline
    std::string name;  ///< empty for kEnd
    u64 value = 0;     ///< kCounter sample value
    EventArgs args;
};

/** One timeline track. */
struct Track
{
    std::string name;
    u32 sort_index = 0;  ///< display order in the viewer
};

/** The event sink (see file comment). */
class TraceSession
{
  public:
    /** Embedded counter registry (enabled together with tracing). */
    CounterRegistry& counters() { return counters_; }
    const CounterRegistry& counters() const { return counters_; }

    /** Track by name, creating it on first use. */
    TrackId track(const std::string& name);
    /** The per-SM track "SM <sm>", sorted after the named tracks. */
    TrackId smTrack(u32 sm);

    void beginSpan(TrackId track, std::string name, u64 ts,
                   EventArgs args = {});
    void endSpan(TrackId track, u64 ts);
    void instant(TrackId track, std::string name, u64 ts,
                 EventArgs args = {});
    /** Record one sample of a time-varying counter series. */
    void counterSample(TrackId track, std::string series, u64 ts,
                       u64 value);

    /** Shared simulated-cycle timeline position (see file comment). */
    u64 cursor() const { return cursor_; }
    /** Move the cursor forward (never backward). */
    void
    advanceCursor(u64 ts)
    {
        if (ts > cursor_)
            cursor_ = ts;
    }

    const std::vector<Track>& tracks() const { return tracks_; }
    const std::vector<TraceEvent>& events() const { return events_; }

    /**
     * Append another session's events, mapping its track `X` onto
     * `track_prefix + X` here and shifting its timestamps past this
     * session's cursor, then fold in its counters (CounterRegistry::
     * merge). The parallel suite runner records each cell into a
     * private session and merges them one at a time (caller
     * serializes), prefixed "w<worker>/", so the combined export keeps
     * per-track monotone timestamps and matched begin/end pairs.
     */
    void merge(const TraceSession& other,
               const std::string& track_prefix = "");

    /** Drop all events and tracks; counters and cursor reset too. */
    void clear();

  private:
    std::vector<Track> tracks_;
    std::unordered_map<std::string, TrackId> track_index_;
    std::vector<TraceEvent> events_;
    CounterRegistry counters_;
    u64 cursor_ = 0;
};

}  // namespace eclsim::prof
