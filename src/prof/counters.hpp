/**
 * @file
 * Named, hierarchical performance counters.
 *
 * CounterRegistry maps slash-separated counter names
 * ("sim/mem/l1_hit", "sim/race/checks", ...) to dense integer ids so the
 * hot paths of the simulator can accumulate with a single array
 * increment. Instrumented code holds a CounterRegistry* that is null
 * when profiling is off, so a disabled run pays only a pointer test —
 * the registry itself is never consulted.
 *
 * Established namespaces: "sim/mem" (cache and access-path events),
 * "sim/race" (detector activity), "sim/vis" (sweep-visibility
 * staleness), and "sim/perturb" (eclsim::chaos fault-injection events:
 * store_delayed, store_duplicated, atomic_dropped, snapshot_skip).
 *
 * Counters are registered lazily (id() on first use) and summed for the
 * whole lifetime of the registry; snapshot() returns a name-sorted copy
 * for export (CSV, summary table, Chrome counter tracks).
 */
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace eclsim::prof {

/** Dense handle of one registered counter. */
using CounterId = u32;

/** Registry of named counters (see file comment). */
class CounterRegistry
{
  public:
    /** Id of the named counter, registering it at zero on first use. */
    CounterId id(const std::string& name);

    /** Number of registered counters. */
    size_t size() const { return values_.size(); }

    /** Accumulate into a counter (the hot-path operation). */
    void
    add(CounterId id, u64 delta = 1)
    {
        values_[id] += delta;
    }

    /** Current value of a counter. */
    u64 value(CounterId id) const;

    /** Value of a counter by name; 0 if it was never registered. */
    u64 valueByName(const std::string& name) const;

    /** Name of a registered counter. */
    const std::string& name(CounterId id) const;

    /** Zero every counter (registrations are kept). */
    void reset();

    /**
     * Add every counter of another registry into this one, registering
     * missing names. Used to fold per-worker shard registries into the
     * shared session after a parallel run: serial and sharded totals
     * agree exactly because addition is per-name.
     */
    void merge(const CounterRegistry& other);

    /** One exported counter. */
    struct Sample
    {
        std::string name;
        u64 value = 0;
    };

    /** Name-sorted copy of all counters (hierarchical names group). */
    std::vector<Sample> snapshot() const;

  private:
    std::vector<std::string> names_;
    std::vector<u64> values_;
    std::unordered_map<std::string, CounterId> index_;
};

}  // namespace eclsim::prof
