#include "prof/counters.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace eclsim::prof {

CounterId
CounterRegistry::id(const std::string& name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const CounterId id = static_cast<CounterId>(values_.size());
    names_.push_back(name);
    values_.push_back(0);
    index_.emplace(name, id);
    return id;
}

u64
CounterRegistry::value(CounterId id) const
{
    ECLSIM_ASSERT(id < values_.size(), "counter id {} out of range", id);
    return values_[id];
}

u64
CounterRegistry::valueByName(const std::string& name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second];
}

const std::string&
CounterRegistry::name(CounterId id) const
{
    ECLSIM_ASSERT(id < names_.size(), "counter id {} out of range", id);
    return names_[id];
}

void
CounterRegistry::reset()
{
    std::fill(values_.begin(), values_.end(), 0);
}

void
CounterRegistry::merge(const CounterRegistry& other)
{
    for (CounterId i = 0; i < other.values_.size(); ++i)
        values_[id(other.names_[i])] += other.values_[i];
}

std::vector<CounterRegistry::Sample>
CounterRegistry::snapshot() const
{
    std::vector<Sample> out;
    out.reserve(values_.size());
    for (CounterId i = 0; i < values_.size(); ++i)
        out.push_back({names_[i], values_[i]});
    std::sort(out.begin(), out.end(),
              [](const Sample& a, const Sample& b) { return a.name < b.name; });
    return out;
}

}  // namespace eclsim::prof
