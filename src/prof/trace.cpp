#include "prof/trace.hpp"

namespace eclsim::prof {

namespace {

/** SM tracks sort after the handful of named tracks. */
constexpr u32 kSmSortBase = 100;

}  // namespace

TrackId
TraceSession::track(const std::string& name)
{
    const auto it = track_index_.find(name);
    if (it != track_index_.end())
        return it->second;
    const TrackId id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back({name, id});
    track_index_.emplace(name, id);
    return id;
}

TrackId
TraceSession::smTrack(u32 sm)
{
    const std::string name = "SM " + std::to_string(sm);
    const auto it = track_index_.find(name);
    if (it != track_index_.end())
        return it->second;
    const TrackId id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back({name, kSmSortBase + sm});
    track_index_.emplace(name, id);
    return id;
}

void
TraceSession::beginSpan(TrackId track, std::string name, u64 ts,
                        EventArgs args)
{
    TraceEvent e;
    e.phase = EventPhase::kBegin;
    e.track = track;
    e.ts = ts;
    e.name = std::move(name);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSession::endSpan(TrackId track, u64 ts)
{
    TraceEvent e;
    e.phase = EventPhase::kEnd;
    e.track = track;
    e.ts = ts;
    events_.push_back(std::move(e));
}

void
TraceSession::instant(TrackId track, std::string name, u64 ts,
                      EventArgs args)
{
    TraceEvent e;
    e.phase = EventPhase::kInstant;
    e.track = track;
    e.ts = ts;
    e.name = std::move(name);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSession::counterSample(TrackId track, std::string series, u64 ts,
                            u64 value)
{
    TraceEvent e;
    e.phase = EventPhase::kCounter;
    e.track = track;
    e.ts = ts;
    e.name = std::move(series);
    e.value = value;
    events_.push_back(std::move(e));
}

void
TraceSession::merge(const TraceSession& other,
                    const std::string& track_prefix)
{
    const u64 base = cursor_;
    std::vector<TrackId> remap;
    remap.reserve(other.tracks_.size());
    for (const Track& t : other.tracks_)
        remap.push_back(track(track_prefix + t.name));

    u64 max_ts = base;
    events_.reserve(events_.size() + other.events_.size());
    for (const TraceEvent& e : other.events_) {
        TraceEvent copy = e;
        copy.track = remap[e.track];
        copy.ts = base + e.ts;
        if (copy.ts > max_ts)
            max_ts = copy.ts;
        events_.push_back(std::move(copy));
    }
    advanceCursor(std::max(max_ts, base + other.cursor_));
    counters_.merge(other.counters_);
}

void
TraceSession::clear()
{
    tracks_.clear();
    track_index_.clear();
    events_.clear();
    counters_ = CounterRegistry{};
    cursor_ = 0;
}

}  // namespace eclsim::prof
