#include "prof/trace.hpp"

namespace eclsim::prof {

namespace {

/** SM tracks sort after the handful of named tracks. */
constexpr u32 kSmSortBase = 100;

}  // namespace

TrackId
TraceSession::track(const std::string& name)
{
    const auto it = track_index_.find(name);
    if (it != track_index_.end())
        return it->second;
    const TrackId id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back({name, id});
    track_index_.emplace(name, id);
    return id;
}

TrackId
TraceSession::smTrack(u32 sm)
{
    const std::string name = "SM " + std::to_string(sm);
    const auto it = track_index_.find(name);
    if (it != track_index_.end())
        return it->second;
    const TrackId id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back({name, kSmSortBase + sm});
    track_index_.emplace(name, id);
    return id;
}

void
TraceSession::beginSpan(TrackId track, std::string name, u64 ts,
                        EventArgs args)
{
    TraceEvent e;
    e.phase = EventPhase::kBegin;
    e.track = track;
    e.ts = ts;
    e.name = std::move(name);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSession::endSpan(TrackId track, u64 ts)
{
    TraceEvent e;
    e.phase = EventPhase::kEnd;
    e.track = track;
    e.ts = ts;
    events_.push_back(std::move(e));
}

void
TraceSession::instant(TrackId track, std::string name, u64 ts,
                      EventArgs args)
{
    TraceEvent e;
    e.phase = EventPhase::kInstant;
    e.track = track;
    e.ts = ts;
    e.name = std::move(name);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSession::counterSample(TrackId track, std::string series, u64 ts,
                            u64 value)
{
    TraceEvent e;
    e.phase = EventPhase::kCounter;
    e.track = track;
    e.ts = ts;
    e.name = std::move(series);
    e.value = value;
    events_.push_back(std::move(e));
}

void
TraceSession::clear()
{
    tracks_.clear();
    track_index_.clear();
    events_.clear();
    counters_ = CounterRegistry{};
    cursor_ = 0;
}

}  // namespace eclsim::prof
