/**
 * @file
 * Exporters for the profiling subsystem.
 *
 * Three output shapes cover the common workflows:
 *
 *  - Chrome/Perfetto trace_event JSON: open the file in chrome://tracing
 *    or https://ui.perfetto.dev to see one track per SM, one for the
 *    kernel launches, and one for the host-side harness phases, with
 *    race reports and stale-read markers as instant events. Timestamps
 *    are simulated cycles presented as microseconds (1 us = 1 cycle).
 *  - Flat counters CSV (name,value) for scripting.
 *  - A human-readable summary table reusing core/table, with the
 *    hierarchical counter names grouping related rows.
 */
#pragma once

#include <string>

#include "core/table.hpp"
#include "prof/counters.hpp"
#include "prof/trace.hpp"

namespace eclsim::prof {

/** Render the session as Chrome trace_event JSON. */
std::string toChromeTraceJson(const TraceSession& session);

/** Write toChromeTraceJson() to a file; fatal() on IO failure. */
void writeChromeTrace(const TraceSession& session, const std::string& path);

/** Render the counters as "counter,value" CSV (name-sorted). */
std::string countersCsv(const CounterRegistry& registry);

/** Write countersCsv() to a file; fatal() on IO failure. */
void writeCountersCsv(const CounterRegistry& registry,
                      const std::string& path);

/** Name-sorted counter summary as a renderable table. */
TextTable counterTable(const CounterRegistry& registry);

}  // namespace eclsim::prof
