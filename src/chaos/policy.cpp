#include "chaos/policy.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace eclsim::chaos {

const char*
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kNone:
        return "none";
      case PolicyKind::kStaleWindow:
        return "stale-window";
      case PolicyKind::kStoreDelay:
        return "store-delay";
      case PolicyKind::kSchedBias:
        return "sched-bias";
      case PolicyKind::kSmStall:
        return "sm-stall";
      case PolicyKind::kDupStore:
        return "dup-store";
      case PolicyKind::kDropAtomic:
        return "drop-atomic";
    }
    return "?";
}

PolicyKind
parsePolicy(const std::string& name)
{
    for (PolicyKind kind :
         {PolicyKind::kNone, PolicyKind::kStaleWindow,
          PolicyKind::kStoreDelay, PolicyKind::kSchedBias,
          PolicyKind::kSmStall, PolicyKind::kDupStore,
          PolicyKind::kDropAtomic}) {
        if (name == policyName(kind))
            return kind;
    }
    fatal("unknown chaos policy '{}' (try one of: none, stale-window, "
          "store-delay, sched-bias, sm-stall, dup-store, drop-atomic, "
          "or 'all')",
          name);
    return PolicyKind::kNone;  // unreachable
}

std::vector<PolicyKind>
parsePolicyList(const std::string& list)
{
    if (list == "all") {
        return {PolicyKind::kNone,      PolicyKind::kStaleWindow,
                PolicyKind::kStoreDelay, PolicyKind::kSchedBias,
                PolicyKind::kSmStall,    PolicyKind::kDupStore};
    }
    std::vector<PolicyKind> out;
    size_t begin = 0;
    while (begin <= list.size()) {
        const size_t comma = list.find(',', begin);
        const std::string token =
            list.substr(begin, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - begin);
        if (!token.empty())
            out.push_back(parsePolicy(token));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    if (out.empty())
        fatal("empty chaos policy list '{}'", list);
    return out;
}

bool
policyIsHarmful(PolicyKind kind)
{
    return kind == PolicyKind::kDropAtomic;
}

namespace {

/** Clamp intensity into [0, 1] once, at construction. */
double
clampIntensity(double intensity)
{
    return std::clamp(intensity, 0.0, 1.0);
}

/**
 * Skip sweep-snapshot refreshes with probability 0.9 * intensity per
 * launch. The skip probability stays below 1 so every iterative host
 * loop still terminates with probability 1 (a refresh eventually
 * happens, after a geometrically distributed number of launches) — but
 * readers routinely see state several launches old, far staler than any
 * compiler could make it.
 */
class StaleWindowPolicy : public simt::PerturbationHooks
{
  public:
    StaleWindowPolicy(double intensity, u64 seed)
        : skip_p_(0.9 * clampIntensity(intensity)), rng_(seed)
    {}

    bool
    refreshSnapshot(u32 launch) override
    {
        (void)launch;
        return !rng_.nextBool(skip_p_);
    }

  private:
    double skip_p_;
    SplitMix64 rng_;
};

/**
 * Buffer racy stores for a randomized number of subsequent accesses
 * before they become visible (then flushed at launch end regardless).
 */
class StoreDelayPolicy : public simt::PerturbationHooks
{
  public:
    StoreDelayPolicy(double intensity, u64 seed)
        : delay_p_(clampIntensity(intensity)),
          window_(1 + static_cast<u64>(4096 * clampIntensity(intensity))),
          rng_(seed)
    {}

    u32
    delayStoreAccesses(const simt::ThreadInfo& who,
                       const simt::MemRequest& req) override
    {
        (void)who;
        (void)req;
        if (!rng_.nextBool(delay_p_))
            return 0;
        return 1 + static_cast<u32>(rng_.nextBelow(window_));
    }

  private:
    double delay_p_;
    u64 window_;
    SplitMix64 rng_;
};

/** Redeliver racy plain stores after a randomized delay. */
class DupStorePolicy : public simt::PerturbationHooks
{
  public:
    DupStorePolicy(double intensity, u64 seed)
        : dup_p_(0.5 * clampIntensity(intensity)),
          window_(1 + static_cast<u64>(2048 * clampIntensity(intensity))),
          rng_(seed)
    {}

    u32
    duplicateStoreAfter(const simt::ThreadInfo& who,
                        const simt::MemRequest& req) override
    {
        (void)who;
        (void)req;
        if (!rng_.nextBool(dup_p_))
            return 0;
        return 1 + static_cast<u32>(rng_.nextBelow(window_));
    }

  private:
    double dup_p_;
    u64 window_;
    SplitMix64 rng_;
};

/**
 * Adversarial block scheduling: each launch picks one of four schedule
 * rewrites. Real GPUs promise no block order at all, so every rewrite is
 * a legal schedule the round-robin default would never produce.
 */
class SchedBiasPolicy : public simt::PerturbationHooks
{
  public:
    SchedBiasPolicy(double intensity, u64 seed)
        : apply_p_(clampIntensity(intensity) > 0.0
                       ? 0.5 + 0.5 * clampIntensity(intensity)
                       : 0.0),
          rng_(seed)
    {}

    void
    reorderBlocks(std::vector<u32>& order, u32 launch) override
    {
        (void)launch;
        if (!rng_.nextBool(apply_p_))
            return;
        const u32 n = static_cast<u32>(order.size());
        switch (rng_.nextBelow(4)) {
          case 0:  // reverse: last submitted block runs first
            std::reverse(order.begin(), order.end());
            break;
          case 1: {  // rotate by a random amount
            const u32 k = 1 + static_cast<u32>(rng_.nextBelow(n));
            std::rotate(order.begin(), order.begin() + (k % n),
                        order.end());
            break;
          }
          case 2: {  // interleave front and back halves
            std::vector<u32> mixed;
            mixed.reserve(n);
            for (u32 i = 0, j = n; i < j;) {
                mixed.push_back(order[i++]);
                if (i < j)
                    mixed.push_back(order[--j]);
            }
            order = std::move(mixed);
            break;
          }
          default:  // independent reshuffle from the policy's own stream
            for (u32 i = n - 1; i > 0; --i)
                std::swap(order[i], order[rng_.nextBelow(i + 1)]);
            break;
        }
    }

  private:
    double apply_p_;
    SplitMix64 rng_;
};

/** Transient SM stalls plus occasional per-access latency spikes. */
class SmStallPolicy : public simt::PerturbationHooks
{
  public:
    SmStallPolicy(double intensity, u64 seed)
        : stall_p_(0.25 * clampIntensity(intensity)),
          stall_max_(1 +
                     static_cast<u64>(20000 * clampIntensity(intensity))),
          spike_p_(0.01 * clampIntensity(intensity)), rng_(seed)
    {}

    u64
    smStallCycles(u32 sm, u32 block) override
    {
        (void)sm;
        (void)block;
        if (!rng_.nextBool(stall_p_))
            return 0;
        return rng_.nextBelow(stall_max_);
    }

    u64
    extraAccessLatency(const simt::ThreadInfo& who,
                       const simt::MemRequest& req) override
    {
        (void)who;
        (void)req;
        if (!rng_.nextBool(spike_p_))
            return 0;
        return rng_.nextBelow(500);
    }

  private:
    double stall_p_;
    u64 stall_max_;
    double spike_p_;
    SplitMix64 rng_;
};

/**
 * HARMFUL: drop atomic updates with probability 0.5 * intensity. The
 * drop probability stays at or below 0.5 so retried operations (e.g. a
 * Boruvka round re-offering the same best edge) still succeed
 * eventually — campaigns terminate, but outputs break.
 */
class DropAtomicPolicy : public simt::PerturbationHooks
{
  public:
    DropAtomicPolicy(double intensity, u64 seed)
        : drop_p_(0.5 * clampIntensity(intensity)), rng_(seed)
    {}

    bool
    dropAtomicUpdate(const simt::ThreadInfo& who,
                     const simt::MemRequest& req) override
    {
        (void)who;
        (void)req;
        return rng_.nextBool(drop_p_);
    }

  private:
    double drop_p_;
    SplitMix64 rng_;
};

}  // namespace

std::unique_ptr<simt::PerturbationHooks>
makePolicy(const PolicyConfig& config)
{
    switch (config.kind) {
      case PolicyKind::kNone:
        return nullptr;
      case PolicyKind::kStaleWindow:
        return std::make_unique<StaleWindowPolicy>(config.intensity,
                                                   config.seed);
      case PolicyKind::kStoreDelay:
        return std::make_unique<StoreDelayPolicy>(config.intensity,
                                                  config.seed);
      case PolicyKind::kSchedBias:
        return std::make_unique<SchedBiasPolicy>(config.intensity,
                                                 config.seed);
      case PolicyKind::kSmStall:
        return std::make_unique<SmStallPolicy>(config.intensity,
                                               config.seed);
      case PolicyKind::kDupStore:
        return std::make_unique<DupStorePolicy>(config.intensity,
                                                config.seed);
      case PolicyKind::kDropAtomic:
        return std::make_unique<DropAtomicPolicy>(config.intensity,
                                                  config.seed);
    }
    return nullptr;
}

}  // namespace eclsim::chaos
