/**
 * @file
 * Benignity campaign runner: (policy x algorithm x input x seed) cells,
 * each an independent simulator run under one perturbation policy, each
 * checked by a refalgos validity oracle.
 *
 * The campaign turns the paper's benign-race claim into a measured
 * property: every benign policy must produce zero oracle violations on
 * every algorithm, while convergence-iteration accounting quantifies the
 * cost (the paper's MIS mechanism — staleness does not break MIS, it
 * just makes it converge later). The harmful drop-atomic policy must
 * produce violations, proving the oracles have teeth.
 *
 * Cells fan out over core::ThreadPool with the same determinism contract
 * as the harness suites (PR 2): cell c derives its engine and policy
 * seeds from cellSeed(base, c), so the outcome vector — and the CSV
 * rendered from it — is bit-identical for every --jobs value.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "algos/common.hpp"
#include "chaos/policy.hpp"
#include "core/table.hpp"

namespace eclsim::prof {
class TraceSession;
}

namespace eclsim::chaos {

using algos::Algo;

/** Campaign parameters. */
struct CampaignConfig
{
    /** GPU model to simulate (simt::findGpu name). */
    std::string gpu = "Titan V";
    /** Policies to sweep; default: control + every benign policy. */
    std::vector<PolicyKind> policies = parsePolicyList("all");
    /** Algorithms to stress; default: every code whose baseline races
     *  are claimed *benign* — the paper's five plus BFS/WCC. PageRank is
     *  deliberately absent: its float accumulation is harmful-tolerated,
     *  not benign, and aggressive store perturbation drives it far past
     *  its L1 bound (that boundary is itself tested — see
     *  tests/racecheck and tests/chaos — and PR remains reachable here
     *  via an explicit algos list). */
    std::vector<Algo> algos = {Algo::kCc,  Algo::kGc,  Algo::kMis,
                               Algo::kMst, Algo::kScc, Algo::kBfs,
                               Algo::kWcc};
    /** Inputs for the undirected algorithms (CC/GC/MIS/MST/WCC). */
    std::vector<std::string> undirected_inputs = {"internet", "rmat16.sym",
                                                  "2d-2e20.sym"};
    /** Inputs for the directed algorithms (SCC/PR/BFS). */
    std::vector<std::string> directed_inputs = {"wikipedia"};
    /** Independent perturbation seeds per (policy, algo, input) cell. */
    u32 seeds_per_cell = 2;
    /** Perturbation strength in [0, 1] (PolicyConfig::intensity). */
    double intensity = 0.5;
    /** Which side of the paper's comparison to stress. The baselines
     *  carry the racy accesses, so they are the default subject. */
    algos::Variant variant = algos::Variant::kBaseline;
    u32 graph_divisor = 4096;
    u32 cache_divisor = 16;
    /** Base seed; cell c uses cellSeed(seed, c) (PR-2 contract). */
    u64 seed = 12345;
    /** Worker threads; 0 = hardware concurrency, 1 = exact serial path.
     *  Outcomes are bit-identical for every value. */
    u32 jobs = 0;
    /** Optional profiling sink: one span per cell on the "chaos" track,
     *  an instant event per oracle violation, sim/perturb counters. */
    prof::TraceSession* trace = nullptr;
};

/** Identity of one campaign cell. */
struct CampaignCell
{
    PolicyKind policy = PolicyKind::kNone;
    Algo algo = Algo::kCc;
    std::string input;
    u32 rep = 0;  ///< seed index within the (policy, algo, input) group
};

/** Result of one cell. */
struct CellOutcome
{
    CampaignCell cell;
    bool valid = true;
    std::string detail;     ///< oracle reason when invalid
    u32 iterations = 0;     ///< algorithm-level sweeps / rounds
    double ms = 0.0;        ///< simulated kernel time
    // perturbation events observed by the memory subsystem
    u64 stale_reads = 0;
    u64 delayed_stores = 0;
    u64 dup_stores = 0;
    u64 dropped_atomics = 0;
    u64 snapshot_skips = 0;
};

/** The cell list a config expands to, in stable (policy, algo, input,
 *  rep) order — the order outcomes are reported in. */
std::vector<CampaignCell> campaignCells(const CampaignConfig& config);

/** Run a single cell with an explicit seed (exposed for tests). */
CellOutcome runCampaignCell(const CampaignConfig& config,
                            const CampaignCell& cell, u64 seed,
                            prof::TraceSession* trace);

/** Progress sink; with jobs > 1 it is called under a lock, in
 *  completion (not cell) order. */
using CampaignProgressFn = std::function<void(const CellOutcome&)>;

/**
 * Run every cell of the campaign. The returned vector is in
 * campaignCells() order and bit-identical for every config.jobs value.
 */
std::vector<CellOutcome> runCampaign(
    const CampaignConfig& config,
    const CampaignProgressFn& progress = {});

/** Number of cells whose oracle rejected the output. */
u64 countViolations(const std::vector<CellOutcome>& outcomes);

/** Per-cell report table (the campaign CSV: one row per cell, stable
 *  order, deterministic contents). */
TextTable makeCampaignTable(const std::vector<CellOutcome>& outcomes);

/**
 * Per-(policy, algorithm) survival/convergence summary: runs, oracle
 * violations, total perturbation events, and the mean convergence-
 * iteration inflation relative to the policy "none" control cells
 * ("iters/none" — how much harder the perturbation made the algorithm
 * work; "-" when the control is not part of the campaign).
 */
TextTable makeCampaignSummary(const std::vector<CellOutcome>& outcomes);

}  // namespace eclsim::chaos
