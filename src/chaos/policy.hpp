/**
 * @file
 * Seeded, deterministic perturbation policies for benignity campaigns.
 *
 * Each policy is a simt::PerturbationHooks implementation that amplifies
 * one source of nondeterminism the paper's benign-race argument must
 * survive:
 *
 *  - kStaleWindow    skip sweep-snapshot refreshes between launches, so
 *                    racy readers see values that are many launches old
 *                    (a stronger adversary than any real compiler, which
 *                    at worst caches within one kernel).
 *  - kStoreDelay     hold racy non-atomic stores in a write buffer for a
 *                    randomized number of accesses before other threads
 *                    can see them (hardware store-buffer latitude).
 *  - kDupStore       redeliver racy plain stores later, clobbering
 *                    intervening writes (compiler re-materialization).
 *  - kSchedBias      rewrite the block schedule adversarially (reverse,
 *                    rotate, interleave, reshuffle per launch).
 *  - kSmStall        transient SM stalls and access-latency spikes.
 *  - kDropAtomic     HARMFUL: silently discard atomic updates. Excluded
 *                    from "--policy=all"; exists to prove the oracles
 *                    catch genuinely broken executions.
 *
 * Every policy draws all decisions from its own SplitMix64 stream, so a
 * (policy, seed, intensity) triple replays bit-identically. A policy
 * instance must not be shared across concurrently running engines.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "simt/perturb.hpp"

namespace eclsim::chaos {

/** The perturbation policies (see file comment). */
enum class PolicyKind : u8 {
    kNone,         ///< control cell: no hooks installed
    kStaleWindow,
    kStoreDelay,
    kSchedBias,
    kSmStall,
    kDupStore,
    kDropAtomic,   ///< harmful — not part of "all"
};

/** Printable policy name ("stale-window", ...). */
const char* policyName(PolicyKind kind);

/** Parse one policy name; fatal() on an unknown name. */
PolicyKind parsePolicy(const std::string& name);

/**
 * Parse a comma-separated policy list. "all" expands to the control plus
 * every benign policy (kDropAtomic must be requested by name — it is
 * supposed to break things).
 */
std::vector<PolicyKind> parsePolicyList(const std::string& list);

/** True for policies that are expected to corrupt outputs. */
bool policyIsHarmful(PolicyKind kind);

/** Policy instantiation parameters. */
struct PolicyConfig
{
    PolicyKind kind = PolicyKind::kNone;
    /** Perturbation strength in [0, 1]: scales probabilities, delay
     *  windows, and stall magnitudes. 0 makes every policy a no-op. */
    double intensity = 0.5;
    /** RNG seed; same (kind, intensity, seed) replays bit-identically. */
    u64 seed = 1;
};

/**
 * Build the hooks object for a policy. Returns null for kNone — install
 * nothing, the zero-cost control path.
 */
std::unique_ptr<simt::PerturbationHooks> makePolicy(
    const PolicyConfig& config);

}  // namespace eclsim::chaos
