#include "chaos/oracle.hpp"

#include <cmath>
#include <string>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "algos/mst.hpp"
#include "algos/pr.hpp"
#include "algos/scc.hpp"
#include "algos/wcc.hpp"
#include "core/logging.hpp"
#include "refalgos/refalgos.hpp"
#include "simt/engine.hpp"

namespace eclsim::chaos {

namespace {

Verdict
invalid(std::string detail)
{
    Verdict v;
    v.valid = false;
    v.detail = std::move(detail);
    return v;
}

}  // namespace

const char*
equivalenceName(Equivalence equivalence)
{
    switch (equivalence) {
        case Equivalence::kExact: return "exact";
        case Equivalence::kPartition: return "partition";
        case Equivalence::kProperty: return "property";
        case Equivalence::kEpsilonL1: return "epsilon-l1";
    }
    return "?";
}

Equivalence
equivalenceFor(algos::Algo algo)
{
    switch (algo) {
        case algos::Algo::kCc:
        case algos::Algo::kScc:
        case algos::Algo::kWcc: return Equivalence::kPartition;
        case algos::Algo::kGc:
        case algos::Algo::kMis: return Equivalence::kProperty;
        case algos::Algo::kMst:
        case algos::Algo::kBfs: return Equivalence::kExact;
        case algos::Algo::kPr: return Equivalence::kEpsilonL1;
    }
    panic("unknown algo {}", static_cast<int>(algo));
}

Verdict
checkCc(const CsrGraph& graph, const std::vector<VertexId>& labels)
{
    if (labels.size() != graph.numVertices())
        return invalid("CC label count " + std::to_string(labels.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    const auto reference = refalgos::connectedComponents(graph);
    if (!refalgos::samePartition(labels, reference))
        return invalid(
            "CC labels split the vertices into " +
            std::to_string(refalgos::countDistinct(labels)) +
            " components; BFS finds " +
            std::to_string(refalgos::countDistinct(reference)));
    return {};
}

Verdict
checkGc(const CsrGraph& graph, const std::vector<u32>& colors)
{
    if (colors.size() != graph.numVertices())
        return invalid("GC color count " + std::to_string(colors.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    if (!refalgos::isValidColoring(graph, colors))
        return invalid("GC coloring is improper (two adjacent vertices "
                       "share a color)");
    return {};
}

Verdict
checkMis(const CsrGraph& graph, const std::vector<bool>& in_set)
{
    if (in_set.size() != graph.numVertices())
        return invalid("MIS flag count " + std::to_string(in_set.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    if (!refalgos::isIndependentSet(graph, in_set))
        return invalid("MIS set is not independent (an edge joins two "
                       "members)");
    if (!refalgos::isMaximalIndependentSet(graph, in_set))
        return invalid("MIS set is not maximal (a non-member has no "
                       "member neighbor)");
    return {};
}

Verdict
checkMst(const CsrGraph& graph, u64 total_weight)
{
    const u64 reference = refalgos::minimumSpanningForestWeight(graph);
    if (total_weight != reference)
        return invalid("MST forest weight " +
                       std::to_string(total_weight) +
                       " != Kruskal weight " + std::to_string(reference));
    return {};
}

Verdict
checkScc(const CsrGraph& graph, const std::vector<VertexId>& labels)
{
    if (labels.size() != graph.numVertices())
        return invalid("SCC label count " +
                       std::to_string(labels.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    const auto reference = refalgos::stronglyConnectedComponents(graph);
    if (!refalgos::samePartition(labels, reference))
        return invalid(
            "SCC labels split the vertices into " +
            std::to_string(refalgos::countDistinct(labels)) +
            " components; Tarjan finds " +
            std::to_string(refalgos::countDistinct(reference)));
    return {};
}

Verdict
checkApsp(const CsrGraph& graph, const algos::ApspResult& result)
{
    const u32 n = graph.numVertices();
    if (result.n != n || result.dist.size() != static_cast<size_t>(n) * n)
        return invalid("APSP matrix shape mismatch (n=" +
                       std::to_string(result.n) + ")");
    const auto reference = refalgos::allPairsShortestPaths(graph);
    for (u32 i = 0; i < n; ++i) {
        for (u32 j = 0; j < n; ++j) {
            const size_t idx = static_cast<size_t>(i) * n + j;
            const bool sim_inf = result.dist[idx] >= algos::kApspInf;
            const bool ref_inf =
                reference[idx] >= refalgos::kApspInfinity;
            if (sim_inf != ref_inf ||
                (!sim_inf &&
                 static_cast<i64>(result.dist[idx]) != reference[idx])) {
                return invalid(
                    "APSP dist[" + std::to_string(i) + "][" +
                    std::to_string(j) + "] = " +
                    (sim_inf ? std::string("inf")
                             : std::to_string(result.dist[idx])) +
                    " != " +
                    (ref_inf ? std::string("inf")
                             : std::to_string(reference[idx])));
            }
        }
    }
    return {};
}

Verdict
checkPr(const CsrGraph& graph, const std::vector<float>& ranks)
{
    if (ranks.size() != graph.numVertices())
        return invalid("PR rank count " + std::to_string(ranks.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    const auto reference = refalgos::pageRank(graph, algos::kPrIterations,
                                              algos::kPrDamping);
    double l1 = 0.0;
    for (size_t v = 0; v < ranks.size(); ++v)
        l1 += std::fabs(static_cast<double>(ranks[v]) - reference[v]);
    if (!(l1 <= algos::kPrL1Epsilon))
        return invalid("PR rank vector is L1=" + std::to_string(l1) +
                       " from the power-iteration oracle (bound " +
                       std::to_string(algos::kPrL1Epsilon) + ")");
    return {};
}

Verdict
checkBfs(const CsrGraph& graph, const std::vector<u32>& levels,
         VertexId source)
{
    if (levels.size() != graph.numVertices())
        return invalid("BFS level count " + std::to_string(levels.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    // Both sides use ~0u as the unreached sentinel, so the comparison
    // is plain element equality.
    static_assert(algos::kBfsUnvisited == refalgos::kBfsUnreached);
    const auto reference = refalgos::bfsLevels(graph, source);
    for (size_t v = 0; v < levels.size(); ++v) {
        if (levels[v] != reference[v]) {
            const auto show = [](u32 level) {
                return level == algos::kBfsUnvisited
                           ? std::string("unreached")
                           : std::to_string(level);
            };
            return invalid("BFS level[" + std::to_string(v) + "] = " +
                           show(levels[v]) + " != oracle " +
                           show(reference[v]));
        }
    }
    return {};
}

Verdict
checkWcc(const CsrGraph& graph, const std::vector<VertexId>& labels)
{
    if (labels.size() != graph.numVertices())
        return invalid("WCC label count " + std::to_string(labels.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    const auto reference = refalgos::connectedComponents(graph);
    if (!refalgos::samePartition(labels, reference))
        return invalid(
            "WCC labels split the vertices into " +
            std::to_string(refalgos::countDistinct(labels)) +
            " components; BFS finds " +
            std::to_string(refalgos::countDistinct(reference)));
    return {};
}

RunOutcome
runChecked(simt::Engine& engine, const CsrGraph& graph, algos::Algo algo,
           algos::Variant variant, bool check_oracle)
{
    RunOutcome out;
    switch (algo) {
        case algos::Algo::kCc: {
            auto r = algos::runCc(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkCc(graph, r.labels);
            break;
        }
        case algos::Algo::kGc: {
            auto r = algos::runGc(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkGc(graph, r.colors);
            break;
        }
        case algos::Algo::kMis: {
            auto r = algos::runMis(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkMis(graph, r.in_set);
            break;
        }
        case algos::Algo::kMst: {
            auto r = algos::runMst(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkMst(graph, r.total_weight);
            break;
        }
        case algos::Algo::kScc: {
            auto r = algos::runScc(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkScc(graph, r.labels);
            break;
        }
        case algos::Algo::kPr: {
            auto r = algos::runPr(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkPr(graph, r.ranks);
            break;
        }
        case algos::Algo::kBfs: {
            auto r = algos::runBfs(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkBfs(graph, r.levels);
            break;
        }
        case algos::Algo::kWcc: {
            auto r = algos::runWcc(engine, graph, variant);
            out.stats = r.stats;
            if (check_oracle)
                out.verdict = checkWcc(graph, r.labels);
            break;
        }
    }
    return out;
}

}  // namespace eclsim::chaos
