#include "chaos/oracle.hpp"

#include <string>

#include "refalgos/refalgos.hpp"

namespace eclsim::chaos {

namespace {

Verdict
invalid(std::string detail)
{
    Verdict v;
    v.valid = false;
    v.detail = std::move(detail);
    return v;
}

}  // namespace

Verdict
checkCc(const CsrGraph& graph, const std::vector<VertexId>& labels)
{
    if (labels.size() != graph.numVertices())
        return invalid("CC label count " + std::to_string(labels.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    const auto reference = refalgos::connectedComponents(graph);
    if (!refalgos::samePartition(labels, reference))
        return invalid(
            "CC labels split the vertices into " +
            std::to_string(refalgos::countDistinct(labels)) +
            " components; BFS finds " +
            std::to_string(refalgos::countDistinct(reference)));
    return {};
}

Verdict
checkGc(const CsrGraph& graph, const std::vector<u32>& colors)
{
    if (colors.size() != graph.numVertices())
        return invalid("GC color count " + std::to_string(colors.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    if (!refalgos::isValidColoring(graph, colors))
        return invalid("GC coloring is improper (two adjacent vertices "
                       "share a color)");
    return {};
}

Verdict
checkMis(const CsrGraph& graph, const std::vector<bool>& in_set)
{
    if (in_set.size() != graph.numVertices())
        return invalid("MIS flag count " + std::to_string(in_set.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    if (!refalgos::isIndependentSet(graph, in_set))
        return invalid("MIS set is not independent (an edge joins two "
                       "members)");
    if (!refalgos::isMaximalIndependentSet(graph, in_set))
        return invalid("MIS set is not maximal (a non-member has no "
                       "member neighbor)");
    return {};
}

Verdict
checkMst(const CsrGraph& graph, u64 total_weight)
{
    const u64 reference = refalgos::minimumSpanningForestWeight(graph);
    if (total_weight != reference)
        return invalid("MST forest weight " +
                       std::to_string(total_weight) +
                       " != Kruskal weight " + std::to_string(reference));
    return {};
}

Verdict
checkScc(const CsrGraph& graph, const std::vector<VertexId>& labels)
{
    if (labels.size() != graph.numVertices())
        return invalid("SCC label count " +
                       std::to_string(labels.size()) +
                       " != vertex count " +
                       std::to_string(graph.numVertices()));
    const auto reference = refalgos::stronglyConnectedComponents(graph);
    if (!refalgos::samePartition(labels, reference))
        return invalid(
            "SCC labels split the vertices into " +
            std::to_string(refalgos::countDistinct(labels)) +
            " components; Tarjan finds " +
            std::to_string(refalgos::countDistinct(reference)));
    return {};
}

Verdict
checkApsp(const CsrGraph& graph, const algos::ApspResult& result)
{
    const u32 n = graph.numVertices();
    if (result.n != n || result.dist.size() != static_cast<size_t>(n) * n)
        return invalid("APSP matrix shape mismatch (n=" +
                       std::to_string(result.n) + ")");
    const auto reference = refalgos::allPairsShortestPaths(graph);
    for (u32 i = 0; i < n; ++i) {
        for (u32 j = 0; j < n; ++j) {
            const size_t idx = static_cast<size_t>(i) * n + j;
            const bool sim_inf = result.dist[idx] >= algos::kApspInf;
            const bool ref_inf =
                reference[idx] >= refalgos::kApspInfinity;
            if (sim_inf != ref_inf ||
                (!sim_inf &&
                 static_cast<i64>(result.dist[idx]) != reference[idx])) {
                return invalid(
                    "APSP dist[" + std::to_string(i) + "][" +
                    std::to_string(j) + "] = " +
                    (sim_inf ? std::string("inf")
                             : std::to_string(result.dist[idx])) +
                    " != " +
                    (ref_inf ? std::string("inf")
                             : std::to_string(reference[idx])));
            }
        }
    }
    return {};
}

}  // namespace eclsim::chaos
