/**
 * @file
 * Validity oracles for benignity campaigns.
 *
 * The harness's --verify path asserts (panics) on a wrong result, which
 * is right for regression tests but useless for a campaign that *wants*
 * to observe violations and keep going. These wrappers run the same
 * refalgos reference checks but return a Verdict: valid, or invalid with
 * a human-readable reason that names what broke (the campaign report's
 * "detail" column).
 *
 * The checks match the paper's per-algorithm correctness criteria:
 * CC/SCC label partitions against BFS/Tarjan, GC proper coloring, MIS
 * independence AND maximality, MST forest weight against Kruskal, and
 * APSP distances against Floyd-Warshall.
 */
#pragma once

#include <string>
#include <vector>

#include "algos/apsp.hpp"
#include "graph/csr.hpp"

namespace eclsim::chaos {

using graph::CsrGraph;

/** Outcome of one oracle check. */
struct Verdict
{
    bool valid = true;
    std::string detail;  ///< empty when valid; reason otherwise
};

/** CC: labels must induce the same partition as BFS components. */
Verdict checkCc(const CsrGraph& graph,
                const std::vector<VertexId>& labels);

/** GC: no edge may join two same-colored vertices. */
Verdict checkGc(const CsrGraph& graph, const std::vector<u32>& colors);

/** MIS: the set must be independent AND maximal. */
Verdict checkMis(const CsrGraph& graph, const std::vector<bool>& in_set);

/** MST: the forest weight must equal Kruskal's. */
Verdict checkMst(const CsrGraph& graph, u64 total_weight);

/** SCC: labels must induce the same partition as Tarjan's. */
Verdict checkScc(const CsrGraph& graph,
                 const std::vector<VertexId>& labels);

/** APSP: every distance must match Floyd-Warshall (the simulated code's
 *  kApspInf sentinel is mapped onto refalgos::kApspInfinity). */
Verdict checkApsp(const CsrGraph& graph, const algos::ApspResult& result);

}  // namespace eclsim::chaos
