/**
 * @file
 * Validity oracles for benignity campaigns.
 *
 * The harness's --verify path asserts (panics) on a wrong result, which
 * is right for regression tests but useless for a campaign that *wants*
 * to observe violations and keep going. These wrappers run the same
 * refalgos reference checks but return a Verdict: valid, or invalid with
 * a human-readable reason that names what broke (the campaign report's
 * "detail" column).
 *
 * The checks match the paper's per-algorithm correctness criteria:
 * CC/SCC label partitions against BFS/Tarjan, GC proper coloring, MIS
 * independence AND maximality, MST forest weight against Kruskal, APSP
 * distances against Floyd-Warshall, PR rank vectors against the
 * double-precision power iteration under an L1 bound, BFS levels
 * exactly, and WCC partitions against BFS components.
 *
 * runChecked() is the one shared run-and-compare implementation: the
 * harness --verify path, the chaos campaign, the racecheck runner, and
 * the differential test harness all dispatch through it, so "what does
 * correct mean for algorithm X" is declared exactly once (see
 * equivalenceFor).
 */
#pragma once

#include <string>
#include <vector>

#include "algos/apsp.hpp"
#include "algos/common.hpp"
#include "graph/csr.hpp"

namespace eclsim::simt {
class Engine;
}

namespace eclsim::chaos {

using graph::CsrGraph;

/** Outcome of one oracle check. */
struct Verdict
{
    bool valid = true;
    std::string detail;  ///< empty when valid; reason otherwise
};

/**
 * The equivalence under which an algorithm's simulated output is
 * compared to its sequential oracle. Declared per algorithm, consumed
 * by the differential harness and documented in DESIGN.md §14.
 */
enum class Equivalence : u8 {
    kExact,       ///< bit-identical payload (MST weight, BFS levels, ...)
    kPartition,   ///< same partition up to label renaming (CC, SCC, WCC)
    kProperty,    ///< checked properties, not a unique answer (GC, MIS)
    kEpsilonL1,   ///< within an L1-norm bound of the oracle (PR)
};

/** Printable equivalence name. */
const char* equivalenceName(Equivalence equivalence);

/** The declared output equivalence of one algorithm. */
Equivalence equivalenceFor(algos::Algo algo);

/** CC: labels must induce the same partition as BFS components. */
Verdict checkCc(const CsrGraph& graph,
                const std::vector<VertexId>& labels);

/** GC: no edge may join two same-colored vertices. */
Verdict checkGc(const CsrGraph& graph, const std::vector<u32>& colors);

/** MIS: the set must be independent AND maximal. */
Verdict checkMis(const CsrGraph& graph, const std::vector<bool>& in_set);

/** MST: the forest weight must equal Kruskal's. */
Verdict checkMst(const CsrGraph& graph, u64 total_weight);

/** SCC: labels must induce the same partition as Tarjan's. */
Verdict checkScc(const CsrGraph& graph,
                 const std::vector<VertexId>& labels);

/** APSP: every distance must match Floyd-Warshall (the simulated code's
 *  kApspInf sentinel is mapped onto refalgos::kApspInfinity). */
Verdict checkApsp(const CsrGraph& graph, const algos::ApspResult& result);

/** PR: the rank vector must lie within kPrL1Epsilon (L1 norm) of the
 *  double-precision power-iteration oracle. */
Verdict checkPr(const CsrGraph& graph, const std::vector<float>& ranks);

/** BFS: levels must match the queue oracle exactly. */
Verdict checkBfs(const CsrGraph& graph, const std::vector<u32>& levels,
                 VertexId source = 0);

/** WCC: labels must induce the same partition as BFS components. */
Verdict checkWcc(const CsrGraph& graph,
                 const std::vector<VertexId>& labels);

/** Run one algorithm variant and check its output (see file comment). */
struct RunOutcome
{
    algos::RunStats stats;
    Verdict verdict;  ///< default-valid when check_oracle was false
};

/**
 * The shared run-and-compare entry point: run `algo`/`variant` on
 * `engine` (MST requires a weighted graph, as everywhere) and, when
 * check_oracle is set, compare the output to the sequential oracle
 * under the algorithm's declared equivalence.
 */
RunOutcome runChecked(simt::Engine& engine, const CsrGraph& graph,
                      algos::Algo algo, algos::Variant variant,
                      bool check_oracle = true);

}  // namespace eclsim::chaos
