#include "chaos/campaign.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <mutex>

#include "chaos/oracle.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "graph/input_catalog.hpp"
#include "prof/trace.hpp"
#include "simt/engine.hpp"

namespace eclsim::chaos {

std::vector<CampaignCell>
campaignCells(const CampaignConfig& config)
{
    std::vector<CampaignCell> cells;
    for (PolicyKind policy : config.policies) {
        for (Algo algo : config.algos) {
            const auto& inputs = algos::algoNeedsDirected(algo)
                                     ? config.directed_inputs
                                     : config.undirected_inputs;
            for (const std::string& input : inputs)
                for (u32 rep = 0; rep < config.seeds_per_cell; ++rep)
                    cells.push_back({policy, algo, input, rep});
        }
    }
    return cells;
}

CellOutcome
runCampaignCell(const CampaignConfig& config, const CampaignCell& cell,
                u64 seed, prof::TraceSession* trace)
{
    CellOutcome out;
    out.cell = cell;

    auto& cache = graph::InputCatalog::shared();
    const graph::GraphPtr cached =
        cell.algo == Algo::kMst
            ? cache.getWeighted(cell.input, config.graph_divisor)
            : cache.get(cell.input, config.graph_divisor);
    const CsrGraph& graph = *cached;

    // Engine and policy draw from decorrelated streams of the cell seed
    // so changing the policy's consumption pattern never perturbs the
    // block-shuffle sequence and vice versa.
    PolicyConfig policy_config;
    policy_config.kind = cell.policy;
    policy_config.intensity = config.intensity;
    policy_config.seed = hash64(seed ^ 0x7068616f73ULL);  // "chaos"
    const auto hooks = makePolicy(policy_config);

    simt::EngineOptions options;
    options.mode = simt::ExecMode::kFast;
    options.shuffle_blocks = true;
    options.seed = seed;
    options.memory.cache_divisor = config.cache_divisor;
    options.trace = trace;
    options.perturb = hooks.get();

    u64 t0 = 0;
    prof::TrackId track = 0;
    if (trace) {
        track = trace->track("chaos");
        t0 = trace->cursor();
        trace->beginSpan(track,
                         std::string(policyName(cell.policy)) + "/" +
                             algos::algoName(cell.algo) + "/" +
                             cell.input,
                         t0,
                         {{"rep", std::to_string(cell.rep)},
                          {"variant", algos::variantName(config.variant)},
                          {"intensity", std::to_string(config.intensity)}});
    }

    simt::DeviceMemory memory;
    simt::Engine engine(simt::findGpu(config.gpu), memory, options);

    RunOutcome run = runChecked(engine, graph, cell.algo, config.variant);

    out.valid = run.verdict.valid;
    out.detail = std::move(run.verdict.detail);
    out.iterations = run.stats.iterations;
    out.ms = run.stats.ms;
    out.stale_reads = run.stats.mem.stale_reads;
    out.delayed_stores = run.stats.mem.delayed_stores;
    out.dup_stores = run.stats.mem.dup_stores;
    out.dropped_atomics = run.stats.mem.dropped_atomics;
    out.snapshot_skips = run.stats.mem.snapshot_skips;

    if (trace) {
        const u64 t_end = std::max(trace->cursor(), t0);
        if (!out.valid)
            trace->instant(track, "oracle-violation", t_end,
                           {{"detail", out.detail}});
        trace->endSpan(track, t_end);
    }
    return out;
}

std::vector<CellOutcome>
runCampaign(const CampaignConfig& config,
            const CampaignProgressFn& progress)
{
    const auto cells = campaignCells(config);
    std::vector<CellOutcome> out(cells.size());
    const u32 jobs = config.jobs == 0
                         ? core::ThreadPool::defaultConcurrency()
                         : config.jobs;

    if (jobs <= 1 || cells.size() <= 1) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out[i] = runCampaignCell(config, cells[i],
                                     cellSeed(config.seed, i),
                                     config.trace);
            if (progress)
                progress(out[i]);
        }
        return out;
    }

    // Same sharding contract as the harness suites: per-cell seeds from
    // the stable cell index, private per-cell trace sessions merged into
    // the shared one under a lock with a worker prefix, futures awaited
    // in cell order so failures surface deterministically.
    prof::TraceSession* shared_trace = config.trace;
    std::mutex sink_mutex;
    core::ThreadPool pool(
        static_cast<u32>(std::min<size_t>(jobs, cells.size())));
    std::vector<std::future<void>> done;
    done.reserve(cells.size());

    for (size_t i = 0; i < cells.size(); ++i) {
        done.push_back(pool.submit([&, i] {
            prof::TraceSession cell_trace;
            CellOutcome outcome = runCampaignCell(
                config, cells[i], cellSeed(config.seed, i),
                shared_trace ? &cell_trace : nullptr);
            if (shared_trace || progress) {
                std::lock_guard<std::mutex> lock(sink_mutex);
                if (shared_trace) {
                    const int worker =
                        core::ThreadPool::currentWorkerIndex();
                    std::string prefix = "w";
                    prefix += std::to_string(std::max(worker, 0));
                    prefix += '/';
                    shared_trace->merge(cell_trace, prefix);
                }
                if (progress)
                    progress(outcome);
            }
            out[i] = std::move(outcome);
        }));
    }
    for (auto& future : done)
        future.get();
    return out;
}

u64
countViolations(const std::vector<CellOutcome>& outcomes)
{
    u64 count = 0;
    for (const CellOutcome& o : outcomes)
        count += o.valid ? 0 : 1;
    return count;
}

TextTable
makeCampaignTable(const std::vector<CellOutcome>& outcomes)
{
    TextTable table({"Policy", "Algo", "Input", "Rep", "Valid", "Iters",
                     "ms", "StaleReads", "DelayedStores", "DupStores",
                     "DroppedAtomics", "SnapshotSkips", "Detail"});
    for (const CellOutcome& o : outcomes) {
        table.addRow({policyName(o.cell.policy),
                      algos::algoName(o.cell.algo), o.cell.input,
                      std::to_string(o.cell.rep),
                      o.valid ? "yes" : "NO",
                      std::to_string(o.iterations), fmtFixed(o.ms, 4),
                      std::to_string(o.stale_reads),
                      std::to_string(o.delayed_stores),
                      std::to_string(o.dup_stores),
                      std::to_string(o.dropped_atomics),
                      std::to_string(o.snapshot_skips), o.detail});
    }
    return table;
}

TextTable
makeCampaignSummary(const std::vector<CellOutcome>& outcomes)
{
    struct Group
    {
        u64 runs = 0;
        u64 violations = 0;
        u64 iterations = 0;
        u64 events = 0;
    };
    // Keyed by (policy, algo); std::map keeps the row order stable.
    std::map<std::pair<u8, u8>, Group> groups;
    // Mean control iterations per algorithm (policy "none" cells).
    std::map<u8, std::pair<u64, u64>> control;  // algo -> (sum, count)

    for (const CellOutcome& o : outcomes) {
        Group& g = groups[{static_cast<u8>(o.cell.policy),
                           static_cast<u8>(o.cell.algo)}];
        ++g.runs;
        g.violations += o.valid ? 0 : 1;
        g.iterations += o.iterations;
        g.events += o.stale_reads + o.delayed_stores + o.dup_stores +
                    o.dropped_atomics + o.snapshot_skips;
        if (o.cell.policy == PolicyKind::kNone) {
            auto& c = control[static_cast<u8>(o.cell.algo)];
            c.first += o.iterations;
            c.second += 1;
        }
    }

    TextTable table({"Policy", "Algo", "Runs", "Violations", "Events",
                     "MeanIters", "Iters/none"});
    for (const auto& [key, g] : groups) {
        const auto policy = static_cast<PolicyKind>(key.first);
        const auto algo = static_cast<Algo>(key.second);
        const double mean_iters =
            static_cast<double>(g.iterations) /
            static_cast<double>(g.runs);
        std::string ratio = "-";
        const auto c = control.find(key.second);
        if (c != control.end() && c->second.first > 0) {
            const double control_mean =
                static_cast<double>(c->second.first) /
                static_cast<double>(c->second.second);
            ratio = fmtFixed(mean_iters / control_mean, 2);
        }
        table.addRow({policyName(policy), algos::algoName(algo),
                      std::to_string(g.runs),
                      std::to_string(g.violations),
                      std::to_string(g.events), fmtFixed(mean_iters, 1),
                      ratio});
    }
    return table;
}

}  // namespace eclsim::chaos
