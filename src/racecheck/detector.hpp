/**
 * @file
 * FastTrack-style epoch/vector-clock happens-before race detector.
 *
 * This replaces the simulator's original last-read/last-write shadow
 * checker with a real happens-before engine in the style of FastTrack
 * ("FastTrack: Efficient and Precise Dynamic Race Detection") adapted
 * to the SIMT execution model, the direction of the GPU detectors in
 * PAPERS.md (iGuard, "Towards an Accurate GPU Data Race Detector"):
 *
 *  - every simulated thread carries a logical clock and a sparse vector
 *    clock; an access is recorded as the epoch (thread, clock) plus the
 *    block/__syncthreads-epoch coordinates of the SIMT model;
 *  - happens-before edges come from program order, kernel launch
 *    boundaries (everything in launch L precedes launch L+1), block
 *    barriers (onBarrier joins the participants' clocks, giving exact
 *    transitivity through __syncthreads), and atomic release/acquire
 *    chains (per-address synchronization clocks; relaxed atomics
 *    provide atomicity but no ordering edge, exactly as in C++/CUDA);
 *  - atomic/atomic pairs are excused only when their scopes actually
 *    reach each other: same block, or both at least device scope.
 *    Block-scope atomics from different blocks do NOT synchronize and
 *    are reported — the scope-aware rule the old detector lacked;
 *  - conflicts are attributed to source sites (racecheck/sites.hpp) and
 *    aggregated per (allocation, site pair, kind), so a report reads
 *    like sanitizer output: "cc.cpp:compute parent[] jump-load
 *    plain-load vs cc.cpp:compute parent[] shorten-store plain-store,
 *    R/W, 1.2M pair(s)";
 *  - every write additionally feeds a per-site value trace (same-value,
 *    increasing, decreasing, single-valued counts) consumed by the
 *    benign-race classifier (racecheck/classify.hpp).
 *
 * The shadow state is byte-granular, so overlapping partial-width
 * accesses (1/2/4/8-byte mixes) and the independently executed pieces
 * of a torn 64-bit access are checked correctly. Per-byte read sets
 * keep one exact entry per reading thread, capped at kMaxReadSet
 * distinct threads with oldest-clock eviction (counted, never silent).
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "prof/counters.hpp"
#include "racecheck/sites.hpp"
#include "racecheck/vector_clock.hpp"
#include "simt/access.hpp"

namespace eclsim::racecheck {

/** Identity of the thread performing an access. */
struct ThreadInfo
{
    u32 launch = 0;  ///< kernel launch sequence number
    u32 thread = 0;  ///< global thread id within the launch
    u32 block = 0;   ///< block id within the launch
    /** __syncthreads epoch within the block. 32 bits: the old u16 field
     *  wrapped after 65536 barriers and aliased epochs on long kernels,
     *  corrupting the barrier ordering rule. */
    u32 epoch = 0;
};

/** Kind of conflict. */
enum class RaceKind : u8 {
    kReadWrite,
    kWriteWrite,
};

/** Human-readable name of a race kind. */
const char* raceKindName(RaceKind kind);

/** Static signature of how a site touches memory. */
struct AccessSig
{
    simt::MemOpKind kind = simt::MemOpKind::kLoad;
    simt::AccessMode mode = simt::AccessMode::kPlain;
    simt::RmwOp rmw = simt::RmwOp::kAdd;  ///< meaningful for kRmw only
    simt::Scope scope = simt::Scope::kDevice;  ///< atomics only
    u8 size = 4;       ///< full request width in bytes
    bool torn = false; ///< executed as two independent 32-bit pieces
};

/** True if the signature describes an atomic access. */
bool sigIsAtomic(const AccessSig& sig);

/** Compact rendering: "plain-load", "volatile-store64/torn",
 *  "atomic-rmw(min)", "atomic-store@block", ... */
std::string accessSigName(const AccessSig& sig);

/** Signature of a memory request as the detector records it. */
AccessSig makeSig(const simt::MemRequest& req);

/** Dynamic value trace of one write site (classifier evidence). */
struct WriteTrace
{
    u64 samples = 0;     ///< writes observed
    u64 same_value = 0;  ///< wrote the value already in memory
    u64 increases = 0;   ///< wrote a larger value (unsigned)
    u64 decreases = 0;   ///< wrote a smaller value (unsigned)
    u64 first_value = 0;
    bool has_first = false;
    bool multi_valued = false;  ///< wrote at least two distinct values

    void
    record(u64 value, u64 old_value)
    {
        ++samples;
        if (value == old_value)
            ++same_value;
        else if (value > old_value)
            ++increases;
        else
            ++decreases;
        if (!has_first) {
            first_value = value;
            has_first = true;
        } else if (value != first_value) {
            multi_valued = true;
        }
    }

    /** Every observed write stored one and the same value. */
    bool singleValued() const { return has_first && !multi_valued; }
    /** Values only ever moved in one direction (ties allowed). */
    bool
    strictlyMonotonic() const
    {
        return samples > 0 && (increases == 0 || decreases == 0);
    }
    /**
     * Values moved in one dominant direction; a small tail of
     * counter-direction writes (at most 1/8 of all samples) is the
     * lost-update signature of benign racy convergence loops — a stale
     * writer re-publishing an older representative that a later sweep
     * re-fixes.
     */
    bool
    dominantlyMonotonic() const
    {
        const u64 counter = increases < decreases ? increases : decreases;
        return samples > 0 && counter * 8 <= samples;
    }
};

/** Aggregated race report for one (allocation, site pair, kind). */
struct RaceReport
{
    u32 alloc_index = 0;     ///< DeviceMemory allocation index
    std::string allocation;  ///< allocation name
    RaceKind kind = RaceKind::kReadWrite;
    /** The two racing sites. For R/W pairs, site_a is the write side;
     *  for W/W pairs the lower site id. kUnknownSite if the access was
     *  not instrumented. */
    SiteId site_a = kUnknownSite;
    SiteId site_b = kUnknownSite;
    AccessSig sig_a;
    AccessSig sig_b;
    u64 count = 0;           ///< number of conflicting access pairs seen
    u64 first_address = 0;   ///< arena address of the first conflict
    u32 first_thread_a = 0;  ///< earlier access's global thread id
    u32 first_thread_b = 0;  ///< later access's global thread id

    /** Sanitizer-style one-line rendering (without the trailing \n). */
    std::string describe() const;
};

/** The happens-before race detector (see file comment). */
class Detector
{
  public:
    /** Allocation identity of an address, resolved lazily on the cold
     *  report path. */
    struct ResolvedAlloc
    {
        u32 index = 0;
        std::string name;
    };
    using AllocResolver = std::function<ResolvedAlloc(u64 addr)>;

    /**
     * @param resolver maps an arena address to its allocation; called
     *        only when a conflict is reported (cold path).
     * @param counters optional profiling registry; when set, the
     *        detector maintains sim/race/checks, sim/race/conflicts,
     *        sim/race/barriers, sim/race/releases, sim/race/acquires,
     *        and sim/race/readset_evictions.
     */
    explicit Detector(AllocResolver resolver,
                      prof::CounterRegistry* counters = nullptr);

    /**
     * Record one executed piece of a memory request and check it
     * against the shadow state.
     *
     * @param addr,size the byte range this piece actually touched (for
     *        a torn 64-bit access, each 4-byte half separately)
     * @param value_bits the stored / RMW-result value (loads: the bits
     *        read); used for the write value traces
     * @param old_bits the value the location held before the access
     */
    void onAccess(const ThreadInfo& who, const simt::MemRequest& req,
                  u64 addr, u8 size, u64 value_bits, u64 old_bits);

    /**
     * A __syncthreads barrier released in the given block: join the
     * participants' vector clocks (every pre-barrier access of every
     * participant happens before every post-barrier access of every
     * participant, transitively).
     */
    void onBarrier(u32 launch, u32 block, const u32* threads,
                   size_t count);

    /** All aggregated reports so far, in first-observation order. */
    const std::vector<RaceReport>& reports() const { return reports_; }

    /** Total conflicting pairs across all reports. */
    u64 totalRaces() const;

    /** True if any race was recorded on the named allocation. */
    bool hasRaceOn(const std::string& allocation) const;

    /** Render the reports as human-readable lines (name-sorted, so the
     *  output is independent of interning / interleaving order). */
    std::string summary() const;

    /** Forget all shadow state, clocks, traces, and reports. */
    void reset();

    /** Value trace of a write site; null if the site never wrote. */
    const WriteTrace* writeTrace(SiteId site) const;

    /** Read-set evictions so far (capped-shadow precision loss). */
    u64 readSetEvictions() const { return readset_evictions_; }

  private:
    static constexpr u32 kNoLaunch = ~u32{0};
    /** Max distinct reading threads tracked per byte. */
    static constexpr size_t kMaxReadSet = 16;

    /** One recorded shadow access. */
    struct Access
    {
        u32 launch = kNoLaunch;
        u32 thread = 0;
        u32 block = 0;
        u32 epoch = 0;
        u32 clock = 0;  ///< issuing thread's logical clock at the access
        SiteId site = kUnknownSite;
        AccessSig sig;

        bool valid() const { return launch != kNoLaunch; }
    };

    struct ByteShadow
    {
        Access write;
        std::vector<Access> reads;  ///< one entry per thread, capped
    };

    /** Per-thread happens-before state, lazily reset per launch. */
    struct ThreadState
    {
        u32 launch = kNoLaunch;
        u32 clock = 1;
        VectorClock vc;
    };

    /** Per-address atomic synchronization clock. */
    struct SyncVar
    {
        u32 launch = kNoLaunch;
        VectorClock vc;
    };

    ThreadState& threadState(u32 thread, u32 launch);
    void ensureCapacity(u64 end);

    /** True if prev happens before the current access. */
    bool orderedBefore(const Access& prev, const ThreadInfo& who,
                       const ThreadState& state) const;
    /** Scope-aware atomic/atomic excuse (see file comment). */
    bool atomicPairExcused(const Access& prev, const ThreadInfo& who,
                           const AccessSig& sig) const;
    void checkPair(u64 addr, const Access& prev, const ThreadInfo& who,
                   const ThreadState& state, SiteId site,
                   const AccessSig& sig, RaceKind kind);
    void report(u64 addr, const Access& prev, const ThreadInfo& who,
                SiteId site, const AccessSig& sig, RaceKind kind);

    AllocResolver resolver_;
    std::vector<ByteShadow> shadow_;
    std::unordered_map<u32, ThreadState> threads_;
    std::unordered_map<u64, SyncVar> sync_;
    std::unordered_map<SiteId, WriteTrace> write_traces_;

    std::vector<RaceReport> reports_;
    /** (alloc, site_a, site_b, kind) -> index into reports_. */
    std::map<std::tuple<u32, SiteId, SiteId, u8>, size_t> report_index_;

    u64 readset_evictions_ = 0;
    prof::CounterRegistry* prof_ = nullptr;
    prof::CounterId c_checks_ = 0, c_conflicts_ = 0, c_barriers_ = 0;
    prof::CounterId c_releases_ = 0, c_acquires_ = 0, c_evictions_ = 0;
};

}  // namespace eclsim::racecheck
