/**
 * @file
 * Access-site attribution for the race analysis.
 *
 * Compute Sanitizer and iGuard name the *source location* of each racing
 * access; that is what makes their reports actionable and what lets the
 * paper's Section IV table say "the CC baseline races on nstat[] in the
 * hook/compute kernels". SiteRegistry gives the simulator the same
 * vocabulary: every instrumented kernel access interns a SiteId — a
 * (file, line, label) triple — once, and carries that id on each
 * MemRequest so the detector can attribute conflicts to source sites
 * instead of raw addresses.
 *
 * A site may additionally *declare* which benign-race category the
 * author believes the access falls into (the paper's Section IV
 * taxonomy). Declarations are not trusted: the classifier validates
 * each one against the dynamically observed value traces and demotes
 * mismatches to unknown/harmful, so an annotation is a checked claim,
 * not an excuse.
 *
 * Interning is mutex-protected (parallel sweep cells share the
 * registry) and id-stable for the lifetime of the process; ids are
 * dense and start at 1 (0 = kUnknownSite, an uninstrumented access).
 */
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace eclsim {
class TextTable;
}

namespace eclsim::racecheck {

/** Dense handle of one instrumented source access. 0 = unattributed. */
using SiteId = u32;
constexpr SiteId kUnknownSite = 0;

/**
 * Benign-race category a site declares itself to be (the paper's
 * Section IV taxonomy). kNone means the author makes no claim and the
 * classifier must infer a category from the value trace alone.
 */
enum class Expectation : u8 {
    kNone,           ///< undeclared; classify from dynamic evidence only
    kIdempotent,     ///< all racing writers store the same value
    kMonotonic,      ///< value moves in one direction; losers re-converge
    kStaleTolerant,  ///< stale reads only delay convergence
    kTearing,        ///< known word-tearing hazard (paper Fig. 1)
    /**
     * The race genuinely corrupts values (lost floating-point updates in
     * PageRank's push accumulation), but the algorithm tolerates a
     * bounded output error. Classified harmful-tolerated; the gate
     * accepts it only when the cell's oracle check — an epsilon-norm
     * comparison, not bit equality — still passes.
     */
    kBoundedError,
};

/** Printable expectation name. */
const char* expectationName(Expectation expect);

/** One registered access site. */
struct Site
{
    SiteId id = kUnknownSite;
    std::string file;   ///< basename of the defining source file
    u32 line = 0;
    std::string label;  ///< short human description ("compute parent[] jump-load")
    Expectation expect = Expectation::kNone;
};

/** Process-wide registry of access sites (see file comment). */
class SiteRegistry
{
  public:
    /** The shared registry used by ECL_SITE. */
    static SiteRegistry& instance();

    /**
     * Intern a site, returning the existing id if the same
     * (file, line, label) was seen before. A re-intern with a different
     * expectation keeps the first one (sites are defined once in
     * source; the macro guarantees one intern call per site anyway).
     */
    SiteId intern(const char* file, u32 line, const char* label,
                  Expectation expect = Expectation::kNone);

    /** Copy of a site's record; a default Site for kUnknownSite. */
    Site site(SiteId id) const;

    /** Declared expectation of a site (kNone for kUnknownSite). */
    Expectation expectation(SiteId id) const;

    /**
     * "file:label" — the sanitizer-style rendering used in reports
     * ("cc.cpp:compute parent[] jump-load"); "<unattributed>" for
     * kUnknownSite.
     */
    std::string describe(SiteId id) const;

    /** Number of interned sites. */
    size_t size() const;

    /** Copy of every interned site, in id order. */
    std::vector<Site> snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Site> sites_;  ///< sites_[id - 1]
    std::unordered_map<std::string, SiteId> index_;
};

/**
 * The interned site registry as a table (columns Id, File, Line, Label,
 * Expectation), sorted by (file, line, label) so the rendering depends
 * only on which sites are interned, never on interning order. This is
 * `bench/racecheck --list-sites`; repair proposals and tests reference
 * sites by the ids exported here without re-running detection.
 */
TextTable makeSiteListTable(
    const SiteRegistry& registry = SiteRegistry::instance());

}  // namespace eclsim::racecheck

/**
 * Intern the enclosing source location as an access site, declaring the
 * benign-race category the author claims for it. Evaluates to a SiteId;
 * the intern happens once (magic static), so instrumented hot loops pay
 * only a guarded static read.
 */
#define ECL_SITE_AS(label_text, expect_value)                             \
    ([]() -> ::eclsim::racecheck::SiteId {                                \
        static const ::eclsim::racecheck::SiteId eclsim_site_id =         \
            ::eclsim::racecheck::SiteRegistry::instance().intern(         \
                __FILE__, __LINE__, (label_text), (expect_value));        \
        return eclsim_site_id;                                            \
    }())

/** ECL_SITE_AS with no declared category. */
#define ECL_SITE(label_text)                                              \
    ECL_SITE_AS(label_text, ::eclsim::racecheck::Expectation::kNone)
