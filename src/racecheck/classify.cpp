#include "racecheck/classify.hpp"

namespace eclsim::racecheck {

const char*
raceClassName(RaceClass cls)
{
    switch (cls) {
      case RaceClass::kIdempotentWrite:
        return "idempotent-write";
      case RaceClass::kMonotonicUpdate:
        return "monotonic-update";
      case RaceClass::kStaleReadTolerant:
        return "stale-read-tolerant";
      case RaceClass::kWordTearing:
        return "word-tearing";
      case RaceClass::kHarmfulTolerated:
        return "harmful-tolerated";
      case RaceClass::kUnknownHarmful:
        return "UNKNOWN/HARMFUL";
    }
    return "?";
}

bool
classIsBenign(RaceClass cls)
{
    // harmful-tolerated is deliberately not benign: it corrupts values
    // and is only acceptable when the cell's oracle bound holds — that
    // check belongs to the gate, not to the taxonomy.
    return cls != RaceClass::kUnknownHarmful &&
           cls != RaceClass::kHarmfulTolerated;
}

namespace {

/** Severity order used to combine the two sides of a pair. */
int
severity(RaceClass cls)
{
    switch (cls) {
      case RaceClass::kIdempotentWrite:
        return 0;
      case RaceClass::kMonotonicUpdate:
        return 1;
      case RaceClass::kStaleReadTolerant:
        return 2;
      case RaceClass::kWordTearing:
        return 3;
      case RaceClass::kHarmfulTolerated:
        return 4;
      case RaceClass::kUnknownHarmful:
        return 5;
    }
    return 5;
}

struct SideClass
{
    bool neutral = false;  ///< no claim to make (e.g. undeclared read)
    RaceClass cls = RaceClass::kUnknownHarmful;
    std::string reason;
};

SideClass
classifySide(SiteId site, const AccessSig& sig, const Detector& detector)
{
    SideClass out;

    // The word-tearing hazard is a property of the access shape alone:
    // a non-atomic 64-bit transfer can be observed half-done on a
    // 32-bit-native target (paper Fig. 1), whatever the values are.
    if (!sigIsAtomic(sig) && sig.size == 8) {
        out.cls = RaceClass::kWordTearing;
        out.reason = "non-atomic 64-bit access may tear";
        return out;
    }

    const Expectation expect = SiteRegistry::instance().expectation(site);
    const bool is_write = sig.kind != simt::MemOpKind::kLoad;

    if (!is_write) {
        // A read makes no claim about the written values; only an
        // explicit staleness or bounded-error declaration gives it a
        // category of its own.
        if (expect == Expectation::kStaleTolerant) {
            out.cls = RaceClass::kStaleReadTolerant;
            out.reason = "read declared stale-tolerant";
        } else if (expect == Expectation::kBoundedError) {
            out.cls = RaceClass::kHarmfulTolerated;
            out.reason = "read feeds a bounded-error accumulation";
        } else {
            out.neutral = true;
        }
        return out;
    }

    const WriteTrace* trace = detector.writeTrace(site);
    switch (expect) {
      case Expectation::kIdempotent:
        if (trace && trace->singleValued()) {
            out.cls = RaceClass::kIdempotentWrite;
            out.reason = "all writes stored one value";
        } else {
            out.cls = RaceClass::kUnknownHarmful;
            out.reason = "declared idempotent but wrote distinct values";
        }
        return out;
      case Expectation::kMonotonic:
        if (trace && trace->dominantlyMonotonic()) {
            out.cls = RaceClass::kMonotonicUpdate;
            out.reason = trace->strictlyMonotonic()
                             ? "one-directional write trace"
                             : "monotonic with lost-update tail";
        } else {
            out.cls = RaceClass::kUnknownHarmful;
            out.reason = "declared monotonic but trace moves both ways";
        }
        return out;
      case Expectation::kStaleTolerant:
        out.cls = RaceClass::kStaleReadTolerant;
        out.reason = "write declared stale-tolerant";
        return out;
      case Expectation::kTearing:
        // Declared a tearing hazard but the access shape cannot tear —
        // a stale annotation; refuse to bless it.
        out.cls = RaceClass::kUnknownHarmful;
        out.reason = "declared tearing but access cannot tear";
        return out;
      case Expectation::kBoundedError:
        // Lost updates are expected and genuinely corrupt the value;
        // there is no trace shape to validate. The claim is instead
        // checked end-to-end: the gate only accepts harmful-tolerated
        // races from cells whose oracle epsilon bound held.
        out.cls = RaceClass::kHarmfulTolerated;
        out.reason = "declared bounded-error accumulation";
        return out;
      case Expectation::kNone:
        break;
    }

    // Undeclared write: infer from evidence alone.
    if (sig.kind == simt::MemOpKind::kRmw &&
        (sig.rmw == simt::RmwOp::kMin || sig.rmw == simt::RmwOp::kMax ||
         sig.rmw == simt::RmwOp::kAnd || sig.rmw == simt::RmwOp::kOr)) {
        out.cls = RaceClass::kMonotonicUpdate;
        out.reason = "inherently monotonic RMW";
        return out;
    }
    if (trace && trace->singleValued()) {
        out.cls = RaceClass::kIdempotentWrite;
        out.reason = "single-valued write trace";
        return out;
    }
    if (trace && trace->strictlyMonotonic()) {
        out.cls = RaceClass::kMonotonicUpdate;
        out.reason = "one-directional write trace";
        return out;
    }
    out.cls = RaceClass::kUnknownHarmful;
    out.reason = "undeclared racing write with mixed-direction trace";
    return out;
}

}  // namespace

ClassifiedReport
classifyReport(const RaceReport& report, const Detector& detector)
{
    ClassifiedReport out;
    out.report = report;

    const SideClass a = classifySide(report.site_a, report.sig_a, detector);
    const SideClass b = classifySide(report.site_b, report.sig_b, detector);

    if (a.neutral && b.neutral) {
        out.cls = RaceClass::kUnknownHarmful;
        out.reason = "neither racing site is attributed or justified";
        return out;
    }
    const SideClass* worse = nullptr;
    if (a.neutral)
        worse = &b;
    else if (b.neutral)
        worse = &a;
    else
        worse = severity(b.cls) > severity(a.cls) ? &b : &a;
    out.cls = worse->cls;
    out.reason = worse->reason;
    return out;
}

std::vector<ClassifiedReport>
classifyAll(const Detector& detector)
{
    std::vector<ClassifiedReport> out;
    out.reserve(detector.reports().size());
    for (const RaceReport& report : detector.reports())
        out.push_back(classifyReport(report, detector));
    return out;
}

}  // namespace eclsim::racecheck
