#include "racecheck/detector.hpp"

#include <algorithm>
#include <sstream>

namespace eclsim::racecheck {

const char*
raceKindName(RaceKind kind)
{
    switch (kind) {
      case RaceKind::kReadWrite:
        return "read-write";
      case RaceKind::kWriteWrite:
        return "write-write";
    }
    return "unknown";
}

bool
sigIsAtomic(const AccessSig& sig)
{
    return sig.kind == simt::MemOpKind::kRmw ||
           sig.mode == simt::AccessMode::kAtomic;
}

std::string
accessSigName(const AccessSig& sig)
{
    std::string out;
    switch (sig.mode) {
      case simt::AccessMode::kPlain:
        out = "plain";
        break;
      case simt::AccessMode::kVolatile:
        out = "volatile";
        break;
      case simt::AccessMode::kAtomic:
        out = "atomic";
        break;
    }
    switch (sig.kind) {
      case simt::MemOpKind::kLoad:
        out += "-load";
        break;
      case simt::MemOpKind::kStore:
        out += "-store";
        break;
      case simt::MemOpKind::kRmw:
        out = "atomic-rmw(";
        switch (sig.rmw) {
          case simt::RmwOp::kAdd:
            out += "add";
            break;
          case simt::RmwOp::kMin:
            out += "min";
            break;
          case simt::RmwOp::kMax:
            out += "max";
            break;
          case simt::RmwOp::kAnd:
            out += "and";
            break;
          case simt::RmwOp::kOr:
            out += "or";
            break;
          case simt::RmwOp::kExch:
            out += "exch";
            break;
          case simt::RmwOp::kCas:
            out += "cas";
            break;
          case simt::RmwOp::kAddF:
            out += "addf";
            break;
        }
        out += ")";
        break;
    }
    if (sig.size == 8)
        out += "64";
    else if (sig.size == 2)
        out += "16";
    else if (sig.size == 1)
        out += "8";
    if (sigIsAtomic(sig) && sig.scope == simt::Scope::kBlock)
        out += "@block";
    if (sigIsAtomic(sig) && sig.scope == simt::Scope::kSystem)
        out += "@system";
    if (sig.torn)
        out += "/torn";
    return out;
}

AccessSig
makeSig(const simt::MemRequest& req)
{
    AccessSig sig;
    sig.kind = req.kind;
    sig.mode = req.mode;
    sig.rmw = req.rmw;
    sig.scope = req.scope;
    sig.size = req.size;
    sig.torn = req.pieces() > 1;
    return sig;
}

std::string
RaceReport::describe() const
{
    const SiteRegistry& reg = SiteRegistry::instance();
    std::ostringstream out;
    out << raceKindName(kind) << " race on '" << allocation
        << "': " << reg.describe(site_a) << " " << accessSigName(sig_a)
        << " vs " << reg.describe(site_b) << " " << accessSigName(sig_b)
        << ", " << (kind == RaceKind::kWriteWrite ? "W/W" : "R/W") << ", "
        << count << " pair(s), first at address " << first_address
        << " threads " << first_thread_a << "/" << first_thread_b;
    return out.str();
}

Detector::Detector(AllocResolver resolver, prof::CounterRegistry* counters)
    : resolver_(std::move(resolver)), prof_(counters)
{
    if (prof_) {
        c_checks_ = prof_->id("sim/race/checks");
        c_conflicts_ = prof_->id("sim/race/conflicts");
        c_barriers_ = prof_->id("sim/race/barriers");
        c_releases_ = prof_->id("sim/race/releases");
        c_acquires_ = prof_->id("sim/race/acquires");
        c_evictions_ = prof_->id("sim/race/readset_evictions");
    }
}

Detector::ThreadState&
Detector::threadState(u32 thread, u32 launch)
{
    ThreadState& state = threads_[thread];
    if (state.launch != launch) {
        state.launch = launch;
        state.clock = 1;
        state.vc.clear();
    }
    return state;
}

void
Detector::ensureCapacity(u64 end)
{
    if (shadow_.size() < end)
        shadow_.resize(end);
}

bool
Detector::orderedBefore(const Access& prev, const ThreadInfo& who,
                        const ThreadState& state) const
{
    if (prev.launch != who.launch)
        return true;  // kernel boundaries order everything
    if (prev.thread == who.thread)
        return true;  // program order
    if (prev.block == who.block && prev.epoch != who.epoch)
        return true;  // separated by a __syncthreads barrier
    // Synchronization chains (barriers joined via onBarrier, atomic
    // release/acquire): ordered iff this thread's clock has absorbed the
    // previous access's epoch.
    return state.vc.covers(prev.thread, prev.clock);
}

bool
Detector::atomicPairExcused(const Access& prev, const ThreadInfo& who,
                            const AccessSig& sig) const
{
    if (!sigIsAtomic(prev.sig) || !sigIsAtomic(sig))
        return false;
    // Atomicity makes the pair conflict-free wherever both operations
    // actually reach the same arbitration point: always within a block,
    // and at the L2 when both are at least device scope. A block-scope
    // atomic seen from a different block is just a racy access — the
    // scope-aware rule the old detector lacked.
    if (prev.block == who.block)
        return true;
    return prev.sig.scope != simt::Scope::kBlock &&
           sig.scope != simt::Scope::kBlock;
}

void
Detector::checkPair(u64 addr, const Access& prev, const ThreadInfo& who,
                    const ThreadState& state, SiteId site,
                    const AccessSig& sig, RaceKind kind)
{
    if (!prev.valid() || prev.launch != who.launch)
        return;
    if (prev.thread == who.thread)
        return;
    if (atomicPairExcused(prev, who, sig))
        return;
    if (orderedBefore(prev, who, state))
        return;
    report(addr, prev, who, site, sig, kind);
}

void
Detector::report(u64 addr, const Access& prev, const ThreadInfo& who,
                 SiteId site, const AccessSig& sig, RaceKind kind)
{
    if (prof_)
        prof_->add(c_conflicts_);

    // Normalize the pair: R/W reports put the write side in slot a;
    // W/W reports order by site id so the aggregation key is stable
    // under either observation order.
    SiteId site_a = prev.site, site_b = site;
    AccessSig sig_a = prev.sig, sig_b = sig;
    u32 thread_a = prev.thread, thread_b = who.thread;
    bool swap = false;
    if (kind == RaceKind::kReadWrite)
        swap = prev.sig.kind == simt::MemOpKind::kLoad;
    else
        swap = site_b < site_a;
    if (swap) {
        std::swap(site_a, site_b);
        std::swap(sig_a, sig_b);
        std::swap(thread_a, thread_b);
    }

    const ResolvedAlloc alloc = resolver_(addr);
    const auto key = std::make_tuple(alloc.index, site_a, site_b,
                                     static_cast<u8>(kind));
    const auto it = report_index_.find(key);
    if (it != report_index_.end()) {
        ++reports_[it->second].count;
        return;
    }
    RaceReport r;
    r.alloc_index = alloc.index;
    r.allocation = alloc.name;
    r.kind = kind;
    r.site_a = site_a;
    r.site_b = site_b;
    r.sig_a = sig_a;
    r.sig_b = sig_b;
    r.count = 1;
    r.first_address = addr;
    r.first_thread_a = thread_a;
    r.first_thread_b = thread_b;
    report_index_.emplace(key, reports_.size());
    reports_.push_back(std::move(r));
}

void
Detector::onAccess(const ThreadInfo& who, const simt::MemRequest& req,
                   u64 addr, u8 size, u64 value_bits, u64 old_bits)
{
    if (prof_)
        prof_->add(c_checks_);
    ensureCapacity(addr + size);

    const bool is_atomic = req.kind == simt::MemOpKind::kRmw ||
                           req.mode == simt::AccessMode::kAtomic;
    const bool is_write = req.kind != simt::MemOpKind::kLoad;
    ThreadState& state = threadState(who.thread, who.launch);

    // Acquire edge: an atomic load / RMW with acquire (or seq_cst)
    // ordering joins the location's release clock into this thread.
    if (is_atomic && req.kind != simt::MemOpKind::kStore &&
        (req.order == simt::MemoryOrder::kAcquire ||
         req.order == simt::MemoryOrder::kSeqCst)) {
        const auto it = sync_.find(req.addr);
        if (it != sync_.end() && it->second.launch == who.launch) {
            state.vc.join(it->second.vc);
            if (prof_)
                prof_->add(c_acquires_);
        }
    }

    const AccessSig sig = makeSig(req);
    const RaceKind vs_write_kind =
        is_write ? RaceKind::kWriteWrite : RaceKind::kReadWrite;

    Access rec;
    rec.launch = who.launch;
    rec.thread = who.thread;
    rec.block = who.block;
    rec.epoch = who.epoch;
    rec.clock = state.clock;
    rec.site = req.site;
    rec.sig = sig;

    for (u8 i = 0; i < size; ++i) {
        const u64 a = addr + i;
        ByteShadow& sh = shadow_[a];
        checkPair(a, sh.write, who, state, req.site, sig, vs_write_kind);
        if (is_write) {
            for (const Access& r : sh.reads)
                checkPair(a, r, who, state, req.site, sig,
                          RaceKind::kReadWrite);
            sh.write = rec;
        } else {
            // Exact per-thread read entry: a newer read by the same
            // thread (or a stale one from an earlier launch) is
            // subsumed. The set is capped; overflow evicts the entry
            // with the oldest clock and is counted, never silent.
            bool placed = false;
            for (Access& r : sh.reads) {
                if (r.thread == who.thread || r.launch != who.launch) {
                    r = rec;
                    placed = true;
                    break;
                }
            }
            if (!placed) {
                if (sh.reads.size() >= kMaxReadSet) {
                    size_t victim = 0;
                    for (size_t j = 1; j < sh.reads.size(); ++j)
                        if (sh.reads[j].clock < sh.reads[victim].clock)
                            victim = j;
                    sh.reads[victim] = rec;
                    ++readset_evictions_;
                    if (prof_)
                        prof_->add(c_evictions_);
                } else {
                    sh.reads.push_back(rec);
                }
            }
        }
    }

    if (is_write)
        write_traces_[req.site].record(value_bits, old_bits);

    // Release edge: an atomic store / RMW with release (or seq_cst)
    // ordering publishes this thread's clock at the location and opens
    // a new epoch.
    if (is_atomic && req.kind != simt::MemOpKind::kLoad &&
        (req.order == simt::MemoryOrder::kRelease ||
         req.order == simt::MemoryOrder::kSeqCst)) {
        SyncVar& sv = sync_[req.addr];
        if (sv.launch != who.launch) {
            sv.launch = who.launch;
            sv.vc.clear();
        }
        state.vc.raise(who.thread, state.clock);
        sv.vc.join(state.vc);
        ++state.clock;
        if (prof_)
            prof_->add(c_releases_);
    }
}

void
Detector::onBarrier(u32 launch, u32 block, const u32* threads,
                    size_t count)
{
    (void)block;
    if (count == 0)
        return;
    if (prof_)
        prof_->add(c_barriers_);
    // Join every participant's clock: all pre-barrier accesses of all
    // participants happen before all post-barrier accesses, and the
    // merged clock carries earlier synchronization transitively.
    VectorClock merged;
    for (size_t i = 0; i < count; ++i) {
        ThreadState& state = threadState(threads[i], launch);
        state.vc.raise(threads[i], state.clock);
        merged.join(state.vc);
    }
    for (size_t i = 0; i < count; ++i) {
        ThreadState& state = threadState(threads[i], launch);
        state.vc.join(merged);
        ++state.clock;
    }
}

u64
Detector::totalRaces() const
{
    u64 total = 0;
    for (const RaceReport& r : reports_)
        total += r.count;
    return total;
}

bool
Detector::hasRaceOn(const std::string& allocation) const
{
    for (const RaceReport& r : reports_)
        if (r.allocation == allocation)
            return true;
    return false;
}

std::string
Detector::summary() const
{
    if (reports_.empty())
        return "no data races detected\n";
    // Sort the rendered lines so the summary does not depend on site
    // interning order or on which interleaving surfaced a pair first.
    std::vector<std::string> lines;
    lines.reserve(reports_.size());
    for (const RaceReport& r : reports_)
        lines.push_back(r.describe());
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

void
Detector::reset()
{
    shadow_.assign(shadow_.size(), ByteShadow{});
    threads_.clear();
    sync_.clear();
    write_traces_.clear();
    reports_.clear();
    report_index_.clear();
    readset_evictions_ = 0;
}

const WriteTrace*
Detector::writeTrace(SiteId site) const
{
    const auto it = write_traces_.find(site);
    return it == write_traces_.end() ? nullptr : &it->second;
}

}  // namespace eclsim::racecheck
