#include "racecheck/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <set>

#include "algos/apsp.hpp"
#include "chaos/oracle.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/input_catalog.hpp"
#include "harness/paper_reference.hpp"
#include "prof/trace.hpp"
#include "simt/engine.hpp"

namespace eclsim::racecheck {

std::string
cellName(const RacecheckCell& cell)
{
    if (cell.apsp)
        return "apsp/" + cell.input;
    return std::string(harness::algoName(cell.algo)) + "/" +
           algos::variantName(cell.variant) + "/" + cell.input;
}

std::vector<RacecheckCell>
racecheckCells(const RunnerConfig& config)
{
    std::vector<RacecheckCell> cells;
    for (harness::Algo algo : config.algos) {
        const auto& inputs = algos::algoNeedsDirected(algo)
                                 ? config.directed_inputs
                                 : config.undirected_inputs;
        for (algos::Variant variant : config.variants)
            for (const std::string& input : inputs) {
                RacecheckCell cell;
                cell.algo = algo;
                cell.variant = variant;
                cell.input = input;
                cells.push_back(cell);
            }
    }
    if (config.include_apsp) {
        // One cell on a directly generated graph: the catalog clamps
        // every input to >= 1024 vertices, far beyond what the O(n^3)
        // kernels can cover under the interleaved detector.
        RacecheckCell cell;
        cell.apsp = true;
        cell.input =
            "uniform-" + std::to_string(config.apsp_vertices);
        cells.push_back(cell);
    }
    return cells;
}

CellResult
runRacecheckCell(const RunnerConfig& config, const RacecheckCell& cell,
                 u64 seed)
{
    CellResult out;
    out.cell = cell;

    graph::CsrGraph apsp_graph;
    if (cell.apsp) {
        // Directly generated (see racecheckCells); the weight seed is
        // fixed so the cell identity does not depend on config.seed.
        apsp_graph = graph::withSyntheticWeights(
            graph::makeRandomUniform(config.apsp_vertices,
                                     4ull * config.apsp_vertices, 0xa9),
            50, 0xa9);
    }
    auto& cache = graph::InputCatalog::shared();
    const bool weighted = cell.algo == harness::Algo::kMst;
    graph::GraphPtr cached;  // pins the cache slot for the cell
    if (!cell.apsp)
        cached = weighted
                     ? cache.getWeighted(cell.input, config.graph_divisor)
                     : cache.get(cell.input, config.graph_divisor);
    const graph::CsrGraph& graph = cell.apsp ? apsp_graph : *cached;

    // The detector needs genuine interleavings of conflicting threads,
    // so every cell runs the interleaved engine — the same protocol as
    // the race-validation tests.
    prof::TraceSession trace;
    simt::EngineOptions options;
    options.mode = simt::ExecMode::kInterleaved;
    options.detect_races = true;
    options.shuffle_blocks = true;
    options.seed = seed;
    options.memory.cache_divisor = config.cache_divisor;
    options.trace = &trace;
    options.site_overrides = config.site_overrides;
    options.perturb = config.perturb;

    simt::DeviceMemory memory;
    simt::Engine engine(simt::findGpu(config.gpu), memory, options);

    chaos::Verdict verdict;
    if (cell.apsp) {
        const auto r = algos::runApsp(engine, graph);
        verdict = chaos::checkApsp(graph, r);
    } else {
        verdict = chaos::runChecked(engine, graph, cell.algo, cell.variant)
                      .verdict;
    }

    // Bounded-error algorithms (see CellResult::output_valid): surface
    // races under the interleaved scheduler above, but judge the error
    // bound on a same-seed fast-path control run — the execution mode
    // the tolerance claim is about.
    if (!cell.apsp &&
        chaos::equivalenceFor(cell.algo) ==
            chaos::Equivalence::kEpsilonL1) {
        simt::EngineOptions fast_options = options;
        fast_options.mode = simt::ExecMode::kFast;
        fast_options.detect_races = false;
        fast_options.trace = nullptr;
        // The tolerance claim is about the unperturbed production mode;
        // site overrides stay (a repaired run's claim is about the
        // repaired production mode) but chaos hooks do not.
        fast_options.perturb = nullptr;
        simt::DeviceMemory fast_memory;
        simt::Engine fast_engine(simt::findGpu(config.gpu), fast_memory,
                                 fast_options);
        out.used_fast_control = true;
        if (!verdict.valid)
            out.interleaved_detail = std::move(verdict.detail);
        verdict = chaos::runChecked(fast_engine, graph, cell.algo,
                                    cell.variant)
                      .verdict;
    }
    out.output_valid = verdict.valid;
    out.detail = std::move(verdict.detail);

    const Detector& detector = *engine.raceDetector();
    out.total_pairs = detector.totalRaces();
    out.checks = trace.counters().valueByName("sim/race/checks");
    out.races = classifyAll(detector);
    // Sort by the rendered description: site ids depend on interning
    // order, which with --jobs > 1 depends on the thread schedule, but
    // the description strings do not.
    std::sort(out.races.begin(), out.races.end(),
              [](const ClassifiedReport& a, const ClassifiedReport& b) {
                  return a.report.describe() < b.report.describe();
              });
    return out;
}

std::vector<CellResult>
runRacecheck(const RunnerConfig& config,
             const RacecheckProgressFn& progress)
{
    const auto cells = racecheckCells(config);
    std::vector<CellResult> out(cells.size());
    const u32 jobs = config.jobs == 0
                         ? core::ThreadPool::defaultConcurrency()
                         : config.jobs;

    if (jobs <= 1 || cells.size() <= 1) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out[i] = runRacecheckCell(config, cells[i],
                                      harness::cellSeed(config.seed, i));
            if (progress)
                progress(out[i]);
        }
        return out;
    }

    // PR-2 sharding contract: per-cell seeds from the stable cell index,
    // results placed by index, so every --jobs value renders identically.
    std::mutex sink_mutex;
    core::ThreadPool pool(
        static_cast<u32>(std::min<size_t>(jobs, cells.size())));
    std::vector<std::future<void>> done;
    done.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        done.push_back(pool.submit([&, i] {
            CellResult result = runRacecheckCell(
                config, cells[i], harness::cellSeed(config.seed, i));
            if (progress) {
                std::lock_guard<std::mutex> lock(sink_mutex);
                progress(result);
            }
            out[i] = std::move(result);
        }));
    }
    for (auto& future : done)
        future.get();
    return out;
}

void
populateSiteRegistry()
{
    // One serial fast-mode execution of every instrumented kernel:
    // ECL_SITE interns lazily when kernel code first runs, so with
    // --jobs > 1 the id assignment depends on the thread schedule. This
    // fixed program order pins it. Memoized — the registry is
    // process-global and append-only, so one pass suffices.
    static std::once_flag once;
    std::call_once(once, [] {
        const graph::CsrGraph undirected =
            graph::makeRandomUniform(64, 256, 0x51);
        const graph::CsrGraph weighted =
            graph::withSyntheticWeights(undirected, 50, 0x51);
        const graph::CsrGraph directed =
            graph::makeDirectedPowerLaw(6, 256, 0.3, 0x51);
        const graph::CsrGraph apsp_graph = graph::withSyntheticWeights(
            graph::makeRandomUniform(24, 96, 0x51), 50, 0x51);

        auto run = [](const graph::CsrGraph& g, harness::Algo algo,
                      algos::Variant variant) {
            simt::EngineOptions options;
            options.mode = simt::ExecMode::kFast;
            options.detect_races = false;
            options.seed = 0x51;
            simt::DeviceMemory memory;
            simt::Engine engine(simt::titanV(), memory, options);
            chaos::runChecked(engine, g, algo, variant,
                              /*check_oracle=*/false);
        };

        for (harness::Algo algo :
             {harness::Algo::kCc, harness::Algo::kGc, harness::Algo::kMis,
              harness::Algo::kMst, harness::Algo::kScc, harness::Algo::kPr,
              harness::Algo::kBfs, harness::Algo::kWcc}) {
            const graph::CsrGraph& g =
                algos::algoNeedsDirected(algo)
                    ? directed
                    : (algo == harness::Algo::kMst ? weighted
                                                   : undirected);
            for (algos::Variant variant :
                 {algos::Variant::kBaseline, algos::Variant::kRaceFree})
                run(g, algo, variant);
        }
        {
            simt::EngineOptions options;
            options.mode = simt::ExecMode::kFast;
            options.detect_races = false;
            options.seed = 0x51;
            simt::DeviceMemory memory;
            simt::Engine engine(simt::titanV(), memory, options);
            algos::runApsp(engine, apsp_graph);
        }
    });
}

namespace {

/** Minimal JSON string quoting (site labels/reasons are plain ASCII). */
std::string
jsonQuote(const std::string& text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

const char*
jsonBool(bool value)
{
    return value ? "true" : "false";
}

}  // namespace

std::string
renderRacecheckJson(const std::vector<CellResult>& results)
{
    auto& sites = SiteRegistry::instance();
    std::string out = "{\"schema\":1,\"cells\":[\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const CellResult& r = results[i];
        out += "{\"cell\":" + jsonQuote(cellName(r.cell));
        out += ",\"output_valid\":";
        out += jsonBool(r.output_valid);
        out += ",\"used_fast_control\":";
        out += jsonBool(r.used_fast_control);
        out += ",\"detail\":" + jsonQuote(r.detail);
        out += ",\"total_pairs\":" + std::to_string(r.total_pairs);
        out += ",\"checks\":" + std::to_string(r.checks);
        out += ",\"races\":[";
        for (size_t j = 0; j < r.races.size(); ++j) {
            const ClassifiedReport& race = r.races[j];
            const RaceReport& rep = race.report;
            if (j)
                out += ',';
            out += "{\"allocation\":" + jsonQuote(rep.allocation);
            out += ",\"kind\":" + jsonQuote(raceKindName(rep.kind));
            out += ",\"site_a\":" + jsonQuote(sites.describe(rep.site_a));
            out += ",\"access_a\":" + jsonQuote(accessSigName(rep.sig_a));
            out += ",\"site_b\":" + jsonQuote(sites.describe(rep.site_b));
            out += ",\"access_b\":" + jsonQuote(accessSigName(rep.sig_b));
            out += ",\"pairs\":" + std::to_string(rep.count);
            out += ",\"class\":" + jsonQuote(raceClassName(race.cls));
            out += ",\"reason\":" + jsonQuote(race.reason);
            out += '}';
        }
        out += "]}";
        out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

GateResult
evaluateGate(const RunnerConfig& config,
             const std::vector<CellResult>& results)
{
    GateResult gate;
    auto fail = [&gate](std::string why) {
        gate.pass = false;
        gate.failures.push_back(std::move(why));
    };

    // Per-cell rules: outputs must validate everywhere; converted codes
    // (and APSP, race free by construction) must be clean.
    for (const CellResult& r : results) {
        const std::string name = cellName(r.cell);
        if (!r.output_valid)
            fail(name + ": invalid output (" + r.detail + ")");
        const bool must_be_clean =
            r.cell.apsp || r.cell.variant == algos::Variant::kRaceFree;
        if (must_be_clean && !r.races.empty()) {
            fail(name + ": " + std::to_string(r.races.size()) +
                 " race site pair(s) on race-free code, e.g. " +
                 r.races.front().report.describe());
        }
    }

    // Per-algorithm baseline rules: the detector must keep reproducing
    // the paper's findings, and every reproduced race must carry a
    // validated benignity argument.
    for (harness::Algo algo : config.algos) {
        u64 pairs = 0;
        bool ran = false;
        std::set<std::string> allocations;
        for (const CellResult& r : results) {
            if (r.cell.apsp || r.cell.algo != algo ||
                r.cell.variant != algos::Variant::kBaseline)
                continue;
            ran = true;
            pairs += r.total_pairs;
            for (const ClassifiedReport& race : r.races) {
                allocations.insert(race.report.allocation);
                // harmful-tolerated races (PR's float accumulation) are
                // accepted only while the cell's bounded-error oracle
                // held; everything else non-benign fails outright.
                if (race.cls == RaceClass::kHarmfulTolerated) {
                    if (!r.output_valid) {
                        fail(cellName(r.cell) +
                             ": harmful-tolerated race " +
                             race.report.describe() +
                             " exceeded its error bound (" + r.detail +
                             ")");
                    }
                } else if (!classIsBenign(race.cls)) {
                    fail(cellName(r.cell) + ": unexplained race " +
                         race.report.describe() + " (" + race.reason +
                         ")");
                }
            }
        }
        if (!ran)
            continue;
        const std::string name = harness::algoName(algo);
        if (pairs == 0) {
            fail(name +
                 " baseline: no races detected; the paper reports racy "
                 "baselines (Section IV) and the detector must keep "
                 "reproducing them");
            continue;
        }
        bool reproduced = false;
        for (const auto& site : harness::paperRaceSitesFor(algo))
            if (allocations.count(site.allocation))
                reproduced = true;
        if (!reproduced) {
            fail(name +
                 " baseline: races found, but none on the arrays the "
                 "paper names (paperRaceSitesFor)");
        }
    }
    return gate;
}

TextTable
makeSiteTable(const std::vector<CellResult>& results)
{
    TextTable table({"Cell", "Allocation", "Kind", "SiteA", "AccessA",
                     "SiteB", "AccessB", "Pairs", "Class", "Reason"});
    auto& sites = SiteRegistry::instance();
    for (const CellResult& r : results) {
        for (const ClassifiedReport& race : r.races) {
            const RaceReport& rep = race.report;
            table.addRow({cellName(r.cell), rep.allocation,
                          raceKindName(rep.kind),
                          sites.describe(rep.site_a),
                          accessSigName(rep.sig_a),
                          sites.describe(rep.site_b),
                          accessSigName(rep.sig_b),
                          std::to_string(rep.count),
                          raceClassName(race.cls), race.reason});
        }
    }
    return table;
}

TextTable
makeAlgoSummary(const std::vector<CellResult>& results)
{
    struct Group
    {
        u64 cells = 0;
        u64 site_pairs = 0;
        u64 pairs = 0;
        u64 checks = 0;
        u64 invalid = 0;
        std::set<std::string> classes;
    };
    // Keyed by (apsp, algo, variant); std::map keeps row order stable.
    std::map<std::tuple<bool, u8, u8>, Group> groups;
    for (const CellResult& r : results) {
        Group& g = groups[{r.cell.apsp, static_cast<u8>(r.cell.algo),
                           static_cast<u8>(r.cell.variant)}];
        ++g.cells;
        g.site_pairs += r.races.size();
        g.pairs += r.total_pairs;
        g.checks += r.checks;
        g.invalid += r.output_valid ? 0 : 1;
        for (const ClassifiedReport& race : r.races)
            g.classes.insert(raceClassName(race.cls));
    }

    TextTable table({"Algo", "Variant", "Cells", "Valid", "RaceSites",
                     "Pairs", "Checks", "Classes", "PaperArrays"});
    for (const auto& [key, g] : groups) {
        const auto& [apsp, algo_raw, variant_raw] = key;
        const auto algo = static_cast<harness::Algo>(algo_raw);
        const auto variant = static_cast<algos::Variant>(variant_raw);
        std::string classes;
        for (const std::string& cls : g.classes) {
            if (!classes.empty())
                classes += ", ";
            classes += cls;
        }
        if (classes.empty())
            classes = "-";
        std::string expected = "-";
        if (!apsp && variant == algos::Variant::kBaseline) {
            expected.clear();
            for (const auto& site : harness::paperRaceSitesFor(algo)) {
                if (!expected.empty())
                    expected += ", ";
                expected += site.allocation;
            }
        }
        table.addRow(
            {apsp ? "apsp" : harness::algoName(algo),
             apsp ? "racefree-by-construction"
                  : algos::variantName(variant),
             std::to_string(g.cells),
             std::to_string(g.cells - g.invalid) + "/" +
                 std::to_string(g.cells),
             std::to_string(g.site_pairs), std::to_string(g.pairs),
             std::to_string(g.checks), classes, expected});
    }
    return table;
}

}  // namespace eclsim::racecheck
