/**
 * @file
 * Sparse vector clocks for the happens-before engine.
 *
 * A VectorClock maps thread ids to logical clocks. The detector's
 * clocks are sparse — a thread synchronizes with the handful of threads
 * it shares barriers or atomic release/acquire chains with, not with
 * the whole launch — so entries live in a sorted vector and lookups are
 * a binary search. join() is the FastTrack ⊔ operation: element-wise
 * max over the union of entries.
 */
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace eclsim::racecheck {

/** Sparse thread-id → clock map (see file comment). */
class VectorClock
{
  public:
    /** Clock of a thread; 0 (bottom) if the thread has no entry. */
    u32
    get(u32 tid) const
    {
        const auto it = find(tid);
        return it != entries_.end() && it->first == tid ? it->second : 0;
    }

    /** Raise a thread's entry to at least the given clock. */
    void
    raise(u32 tid, u32 clock)
    {
        const auto it = find(tid);
        if (it != entries_.end() && it->first == tid)
            it->second = std::max(it->second, clock);
        else
            entries_.insert(it, {tid, clock});
    }

    /** Element-wise max with another clock (FastTrack join). */
    void
    join(const VectorClock& other)
    {
        if (other.entries_.empty())
            return;
        std::vector<std::pair<u32, u32>> merged;
        merged.reserve(entries_.size() + other.entries_.size());
        auto a = entries_.begin();
        auto b = other.entries_.begin();
        while (a != entries_.end() && b != other.entries_.end()) {
            if (a->first < b->first)
                merged.push_back(*a++);
            else if (b->first < a->first)
                merged.push_back(*b++);
            else {
                merged.push_back({a->first, std::max(a->second, b->second)});
                ++a;
                ++b;
            }
        }
        merged.insert(merged.end(), a, entries_.end());
        merged.insert(merged.end(), b, other.entries_.end());
        entries_ = std::move(merged);
    }

    /** True if this clock dominates (tid, clock): the holder has
     *  synchronized with that thread at or after that point. */
    bool
    covers(u32 tid, u32 clock) const
    {
        return get(tid) >= clock;
    }

    void clear() { entries_.clear(); }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

  private:
    std::vector<std::pair<u32, u32>>::iterator
    find(u32 tid)
    {
        return std::lower_bound(
            entries_.begin(), entries_.end(), tid,
            [](const std::pair<u32, u32>& e, u32 key) {
                return e.first < key;
            });
    }
    std::vector<std::pair<u32, u32>>::const_iterator
    find(u32 tid) const
    {
        return std::lower_bound(
            entries_.begin(), entries_.end(), tid,
            [](const std::pair<u32, u32>& e, u32 key) {
                return e.first < key;
            });
    }

    std::vector<std::pair<u32, u32>> entries_;  ///< sorted by thread id
};

}  // namespace eclsim::racecheck
