#include "racecheck/sites.hpp"

#include <algorithm>
#include <tuple>

#include "core/table.hpp"

namespace eclsim::racecheck {

const char*
expectationName(Expectation expect)
{
    switch (expect) {
      case Expectation::kNone:
        return "none";
      case Expectation::kIdempotent:
        return "idempotent";
      case Expectation::kMonotonic:
        return "monotonic";
      case Expectation::kStaleTolerant:
        return "stale-tolerant";
      case Expectation::kTearing:
        return "tearing";
      case Expectation::kBoundedError:
        return "bounded-error";
    }
    return "?";
}

namespace {

/** Basename of a __FILE__ path. */
std::string
baseName(const char* path)
{
    std::string s(path);
    const size_t slash = s.find_last_of("/\\");
    return slash == std::string::npos ? s : s.substr(slash + 1);
}

}  // namespace

SiteRegistry&
SiteRegistry::instance()
{
    static SiteRegistry registry;
    return registry;
}

SiteId
SiteRegistry::intern(const char* file, u32 line, const char* label,
                     Expectation expect)
{
    std::string base = baseName(file);
    std::string key = base;
    key += ':';
    key += std::to_string(line);
    key += ':';
    key += label;

    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end())
        return it->second;
    Site site;
    site.id = static_cast<SiteId>(sites_.size() + 1);
    site.file = std::move(base);
    site.line = line;
    site.label = label;
    site.expect = expect;
    index_.emplace(std::move(key), site.id);
    sites_.push_back(std::move(site));
    return sites_.back().id;
}

Site
SiteRegistry::site(SiteId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == kUnknownSite || id > sites_.size())
        return Site{};
    return sites_[id - 1];
}

Expectation
SiteRegistry::expectation(SiteId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == kUnknownSite || id > sites_.size())
        return Expectation::kNone;
    return sites_[id - 1].expect;
}

std::string
SiteRegistry::describe(SiteId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == kUnknownSite || id > sites_.size())
        return "<unattributed>";
    const Site& site = sites_[id - 1];
    return site.file + ":" + site.label;
}

size_t
SiteRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sites_.size();
}

std::vector<Site>
SiteRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sites_;
}

TextTable
makeSiteListTable(const SiteRegistry& registry)
{
    // Sorted by source position, not id: interning order depends on
    // which kernels have executed, but (file, line, label) is a property
    // of the source alone, so the exported shape is stable across runs
    // that interned the same site set in any order.
    std::vector<Site> sites = registry.snapshot();
    std::sort(sites.begin(), sites.end(),
              [](const Site& a, const Site& b) {
                  return std::tie(a.file, a.line, a.label) <
                         std::tie(b.file, b.line, b.label);
              });
    TextTable table({"Id", "File", "Line", "Label", "Expectation"});
    table.setAlign(0, TextTable::Align::kRight);
    for (const Site& site : sites)
        table.addRow({std::to_string(site.id), site.file,
                      std::to_string(site.line), site.label,
                      expectationName(site.expect)});
    return table;
}

}  // namespace eclsim::racecheck
