#include "racecheck/sites.hpp"

namespace eclsim::racecheck {

const char*
expectationName(Expectation expect)
{
    switch (expect) {
      case Expectation::kNone:
        return "none";
      case Expectation::kIdempotent:
        return "idempotent";
      case Expectation::kMonotonic:
        return "monotonic";
      case Expectation::kStaleTolerant:
        return "stale-tolerant";
      case Expectation::kTearing:
        return "tearing";
      case Expectation::kBoundedError:
        return "bounded-error";
    }
    return "?";
}

namespace {

/** Basename of a __FILE__ path. */
std::string
baseName(const char* path)
{
    std::string s(path);
    const size_t slash = s.find_last_of("/\\");
    return slash == std::string::npos ? s : s.substr(slash + 1);
}

}  // namespace

SiteRegistry&
SiteRegistry::instance()
{
    static SiteRegistry registry;
    return registry;
}

SiteId
SiteRegistry::intern(const char* file, u32 line, const char* label,
                     Expectation expect)
{
    std::string base = baseName(file);
    std::string key = base;
    key += ':';
    key += std::to_string(line);
    key += ':';
    key += label;

    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end())
        return it->second;
    Site site;
    site.id = static_cast<SiteId>(sites_.size() + 1);
    site.file = std::move(base);
    site.line = line;
    site.label = label;
    site.expect = expect;
    index_.emplace(std::move(key), site.id);
    sites_.push_back(std::move(site));
    return sites_.back().id;
}

Site
SiteRegistry::site(SiteId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == kUnknownSite || id > sites_.size())
        return Site{};
    return sites_[id - 1];
}

Expectation
SiteRegistry::expectation(SiteId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == kUnknownSite || id > sites_.size())
        return Expectation::kNone;
    return sites_[id - 1].expect;
}

std::string
SiteRegistry::describe(SiteId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == kUnknownSite || id > sites_.size())
        return "<unattributed>";
    const Site& site = sites_[id - 1];
    return site.file + ":" + site.label;
}

size_t
SiteRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sites_.size();
}

}  // namespace eclsim::racecheck
