/**
 * @file
 * The race-freedom sweep and CI gate.
 *
 * runRacecheck() reproduces the paper's Section IV validation protocol
 * as an executable check: every (algorithm x variant x input) cell runs
 * under the interleaved engine with the happens-before detector
 * attached, the resulting site pairs are classified against the
 * benign-race taxonomy, and evaluateGate() turns the sweep into a
 * pass/fail verdict:
 *
 *  - a racefree variant (or APSP, race free by construction) reporting
 *    any race fails the gate — the converted codes must be clean;
 *  - a baseline algorithm reporting *no* races fails the gate — the
 *    detector must keep reproducing the paper's findings, including at
 *    least one of the arrays the paper names (paperRaceSitesFor);
 *  - a baseline race classified unknown/harmful fails the gate — every
 *    race we ship must have a validated benignity argument.
 *
 * Cells fan out over core::ThreadPool with the PR-2 determinism
 * contract: cell c seeds from cellSeed(base, c) and results render
 * identically for every --jobs value.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "algos/common.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "racecheck/classify.hpp"

namespace eclsim::racecheck {

/** Sweep parameters. */
struct RunnerConfig
{
    /** GPU model to simulate (simt::findGpu name). */
    std::string gpu = "Titan V";
    /** Algorithms with baseline/racefree variant pairs: the paper's
     *  five plus the Graphalytics workloads (PR/BFS/WCC). */
    std::vector<harness::Algo> algos = {
        harness::Algo::kCc,  harness::Algo::kGc,  harness::Algo::kMis,
        harness::Algo::kMst, harness::Algo::kScc, harness::Algo::kPr,
        harness::Algo::kBfs, harness::Algo::kWcc};
    /** Also run APSP (single variant, race free by construction). */
    bool include_apsp = true;
    /** Variants to sweep for the five two-variant algorithms. */
    std::vector<algos::Variant> variants = {algos::Variant::kBaseline,
                                            algos::Variant::kRaceFree};
    /** Inputs for the undirected algorithms (CC/GC/MIS/MST, APSP).
     *  rmat22.sym scales to ~512 vertices at the default divisor —
     *  comparable to the race-validation test graphs, large enough for
     *  the baselines' races to manifest under interleaving. */
    std::vector<std::string> undirected_inputs = {"rmat22.sym"};
    /** Inputs for SCC. */
    std::vector<std::string> directed_inputs = {"wikipedia"};
    /** Interleaved runs are slow; keep inputs small. */
    u32 graph_divisor = 8192;
    /** APSP is O(n^3), far too slow even at the catalog's minimum graph
     *  size (1024 vertices); its single cell runs a directly generated
     *  uniform random graph of this many vertices instead. */
    u32 apsp_vertices = 96;
    u32 cache_divisor = 16;
    /** Base seed; cell c uses cellSeed(seed, c) (PR-2 contract). */
    u64 seed = 12345;
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    u32 jobs = 0;
    /**
     * Per-site access-mode override table (eclsim::repair): installed
     * into every engine the sweep creates, so a detection run can be
     * repeated with proposed plain/volatile -> atomic conversions
     * applied and verified race-silent. Read-only while the sweep runs;
     * must outlive it.
     */
    const simt::SiteOverrideTable* site_overrides = nullptr;
    /**
     * Optional perturbation hooks (eclsim::chaos) installed into the
     * interleaved detection engines — the repair advisor's schedule
     * explorer for ranking sites by exposure. The hooks carry an RNG,
     * so a config with perturb set must run with jobs == 1 (or one
     * cell); the advisor builds one config per exposure cell instead.
     */
    simt::PerturbationHooks* perturb = nullptr;
};

/** Identity of one sweep cell. */
struct RacecheckCell
{
    bool apsp = false;  ///< APSP cell (algo/variant unused)
    harness::Algo algo = harness::Algo::kCc;
    algos::Variant variant = algos::Variant::kBaseline;
    std::string input;
};

/** Printable per-cell subject name ("cc/baseline", "apsp"). */
std::string cellName(const RacecheckCell& cell);

/** Result of one cell. */
struct CellResult
{
    RacecheckCell cell;
    /**
     * Refalgos oracle verdict on the final output. For algorithms whose
     * declared equivalence is an epsilon bound (chaos::equivalenceFor
     * == kEpsilonL1, i.e. PageRank) this is the verdict of a fast-path
     * control run with the same seed: the bounded-error tolerance is a
     * claim about the production execution mode, while the interleaved
     * run exists to *surface* the races — its scheduler is maximally
     * adversarial and loses nearly every conflicting update, which no
     * useful bound admits. The interleaved verdict is preserved in
     * interleaved_detail.
     */
    bool output_valid = true;
    std::string detail;  ///< oracle reason when invalid
    /** True when output_valid came from a fast-path control run. */
    bool used_fast_control = false;
    /** The interleaved run's oracle reason, when it rejected and a
     *  fast-path control run supplied output_valid. */
    std::string interleaved_detail;
    u64 total_pairs = 0;       ///< conflicting access pairs
    u64 checks = 0;            ///< detector accesses examined
    /** Classified race reports, sorted by rendered description so the
     *  result is independent of site-interning order. */
    std::vector<ClassifiedReport> races;
};

/** The cell list a config expands to, in stable order. */
std::vector<RacecheckCell> racecheckCells(const RunnerConfig& config);

/** Run a single cell with an explicit engine seed. */
CellResult runRacecheckCell(const RunnerConfig& config,
                            const RacecheckCell& cell, u64 seed);

/** Progress sink; with jobs > 1 it is called under a lock, in
 *  completion (not cell) order. */
using RacecheckProgressFn = std::function<void(const CellResult&)>;

/** Run every cell; the returned vector is in racecheckCells() order and
 *  renders identically for every config.jobs value. */
std::vector<CellResult> runRacecheck(
    const RunnerConfig& config, const RacecheckProgressFn& progress = {});

/** Gate verdict (see file comment). */
struct GateResult
{
    bool pass = true;
    std::vector<std::string> failures;
};

/** Apply the race-freedom gate to a sweep's results. */
GateResult evaluateGate(const RunnerConfig& config,
                        const std::vector<CellResult>& results);

/**
 * Intern every ECL_SITE the instrumented kernels define by running each
 * algorithm (both variants, plus APSP) once, serially, in fast mode on
 * tiny throwaway graphs. Site ids depend on interning order, which in a
 * parallel sweep depends on the thread schedule; calling this first
 * pins the order — and therefore every id — to one deterministic,
 * jobs-independent assignment. Used by `bench/racecheck --list-sites`
 * and the repair advisor (whose reports carry site ids). Idempotent.
 */
void populateSiteRegistry();

/**
 * Machine-readable export of a sweep (the racecheck counterpart of the
 * CSV site table, with per-cell verdict detail included): deterministic
 * JSON, byte-identical for every --jobs value, one cell object per
 * line. Sites are rendered as "file:label" descriptions, not ids, for
 * the same interning-order reason makeSiteTable does.
 */
std::string renderRacecheckJson(const std::vector<CellResult>& results);

/** Per-cell classified race-site table (the sweep's CSV). */
TextTable makeSiteTable(const std::vector<CellResult>& results);

/** Per-algorithm summary: race sites found, pairs, classes, and the
 *  paper's Section IV expectation for comparison. */
TextTable makeAlgoSummary(const std::vector<CellResult>& results);

}  // namespace eclsim::racecheck
