/**
 * @file
 * Benign-race taxonomy classifier.
 *
 * The paper does not merely count the baselines' races — it argues each
 * one is benign for a specific reason (Section IV): concurrent writers
 * store the same value, updates move monotonically toward the fixpoint,
 * stale reads only delay convergence, or — the one genuinely unsafe
 * category — a 64-bit access can tear on 32-bit-native hardware
 * (Fig. 1). classifyReport() reproduces that triage mechanically:
 *
 *  - each side of a racing site pair is judged from its static access
 *    signature (AccessMode/MemOpKind/RmwOp/width), its dynamically
 *    recorded write value trace, and the Expectation the site declares;
 *  - declarations are validated, not trusted: a site declared
 *    idempotent that wrote two distinct values, or declared monotonic
 *    whose trace moves both directions beyond the lost-update
 *    tolerance, is demoted to kUnknownHarmful;
 *  - undeclared write sites are inferred from evidence alone
 *    (single-valued trace -> idempotent; min/max/and/or RMW or a
 *    strictly one-directional trace -> monotonic; anything else is
 *    unknown/harmful — unexplained races fail the gate);
 *  - the pair class is the more severe of the sides, with R/W pairs
 *    whose write side is benign landing in kStaleReadTolerant (the
 *    reader's tolerance of staleness is exactly the claim being made).
 */
#pragma once

#include <string>
#include <vector>

#include "racecheck/detector.hpp"

namespace eclsim::racecheck {

/** The paper's benign-race categories, plus the failing bucket. */
enum class RaceClass : u8 {
    kIdempotentWrite,    ///< all racing writers store one value
    kMonotonicUpdate,    ///< value moves one way; losers re-converge
    kStaleReadTolerant,  ///< stale reads only delay convergence
    kWordTearing,        ///< non-atomic 64-bit access may tear (Fig. 1)
    /**
     * Declared bounded-error (Expectation::kBoundedError): the race
     * corrupts values — lost updates are real, not benign — but the
     * algorithm tolerates the corruption up to an epsilon bound checked
     * against the sequential oracle. NOT benign: the gate accepts a
     * harmful-tolerated race only when the owning cell's output check
     * passed.
     */
    kHarmfulTolerated,
    kUnknownHarmful,     ///< unexplained or invalidated — fails the gate
};

/** Printable class name. */
const char* raceClassName(RaceClass cls);

/** True for every class except kUnknownHarmful. A word-tearing hazard
 *  is "benign" only in the paper's conditional sense: correct on the
 *  evaluated 64-bit-native GPUs, broken on a 32-bit target — it is
 *  reported, expected, and does not fail the baseline gate. */
bool classIsBenign(RaceClass cls);

/** One classified race report. */
struct ClassifiedReport
{
    RaceReport report;
    RaceClass cls = RaceClass::kUnknownHarmful;
    std::string reason;  ///< one-phrase justification / demotion cause
};

/** Classify one report against the detector's value traces. */
ClassifiedReport classifyReport(const RaceReport& report,
                                const Detector& detector);

/** Classify every report of a detector, in reports() order. */
std::vector<ClassifiedReport> classifyAll(const Detector& detector);

}  // namespace eclsim::racecheck
