#include "harness/experiment.hpp"

#include <algorithm>

#include "algos/cc.hpp"
#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "algos/mst.hpp"
#include "algos/scc.hpp"
#include "core/logging.hpp"
#include "core/stats.hpp"
#include "graph/properties.hpp"
#include "prof/trace.hpp"
#include "refalgos/refalgos.hpp"

namespace eclsim::harness {

const char*
algoName(Algo algo)
{
    switch (algo) {
      case Algo::kCc:
        return "CC";
      case Algo::kGc:
        return "GC";
      case Algo::kMis:
        return "MIS";
      case Algo::kMst:
        return "MST";
      case Algo::kScc:
        return "SCC";
    }
    return "?";
}

const std::vector<Algo>&
undirectedAlgos()
{
    static const std::vector<Algo> algos = {Algo::kCc, Algo::kGc,
                                            Algo::kMis, Algo::kMst};
    return algos;
}

namespace {

simt::EngineOptions
engineOptions(const ExperimentConfig& config, u64 seed)
{
    simt::EngineOptions options;
    options.mode = simt::ExecMode::kFast;
    options.detect_races = false;
    options.shuffle_blocks = true;
    options.seed = seed;
    options.memory.cache_divisor = config.cache_divisor;
    options.trace = config.trace;
    return options;
}

void
verifyResult(const CsrGraph& graph, Algo algo, const void* result)
{
    using namespace refalgos;
    switch (algo) {
      case Algo::kCc: {
        const auto& r = *static_cast<const algos::CcResult*>(result);
        ECLSIM_ASSERT(samePartition(r.labels, connectedComponents(graph)),
                      "CC labels disagree with the BFS oracle");
        break;
      }
      case Algo::kGc: {
        const auto& r = *static_cast<const algos::GcResult*>(result);
        ECLSIM_ASSERT(isValidColoring(graph, r.colors),
                      "GC produced an invalid coloring");
        break;
      }
      case Algo::kMis: {
        const auto& r = *static_cast<const algos::MisResult*>(result);
        ECLSIM_ASSERT(isMaximalIndependentSet(graph, r.in_set),
                      "MIS produced a non-maximal or dependent set");
        break;
      }
      case Algo::kMst: {
        const auto& r = *static_cast<const algos::MstResult*>(result);
        ECLSIM_ASSERT(r.total_weight ==
                          minimumSpanningForestWeight(graph),
                      "MST weight disagrees with Kruskal");
        break;
      }
      case Algo::kScc: {
        const auto& r = *static_cast<const algos::SccResult*>(result);
        ECLSIM_ASSERT(samePartition(r.labels,
                                    stronglyConnectedComponents(graph)),
                      "SCC labels disagree with Tarjan");
        break;
      }
    }
}

}  // namespace

double
runOnce(const GpuSpec& gpu, const CsrGraph& graph, Algo algo,
        Variant variant, const ExperimentConfig& config, u64 seed,
        algos::RunStats* stats_out)
{
    simt::DeviceMemory memory;
    simt::Engine engine(gpu, memory, engineOptions(config, seed));

    algos::RunStats stats;
    switch (algo) {
      case Algo::kCc: {
        auto r = algos::runCc(engine, graph, variant);
        if (config.verify)
            verifyResult(graph, algo, &r);
        stats = r.stats;
        break;
      }
      case Algo::kGc: {
        auto r = algos::runGc(engine, graph, variant);
        if (config.verify)
            verifyResult(graph, algo, &r);
        stats = r.stats;
        break;
      }
      case Algo::kMis: {
        auto r = algos::runMis(engine, graph, variant);
        if (config.verify)
            verifyResult(graph, algo, &r);
        stats = r.stats;
        break;
      }
      case Algo::kMst: {
        auto r = algos::runMst(engine, graph, variant);
        if (config.verify)
            verifyResult(graph, algo, &r);
        stats = r.stats;
        break;
      }
      case Algo::kScc: {
        auto r = algos::runScc(engine, graph, variant);
        if (config.verify)
            verifyResult(graph, algo, &r);
        stats = r.stats;
        break;
      }
    }
    if (stats_out)
        *stats_out = stats;
    return stats.ms;
}

Measurement
measure(const GpuSpec& gpu, const CsrGraph& graph,
        const std::string& input_name, Algo algo,
        const ExperimentConfig& config)
{
    Measurement m;
    m.input = input_name;
    m.algo = algo;
    m.gpu = gpu.name;

    const auto props = graph::computeProperties(graph);
    m.edges = static_cast<double>(props.num_arcs);
    m.vertices = static_cast<double>(props.num_vertices);
    m.avg_degree = props.avg_degree;

    // One span per (gpu, input, algo, variant) run on the harness track,
    // stacked along the session's shared simulated-cycle timeline.
    const auto tracedRun = [&](Variant variant, u32 rep,
                               algos::RunStats* stats) {
        prof::TraceSession* trace = config.trace;
        u64 t0 = 0;
        prof::TrackId track = 0;
        if (trace) {
            track = trace->track("harness");
            t0 = trace->cursor();
            trace->beginSpan(track,
                            std::string(algoName(algo)) + "/" +
                                input_name + "/" +
                                algos::variantName(variant),
                            t0,
                            {{"gpu", gpu.name},
                             {"rep", std::to_string(rep)}});
        }
        const double ms = runOnce(gpu, graph, algo, variant, config,
                                  config.seed + rep, stats);
        if (trace)
            trace->endSpan(track, std::max(trace->cursor(), t0));
        return ms;
    };

    std::vector<double> base_ms, free_ms;
    for (u32 rep = 0; rep < config.reps; ++rep) {
        algos::RunStats stats;
        base_ms.push_back(tracedRun(Variant::kBaseline, rep, &stats));
        m.baseline_iterations = stats.iterations;
        free_ms.push_back(tracedRun(Variant::kRaceFree, rep, &stats));
        m.racefree_iterations = stats.iterations;
    }
    m.baseline_ms = stats::median(base_ms);
    m.racefree_ms = stats::median(free_ms);
    return m;
}

std::vector<Measurement>
runUndirectedSuite(const GpuSpec& gpu, const ExperimentConfig& config,
                   const ProgressFn& progress)
{
    std::vector<Measurement> out;
    for (const auto& entry : graph::undirectedCatalog()) {
        const CsrGraph unweighted = entry.make(config.graph_divisor);
        const CsrGraph weighted =
            graph::withSyntheticWeights(unweighted, 1000, 0xec1);
        for (Algo algo : undirectedAlgos()) {
            const CsrGraph& g =
                algo == Algo::kMst ? weighted : unweighted;
            Measurement m = measure(gpu, g, entry.name, algo, config);
            if (progress)
                progress(m);
            out.push_back(std::move(m));
        }
    }
    return out;
}

std::vector<Measurement>
runSccSuite(const GpuSpec& gpu, const ExperimentConfig& config,
            const ProgressFn& progress)
{
    std::vector<Measurement> out;
    for (const auto& entry : graph::directedCatalog()) {
        const CsrGraph g = entry.make(config.graph_divisor);
        Measurement m = measure(gpu, g, entry.name, Algo::kScc, config);
        if (progress)
            progress(m);
        out.push_back(std::move(m));
    }
    return out;
}

// --- tables ---------------------------------------------------------------

TextTable
makeGpuTable()
{
    TextTable table({"GPU Name", "Architecture", "Cores", "SMs", "L1 Size",
                     "L2 Size", "Memory", "Mem. Bandwidth", "NVCC",
                     "NVCC Flags"});
    for (const auto& gpu : simt::evaluationGpus()) {
        table.addRow({gpu.name, gpu.architecture, fmtGrouped(gpu.cores),
                      std::to_string(gpu.num_sms),
                      std::to_string(gpu.l1_bytes / 1024) + " kB",
                      fmtFixed(static_cast<double>(gpu.l2_bytes) /
                                   (1024.0 * 1024.0),
                               1) +
                          " MB",
                      std::to_string(gpu.memory_bytes >> 30) + " GB",
                      fmtFixed(gpu.mem_bandwidth_gbps, 0) + " GB/s",
                      gpu.nvcc_version, gpu.nvcc_flags});
    }
    return table;
}

TextTable
makeInputTable(bool directed, bool actual, u32 divisor)
{
    const auto& catalog =
        directed ? graph::directedCatalog() : graph::undirectedCatalog();
    if (!actual) {
        TextTable table(
            {"Graph Name", "Edges", "Vertices", "Type", "d-avg", "d-max"});
        for (const auto& e : catalog)
            table.addRow({e.name, fmtGrouped(e.paper_edges),
                          fmtGrouped(e.paper_vertices), e.type,
                          fmtFixed(e.paper_davg, directed ? 2 : 1),
                          fmtGrouped(e.paper_dmax)});
        return table;
    }
    TextTable table({"Graph Name", "Edges", "Vertices", "Type", "d-avg",
                     "d-max", "(scaled stand-in)"});
    for (const auto& e : catalog) {
        const auto props = graph::computeProperties(e.make(divisor));
        table.addRow({e.name, fmtGrouped(props.num_arcs),
                      fmtGrouped(props.num_vertices), e.type,
                      fmtFixed(props.avg_degree, 2),
                      fmtGrouped(props.max_degree),
                      "1/" + std::to_string(divisor)});
    }
    return table;
}

namespace {

std::vector<double>
speedupsOf(const std::vector<Measurement>& measurements, Algo algo,
           const std::string& gpu)
{
    std::vector<double> out;
    for (const auto& m : measurements)
        if (m.algo == algo && (gpu.empty() || m.gpu == gpu))
            out.push_back(m.speedup());
    return out;
}

const Measurement*
findMeasurement(const std::vector<Measurement>& measurements,
                const std::string& input, Algo algo)
{
    for (const auto& m : measurements)
        if (m.input == input && m.algo == algo)
            return &m;
    return nullptr;
}

}  // namespace

TextTable
makeSpeedupTable(const std::vector<Measurement>& measurements)
{
    TextTable table({"Input", "CC", "GC", "MIS", "MST"});
    std::vector<std::string> inputs;
    for (const auto& m : measurements)
        if (std::find(inputs.begin(), inputs.end(), m.input) == inputs.end())
            inputs.push_back(m.input);

    for (const auto& input : inputs) {
        std::vector<std::string> row = {input};
        for (Algo algo : undirectedAlgos()) {
            const Measurement* m = findMeasurement(measurements, input, algo);
            row.push_back(m ? fmtFixed(m->speedup(), 2) : "-");
        }
        table.addRow(std::move(row));
    }

    table.addSeparator();
    const char* kSummary[3] = {"Min Speedup", "Geomean Speedup",
                               "Max Speedup"};
    for (int s = 0; s < 3; ++s) {
        std::vector<std::string> row = {kSummary[s]};
        for (Algo algo : undirectedAlgos()) {
            const auto v = speedupsOf(measurements, algo, "");
            double value = 0.0;
            if (!v.empty())
                value = s == 0 ? stats::minimum(v)
                               : (s == 1 ? stats::geomean(v)
                                         : stats::maximum(v));
            row.push_back(fmtFixed(value, 2));
        }
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
makeSccTable(const std::vector<Measurement>& measurements)
{
    std::vector<std::string> gpus;
    for (const auto& m : measurements)
        if (std::find(gpus.begin(), gpus.end(), m.gpu) == gpus.end())
            gpus.push_back(m.gpu);

    std::vector<std::string> header = {"Input"};
    header.insert(header.end(), gpus.begin(), gpus.end());
    TextTable table(std::move(header));

    std::vector<std::string> inputs;
    for (const auto& m : measurements)
        if (std::find(inputs.begin(), inputs.end(), m.input) == inputs.end())
            inputs.push_back(m.input);

    for (const auto& input : inputs) {
        std::vector<std::string> row = {input};
        for (const auto& gpu : gpus) {
            double value = 0.0;
            for (const auto& m : measurements)
                if (m.input == input && m.gpu == gpu)
                    value = m.speedup();
            row.push_back(fmtFixed(value, 2));
        }
        table.addRow(std::move(row));
    }

    table.addSeparator();
    const char* kSummary[3] = {"Min Speedup", "Geomean Speedup",
                               "Max Speedup"};
    for (int s = 0; s < 3; ++s) {
        std::vector<std::string> row = {kSummary[s]};
        for (const auto& gpu : gpus) {
            const auto v = speedupsOf(measurements, Algo::kScc, gpu);
            double value = 0.0;
            if (!v.empty())
                value = s == 0 ? stats::minimum(v)
                               : (s == 1 ? stats::geomean(v)
                                         : stats::maximum(v));
            row.push_back(fmtFixed(value, 2));
        }
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
makeCorrelationTable(const std::vector<Measurement>& all)
{
    std::vector<std::string> gpus;
    for (const auto& m : all)
        if (std::find(gpus.begin(), gpus.end(), m.gpu) == gpus.end())
            gpus.push_back(m.gpu);

    const std::vector<Algo> algos = {Algo::kCc, Algo::kGc, Algo::kMis,
                                     Algo::kMst, Algo::kScc};
    TextTable table({"Correlated with", "CC", "GC", "MIS", "MST", "SCC"});

    struct Property
    {
        const char* name;
        double Measurement::* field;
    };
    const Property properties[] = {
        {"Edge Count", &Measurement::edges},
        {"Vertex Count", &Measurement::vertices},
        {"Average Degree", &Measurement::avg_degree},
    };

    for (const auto& gpu : gpus) {
        table.addSeparator();
        table.addRow({"[" + gpu + "]", "", "", "", "", ""});
        for (const auto& prop : properties) {
            std::vector<std::string> row = {prop.name};
            for (Algo algo : algos) {
                std::vector<double> xs, ys;
                for (const auto& m : all) {
                    if (m.algo != algo || m.gpu != gpu)
                        continue;
                    xs.push_back(m.*(prop.field));
                    ys.push_back(m.speedup());
                }
                row.push_back(xs.size() >= 2
                                  ? fmtFixed(stats::pearson(xs, ys), 2)
                                  : "-");
            }
            table.addRow(std::move(row));
        }
    }
    return table;
}

double
geomeanSpeedup(const std::vector<Measurement>& measurements, Algo algo,
               const std::string& gpu)
{
    const auto v = speedupsOf(measurements, algo, gpu);
    ECLSIM_ASSERT(!v.empty(), "no measurements for {} on {}",
                  algoName(algo), gpu);
    return stats::geomean(v);
}

TextTable
makeGeomeanTable(const std::vector<Measurement>& all)
{
    std::vector<std::string> gpus;
    for (const auto& m : all)
        if (std::find(gpus.begin(), gpus.end(), m.gpu) == gpus.end())
            gpus.push_back(m.gpu);

    std::vector<std::string> header = {"Algorithm"};
    header.insert(header.end(), gpus.begin(), gpus.end());
    TextTable table(std::move(header));

    const std::vector<Algo> algos = {Algo::kCc, Algo::kGc, Algo::kMis,
                                     Algo::kMst, Algo::kScc};
    for (Algo algo : algos) {
        std::vector<std::string> row = {algoName(algo)};
        bool any = false;
        for (const auto& gpu : gpus) {
            const auto v = speedupsOf(all, algo, gpu);
            if (v.empty()) {
                row.push_back("-");
            } else {
                row.push_back(fmtFixed(stats::geomean(v), 2));
                any = true;
            }
        }
        if (any)
            table.addRow(std::move(row));
    }
    return table;
}

}  // namespace eclsim::harness
