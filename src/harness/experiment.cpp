#include "harness/experiment.hpp"

#include <algorithm>
#include <future>
#include <mutex>

#include "chaos/oracle.hpp"
#include "core/logging.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "graph/input_catalog.hpp"
#include "graph/properties.hpp"
#include "prof/trace.hpp"
#include "simt/engine.hpp"

namespace eclsim::harness {

const std::vector<Algo>&
undirectedAlgos()
{
    static const std::vector<Algo> algos = {Algo::kCc, Algo::kGc,
                                            Algo::kMis, Algo::kMst};
    return algos;
}

const std::vector<Algo>&
graphalyticsAlgos()
{
    static const std::vector<Algo> algos = {Algo::kPr, Algo::kBfs,
                                            Algo::kWcc};
    return algos;
}

namespace {

simt::EngineOptions
engineOptions(const ExperimentConfig& config, u64 seed)
{
    simt::EngineOptions options;
    options.mode = config.exec_mode;
    options.detect_races = false;
    options.shuffle_blocks = true;
    options.seed = seed;
    options.memory.cache_divisor = config.cache_divisor;
    options.trace = config.trace;
    options.perturb = config.perturb;
    options.force_slow_path = config.force_slow_path;
    options.site_overrides = config.site_overrides;
    return options;
}

}  // namespace

double
runOnce(const GpuSpec& gpu, const CsrGraph& graph, Algo algo,
        Variant variant, const ExperimentConfig& config, u64 seed,
        algos::RunStats* stats_out)
{
    simt::DeviceMemory memory;
    simt::Engine engine(gpu, memory, engineOptions(config, seed));

    // The shared run-and-compare switch; --verify keeps its historical
    // panic-on-wrong-result behavior by asserting on the verdict.
    const chaos::RunOutcome run =
        chaos::runChecked(engine, graph, algo, variant, config.verify);
    ECLSIM_ASSERT(run.verdict.valid, "{} oracle rejected the result: {}",
                  algoName(algo), run.verdict.detail);
    if (stats_out)
        *stats_out = run.stats;
    return run.stats.ms;
}

Measurement
measure(const GpuSpec& gpu, const CsrGraph& graph,
        const std::string& input_name, Algo algo,
        const ExperimentConfig& config)
{
    return measureSeeded(gpu, graph, input_name, algo, config, config.seed);
}

Measurement
measureSeeded(const GpuSpec& gpu, const CsrGraph& graph,
              const std::string& input_name, Algo algo,
              const ExperimentConfig& original_config, u64 seed_base)
{
    // A perturbation factory builds one private hooks object per cell,
    // seeded by the cell's seed base: deterministic for every jobs
    // value, and never shared between pool workers.
    ExperimentConfig config = original_config;
    std::unique_ptr<simt::PerturbationHooks> cell_hooks;
    if (config.perturb_factory) {
        cell_hooks = config.perturb_factory(seed_base);
        config.perturb = cell_hooks.get();
    }

    Measurement m;
    m.input = input_name;
    m.algo = algo;
    m.gpu = gpu.name;

    const auto props = graph::computeProperties(graph);
    m.edges = static_cast<double>(props.num_arcs);
    m.vertices = static_cast<double>(props.num_vertices);
    m.avg_degree = props.avg_degree;

    // One span per (gpu, input, algo, variant) run on the harness track,
    // stacked along the session's shared simulated-cycle timeline.
    const auto tracedRun = [&](Variant variant, u32 rep,
                               algos::RunStats* stats) {
        prof::TraceSession* trace = config.trace;
        u64 t0 = 0;
        prof::TrackId track = 0;
        if (trace) {
            track = trace->track("harness");
            t0 = trace->cursor();
            trace->beginSpan(track,
                            std::string(algoName(algo)) + "/" +
                                input_name + "/" +
                                algos::variantName(variant),
                            t0,
                            {{"gpu", gpu.name},
                             {"rep", std::to_string(rep)}});
        }
        const double ms = runOnce(gpu, graph, algo, variant, config,
                                  seed_base + rep, stats);
        if (trace)
            trace->endSpan(track, std::max(trace->cursor(), t0));
        return ms;
    };

    std::vector<double> base_ms, free_ms;
    for (u32 rep = 0; rep < config.reps; ++rep) {
        algos::RunStats stats;
        base_ms.push_back(tracedRun(Variant::kBaseline, rep, &stats));
        m.baseline_iterations = stats.iterations;
        free_ms.push_back(tracedRun(Variant::kRaceFree, rep, &stats));
        m.racefree_iterations = stats.iterations;
    }
    m.baseline_ms = stats::median(base_ms);
    m.racefree_ms = stats::median(free_ms);
    return m;
}

namespace {

/** One independent (input, algo) unit of a suite sweep. */
struct Cell
{
    const graph::CatalogEntry* entry = nullptr;
    Algo algo = Algo::kCc;
};

/** The cell's input graph, built at most once per divisor by the
 *  shared cache (MST measures the synthetically weighted variant). The
 *  returned shared_ptr pins the graph across any concurrent eviction. */
graph::GraphPtr
cellGraph(const Cell& cell, u32 divisor)
{
    auto& cache = graph::InputCatalog::shared();
    return cell.algo == Algo::kMst
               ? cache.getWeighted(cell.entry->name, divisor)
               : cache.get(cell.entry->name, divisor);
}

/**
 * Run every cell and return the measurements in cell order.
 *
 * jobs == 1 is the serial path: cells in order on the caller's thread,
 * writing straight into config.trace. jobs > 1 shards cells across a
 * ThreadPool; each cell derives its seeds from its index (not from the
 * worker or the schedule) so the result vector is bit-identical to the
 * serial one, and records into a private TraceSession that is merged
 * into the shared one — under a mutex, tagged "w<worker>/" — as the
 * cell completes. Futures are awaited in cell order, so an exception
 * thrown by any cell (e.g. a failed --verify oracle) surfaces
 * deterministically.
 */
std::vector<Measurement>
runCells(const GpuSpec& gpu, const std::vector<Cell>& cells,
         const ExperimentConfig& config, const ProgressFn& progress)
{
    const u32 jobs = config.jobs == 0
                         ? core::ThreadPool::defaultConcurrency()
                         : config.jobs;
    std::vector<Measurement> out(cells.size());

    if (jobs <= 1 || cells.size() <= 1) {
        for (size_t i = 0; i < cells.size(); ++i) {
            const auto cell_graph =
                cellGraph(cells[i], config.graph_divisor);
            out[i] = measureSeeded(gpu, *cell_graph,
                                   cells[i].entry->name, cells[i].algo,
                                   config, cellSeed(config.seed, i));
            if (progress)
                progress(out[i]);
        }
        return out;
    }

    prof::TraceSession* shared_trace = config.trace;
    std::mutex sink_mutex;  // serializes trace merges and progress
    core::ThreadPool pool(
        static_cast<u32>(std::min<size_t>(jobs, cells.size())));
    std::vector<std::future<void>> done;
    done.reserve(cells.size());

    for (size_t i = 0; i < cells.size(); ++i) {
        done.push_back(pool.submit([&, i] {
            ExperimentConfig local = config;
            prof::TraceSession cell_trace;
            local.trace = shared_trace ? &cell_trace : nullptr;
            const auto cell_graph =
                cellGraph(cells[i], config.graph_divisor);
            Measurement m = measureSeeded(
                gpu, *cell_graph,
                cells[i].entry->name, cells[i].algo, local,
                cellSeed(config.seed, i));
            if (shared_trace || progress) {
                std::lock_guard<std::mutex> lock(sink_mutex);
                if (shared_trace) {
                    const int worker =
                        core::ThreadPool::currentWorkerIndex();
                    std::string prefix = "w";
                    prefix += std::to_string(std::max(worker, 0));
                    prefix += '/';
                    shared_trace->merge(cell_trace, prefix);
                }
                if (progress)
                    progress(m);
            }
            out[i] = std::move(m);
        }));
    }
    for (auto& future : done)
        future.get();
    return out;
}

}  // namespace

std::vector<Measurement>
runUndirectedSuite(const GpuSpec& gpu, const ExperimentConfig& config,
                   const ProgressFn& progress)
{
    std::vector<Cell> cells;
    for (const auto& entry : graph::undirectedCatalog())
        for (Algo algo : undirectedAlgos())
            cells.push_back({&entry, algo});
    return runCells(gpu, cells, config, progress);
}

std::vector<Measurement>
runSccSuite(const GpuSpec& gpu, const ExperimentConfig& config,
            const ProgressFn& progress)
{
    std::vector<Cell> cells;
    for (const auto& entry : graph::directedCatalog())
        cells.push_back({&entry, Algo::kScc});
    return runCells(gpu, cells, config, progress);
}

std::vector<Measurement>
runGraphalyticsSuite(const GpuSpec& gpu, const ExperimentConfig& config,
                     const ProgressFn& progress)
{
    std::vector<Cell> cells;
    for (const auto& entry : graph::directedCatalog()) {
        cells.push_back({&entry, Algo::kPr});
        cells.push_back({&entry, Algo::kBfs});
    }
    for (const auto& entry : graph::undirectedCatalog())
        cells.push_back({&entry, Algo::kWcc});
    return runCells(gpu, cells, config, progress);
}

// --- tables ---------------------------------------------------------------

TextTable
makeGpuTable()
{
    TextTable table({"GPU Name", "Architecture", "Cores", "SMs", "L1 Size",
                     "L2 Size", "Memory", "Mem. Bandwidth", "NVCC",
                     "NVCC Flags"});
    for (const auto& gpu : simt::evaluationGpus()) {
        table.addRow({gpu.name, gpu.architecture, fmtGrouped(gpu.cores),
                      std::to_string(gpu.num_sms),
                      std::to_string(gpu.l1_bytes / 1024) + " kB",
                      fmtFixed(static_cast<double>(gpu.l2_bytes) /
                                   (1024.0 * 1024.0),
                               1) +
                          " MB",
                      std::to_string(gpu.memory_bytes >> 30) + " GB",
                      fmtFixed(gpu.mem_bandwidth_gbps, 0) + " GB/s",
                      gpu.nvcc_version, gpu.nvcc_flags});
    }
    return table;
}

TextTable
makeInputTable(bool directed, bool actual, u32 divisor)
{
    const auto& catalog =
        directed ? graph::directedCatalog() : graph::undirectedCatalog();
    if (!actual) {
        TextTable table(
            {"Graph Name", "Edges", "Vertices", "Type", "d-avg", "d-max"});
        for (const auto& e : catalog)
            table.addRow({e.name, fmtGrouped(e.paper_edges),
                          fmtGrouped(e.paper_vertices), e.type,
                          fmtFixed(e.paper_davg, directed ? 2 : 1),
                          fmtGrouped(e.paper_dmax)});
        return table;
    }
    TextTable table({"Graph Name", "Edges", "Vertices", "Type", "d-avg",
                     "d-max", "(scaled stand-in)"});
    for (const auto& e : catalog) {
        const auto props = graph::computeProperties(e.make(divisor));
        table.addRow({e.name, fmtGrouped(props.num_arcs),
                      fmtGrouped(props.num_vertices), e.type,
                      fmtFixed(props.avg_degree, 2),
                      fmtGrouped(props.max_degree),
                      "1/" + std::to_string(divisor)});
    }
    return table;
}

namespace {

std::vector<double>
speedupsOf(const std::vector<Measurement>& measurements, Algo algo,
           const std::string& gpu)
{
    std::vector<double> out;
    for (const auto& m : measurements) {
        if (m.algo != algo || (!gpu.empty() && m.gpu != gpu))
            continue;
        // A zero-time cell has no defined speedup; including its 0.0
        // would poison the geomean (log 0) and the min row. Skip it —
        // the per-input table cell still shows the 0.00 sentinel.
        if (m.racefree_ms <= 0.0) {
            warn("skipping zero-time cell {}/{} on {} in summary stats",
                 algoName(m.algo), m.input, m.gpu);
            continue;
        }
        out.push_back(m.speedup());
    }
    return out;
}

const Measurement*
findMeasurement(const std::vector<Measurement>& measurements,
                const std::string& input, Algo algo)
{
    for (const auto& m : measurements)
        if (m.input == input && m.algo == algo)
            return &m;
    return nullptr;
}

}  // namespace

TextTable
makeSpeedupTable(const std::vector<Measurement>& measurements)
{
    TextTable table({"Input", "CC", "GC", "MIS", "MST"});
    std::vector<std::string> inputs;
    for (const auto& m : measurements)
        if (std::find(inputs.begin(), inputs.end(), m.input) == inputs.end())
            inputs.push_back(m.input);

    for (const auto& input : inputs) {
        std::vector<std::string> row = {input};
        for (Algo algo : undirectedAlgos()) {
            const Measurement* m = findMeasurement(measurements, input, algo);
            row.push_back(m ? fmtFixed(m->speedup(), 2) : "-");
        }
        table.addRow(std::move(row));
    }

    table.addSeparator();
    const char* kSummary[3] = {"Min Speedup", "Geomean Speedup",
                               "Max Speedup"};
    for (int s = 0; s < 3; ++s) {
        std::vector<std::string> row = {kSummary[s]};
        for (Algo algo : undirectedAlgos()) {
            const auto v = speedupsOf(measurements, algo, "");
            double value = 0.0;
            if (!v.empty())
                value = s == 0 ? stats::minimum(v)
                               : (s == 1 ? stats::geomean(v)
                                         : stats::maximum(v));
            row.push_back(fmtFixed(value, 2));
        }
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
makeGraphalyticsTable(const std::vector<Measurement>& measurements)
{
    TextTable table({"Input", "PR", "BFS", "WCC"});
    std::vector<std::string> inputs;
    for (const auto& m : measurements)
        if (std::find(inputs.begin(), inputs.end(), m.input) == inputs.end())
            inputs.push_back(m.input);

    // Directed inputs carry PR/BFS cells, undirected ones WCC, so every
    // row has at least one "-" column.
    for (const auto& input : inputs) {
        std::vector<std::string> row = {input};
        for (Algo algo : graphalyticsAlgos()) {
            const Measurement* m = findMeasurement(measurements, input, algo);
            row.push_back(m ? fmtFixed(m->speedup(), 2) : "-");
        }
        table.addRow(std::move(row));
    }

    table.addSeparator();
    const char* kSummary[3] = {"Min Speedup", "Geomean Speedup",
                               "Max Speedup"};
    for (int s = 0; s < 3; ++s) {
        std::vector<std::string> row = {kSummary[s]};
        for (Algo algo : graphalyticsAlgos()) {
            const auto v = speedupsOf(measurements, algo, "");
            double value = 0.0;
            if (!v.empty())
                value = s == 0 ? stats::minimum(v)
                               : (s == 1 ? stats::geomean(v)
                                         : stats::maximum(v));
            row.push_back(fmtFixed(value, 2));
        }
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
makeSccTable(const std::vector<Measurement>& measurements)
{
    std::vector<std::string> gpus;
    for (const auto& m : measurements)
        if (std::find(gpus.begin(), gpus.end(), m.gpu) == gpus.end())
            gpus.push_back(m.gpu);

    std::vector<std::string> header = {"Input"};
    header.insert(header.end(), gpus.begin(), gpus.end());
    TextTable table(std::move(header));

    std::vector<std::string> inputs;
    for (const auto& m : measurements)
        if (std::find(inputs.begin(), inputs.end(), m.input) == inputs.end())
            inputs.push_back(m.input);

    for (const auto& input : inputs) {
        std::vector<std::string> row = {input};
        for (const auto& gpu : gpus) {
            double value = 0.0;
            for (const auto& m : measurements)
                if (m.input == input && m.gpu == gpu)
                    value = m.speedup();
            row.push_back(fmtFixed(value, 2));
        }
        table.addRow(std::move(row));
    }

    table.addSeparator();
    const char* kSummary[3] = {"Min Speedup", "Geomean Speedup",
                               "Max Speedup"};
    for (int s = 0; s < 3; ++s) {
        std::vector<std::string> row = {kSummary[s]};
        for (const auto& gpu : gpus) {
            const auto v = speedupsOf(measurements, Algo::kScc, gpu);
            double value = 0.0;
            if (!v.empty())
                value = s == 0 ? stats::minimum(v)
                               : (s == 1 ? stats::geomean(v)
                                         : stats::maximum(v));
            row.push_back(fmtFixed(value, 2));
        }
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
makeCorrelationTable(const std::vector<Measurement>& all)
{
    std::vector<std::string> gpus;
    for (const auto& m : all)
        if (std::find(gpus.begin(), gpus.end(), m.gpu) == gpus.end())
            gpus.push_back(m.gpu);

    const std::vector<Algo> algos = {Algo::kCc, Algo::kGc, Algo::kMis,
                                     Algo::kMst, Algo::kScc};
    TextTable table({"Correlated with", "CC", "GC", "MIS", "MST", "SCC"});

    struct Property
    {
        const char* name;
        double Measurement::* field;
    };
    const Property properties[] = {
        {"Edge Count", &Measurement::edges},
        {"Vertex Count", &Measurement::vertices},
        {"Average Degree", &Measurement::avg_degree},
    };

    for (const auto& gpu : gpus) {
        table.addSeparator();
        table.addRow({"[" + gpu + "]", "", "", "", "", ""});
        for (const auto& prop : properties) {
            std::vector<std::string> row = {prop.name};
            for (Algo algo : algos) {
                std::vector<double> xs, ys;
                for (const auto& m : all) {
                    if (m.algo != algo || m.gpu != gpu ||
                        m.racefree_ms <= 0.0)
                        continue;
                    xs.push_back(m.*(prop.field));
                    ys.push_back(m.speedup());
                }
                row.push_back(xs.size() >= 2
                                  ? fmtFixed(stats::pearson(xs, ys), 2)
                                  : "-");
            }
            table.addRow(std::move(row));
        }
    }
    return table;
}

double
geomeanSpeedup(const std::vector<Measurement>& measurements, Algo algo,
               const std::string& gpu)
{
    const auto v = speedupsOf(measurements, algo, gpu);
    ECLSIM_ASSERT(!v.empty(), "no measurements for {} on {}",
                  algoName(algo), gpu);
    return stats::geomean(v);
}

TextTable
makeGeomeanTable(const std::vector<Measurement>& all)
{
    std::vector<std::string> gpus;
    for (const auto& m : all)
        if (std::find(gpus.begin(), gpus.end(), m.gpu) == gpus.end())
            gpus.push_back(m.gpu);

    std::vector<std::string> header = {"Algorithm"};
    header.insert(header.end(), gpus.begin(), gpus.end());
    TextTable table(std::move(header));

    const std::vector<Algo> algos = {Algo::kCc, Algo::kGc, Algo::kMis,
                                     Algo::kMst, Algo::kScc};
    for (Algo algo : algos) {
        std::vector<std::string> row = {algoName(algo)};
        bool any = false;
        for (const auto& gpu : gpus) {
            const auto v = speedupsOf(all, algo, gpu);
            if (v.empty()) {
                row.push_back("-");
            } else {
                row.push_back(fmtFixed(stats::geomean(v), 2));
                any = true;
            }
        }
        if (any)
            table.addRow(std::move(row));
    }
    return table;
}

}  // namespace eclsim::harness
