/**
 * @file
 * The paper's published summary numbers (the Min/Geomean/Max rows of
 * Tables IV-VIII), kept as reference data so the scorecard bench and the
 * shape tests can compare this reproduction against the original
 * measurements. Absolute agreement is not expected — the substrate is a
 * simulator, not the authors' testbed — but the qualitative shape (who
 * wins, roughly by what factor, and the old-vs-new GPU trend) should
 * hold.
 */
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace eclsim::harness {

/** One summary row from the paper's Tables IV-VIII. */
struct PaperSummary
{
    std::string gpu;   ///< Table I GPU name
    Algo algo;
    double min = 0.0;      ///< Min Speedup row
    double geomean = 0.0;  ///< Geomean Speedup row
    double max = 0.0;      ///< Max Speedup row
};

/** All 20 summary rows (4 GPUs x {CC, GC, MIS, MST, SCC}). */
const std::vector<PaperSummary>& paperSummaries();

/** Look up the paper's summary for one (gpu, algo); fatal() if absent. */
const PaperSummary& paperSummary(const std::string& gpu, Algo algo);

/**
 * One racy shared array of a baseline code as the paper reports it
 * (Section IV race validation: Compute Sanitizer / iGuard on the
 * baselines, plus the Fig. 1 word-tearing discussion). Used by the
 * racecheck gate — every baseline must reproduce at least one of its
 * paper-reported race arrays — and by the EXPERIMENTS.md comparison
 * table. APSP is absent by design: the paper found its baseline race
 * free (Section IV-A).
 */
struct PaperRaceSite
{
    Algo algo;
    std::string allocation;  ///< our arena name for the array
    std::string array;       ///< the paper's name for it
    std::string category;    ///< the paper's benignity argument
};

/** Every baseline race array the paper reports. */
const std::vector<PaperRaceSite>& paperRaceSites();

/** The paper's race arrays for one algorithm's baseline. */
std::vector<PaperRaceSite> paperRaceSitesFor(Algo algo);

}  // namespace eclsim::harness
