/**
 * @file
 * Experiment harness: reruns the paper's evaluation.
 *
 * The paper's methodology (Section V): run every baseline and race-free
 * code on every appropriate input nine times, take the median runtime,
 * and report the speedup baseline_ms / racefree_ms per (input, algorithm,
 * GPU), plus min/geomean/max summary rows, a geomean bar chart (Fig. 6),
 * and Pearson correlations between graph properties and speedups
 * (Table IX). This module reproduces that pipeline on the simulator.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algos/common.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "graph/catalog.hpp"
#include "simt/engine.hpp"
#include "simt/gpu_spec.hpp"

namespace eclsim::prof {
class TraceSession;
}

namespace eclsim::simt {
class PerturbationHooks;
class SiteOverrideTable;
}

namespace eclsim::harness {

using algos::Variant;
using graph::CsrGraph;
using simt::GpuSpec;

// The algorithm vocabulary lives in algos/common.hpp (it is shared by
// the chaos campaign and the racecheck runner, which sit below the
// harness); re-export it under the historical harness:: names.
using algos::Algo;
using algos::algoName;
using algos::algoNeedsDirected;

/** The four undirected-input algorithms of Tables IV-VII. */
const std::vector<Algo>& undirectedAlgos();

/** The Graphalytics extension workloads: PR, BFS, WCC. */
const std::vector<Algo>& graphalyticsAlgos();

/** Experiment knobs. */
struct ExperimentConfig
{
    /** Repetitions per configuration; the median is reported. The paper
     *  uses 9; the bench binaries default lower to stay quick and accept
     *  --reps=9 for the full protocol. */
    u32 reps = 3;
    /** Input scale divisor (see graph::kDefaultScaleDivisor). */
    u32 graph_divisor = graph::kDefaultScaleDivisor;
    /** Cache scale divisor (see simt::MemoryOptions::cache_divisor). */
    u32 cache_divisor = 16;
    /** Cross-check every run against the sequential reference oracles. */
    bool verify = false;
    /** Base seed; cell c's rep r runs with seed cellSeed(base, c) + r. */
    u64 seed = 12345;
    /**
     * Worker threads for the suite runners. 1 is the exact serial
     * path (no pool, cells in order); 0 means one worker per hardware
     * thread. Any value produces bit-identical Measurement vectors:
     * every (input, algo) cell derives its engine seeds from the base
     * seed and its stable cell index, independent of which worker runs
     * it or in what order cells complete.
     */
    u32 jobs = 0;
    /**
     * Optional profiling sink (eclsim::prof). When set, every engine
     * the harness creates records into this session, and each
     * (gpu, input, algo, variant) measurement is wrapped in a span on
     * the "harness" track, so a whole table run exports as one
     * Chrome-trace timeline.
     */
    prof::TraceSession* trace = nullptr;
    /**
     * Optional perturbation hooks (eclsim::chaos) installed into every
     * engine the harness creates — lets any standard sweep run under an
     * adversarial schedule/staleness policy. Single-threaded use only
     * (the hooks carry an RNG); parallel sweeps must use
     * perturb_factory instead.
     */
    simt::PerturbationHooks* perturb = nullptr;
    /**
     * Per-cell hooks factory for parallel sweeps: called once per cell
     * with the cell's seed base, the result installed for that cell's
     * engines only. Keeps --jobs determinism (the policy RNG derives
     * from the cell seed, not the schedule) and thread safety (no hooks
     * object is shared between workers). Takes precedence over perturb.
     */
    std::function<std::unique_ptr<simt::PerturbationHooks>(u64)>
        perturb_factory;
    /**
     * Force every engine through the general (slow) memory access path
     * even when no hooks are installed. Results are bit-identical either
     * way; tests and bench/simbench use this to prove and price the
     * fast path (see simt::EngineOptions::force_slow_path).
     */
    bool force_slow_path = false;
    /**
     * Execution mode for every engine the harness creates
     * (--exec-mode=interleaved|fast|batch on the bench binaries).
     * kFast is the historical paper-table path. kWarpBatched runs the
     * same coroutine kernels through the batch-mode engine — they fall
     * back to the fast route per launch (simt::BatchFallback), so every
     * table stays byte-identical while the mode plumbing is exercised
     * end-to-end. kInterleaved is the cycle-accurate scheduler: far
     * slower, and its racy-variant results are schedule-dependent.
     */
    simt::ExecMode exec_mode = simt::ExecMode::kFast;
    /**
     * Per-site access-mode override table (eclsim::repair): installed
     * into every engine the harness creates, so a sweep cell can price a
     * proposed plain/volatile -> atomic conversion without source edits
     * (see simt::EngineOptions::site_overrides). The table must outlive
     * the run and is read-only while it runs — safe to share across
     * parallel cells.
     */
    const simt::SiteOverrideTable* site_overrides = nullptr;
};

/** One (input, algorithm, GPU) comparison. */
struct Measurement
{
    std::string input;
    Algo algo = Algo::kCc;
    std::string gpu;
    double baseline_ms = 0.0;   ///< median over reps
    double racefree_ms = 0.0;   ///< median over reps
    u32 baseline_iterations = 0;
    u32 racefree_iterations = 0;
    // input properties, for the Table IX correlations
    double edges = 0.0;
    double vertices = 0.0;
    double avg_degree = 0.0;

    /**
     * baseline_ms / racefree_ms. A cell with racefree_ms == 0 has no
     * defined speedup and returns 0.0; the summary statistics
     * (min/geomean/max rows, geomeanSpeedup, correlations) skip such
     * cells rather than poisoning the geomean with log(0).
     */
    double
    speedup() const
    {
        return racefree_ms > 0.0 ? baseline_ms / racefree_ms : 0.0;
    }
};

// Deterministic per-cell seeding now lives in core/rng.hpp (the chaos
// campaign and differential harness share it); harness::cellSeed remains
// valid for existing callers.
using eclsim::cellSeed;

/** Run one algorithm variant once on a fresh engine; returns simulated
 *  milliseconds (and validates the result if verify is set). */
double runOnce(const GpuSpec& gpu, const CsrGraph& graph, Algo algo,
               Variant variant, const ExperimentConfig& config, u64 seed,
               algos::RunStats* stats_out = nullptr);

/** Median-of-reps measurement of both variants of one algorithm,
 *  using config.seed directly as the per-rep seed base. */
Measurement measure(const GpuSpec& gpu, const CsrGraph& graph,
                    const std::string& input_name, Algo algo,
                    const ExperimentConfig& config);

/** measure() with an explicit seed base: rep r runs with seed
 *  seed_base + r (the suites pass cellSeed(config.seed, cell)). */
Measurement measureSeeded(const GpuSpec& gpu, const CsrGraph& graph,
                          const std::string& input_name, Algo algo,
                          const ExperimentConfig& config, u64 seed_base);

/** Optional progress sink ("cc on amazon0601: 0.87"). With jobs > 1 it
 *  is called under a lock, in completion (not cell) order. */
using ProgressFn = std::function<void(const Measurement&)>;

/**
 * Tables IV-VII: CC/GC/MIS/MST on the 17 undirected inputs of one GPU.
 *
 * Cells (input x algo) are independent and run on config.jobs workers;
 * the returned vector is always in catalog x algo order and is
 * bit-identical for every jobs value. Input graphs come from the
 * shared graph::InputCatalog cache: generated once per divisor,
 * reused across GPUs, algorithms, variants and repetitions.
 */
std::vector<Measurement> runUndirectedSuite(const GpuSpec& gpu,
                                            const ExperimentConfig& config,
                                            const ProgressFn& progress = {});

/** Table VIII: SCC on the 10 directed inputs of one GPU (same
 *  parallel/deterministic contract as runUndirectedSuite). */
std::vector<Measurement> runSccSuite(const GpuSpec& gpu,
                                     const ExperimentConfig& config,
                                     const ProgressFn& progress = {});

/**
 * The Graphalytics extension sweep: PR and BFS on the 10 directed
 * inputs, WCC on the 17 undirected inputs (same parallel/deterministic
 * contract as runUndirectedSuite). A separate suite — the paper-table
 * suites above stay byte-identical to their committed CSVs.
 */
std::vector<Measurement> runGraphalyticsSuite(
    const GpuSpec& gpu, const ExperimentConfig& config,
    const ProgressFn& progress = {});

// --- table renderers ------------------------------------------------------

/** Table I: GPU specifications and compilation parameters. */
TextTable makeGpuTable();

/** Tables II/III: input graphs. When actual is true the stand-ins'
 *  real (scaled) statistics are shown next to the paper's. */
TextTable makeInputTable(bool directed, bool actual, u32 divisor);

/** Tables IV-VII: per-input speedups of one GPU with Min/Geomean/Max
 *  summary rows, columns CC GC MIS MST. */
TextTable makeSpeedupTable(const std::vector<Measurement>& measurements);

/** Table VIII: SCC speedups, one column per GPU. */
TextTable makeSccTable(const std::vector<Measurement>& measurements);

/** Graphalytics speedups: per-input rows, columns PR BFS WCC ("-"
 *  where an algorithm does not run on that input's direction). */
TextTable makeGraphalyticsTable(
    const std::vector<Measurement>& measurements);

/** Table IX: Pearson correlations between edge count / vertex count /
 *  average degree and the speedups, per GPU per algorithm. */
TextTable makeCorrelationTable(const std::vector<Measurement>& all);

/** Fig. 6: geometric-mean speedup per algorithm per GPU. */
TextTable makeGeomeanTable(const std::vector<Measurement>& all);

/** Geomean speedup of one algorithm within one GPU's measurements. */
double geomeanSpeedup(const std::vector<Measurement>& measurements,
                      Algo algo, const std::string& gpu);

}  // namespace eclsim::harness
