#include "harness/paper_reference.hpp"

#include "core/logging.hpp"

namespace eclsim::harness {

const std::vector<PaperSummary>&
paperSummaries()
{
    // Transcribed from the Min/Geomean/Max rows of Tables IV-VIII.
    static const std::vector<PaperSummary> summaries = {
        // Table IV: Titan V
        {"Titan V", Algo::kCc, 0.47, 0.66, 0.99},
        {"Titan V", Algo::kGc, 0.97, 1.00, 1.02},
        {"Titan V", Algo::kMis, 0.91, 1.11, 2.05},
        {"Titan V", Algo::kMst, 0.92, 0.97, 0.99},
        // Table V: 2070 Super
        {"2070 Super", Algo::kCc, 0.54, 0.88, 2.09},
        {"2070 Super", Algo::kGc, 0.87, 0.98, 1.00},
        {"2070 Super", Algo::kMis, 0.94, 1.05, 1.70},
        {"2070 Super", Algo::kMst, 0.84, 0.95, 1.00},
        // Table VI: A100
        {"A100", Algo::kCc, 0.36, 0.66, 1.43},
        {"A100", Algo::kGc, 0.93, 0.99, 1.00},
        {"A100", Algo::kMis, 0.90, 1.08, 1.81},
        {"A100", Algo::kMst, 0.86, 0.93, 1.02},
        // Table VII: 4090
        {"4090", Algo::kCc, 0.31, 0.45, 0.69},
        {"4090", Algo::kGc, 0.75, 0.96, 1.24},
        {"4090", Algo::kMis, 0.90, 1.07, 1.70},
        {"4090", Algo::kMst, 0.90, 0.96, 1.00},
        // Table VIII: SCC per GPU
        {"Titan V", Algo::kScc, 0.43, 0.74, 1.05},
        {"2070 Super", Algo::kScc, 0.67, 0.81, 0.96},
        {"A100", Algo::kScc, 0.27, 0.50, 0.98},
        {"4090", Algo::kScc, 0.30, 0.55, 1.07},
    };
    return summaries;
}

const PaperSummary&
paperSummary(const std::string& gpu, Algo algo)
{
    for (const auto& summary : paperSummaries())
        if (summary.gpu == gpu && summary.algo == algo)
            return summary;
    fatal("no paper summary for {} on {}", algoName(algo), gpu);
}

const std::vector<PaperRaceSite>&
paperRaceSites()
{
    // Section IV: the arrays Compute Sanitizer / iGuard flag in each
    // baseline, with the paper's argument for why the race is benign on
    // the evaluated (64-bit-native) GPUs.
    static const std::vector<PaperRaceSite> sites = {
        {Algo::kCc, "cc.parent", "nstat[] / parent[]",
         "monotonic pointer jumping; stale parents re-converge"},
        {Algo::kGc, "gc.posscol", "posscol[] lower bounds",
         "monotonically tightened; stale reads delay convergence"},
        {Algo::kGc, "gc.color", "color[]",
         "write-once publication; stale readers retry next sweep"},
        {Algo::kGc, "gc.again", "again flag",
         "idempotent same-value write"},
        {Algo::kMis, "mis.node_stat", "nstat[]",
         "priority order makes conflicting decisions impossible; "
         "stale reads only delay the sweep"},
        {Algo::kMis, "mis.again", "again flag",
         "idempotent same-value write"},
        {Algo::kMst, "mst.parent", "parent[]",
         "monotonic pointer jumping; stale parents re-converge"},
        {Algo::kMst, "mst.best", "minimum-edge words",
         "word-tearing hazard on 32-bit targets (Fig. 1); benign on "
         "the evaluated GPUs"},
        {Algo::kMst, "mst.again", "again flag",
         "idempotent same-value write"},
        {Algo::kScc, "scc.pair", "in/out reachability words",
         "monotonic max propagation; lost updates re-applied"},
        {Algo::kScc, "scc.label", "label[]",
         "write-once publication; stale readers retry"},
        {Algo::kScc, "scc.repeat", "repeat flag",
         "idempotent same-value write"},
        // Graphalytics extension workloads (not in the paper's Section
        // IV; racy baselines in the same styles the paper studies, so
        // the gate holds them to the same reproduce-and-explain bar).
        {Algo::kPr, "pr.pushed", "pushed[] rank accumulators",
         "plain float read-modify-write loses concurrent contributions; "
         "harmful but tolerated while the L1 error bound holds"},
        {Algo::kBfs, "bfs.dist", "dist[] frontier levels",
         "duplicate frontier claims store the same level; monotonic "
         "drop from the unvisited sentinel"},
        {Algo::kBfs, "bfs.again", "again flag",
         "idempotent same-value write"},
        {Algo::kWcc, "wcc.label", "label[] component minima",
         "monotonic min propagation; stale-read regressions re-lowered "
         "before the fixpoint exit"},
        {Algo::kWcc, "wcc.again", "again flag",
         "idempotent same-value write"},
    };
    return sites;
}

std::vector<PaperRaceSite>
paperRaceSitesFor(Algo algo)
{
    std::vector<PaperRaceSite> out;
    for (const PaperRaceSite& site : paperRaceSites())
        if (site.algo == algo)
            out.push_back(site);
    return out;
}

}  // namespace eclsim::harness
