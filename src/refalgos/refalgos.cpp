#include "refalgos/refalgos.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.hpp"

namespace eclsim::refalgos {

std::vector<VertexId>
connectedComponents(const CsrGraph& graph)
{
    const VertexId n = graph.numVertices();
    constexpr VertexId kUnset = ~VertexId{0};
    std::vector<VertexId> labels(n, kUnset);
    std::deque<VertexId> queue;
    for (VertexId root = 0; root < n; ++root) {
        if (labels[root] != kUnset)
            continue;
        labels[root] = root;
        queue.push_back(root);
        while (!queue.empty()) {
            const VertexId v = queue.front();
            queue.pop_front();
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
                const VertexId t = graph.arcTarget(e);
                if (labels[t] == kUnset) {
                    labels[t] = root;
                    queue.push_back(t);
                }
            }
        }
    }
    return labels;
}

size_t
countDistinct(const std::vector<VertexId>& labels)
{
    std::unordered_set<VertexId> seen(labels.begin(), labels.end());
    return seen.size();
}

bool
samePartition(const std::vector<VertexId>& a, const std::vector<VertexId>& b)
{
    if (a.size() != b.size())
        return false;
    std::unordered_map<VertexId, VertexId> a_to_b, b_to_a;
    for (size_t i = 0; i < a.size(); ++i) {
        auto [it_ab, new_ab] = a_to_b.try_emplace(a[i], b[i]);
        if (!new_ab && it_ab->second != b[i])
            return false;
        auto [it_ba, new_ba] = b_to_a.try_emplace(b[i], a[i]);
        if (!new_ba && it_ba->second != a[i])
            return false;
    }
    return true;
}

bool
isValidColoring(const CsrGraph& graph, const std::vector<u32>& colors)
{
    if (colors.size() != graph.numVertices())
        return false;
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
            if (graph.arcTarget(e) != v &&
                colors[graph.arcTarget(e)] == colors[v])
                return false;
    return true;
}

size_t
countColors(const std::vector<u32>& colors)
{
    std::unordered_set<u32> seen(colors.begin(), colors.end());
    return seen.size();
}

size_t
greedyColorCount(const CsrGraph& graph)
{
    const VertexId n = graph.numVertices();
    constexpr u32 kUncolored = ~u32{0};
    std::vector<u32> colors(n, kUncolored);
    std::vector<bool> used;
    size_t max_color = 0;
    for (VertexId v = 0; v < n; ++v) {
        used.assign(graph.degree(v) + 1, false);
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const u32 c = colors[graph.arcTarget(e)];
            if (c != kUncolored && c < used.size())
                used[c] = true;
        }
        u32 c = 0;
        while (used[c])
            ++c;
        colors[v] = c;
        max_color = std::max<size_t>(max_color, c + 1);
    }
    return max_color;
}

bool
isIndependentSet(const CsrGraph& graph, const std::vector<bool>& in_set)
{
    if (in_set.size() != graph.numVertices())
        return false;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (!in_set[v])
            continue;
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const VertexId t = graph.arcTarget(e);
            if (t != v && in_set[t])
                return false;
        }
    }
    return true;
}

bool
isMaximalIndependentSet(const CsrGraph& graph,
                        const std::vector<bool>& in_set)
{
    if (!isIndependentSet(graph, in_set))
        return false;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (in_set[v])
            continue;
        bool has_member_neighbor = false;
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const VertexId t = graph.arcTarget(e);
            if (t != v && in_set[t]) {
                has_member_neighbor = true;
                break;
            }
        }
        if (!has_member_neighbor)
            return false;
    }
    return true;
}

namespace {

/** Union-find with path halving, for Kruskal. */
class DisjointSets
{
  public:
    explicit DisjointSets(VertexId n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    VertexId
    find(VertexId v)
    {
        while (parent_[v] != v) {
            parent_[v] = parent_[parent_[v]];
            v = parent_[v];
        }
        return v;
    }

    bool
    unite(VertexId a, VertexId b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        if (a > b)
            std::swap(a, b);
        parent_[b] = a;
        return true;
    }

  private:
    std::vector<VertexId> parent_;
};

}  // namespace

u64
minimumSpanningForestWeight(const CsrGraph& graph)
{
    ECLSIM_ASSERT(graph.weighted(), "MST requires a weighted graph");
    ECLSIM_ASSERT(!graph.directed(), "MST requires an undirected graph");
    struct WeightedEdge
    {
        i32 weight;
        VertexId src, dst;
    };
    std::vector<WeightedEdge> edges;
    edges.reserve(graph.numArcs() / 2);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
            if (v < graph.arcTarget(e))
                edges.push_back({graph.arcWeight(e), v, graph.arcTarget(e)});
    std::sort(edges.begin(), edges.end(),
              [](const WeightedEdge& a, const WeightedEdge& b) {
                  if (a.weight != b.weight)
                      return a.weight < b.weight;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.dst < b.dst;
              });
    DisjointSets sets(graph.numVertices());
    u64 total = 0;
    for (const auto& e : edges)
        if (sets.unite(e.src, e.dst))
            total += static_cast<u64>(e.weight);
    return total;
}

std::vector<VertexId>
stronglyConnectedComponents(const CsrGraph& graph)
{
    const VertexId n = graph.numVertices();
    constexpr u32 kUnvisited = ~u32{0};
    std::vector<u32> index(n, kUnvisited), lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<VertexId> stack;
    std::vector<VertexId> labels(n, 0);
    u32 next_index = 0;

    // Iterative Tarjan: frame holds (vertex, next arc to explore).
    struct Frame
    {
        VertexId v;
        EdgeId next_arc;
    };
    std::vector<Frame> frames;

    for (VertexId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        frames.push_back({root, graph.rowBegin(root)});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!frames.empty()) {
            Frame& frame = frames.back();
            const VertexId v = frame.v;
            if (frame.next_arc < graph.rowEnd(v)) {
                const VertexId t = graph.arcTarget(frame.next_arc++);
                if (index[t] == kUnvisited) {
                    index[t] = lowlink[t] = next_index++;
                    stack.push_back(t);
                    on_stack[t] = true;
                    frames.push_back({t, graph.rowBegin(t)});
                } else if (on_stack[t]) {
                    lowlink[v] = std::min(lowlink[v], index[t]);
                }
                continue;
            }
            if (lowlink[v] == index[v]) {
                // v is an SCC root: pop the component, label by min ID.
                size_t first = stack.size();
                while (stack[--first] != v) {}
                VertexId min_id = v;
                for (size_t i = first; i < stack.size(); ++i)
                    min_id = std::min(min_id, stack[i]);
                for (size_t i = first; i < stack.size(); ++i) {
                    labels[stack[i]] = min_id;
                    on_stack[stack[i]] = false;
                }
                stack.resize(first);
            }
            frames.pop_back();
            if (!frames.empty()) {
                Frame& parent = frames.back();
                lowlink[parent.v] = std::min(lowlink[parent.v], lowlink[v]);
            }
        }
    }
    return labels;
}

std::vector<i64>
allPairsShortestPaths(const CsrGraph& graph)
{
    ECLSIM_ASSERT(graph.weighted(), "APSP requires a weighted graph");
    const size_t n = graph.numVertices();
    std::vector<i64> dist(n * n, kApspInfinity);
    for (size_t v = 0; v < n; ++v)
        dist[v * n + v] = 0;
    for (VertexId v = 0; v < n; ++v)
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const VertexId t = graph.arcTarget(e);
            dist[static_cast<size_t>(v) * n + t] = std::min<i64>(
                dist[static_cast<size_t>(v) * n + t], graph.arcWeight(e));
        }
    for (size_t k = 0; k < n; ++k)
        for (size_t i = 0; i < n; ++i) {
            const i64 dik = dist[i * n + k];
            if (dik >= kApspInfinity)
                continue;
            for (size_t j = 0; j < n; ++j) {
                const i64 candidate = dik + dist[k * n + j];
                if (candidate < dist[i * n + j])
                    dist[i * n + j] = candidate;
            }
        }
    return dist;
}

std::vector<double>
pageRank(const CsrGraph& graph, u32 iterations, double damping)
{
    const VertexId n = graph.numVertices();
    if (n == 0)
        return {};
    const double base = (1.0 - damping) / static_cast<double>(n);
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> pushed(n, 0.0);
    for (u32 iter = 0; iter < iterations; ++iter) {
        std::fill(pushed.begin(), pushed.end(), 0.0);
        double dangling = 0.0;
        for (VertexId v = 0; v < n; ++v) {
            const EdgeId degree = graph.rowEnd(v) - graph.rowBegin(v);
            if (degree == 0) {
                dangling += rank[v];
                continue;
            }
            const double contribution =
                rank[v] / static_cast<double>(degree);
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
                pushed[graph.arcTarget(e)] += contribution;
        }
        const double dangling_share = dangling / static_cast<double>(n);
        for (VertexId v = 0; v < n; ++v)
            rank[v] = base + damping * (pushed[v] + dangling_share);
    }
    return rank;
}

std::vector<u32>
bfsLevels(const CsrGraph& graph, VertexId source)
{
    const VertexId n = graph.numVertices();
    std::vector<u32> level(n, kBfsUnreached);
    if (source >= n)
        return level;
    level[source] = 0;
    std::deque<VertexId> queue{source};
    while (!queue.empty()) {
        const VertexId v = queue.front();
        queue.pop_front();
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const VertexId t = graph.arcTarget(e);
            if (level[t] == kBfsUnreached) {
                level[t] = level[v] + 1;
                queue.push_back(t);
            }
        }
    }
    return level;
}

}  // namespace eclsim::refalgos
