/**
 * @file
 * Sequential reference ("oracle") implementations used to validate the
 * simulated GPU codes. The paper validates its race-free codes against
 * the baselines; we additionally validate every variant against these
 * textbook algorithms:
 *
 *  - connected components: BFS label propagation
 *  - graph coloring: validity check + greedy color-count bound
 *  - maximal independent set: independence + maximality checks
 *  - minimum spanning tree/forest: Kruskal total weight
 *  - strongly connected components: iterative Tarjan
 *  - all-pairs shortest paths: plain Floyd-Warshall
 *  - PageRank: dense power iteration in double precision
 *  - BFS: queue-based level assignment
 *  (WCC reuses connectedComponents: on the undirected stand-ins, weak
 *  connectivity and connectivity coincide.)
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace eclsim::refalgos {

using graph::CsrGraph;

/**
 * Connected-component labels by BFS: label[v] is the smallest vertex ID in
 * v's component (the same normal form ECL-CC produces after flattening).
 */
std::vector<VertexId> connectedComponents(const CsrGraph& graph);

/** Number of distinct values in a label array. */
size_t countDistinct(const std::vector<VertexId>& labels);

/**
 * True iff the two label arrays induce the same partition of the vertices
 * (labels may differ by renaming).
 */
bool samePartition(const std::vector<VertexId>& a,
                   const std::vector<VertexId>& b);

/** True iff no two adjacent vertices share a color. */
bool isValidColoring(const CsrGraph& graph,
                     const std::vector<u32>& colors);

/** Number of distinct colors used. */
size_t countColors(const std::vector<u32>& colors);

/** Colors used by a sequential greedy first-fit pass (an upper bound used
 *  to sanity-check the simulated GC's color quality). */
size_t greedyColorCount(const CsrGraph& graph);

/** True iff in_set is an independent set: no edge joins two members. */
bool isIndependentSet(const CsrGraph& graph,
                      const std::vector<bool>& in_set);

/** True iff in_set is maximal: every non-member has a member neighbor. */
bool isMaximalIndependentSet(const CsrGraph& graph,
                             const std::vector<bool>& in_set);

/** Total weight of a minimum spanning forest (Kruskal). The graph must be
 *  undirected and weighted. */
u64 minimumSpanningForestWeight(const CsrGraph& graph);

/**
 * Strongly connected components via iterative Tarjan: label[v] is the
 * smallest vertex ID in v's SCC.
 */
std::vector<VertexId> stronglyConnectedComponents(const CsrGraph& graph);

/** Distance value representing "unreachable" in APSP matrices. */
constexpr i64 kApspInfinity = (i64{1} << 60);

/**
 * All-pairs shortest path matrix (row-major n*n) via Floyd-Warshall.
 * Unreachable pairs hold kApspInfinity; the diagonal holds 0.
 */
std::vector<i64> allPairsShortestPaths(const CsrGraph& graph);

/**
 * PageRank by a fixed number of power-iteration sweeps in double
 * precision, the reference the simulated float kernels are compared to
 * under an L1-norm bound. Matches the kernel's scheme exactly: ranks
 * start at 1/n; each sweep pushes rank[v]/outdeg(v) along every arc,
 * pools the rank of dangling (outdeg 0) vertices, and applies
 *   rank[v] = (1-damping)/n + damping*(pushed[v] + dangling/n).
 */
std::vector<double> pageRank(const CsrGraph& graph, u32 iterations,
                             double damping);

/** Level marker in bfsLevels results for unreached vertices. */
constexpr u32 kBfsUnreached = ~u32{0};

/**
 * Breadth-first levels from `source`: level[source] = 0, every other
 * reached vertex holds its hop distance, unreached vertices hold
 * kBfsUnreached.
 */
std::vector<u32> bfsLevels(const CsrGraph& graph, VertexId source);

}  // namespace eclsim::refalgos
