/**
 * @file
 * Binary graph file IO.
 *
 * The ECL codes load graphs from a simple binary CSR container; eclsim
 * uses an equivalent little-endian format so generated inputs can be
 * cached on disk and exchanged between the bench binaries:
 *
 *   8 bytes  magic "ECLSIMG1"
 *   4 bytes  flags (bit 0: directed, bit 1: weighted)
 *   4 bytes  vertex count n
 *   8 bytes  arc count m
 *   (n+1) x 8 bytes row offsets
 *   m x 4 bytes     column indices
 *   [m x 4 bytes    weights, iff weighted]
 */
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace eclsim::graph {

/** Serialize a graph to path; fatal() on IO failure. */
void writeGraph(const CsrGraph& graph, const std::string& path);

/** Load a graph from path; fatal() on IO failure or format error. */
CsrGraph readGraph(const std::string& path);

}  // namespace eclsim::graph
