#include "graph/io.hpp"

#include <cstring>
#include <fstream>

#include "core/logging.hpp"

namespace eclsim::graph {

namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'S', 'I', 'M', 'G', '1'};
constexpr u32 kFlagDirected = 1u << 0;
constexpr u32 kFlagWeighted = 1u << 1;

template <typename T>
void
writeRaw(std::ofstream& out, const T& value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void
writeVec(std::ofstream& out, const std::vector<T>& values)
{
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
T
readRaw(std::ifstream& in, const std::string& path)
{
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in)
        fatal("truncated graph file '{}'", path);
    return value;
}

template <typename T>
std::vector<T>
readVec(std::ifstream& in, size_t count, const std::string& path)
{
    std::vector<T> values(count);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in)
        fatal("truncated graph file '{}'", path);
    return values;
}

}  // namespace

void
writeGraph(const CsrGraph& graph, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '{}' for writing", path);
    out.write(kMagic, sizeof(kMagic));
    u32 flags = 0;
    if (graph.directed())
        flags |= kFlagDirected;
    if (graph.weighted())
        flags |= kFlagWeighted;
    writeRaw(out, flags);
    writeRaw(out, graph.numVertices());
    writeRaw(out, graph.numArcs());
    writeVec(out, graph.rowOffsets());
    writeVec(out, graph.colIndices());
    if (graph.weighted())
        writeVec(out, graph.weights());
    if (!out)
        fatal("failed writing '{}'", path);
}

CsrGraph
readGraph(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '{}' for reading", path);
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'{}' is not an eclsim graph file", path);
    const auto flags = readRaw<u32>(in, path);
    const auto n = readRaw<VertexId>(in, path);
    const auto m = readRaw<EdgeId>(in, path);
    auto offsets = readVec<EdgeId>(in, static_cast<size_t>(n) + 1, path);
    auto targets = readVec<VertexId>(in, m, path);
    std::vector<i32> weights;
    if (flags & kFlagWeighted)
        weights = readVec<i32>(in, m, path);
    return CsrGraph(std::move(offsets), std::move(targets),
                    std::move(weights), (flags & kFlagDirected) != 0);
}

}  // namespace eclsim::graph
