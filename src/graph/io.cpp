#include "graph/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "core/logging.hpp"

namespace eclsim::graph {

namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'S', 'I', 'M', 'G', '1'};
constexpr u32 kFlagDirected = 1u << 0;
constexpr u32 kFlagWeighted = 1u << 1;
constexpr u32 kKnownFlags = kFlagDirected | kFlagWeighted;

template <typename T>
void
writeRaw(std::ofstream& out, const T& value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void
writeVec(std::ofstream& out, const std::vector<T>& values)
{
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
T
readRaw(std::ifstream& in, const std::string& path, const char* field)
{
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in)
        fatal("truncated graph file '{}': while reading {}", path, field);
    return value;
}

template <typename T>
std::vector<T>
readVec(std::ifstream& in, size_t count, const std::string& path,
        const char* field)
{
    std::vector<T> values(count);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in)
        fatal("truncated graph file '{}': while reading {} ({} of {} "
              "entries present)",
              path, field,
              static_cast<size_t>(std::max<std::streamsize>(in.gcount(),
                                                            0)) /
                  sizeof(T),
              count);
    return values;
}

}  // namespace

void
writeGraph(const CsrGraph& graph, const std::string& path)
{
    errno = 0;
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '{}' for writing: {}", path,
              std::strerror(errno));
    out.write(kMagic, sizeof(kMagic));
    u32 flags = 0;
    if (graph.directed())
        flags |= kFlagDirected;
    if (graph.weighted())
        flags |= kFlagWeighted;
    writeRaw(out, flags);
    writeRaw(out, graph.numVertices());
    writeRaw(out, graph.numArcs());
    writeVec(out, graph.rowOffsets());
    writeVec(out, graph.colIndices());
    if (graph.weighted())
        writeVec(out, graph.weights());
    if (!out)
        fatal("failed writing '{}': {}", path, std::strerror(errno));
}

CsrGraph
readGraph(const std::string& path)
{
    errno = 0;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '{}' for reading: {}", path,
              std::strerror(errno));
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'{}' is not an eclsim graph file (bad magic)", path);
    const auto flags = readRaw<u32>(in, path, "flags");
    if (flags & ~kKnownFlags)
        fatal("graph file '{}' has unknown flag bits {} in the flags "
              "field (file from a newer format revision?)",
              path, flags & ~kKnownFlags);
    const auto n = readRaw<VertexId>(in, path, "num_vertices");
    const auto m = readRaw<EdgeId>(in, path, "num_arcs");
    auto offsets =
        readVec<EdgeId>(in, static_cast<size_t>(n) + 1, path,
                        "row_offsets");
    if (offsets.front() != 0)
        fatal("graph file '{}' is corrupt: row_offsets[0] is {}, "
              "expected 0",
              path, offsets.front());
    for (size_t v = 0; v + 1 < offsets.size(); ++v)
        if (offsets[v] > offsets[v + 1])
            fatal("graph file '{}' is corrupt: row_offsets[{}] = {} "
                  "decreases to row_offsets[{}] = {}",
                  path, v, offsets[v], v + 1, offsets[v + 1]);
    if (offsets.back() != m)
        fatal("graph file '{}' is corrupt: row_offsets[{}] = {} "
              "disagrees with num_arcs = {}",
              path, n, offsets.back(), m);
    auto targets = readVec<VertexId>(in, m, path, "col_indices");
    for (size_t e = 0; e < targets.size(); ++e)
        if (targets[e] >= n)
            fatal("graph file '{}' is corrupt: col_indices[{}] = {} is "
                  "out of range for {} vertices",
                  path, e, targets[e], n);
    std::vector<i32> weights;
    if (flags & kFlagWeighted)
        weights = readVec<i32>(in, m, path, "weights");
    return CsrGraph(std::move(offsets), std::move(targets),
                    std::move(weights), (flags & kFlagDirected) != 0);
}

}  // namespace eclsim::graph
