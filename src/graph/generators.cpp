#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace eclsim::graph {

namespace {

VertexId
gridId(u32 x, u32 y, u32 width)
{
    return static_cast<VertexId>(y) * width + x;
}

}  // namespace

CsrGraph
makeGrid2d(u32 width, u32 height)
{
    ECLSIM_ASSERT(width >= 2 && height >= 2, "grid too small");
    std::vector<Edge> edges;
    edges.reserve(static_cast<size_t>(width) * height * 2);
    for (u32 y = 0; y < height; ++y) {
        for (u32 x = 0; x < width; ++x) {
            if (x + 1 < width)
                edges.push_back({gridId(x, y, width),
                                 gridId(x + 1, y, width)});
            if (y + 1 < height)
                edges.push_back({gridId(x, y, width),
                                 gridId(x, y + 1, width)});
        }
    }
    return buildCsr(width * height, std::move(edges), {});
}

CsrGraph
makeTriangulatedGrid(u32 width, u32 height)
{
    ECLSIM_ASSERT(width >= 2 && height >= 2, "grid too small");
    std::vector<Edge> edges;
    edges.reserve(static_cast<size_t>(width) * height * 3);
    for (u32 y = 0; y < height; ++y) {
        for (u32 x = 0; x < width; ++x) {
            if (x + 1 < width)
                edges.push_back({gridId(x, y, width),
                                 gridId(x + 1, y, width)});
            if (y + 1 < height)
                edges.push_back({gridId(x, y, width),
                                 gridId(x, y + 1, width)});
            if (x + 1 < width && y + 1 < height)
                edges.push_back({gridId(x, y, width),
                                 gridId(x + 1, y + 1, width)});
        }
    }
    return buildCsr(width * height, std::move(edges), {});
}

CsrGraph
makeRoadNetwork(u32 width, u32 height, double keep_prob, u64 seed)
{
    ECLSIM_ASSERT(width >= 2 && height >= 2, "grid too small");
    SplitMix64 rng(seed);
    std::vector<Edge> edges;
    const VertexId n = width * height;
    // Sparse lattice: keep each grid edge with keep_prob.
    for (u32 y = 0; y < height; ++y) {
        for (u32 x = 0; x < width; ++x) {
            if (x + 1 < width && rng.nextBool(keep_prob))
                edges.push_back({gridId(x, y, width),
                                 gridId(x + 1, y, width)});
            if (y + 1 < height && rng.nextBool(keep_prob))
                edges.push_back({gridId(x, y, width),
                                 gridId(x, y + 1, width)});
        }
    }
    // Spanning chain through a shuffled-but-local order keeps most of the
    // map in one component, like a real road network's trunk roads.
    for (VertexId v = 1; v < n; ++v) {
        if (rng.nextBool(0.1))
            edges.push_back({v - 1, v});
    }
    return buildCsr(n, std::move(edges), {});
}

CsrGraph
makeRandomUniform(VertexId num_vertices, u64 edge_count, u64 seed)
{
    ECLSIM_ASSERT(num_vertices >= 2, "graph too small");
    SplitMix64 rng(seed);
    std::vector<Edge> edges;
    edges.reserve(edge_count);
    for (u64 i = 0; i < edge_count; ++i) {
        const auto s = static_cast<VertexId>(rng.nextBelow(num_vertices));
        const auto t = static_cast<VertexId>(rng.nextBelow(num_vertices));
        edges.push_back({s, t});
    }
    return buildCsr(num_vertices, std::move(edges), {});
}

CsrGraph
makeRmat(u32 scale, u64 edge_count, const RmatParams& params, u64 seed)
{
    ECLSIM_ASSERT(scale >= 2 && scale < 31, "rmat scale {} out of range",
                  scale);
    const double d = 1.0 - params.a - params.b - params.c;
    ECLSIM_ASSERT(d > 0.0, "rmat probabilities must sum below 1");
    const VertexId n = VertexId{1} << scale;
    SplitMix64 rng(seed);

    std::vector<VertexId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    if (params.permute) {
        for (VertexId i = n - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.nextBelow(i + 1)]);
    }

    std::vector<Edge> edges;
    edges.reserve(edge_count);
    for (u64 i = 0; i < edge_count; ++i) {
        VertexId src = 0, dst = 0;
        for (u32 bit = 0; bit < scale; ++bit) {
            const double r = rng.nextDouble();
            u32 quadrant;
            if (r < params.a)
                quadrant = 0;
            else if (r < params.a + params.b)
                quadrant = 1;
            else if (r < params.a + params.b + params.c)
                quadrant = 2;
            else
                quadrant = 3;
            src = (src << 1) | (quadrant >> 1);
            dst = (dst << 1) | (quadrant & 1);
        }
        edges.push_back({perm[src], perm[dst]});
    }
    BuildOptions options;
    options.directed = params.directed;
    return buildCsr(n, std::move(edges), options);
}

CsrGraph
makePrefAttach(VertexId num_vertices, u32 edges_per_vertex, u64 seed)
{
    ECLSIM_ASSERT(num_vertices > edges_per_vertex,
                  "need more vertices than attachments");
    ECLSIM_ASSERT(edges_per_vertex >= 1, "need at least one attachment");
    SplitMix64 rng(seed);
    std::vector<Edge> edges;
    edges.reserve(static_cast<size_t>(num_vertices) * edges_per_vertex);
    // endpoint pool: sampling uniformly from all prior edge endpoints is
    // equivalent to degree-proportional attachment.
    std::vector<VertexId> pool;
    pool.reserve(2 * static_cast<size_t>(num_vertices) * edges_per_vertex);
    pool.push_back(0);
    for (VertexId v = 1; v < num_vertices; ++v) {
        for (u32 k = 0; k < edges_per_vertex; ++k) {
            const VertexId t = pool[rng.nextBelow(pool.size())];
            edges.push_back({v, t});
            pool.push_back(t);
        }
        pool.push_back(v);
    }
    return buildCsr(num_vertices, std::move(edges), {});
}

CsrGraph
makeClustered(VertexId num_vertices, u32 clique_size,
              double inter_edge_ratio, u64 seed)
{
    ECLSIM_ASSERT(clique_size >= 2, "clique size too small");
    SplitMix64 rng(seed);
    std::vector<Edge> edges;
    for (VertexId base = 0; base < num_vertices; base += clique_size) {
        const VertexId end =
            std::min<VertexId>(base + clique_size, num_vertices);
        for (VertexId a = base; a < end; ++a)
            for (VertexId b = a + 1; b < end; ++b)
                edges.push_back({a, b});
    }
    const auto inter = static_cast<u64>(inter_edge_ratio * num_vertices);
    for (u64 i = 0; i < inter; ++i) {
        const auto s = static_cast<VertexId>(rng.nextBelow(num_vertices));
        const auto t = static_cast<VertexId>(rng.nextBelow(num_vertices));
        edges.push_back({s, t});
    }
    return buildCsr(num_vertices, std::move(edges), {});
}

CsrGraph
makeDirectedMesh(VertexId num_vertices, double extra_prob, bool twist,
                 u64 seed)
{
    ECLSIM_ASSERT(num_vertices >= 8, "mesh too small");
    SplitMix64 rng(seed);
    std::vector<Edge> edges;
    const VertexId stride =
        std::max<VertexId>(2, static_cast<VertexId>(num_vertices / 97));
    for (VertexId v = 0; v < num_vertices; ++v) {
        edges.push_back({v, (v + 1) % num_vertices});
        if (rng.nextBool(extra_prob)) {
            VertexId chord = (v + stride) % num_vertices;
            if (twist && (v & 1))
                chord = (v + num_vertices - stride) % num_vertices;
            edges.push_back({v, chord});
            if (rng.nextBool(extra_prob))
                edges.push_back({v, (v + 2 * stride) % num_vertices});
        }
    }
    BuildOptions options;
    options.directed = true;
    return buildCsr(num_vertices, std::move(edges), options);
}

CsrGraph
makeDirectedStar(VertexId num_vertices, u64 seed)
{
    ECLSIM_ASSERT(num_vertices >= 4, "star too small");
    std::vector<Edge> edges;
    edges.reserve(2 * static_cast<size_t>(num_vertices));
    for (VertexId v = 0; v < num_vertices; ++v) {
        edges.push_back({v, (v + 1) % num_vertices});
        const VertexId chord = static_cast<VertexId>(
            (v + 1 + hash64(seed ^ v) % (num_vertices - 2)) % num_vertices);
        edges.push_back({v, chord == v ? (v + 2) % num_vertices : chord});
    }
    BuildOptions options;
    options.directed = true;
    options.dedup = false;  // keep out-degree exactly 2 like Table III
    options.remove_self_loops = false;
    return buildCsr(num_vertices, std::move(edges), options);
}

CsrGraph
makeDirectedPowerLaw(u32 scale, u64 arc_count, double back_prob, u64 seed)
{
    RmatParams params;
    params.directed = true;
    SplitMix64 rng(seed ^ 0xd1ec7edULL);
    CsrGraph forward = makeRmat(scale, arc_count, params, seed);
    // Mirror a fraction of the arcs so a giant SCC forms.
    std::vector<Edge> edges;
    edges.reserve(forward.numArcs() + static_cast<u64>(
                      back_prob * static_cast<double>(forward.numArcs())));
    for (VertexId v = 0; v < forward.numVertices(); ++v) {
        for (EdgeId e = forward.rowBegin(v); e < forward.rowEnd(v); ++e) {
            const VertexId t = forward.arcTarget(e);
            edges.push_back({v, t});
            if (rng.nextBool(back_prob))
                edges.push_back({t, v});
        }
    }
    BuildOptions options;
    options.directed = true;
    return buildCsr(forward.numVertices(), std::move(edges), options);
}

}  // namespace eclsim::graph
