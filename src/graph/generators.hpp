/**
 * @file
 * Synthetic graph generators.
 *
 * The paper evaluates on 17 undirected (Table II) and 10 directed
 * (Table III) real-world and synthetic graphs. The real inputs are not
 * redistributable here, so the generators below produce scaled stand-ins
 * of each structural family the tables cover: regular grids, triangulated
 * (Delaunay-like) meshes, road networks, toroidal/Klein-bottle object
 * meshes, stars, uniform random graphs, RMAT/Kronecker power-law graphs,
 * preferential-attachment (community / co-purchase / citation) graphs, and
 * clustered co-authorship graphs. Every generator is deterministic in its
 * seed.
 */
#pragma once

#include "graph/csr.hpp"

namespace eclsim::graph {

/** w x h four-connected grid (the "2d-2e20.sym" family). */
CsrGraph makeGrid2d(u32 width, u32 height);

/**
 * w x h grid with one diagonal per cell — a planar triangulation with
 * average degree ~6, standing in for the "delaunay_n24" inputs.
 */
CsrGraph makeTriangulatedGrid(u32 width, u32 height);

/**
 * Road-network stand-in ("europe_osm", "USA-road-d.*"): a sparse grid in
 * which each potential lattice edge is kept with probability keep_prob,
 * plus a random spanning chain so the map stays mostly connected.
 * Average degree lands near 2-3 like real road graphs.
 */
CsrGraph makeRoadNetwork(u32 width, u32 height, double keep_prob, u64 seed);

/**
 * Uniform random multigraph with num_vertices vertices and edge_count
 * undirected edges ("r4-2e23.sym" family).
 */
CsrGraph makeRandomUniform(VertexId num_vertices, u64 edge_count, u64 seed);

/** Parameters of the recursive-matrix generator. */
struct RmatParams
{
    double a = 0.57;  ///< Graph500 Kronecker defaults
    double b = 0.19;
    double c = 0.19;
    bool directed = false;
    /** Skip the degree-0 top of the ID space by shuffling vertex IDs. */
    bool permute = true;
};

/**
 * RMAT / Kronecker power-law generator (the "rmat*", "kron_g500-logn21",
 * and — with directed=true — "flickr"/"wikipedia"/"web-Google" families).
 * Generates edge_count edges over 2^scale vertices.
 */
CsrGraph makeRmat(u32 scale, u64 edge_count, const RmatParams& params,
                  u64 seed);

/**
 * Preferential-attachment graph: each new vertex attaches to edges_per_vertex
 * existing vertices chosen proportionally to degree. Models the co-purchase
 * ("amazon0601"), community ("soc-LiveJournal1"), citation
 * ("citationCiteseer", "cit-Patents"), and internet-topology
 * ("as-skitter", "internet") families.
 */
CsrGraph makePrefAttach(VertexId num_vertices, u32 edges_per_vertex,
                        u64 seed);

/**
 * Clustered collaboration graph ("coPapersDBLP"): vertices grouped into
 * cliques of size clique_size (papers' author lists), plus sparse random
 * inter-clique edges. Produces high average degree with strong locality.
 */
CsrGraph makeClustered(VertexId num_vertices, u32 clique_size,
                       double inter_edge_ratio, u64 seed);

/**
 * Directed object-mesh stand-in for the SCC inputs ("cold-flow",
 * "klein-bottle", "toroid-hex", "toroid-wedge"): a directed cycle through
 * all vertices (so one giant SCC exists) with extra short chords added per
 * vertex with probability extra_prob (possibly twice), yielding the 2.0-3.0
 * average out-degrees of Table III. A twist flag flips chord direction for
 * half the vertices (Klein-bottle-style non-orientability stand-in).
 */
CsrGraph makeDirectedMesh(VertexId num_vertices, double extra_prob,
                          bool twist, u64 seed);

/**
 * Directed "star" stand-in from Table III (avg and max out-degree exactly
 * 2): every vertex points at its successor and at a hashed longer chord,
 * giving one strongly connected component.
 */
CsrGraph makeDirectedStar(VertexId num_vertices, u64 seed);

/**
 * Directed power-law graph via RMAT ("cage14", "circuit5M", "flickr",
 * "web-Google", "wikipedia"). back_prob of the arcs are mirrored so a
 * sizeable (but not total) giant SCC forms.
 */
CsrGraph makeDirectedPowerLaw(u32 scale, u64 arc_count, double back_prob,
                              u64 seed);

}  // namespace eclsim::graph
