/**
 * @file
 * Compressed-sparse-row graph representation.
 *
 * All six studied ECL codes operate on graphs stored in CSR format
 * (paper Section IV-A). CsrGraph stores the row-offset and column-index
 * arrays plus optional integer edge weights (used by MST and APSP).
 * Undirected graphs store each edge in both directions, exactly like the
 * ECL graph inputs.
 */
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace eclsim::graph {

/** A weighted edge used while building graphs. */
struct Edge
{
    VertexId src = 0;
    VertexId dst = 0;
    i32 weight = 1;

    friend bool
    operator==(const Edge& a, const Edge& b)
    {
        return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
    }
};

/** Immutable CSR graph. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Construct from prebuilt arrays.
     *
     * @param row_offsets n+1 monotonically non-decreasing offsets
     * @param col_indices adjacency targets, size row_offsets.back()
     * @param weights edge weights, either empty or same size as col_indices
     * @param directed whether the arcs are one-directional
     */
    CsrGraph(std::vector<EdgeId> row_offsets,
             std::vector<VertexId> col_indices, std::vector<i32> weights,
             bool directed);

    VertexId
    numVertices() const
    {
        return row_offsets_.empty()
                   ? 0
                   : static_cast<VertexId>(row_offsets_.size() - 1);
    }
    /** Number of stored arcs (an undirected edge counts twice). */
    EdgeId numArcs() const { return col_indices_.size(); }
    bool directed() const { return directed_; }
    bool weighted() const { return !weights_.empty(); }

    /** Begin offset of v's adjacency list. */
    EdgeId rowBegin(VertexId v) const { return row_offsets_[v]; }
    /** End offset of v's adjacency list. */
    EdgeId rowEnd(VertexId v) const { return row_offsets_[v + 1]; }
    /** Out-degree of v. */
    u64 degree(VertexId v) const { return rowEnd(v) - rowBegin(v); }
    /** Target of arc e. */
    VertexId arcTarget(EdgeId e) const { return col_indices_[e]; }
    /** Weight of arc e (graph must be weighted). */
    i32 arcWeight(EdgeId e) const { return weights_[e]; }

    const std::vector<EdgeId>& rowOffsets() const { return row_offsets_; }
    const std::vector<VertexId>& colIndices() const { return col_indices_; }
    const std::vector<i32>& weights() const { return weights_; }

    /** Graph with every arc direction flipped (used by SCC's backward
     *  propagation). Weights are carried along. */
    CsrGraph reversed() const;

    /** Structural equality (same arrays, same directedness). */
    friend bool operator==(const CsrGraph& a, const CsrGraph& b) = default;

  private:
    std::vector<EdgeId> row_offsets_;
    std::vector<VertexId> col_indices_;
    std::vector<i32> weights_;
    bool directed_ = false;
};

/** Options controlling edge-list to CSR conversion. */
struct BuildOptions
{
    bool directed = false;        ///< keep arcs one-directional
    bool remove_self_loops = true;
    bool dedup = true;            ///< drop duplicate arcs
    bool keep_weights = false;    ///< carry Edge::weight into the CSR
};

/**
 * Build a CSR graph from an edge list.
 *
 * For undirected graphs every edge is mirrored; duplicate arcs keep the
 * smallest weight so that mirrored weighted edges stay consistent.
 * num_vertices must be larger than every endpoint.
 */
CsrGraph buildCsr(VertexId num_vertices, std::vector<Edge> edges,
                  const BuildOptions& options);

/**
 * Attach deterministic pseudo-random weights in [1, max_weight] to an
 * unweighted graph. Both directions of an undirected edge receive the same
 * weight (derived from the unordered endpoint pair), matching how the ECL
 * inputs attach weights for MST.
 */
CsrGraph withSyntheticWeights(const CsrGraph& graph, i32 max_weight,
                              u64 seed);

}  // namespace eclsim::graph
