#include "graph/input_catalog.hpp"

#include "graph/generators.hpp"

namespace eclsim::graph {

InputCatalog&
InputCatalog::shared()
{
    static InputCatalog instance;
    return instance;
}

InputCatalog::Slot*
InputCatalog::slot(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& entry = slots_[key];
    if (entry == nullptr)
        entry = std::make_unique<Slot>();
    else
        ++hits_;
    return entry.get();
}

const CsrGraph&
InputCatalog::get(const std::string& name, u32 divisor)
{
    Slot* s = slot(name + "@" + std::to_string(divisor));
    std::call_once(s->once,
                   [&] { s->graph = findCatalogEntry(name).make(divisor); });
    return s->graph;
}

const CsrGraph&
InputCatalog::getWeighted(const std::string& name, u32 divisor,
                          i32 max_weight, u64 seed)
{
    Slot* s = slot(name + "@" + std::to_string(divisor) + "#w" +
                   std::to_string(max_weight) + "." + std::to_string(seed));
    std::call_once(s->once, [&] {
        s->graph = withSyntheticWeights(get(name, divisor), max_weight, seed);
    });
    return s->graph;
}

size_t
InputCatalog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

u64
InputCatalog::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

void
InputCatalog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
    hits_ = 0;
}

}  // namespace eclsim::graph
