#include "graph/input_catalog.hpp"

#include <limits>
#include <utility>

#include "graph/generators.hpp"
#include "prof/counters.hpp"

namespace eclsim::graph {

u64
graphBytes(const CsrGraph& graph)
{
    return sizeof(CsrGraph) +
           graph.rowOffsets().capacity() * sizeof(EdgeId) +
           graph.colIndices().capacity() * sizeof(VertexId) +
           graph.weights().capacity() * sizeof(i32);
}

InputCatalog&
InputCatalog::shared()
{
    static InputCatalog instance;
    return instance;
}

template <typename BuildFn>
GraphPtr
InputCatalog::lookup(const std::string& key, BuildFn&& build)
{
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& entry = slots_[key];
        if (entry == nullptr) {
            entry = std::make_shared<Slot>();
            ++misses_;
        } else {
            ++hits_;
        }
        entry->last_use = ++tick_;
        slot = entry;
    }

    // The build runs outside the lock so distinct keys generate in
    // parallel; call_once serializes same-key racers onto one builder.
    std::call_once(slot->once, [&] {
        slot->graph = std::make_shared<const CsrGraph>(build());
    });

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!slot->resident) {
            // First accounting of this slot. It may have been evicted
            // (or clear()ed) between build and here — only account it
            // if it is still the slot the map knows for this key.
            auto it = slots_.find(key);
            if (it != slots_.end() && it->second == slot) {
                slot->bytes = graphBytes(*slot->graph);
                slot->resident = true;
                bytes_ += slot->bytes;
                evictOverCapacity(slot.get());
            }
        }
    }
    return slot->graph;
}

void
InputCatalog::evictOverCapacity(const Slot* keep)
{
    if (capacity_ == 0)
        return;
    while (bytes_ > capacity_) {
        auto victim = slots_.end();
        u64 oldest = std::numeric_limits<u64>::max();
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            Slot* s = it->second.get();
            if (!s->resident || s == keep)
                continue;
            if (s->last_use < oldest) {
                oldest = s->last_use;
                victim = it;
            }
        }
        if (victim == slots_.end())
            break;  // nothing evictable (keep alone may exceed the cap)
        bytes_ -= victim->second->bytes;
        victim->second->resident = false;
        ++evictions_;
        slots_.erase(victim);
    }
}

GraphPtr
InputCatalog::get(const std::string& name, u32 divisor)
{
    // makeInput (not entry.make directly): it enforces that the built
    // graph's directed() flag matches the catalog entry's declaration.
    return lookup(name + "@" + std::to_string(divisor),
                  [&] { return makeInput(name, divisor); });
}

GraphPtr
InputCatalog::getWeighted(const std::string& name, u32 divisor,
                          i32 max_weight, u64 seed)
{
    const std::string key = name + "@" + std::to_string(divisor) + "#w" +
                            std::to_string(max_weight) + "." +
                            std::to_string(seed);
    return lookup(key, [&] {
        // Holds the unweighted parent alive for the duration of the
        // derivation even if it is evicted concurrently.
        GraphPtr plain = get(name, divisor);
        return withSyntheticWeights(*plain, max_weight, seed);
    });
}

void
InputCatalog::setCapacityBytes(u64 bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = bytes;
    evictOverCapacity(nullptr);
}

u64
InputCatalog::capacityBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

u64
InputCatalog::sizeBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

size_t
InputCatalog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t resident = 0;
    for (const auto& [key, slot] : slots_)
        resident += slot->resident ? 1 : 0;
    return resident;
}

u64
InputCatalog::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

u64
InputCatalog::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

u64
InputCatalog::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
InputCatalog::publishCounters(prof::CounterRegistry& registry) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t resident = 0;
    for (const auto& [key, slot] : slots_)
        resident += slot->resident ? 1 : 0;
    registry.add(registry.id("sim/catalog/hits"), hits_);
    registry.add(registry.id("sim/catalog/misses"), misses_);
    registry.add(registry.id("sim/catalog/evictions"), evictions_);
    registry.add(registry.id("sim/catalog/resident_graphs"), resident);
    registry.add(registry.id("sim/catalog/resident_bytes"), bytes_);
}

void
InputCatalog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, slot] : slots_)
        slot->resident = false;
    slots_.clear();
    bytes_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

}  // namespace eclsim::graph
