#include "graph/csr.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace eclsim::graph {

CsrGraph::CsrGraph(std::vector<EdgeId> row_offsets,
                   std::vector<VertexId> col_indices,
                   std::vector<i32> weights, bool directed)
    : row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)), weights_(std::move(weights)),
      directed_(directed)
{
    ECLSIM_ASSERT(!row_offsets_.empty(), "row offsets must have n+1 entries");
    ECLSIM_ASSERT(row_offsets_.front() == 0, "first row offset must be 0");
    ECLSIM_ASSERT(row_offsets_.back() == col_indices_.size(),
                  "last row offset {} != arc count {}", row_offsets_.back(),
                  col_indices_.size());
    ECLSIM_ASSERT(weights_.empty() || weights_.size() == col_indices_.size(),
                  "weight count {} != arc count {}", weights_.size(),
                  col_indices_.size());
    for (size_t i = 1; i < row_offsets_.size(); ++i)
        ECLSIM_ASSERT(row_offsets_[i - 1] <= row_offsets_[i],
                      "row offsets must be monotone at {}", i);
    const auto n = numVertices();
    for (VertexId t : col_indices_)
        ECLSIM_ASSERT(t < n, "arc target {} out of range {}", t, n);
}

CsrGraph
CsrGraph::reversed() const
{
    const VertexId n = numVertices();
    std::vector<EdgeId> offsets(n + 1, 0);
    for (VertexId t : col_indices_)
        ++offsets[t + 1];
    for (VertexId v = 0; v < n; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> targets(numArcs());
    std::vector<i32> rweights(weighted() ? numArcs() : 0);
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
        for (EdgeId e = rowBegin(v); e < rowEnd(v); ++e) {
            const VertexId t = arcTarget(e);
            const EdgeId slot = cursor[t]++;
            targets[slot] = v;
            if (weighted())
                rweights[slot] = weights_[e];
        }
    }
    return CsrGraph(std::move(offsets), std::move(targets),
                    std::move(rweights), directed_);
}

CsrGraph
buildCsr(VertexId num_vertices, std::vector<Edge> edges,
         const BuildOptions& options)
{
    std::vector<Edge> arcs;
    arcs.reserve(options.directed ? edges.size() : 2 * edges.size());
    for (const Edge& e : edges) {
        ECLSIM_ASSERT(e.src < num_vertices && e.dst < num_vertices,
                      "edge ({}, {}) out of range {}", e.src, e.dst,
                      num_vertices);
        if (options.remove_self_loops && e.src == e.dst)
            continue;
        arcs.push_back(e);
        if (!options.directed)
            arcs.push_back({e.dst, e.src, e.weight});
    }

    std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& b) {
        if (a.src != b.src)
            return a.src < b.src;
        if (a.dst != b.dst)
            return a.dst < b.dst;
        return a.weight < b.weight;
    });
    if (options.dedup) {
        arcs.erase(std::unique(arcs.begin(), arcs.end(),
                               [](const Edge& a, const Edge& b) {
                                   return a.src == b.src && a.dst == b.dst;
                               }),
                   arcs.end());
    }

    std::vector<EdgeId> offsets(static_cast<size_t>(num_vertices) + 1, 0);
    for (const Edge& a : arcs)
        ++offsets[a.src + 1];
    for (VertexId v = 0; v < num_vertices; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> targets;
    targets.reserve(arcs.size());
    std::vector<i32> weights;
    if (options.keep_weights)
        weights.reserve(arcs.size());
    for (const Edge& a : arcs) {
        targets.push_back(a.dst);
        if (options.keep_weights)
            weights.push_back(a.weight);
    }
    return CsrGraph(std::move(offsets), std::move(targets),
                    std::move(weights), options.directed);
}

CsrGraph
withSyntheticWeights(const CsrGraph& graph, i32 max_weight, u64 seed)
{
    ECLSIM_ASSERT(max_weight >= 1, "max_weight must be positive");
    std::vector<i32> weights(graph.numArcs());
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const VertexId t = graph.arcTarget(e);
            const u64 lo = std::min<u64>(v, t);
            const u64 hi = std::max<u64>(v, t);
            const u64 h = hash64(seed ^ hash64((lo << 32) | hi));
            weights[e] = static_cast<i32>(h % static_cast<u64>(max_weight)) +
                         1;
        }
    }
    return CsrGraph(graph.rowOffsets(), graph.colIndices(),
                    std::move(weights), graph.directed());
}

}  // namespace eclsim::graph
