/**
 * @file
 * Degree statistics of a graph — the columns of the paper's Tables II/III
 * (edges, vertices, average degree, maximum degree) and the inputs to the
 * Table IX correlation study.
 */
#pragma once

#include "graph/csr.hpp"

namespace eclsim::graph {

/** Summary statistics of one graph. */
struct GraphProperties
{
    VertexId num_vertices = 0;
    EdgeId num_arcs = 0;       ///< stored arcs (undirected edges count twice)
    double avg_degree = 0.0;   ///< arcs / vertices
    u64 max_degree = 0;
    u64 min_degree = 0;
    VertexId isolated_vertices = 0;
};

/** Compute the summary statistics of a graph. */
GraphProperties computeProperties(const CsrGraph& graph);

}  // namespace eclsim::graph
