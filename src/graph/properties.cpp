#include "graph/properties.hpp"

#include <algorithm>

namespace eclsim::graph {

GraphProperties
computeProperties(const CsrGraph& graph)
{
    GraphProperties props;
    props.num_vertices = graph.numVertices();
    props.num_arcs = graph.numArcs();
    if (props.num_vertices == 0)
        return props;
    props.avg_degree = static_cast<double>(props.num_arcs) /
                       static_cast<double>(props.num_vertices);
    props.min_degree = ~u64{0};
    for (VertexId v = 0; v < props.num_vertices; ++v) {
        const u64 d = graph.degree(v);
        props.max_degree = std::max(props.max_degree, d);
        props.min_degree = std::min(props.min_degree, d);
        if (d == 0)
            ++props.isolated_vertices;
    }
    return props;
}

}  // namespace eclsim::graph
