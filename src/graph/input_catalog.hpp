/**
 * @file
 * Shared read-only cache of generated catalog inputs.
 *
 * Regenerating a stand-in graph for every (gpu, algo, variant, rep)
 * cell dominated the wall-clock of the table sweeps. An InputCatalog
 * memoizes CatalogEntry::make results keyed by (input name, divisor) —
 * each graph is generated exactly once per divisor and every later
 * lookup returns a reference to the same immutable object, shared
 * across GPUs, algorithms, variants and repetitions.
 *
 * The cache is thread-safe: concurrent lookups of *different* keys
 * generate in parallel, concurrent lookups of the *same* key block all
 * but one builder (std::call_once per slot), so the parallel suite
 * runner never builds a graph twice. Returned references stay valid
 * for the cache's lifetime; clear() invalidates them all and is only
 * safe while no suite is running.
 *
 * shared() is the process-wide instance the experiment harness uses;
 * tests can construct private instances.
 */
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/catalog.hpp"
#include "graph/csr.hpp"

namespace eclsim::graph {

/** Memoizing, thread-safe store of catalog stand-in graphs. */
class InputCatalog
{
  public:
    InputCatalog() = default;
    InputCatalog(const InputCatalog&) = delete;
    InputCatalog& operator=(const InputCatalog&) = delete;

    /** The process-wide cache used by the experiment harness. */
    static InputCatalog& shared();

    /** The stand-in for a named catalog input, built on first use. */
    const CsrGraph& get(const std::string& name, u32 divisor);

    /**
     * The same stand-in with synthetic edge weights (the harness's MST
     * input), derived from the unweighted graph and cached separately.
     */
    const CsrGraph& getWeighted(const std::string& name, u32 divisor,
                                i32 max_weight = 1000, u64 seed = 0xec1);

    /** Number of distinct graphs built so far. */
    size_t size() const;

    /** Number of lookups served from an already-built slot. */
    u64 hits() const;

    /** Drop every cached graph (dangles outstanding references!). */
    void clear();

  private:
    struct Slot
    {
        std::once_flag once;
        CsrGraph graph;
    };

    /** The slot for a key, creating an empty one on first sight. */
    Slot* slot(const std::string& key);

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::unique_ptr<Slot>> slots_;
    u64 hits_ = 0;
};

}  // namespace eclsim::graph
