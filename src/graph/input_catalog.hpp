/**
 * @file
 * Shared, bounded, read-only cache of generated catalog inputs.
 *
 * Regenerating a stand-in graph for every (gpu, algo, variant, rep)
 * cell dominated the wall-clock of the table sweeps. An InputCatalog
 * memoizes CatalogEntry::make results keyed by (input name, divisor) —
 * each graph is generated exactly once per divisor and every later
 * lookup returns a shared_ptr to the same immutable object, shared
 * across GPUs, algorithms, variants, repetitions, and (in the serve
 * daemon) client connections.
 *
 * The cache is thread-safe: concurrent lookups of *different* keys
 * generate in parallel, concurrent lookups of the *same* key block all
 * but one builder (std::call_once per slot), so the parallel suite
 * runner never builds a graph twice.
 *
 * Residency is bounded: setCapacityBytes() caps the total byte size of
 * cached graphs; when an insert pushes the cache past the cap, the
 * least-recently-used resident entries are evicted (a long-lived daemon
 * must not accumulate every graph it ever served). Because lookups
 * return shared_ptr, eviction never invalidates an outstanding user —
 * the graph is freed when its last holder drops it. The default
 * capacity is 0 = unbounded, preserving the batch-sweep behavior.
 *
 * Accounting (hits / misses / evictions / resident bytes) is kept
 * internally and can be published as sim/catalog counters into a
 * prof::CounterRegistry at export time via publishCounters().
 *
 * shared() is the process-wide instance the experiment harness uses;
 * tests and the serve daemon construct private instances.
 */
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/catalog.hpp"
#include "graph/csr.hpp"

namespace eclsim::prof {
class CounterRegistry;
}

namespace eclsim::graph {

/** Shared ownership of one immutable cached graph. */
using GraphPtr = std::shared_ptr<const CsrGraph>;

/** Approximate heap footprint of a CSR graph, for cache accounting. */
u64 graphBytes(const CsrGraph& graph);

/** Memoizing, thread-safe, capacity-bounded graph store (file comment). */
class InputCatalog
{
  public:
    InputCatalog() = default;
    InputCatalog(const InputCatalog&) = delete;
    InputCatalog& operator=(const InputCatalog&) = delete;

    /** The process-wide cache used by the experiment harness. */
    static InputCatalog& shared();

    /** The stand-in for a named catalog input, built on first use. */
    GraphPtr get(const std::string& name, u32 divisor);

    /**
     * The same stand-in with synthetic edge weights (the harness's MST
     * input), derived from the unweighted graph and cached separately.
     */
    GraphPtr getWeighted(const std::string& name, u32 divisor,
                         i32 max_weight = 1000, u64 seed = 0xec1);

    /**
     * Cap the resident byte total; 0 (the default) is unbounded.
     * Lowering the cap below the current residency evicts immediately.
     */
    void setCapacityBytes(u64 bytes);
    u64 capacityBytes() const;

    /** Total byte size of the currently resident graphs. */
    u64 sizeBytes() const;

    /** Number of resident graphs. */
    size_t size() const;

    /** Lookups that found an existing (or in-flight) slot. */
    u64 hits() const;

    /** Lookups that had to build (first sight of a key). */
    u64 misses() const;

    /** Resident entries dropped by the capacity cap. */
    u64 evictions() const;

    /**
     * Add the current totals as "sim/catalog/{hits,misses,evictions,
     * resident_graphs,resident_bytes}" counters. Call once per export
     * (counters accumulate; repeated publishing double-counts).
     */
    void publishCounters(prof::CounterRegistry& registry) const;

    /** Drop every resident graph (outstanding GraphPtrs stay valid). */
    void clear();

  private:
    struct Slot
    {
        std::once_flag once;
        GraphPtr graph;
        u64 bytes = 0;
        u64 last_use = 0;    ///< LRU stamp (monotone lookup tick)
        bool resident = false;  ///< accounted in bytes_ / evictable
    };

    /** Lookup/build one key; build() runs at most once per key. */
    template <typename BuildFn>
    GraphPtr lookup(const std::string& key, BuildFn&& build);

    /** Drop LRU resident entries until bytes_ fits capacity_ (the slot
     *  `keep` is never evicted). Caller holds mutex_. */
    void evictOverCapacity(const Slot* keep);

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
    u64 capacity_ = 0;
    u64 bytes_ = 0;
    u64 tick_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 evictions_ = 0;
};

}  // namespace eclsim::graph
