#include "graph/catalog.hpp"

#include <algorithm>
#include <cmath>

#include "core/logging.hpp"
#include "graph/generators.hpp"

namespace eclsim::graph {

namespace {

/** Clamp the scaled vertex count into a range the simulator handles
 *  comfortably while keeping size ordering between inputs. */
VertexId
scaledVertices(u64 paper_vertices, u32 divisor)
{
    const u64 target = std::max<u64>(paper_vertices / divisor, 1);
    return static_cast<VertexId>(std::clamp<u64>(target, 1024, 1u << 20));
}

/** Pick a grid side so side*side is close to the scaled vertex count. */
u32
gridSide(u64 paper_vertices, u32 divisor)
{
    const auto n = scaledVertices(paper_vertices, divisor);
    return std::max<u32>(
        4, static_cast<u32>(std::lround(std::sqrt(static_cast<double>(n)))));
}

/** log2 of the scaled vertex count, for the RMAT generators. */
u32
scaledScale(u64 paper_vertices, u32 divisor)
{
    const auto n = scaledVertices(paper_vertices, divisor);
    u32 s = 0;
    while ((VertexId{1} << (s + 1)) <= n)
        ++s;
    return std::max<u32>(s, 8);
}

u64
edgesFor(u64 paper_vertices, u32 divisor, double davg)
{
    const auto n = scaledVertices(paper_vertices, divisor);
    return std::max<u64>(static_cast<u64>(davg * n / 2.0), n);
}

std::vector<CatalogEntry>
buildUndirected()
{
    std::vector<CatalogEntry> list;

    auto add = [&list](std::string name, std::string type, u64 edges,
                       u64 vertices, double davg, u64 dmax,
                       std::function<CsrGraph(u32)> make) {
        CatalogEntry e;
        e.name = std::move(name);
        e.type = std::move(type);
        e.directed = false;
        e.paper_edges = edges;
        e.paper_vertices = vertices;
        e.paper_davg = davg;
        e.paper_dmax = dmax;
        e.make = std::move(make);
        list.push_back(std::move(e));
    };

    add("2d-2e20.sym", "grid", 4190208, 1048576, 4.0, 4, [](u32 d) {
        const u32 side = gridSide(1048576, d);
        return makeGrid2d(side, side);
    });
    add("amazon0601", "co-purchases", 4886816, 403394, 12.1, 2752,
        [](u32 d) {
            return makePrefAttach(scaledVertices(403394, d), 6, 0xa3a201);
        });
    add("as-skitter", "Internet topology", 22190596, 1696415, 13.1, 35455,
        [](u32 d) {
            return makePrefAttach(scaledVertices(1696415, d), 7, 0x5417);
        });
    add("citationCiteseer", "publication citations", 2313294, 268495, 8.6,
        1318, [](u32 d) {
            return makePrefAttach(scaledVertices(268495, d), 4, 0xc17e);
        });
    add("cit-Patents", "patent citations", 33037894, 3774768, 8.8, 793,
        [](u32 d) {
            return makePrefAttach(scaledVertices(3774768, d), 4, 0x9a7e);
        });
    add("coPapersDBLP", "publication citations", 30491458, 540486, 56.4,
        3299, [](u32 d) {
            return makeClustered(scaledVertices(540486, d), 28, 2.0,
                                 0xdb19);
        });
    add("delaunay_n24", "triangulation", 100663202, 16777216, 6.0, 26,
        [](u32 d) {
            const u32 side = gridSide(16777216, d);
            return makeTriangulatedGrid(side, side);
        });
    add("europe_osm", "roadmap", 108109320, 50912018, 2.1, 13, [](u32 d) {
        const u32 side = gridSide(50912018, d);
        return makeRoadNetwork(side, side, 0.45, 0xe05e);
    });
    add("in-2004", "weblinks", 27182946, 1382908, 19.7, 21869, [](u32 d) {
        RmatParams p;
        return makeRmat(scaledScale(1382908, d),
                        edgesFor(1382908, d, 19.7), p, 0x12004);
    });
    add("internet", "Internet topology", 387240, 124651, 3.1, 151,
        [](u32 d) {
            return makePrefAttach(scaledVertices(124651, d), 2, 0x17e7);
        });
    add("kron_g500-logn21", "Kronecker", 182081864, 2097152, 86.8, 213904,
        [](u32 d) {
            RmatParams p;
            return makeRmat(scaledScale(2097152, d),
                            edgesFor(2097152, d, 86.8), p, 0x500);
        });
    add("r4-2e23.sym", "random", 67108846, 8388608, 8.0, 26, [](u32 d) {
        return makeRandomUniform(scaledVertices(8388608, d),
                                 edgesFor(8388608, d, 8.0), 0x42e23);
    });
    add("rmat16.sym", "RMAT", 967866, 65536, 14.8, 569, [](u32 d) {
        RmatParams p;
        return makeRmat(scaledScale(65536, d), edgesFor(65536, d, 14.8), p,
                        0x16);
    });
    add("rmat22.sym", "RMAT", 65660814, 4194304, 15.7, 3687, [](u32 d) {
        RmatParams p;
        return makeRmat(scaledScale(4194304, d),
                        edgesFor(4194304, d, 15.7), p, 0x22);
    });
    add("soc-LiveJournal1", "community", 85702474, 4847571, 17.7, 20333,
        [](u32 d) {
            return makePrefAttach(scaledVertices(4847571, d), 9, 0x50c);
        });
    add("USA-road-d.NY", "roadmap", 730100, 264346, 2.8, 8, [](u32 d) {
        const u32 side = gridSide(264346, d);
        return makeRoadNetwork(side, side, 0.62, 0x4ae);
    });
    add("USA-road-d.USA", "roadmap", 57708624, 23947347, 2.4, 9, [](u32 d) {
        const u32 side = gridSide(23947347, d);
        return makeRoadNetwork(side, side, 0.52, 0x45a);
    });
    return list;
}

std::vector<CatalogEntry>
buildDirected()
{
    std::vector<CatalogEntry> list;

    auto add = [&list](std::string name, std::string type, u64 edges,
                       u64 vertices, double davg, u64 dmax,
                       std::function<CsrGraph(u32)> make) {
        CatalogEntry e;
        e.name = std::move(name);
        e.type = std::move(type);
        e.directed = true;
        e.paper_edges = edges;
        e.paper_vertices = vertices;
        e.paper_davg = davg;
        e.paper_dmax = dmax;
        e.make = std::move(make);
        list.push_back(std::move(e));
    };

    add("cage14", "power-law", 27130349, 1505785, 18.02, 41, [](u32 d) {
        return makeDirectedPowerLaw(scaledScale(1505785, d),
                                    edgesFor(1505785, d, 18.02) * 2, 0.5,
                                    0xca9e14);
    });
    add("circuit5M", "power-law", 59524291, 5558326, 10.71, 1290501,
        [](u32 d) {
            return makeDirectedPowerLaw(scaledScale(5558326, d),
                                        edgesFor(5558326, d, 10.71) * 2,
                                        0.35, 0xc1c5);
        });
    add("cold-flow", "mesh", 6295941, 2112512, 2.98, 5, [](u32 d) {
        return makeDirectedMesh(scaledVertices(2112512, d), 0.75, false,
                                0xc01d);
    });
    add("flickr", "power-law", 9837214, 820878, 11.98, 10272, [](u32 d) {
        return makeDirectedPowerLaw(scaledScale(820878, d),
                                    edgesFor(820878, d, 11.98) * 2, 0.3,
                                    0xf11c);
    });
    add("klein-bottle", "mesh", 18793715, 8388608, 2.24, 4, [](u32 d) {
        return makeDirectedMesh(scaledVertices(8388608, d), 0.22, true,
                                0x7b01);
    });
    add("star", "mesh", 654080, 327680, 2.00, 2, [](u32 d) {
        return makeDirectedStar(scaledVertices(327680, d), 0x57a4);
    });
    add("toroid-hex", "mesh", 4684142, 1572864, 2.98, 4, [](u32 d) {
        return makeDirectedMesh(scaledVertices(1572864, d), 0.8, false,
                                0x706e);
    });
    add("toroid-wedge", "mesh", 487798, 196608, 2.48, 4, [](u32 d) {
        return makeDirectedMesh(scaledVertices(196608, d), 0.42, false,
                                0x70e3);
    });
    add("web-Google", "power-law", 5105039, 916428, 5.57, 456, [](u32 d) {
        return makeDirectedPowerLaw(scaledScale(916428, d),
                                    edgesFor(916428, d, 5.57) * 2, 0.3,
                                    0x90091e);
    });
    add("wikipedia", "power-law", 39383235, 3148440, 12.51, 6576,
        [](u32 d) {
            return makeDirectedPowerLaw(scaledScale(3148440, d),
                                        edgesFor(3148440, d, 12.51) * 2,
                                        0.4, 0x31c19e);
        });
    return list;
}

}  // namespace

const std::vector<CatalogEntry>&
undirectedCatalog()
{
    static const std::vector<CatalogEntry> catalog = buildUndirected();
    return catalog;
}

const std::vector<CatalogEntry>&
directedCatalog()
{
    static const std::vector<CatalogEntry> catalog = buildDirected();
    return catalog;
}

const CatalogEntry&
findCatalogEntry(const std::string& name)
{
    for (const auto& entry : undirectedCatalog())
        if (entry.name == name)
            return entry;
    for (const auto& entry : directedCatalog())
        if (entry.name == name)
            return entry;
    fatal("unknown catalog input '{}'", name);
}

CsrGraph
makeInput(const std::string& name, u32 divisor)
{
    ECLSIM_ASSERT(divisor >= 1, "scale divisor must be >= 1");
    const CatalogEntry& entry = findCatalogEntry(name);
    CsrGraph graph = entry.make(divisor);
    // Consumers route inputs by algoNeedsDirected and trust the entry
    // flag; a recipe building the wrong variant would silently hand a
    // directed algorithm a mirrored graph (or SCC/PR/BFS an undirected
    // one), so the contract is enforced on the one shared build path.
    ECLSIM_ASSERT(graph.directed() == entry.directed,
                  "catalog stand-in '{}' built a {} graph but the entry "
                  "declares {}",
                  name, graph.directed() ? "directed" : "undirected",
                  entry.directed ? "directed" : "undirected");
    return graph;
}

}  // namespace eclsim::graph
