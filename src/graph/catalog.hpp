/**
 * @file
 * Catalog of the paper's input graphs (Tables II and III) with synthetic
 * stand-in recipes.
 *
 * The paper's experiments run on 17 undirected graphs (CC, GC, MIS, MST)
 * and 10 directed graphs (SCC) downloaded from the ECL graph repository;
 * the Graphalytics extension workloads reuse them (WCC the undirected
 * set, PR/BFS the directed set — see algos::algoNeedsDirected).
 * Those inputs are not redistributable inside this repository, so every
 * catalog entry carries (a) the original statistics, for reproducing the
 * Table II/III listings, and (b) a generator recipe that builds a scaled
 * synthetic graph of the same structural family and similar average
 * degree. The scale divisor shrinks the vertex count (default 256x) so
 * the full sweep finishes on a single host core; pass divisor 1 for
 * full-size graphs if you have the time and memory.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace eclsim::graph {

/** Default shrink factor applied to the paper's vertex counts. */
constexpr u32 kDefaultScaleDivisor = 256;

/** One input graph of Table II or III. */
struct CatalogEntry
{
    std::string name;       ///< the paper's input name
    std::string type;       ///< the paper's "Type" column
    bool directed = false;
    u64 paper_edges = 0;    ///< arc count from the paper's table
    u64 paper_vertices = 0;
    double paper_davg = 0.0;
    u64 paper_dmax = 0;
    /** Build the scaled synthetic stand-in. */
    std::function<CsrGraph(u32 divisor)> make;
};

/** The 17 undirected inputs of Table II (CC, GC, MIS, MST, WCC). */
const std::vector<CatalogEntry>& undirectedCatalog();

/** The 10 directed inputs of Table III (SCC, PR, BFS). */
const std::vector<CatalogEntry>& directedCatalog();

/** Find an entry by name in either catalog; fatal() if unknown. */
const CatalogEntry& findCatalogEntry(const std::string& name);

/** Build the stand-in for a named input. */
CsrGraph makeInput(const std::string& name,
                   u32 divisor = kDefaultScaleDivisor);

}  // namespace eclsim::graph
