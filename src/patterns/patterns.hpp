/**
 * @file
 * A microsuite of labeled parallel code patterns, in the spirit of the
 * Indigo/Indigo3 and DataRaceBench suites the paper surveys in Section
 * III: small kernels that either contain a specific, named data race or
 * are a correctly synchronized version of the same idea.
 *
 * The suite serves two purposes:
 *  1. it validates the dynamic race detector's precision and recall
 *     (every racy pattern must be flagged, every clean one must not),
 *     the way DataRaceBench evaluates race-detection tools; and
 *  2. it documents, as runnable code, each class of race the ECL
 *     baselines contain and the idiom that removes it.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simt/engine.hpp"

namespace eclsim::patterns {

/** One labeled pattern. */
struct Pattern
{
    std::string name;
    std::string description;
    /** Ground truth: does the pattern contain a data race? */
    bool racy = false;
    /**
     * Execute the pattern on the given engine and return true if the
     * functional result was correct (clean patterns must always compute
     * the right answer; racy ones may or may not).
     */
    std::function<bool(simt::Engine&)> run;
};

/** The full labeled suite (racy and race-free patterns interleaved). */
const std::vector<Pattern>& patternSuite();

/** Look up a pattern by name; fatal() if unknown. */
const Pattern& findPattern(const std::string& name);

}  // namespace eclsim::patterns
