#include "patterns/patterns.hpp"

#include "core/logging.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::patterns {

namespace {

using simt::AccessMode;
using simt::DevicePtr;
using simt::Engine;
using simt::LaunchConfig;
using simt::Task;
using simt::ThreadCtx;

constexpr u32 kThreads = 256;

/**
 * Racy: the classic lost update. Every thread increments a shared
 * counter with a plain load + plain store; updates overlap and vanish.
 */
bool
lostUpdate(Engine& engine)
{
    auto counter = engine.memory().alloc<u32>(1, "pat.counter");
    engine.launch("lost_update", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      if (t.globalThreadId() >= kThreads)
                          co_return;
                      const u32 v = co_await t.load(counter, 0);
                      co_await t.store(counter, 0, v + 1);
                  });
    return engine.memory().read(counter) == kThreads;
}

/** Race-free twin of lostUpdate: a single atomic RMW per thread. */
bool
atomicCounter(Engine& engine)
{
    auto counter = engine.memory().alloc<u32>(1, "pat.counter");
    engine.launch("atomic_counter", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      if (t.globalThreadId() < kThreads)
                          co_await t.atomicAdd(counter, 0, u32{1});
                  });
    return engine.memory().read(counter) == kThreads;
}

/**
 * Racy: volatile does not synchronize. Identical to lostUpdate but with
 * volatile accesses — the compiler can no longer cache the value, yet
 * the read-modify-write is still not atomic (paper Section II-A).
 */
bool
volatileLostUpdate(Engine& engine)
{
    auto counter = engine.memory().alloc<u32>(1, "pat.counter");
    engine.launch("volatile_lost_update", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      if (t.globalThreadId() >= kThreads)
                          co_return;
                      const u32 v = co_await t.load(
                          counter, 0, AccessMode::kVolatile);
                      co_await t.store(counter, 0, v + 1,
                                       AccessMode::kVolatile);
                  });
    return engine.memory().read(counter) == kThreads;
}

/**
 * Racy: missing __syncthreads. Thread i writes slot i, then reads slot
 * i+1 of the same block-shared (global) array without a barrier.
 */
bool
missingBarrier(Engine& engine)
{
    auto data = engine.memory().alloc<u32>(kThreads, "pat.data");
    auto sums = engine.memory().alloc<u32>(1, "pat.sums");
    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = kThreads;
    engine.launch("missing_barrier", cfg, [&](ThreadCtx& t) -> Task {
        const u32 i = t.threadInBlock();
        co_await t.store(data, i, i + 1);
        // BUG: no co_await t.syncthreads() here.
        const u32 next = co_await t.load(data, (i + 1) % kThreads);
        co_await t.atomicAdd(sums, 0, next);
    });
    return engine.memory().read(sums) == kThreads * (kThreads + 1) / 2;
}

/** Race-free twin of missingBarrier: the barrier restores order. */
bool
barrierPhases(Engine& engine)
{
    auto data = engine.memory().alloc<u32>(kThreads, "pat.data");
    auto sums = engine.memory().alloc<u32>(1, "pat.sums");
    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block_x = kThreads;
    engine.launch("barrier_phases", cfg, [&](ThreadCtx& t) -> Task {
        const u32 i = t.threadInBlock();
        co_await t.store(data, i, i + 1);
        co_await t.syncthreads();
        const u32 next = co_await t.load(data, (i + 1) % kThreads);
        co_await t.atomicAdd(sums, 0, next);
    });
    return engine.memory().read(sums) == kThreads * (kThreads + 1) / 2;
}

/**
 * Racy: torn wide write. One thread stores a 64-bit sentinel with a
 * plain store while the others read it — the Fig. 1 chimera hazard.
 */
bool
tornWideWrite(Engine& engine)
{
    auto value = engine.memory().alloc<u64>(1, "pat.wide");
    auto bad = engine.memory().alloc<u32>(1, "pat.bad");
    engine.memory().write(value, ~u64{0});
    engine.launch("torn_wide_write", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i >= kThreads)
                          co_return;
                      if (i == 0) {
                          co_await t.store(value, 0, u64{0});
                      } else {
                          const u64 v = co_await t.load(value, 0);
                          if (v != 0 && v != ~u64{0})
                              co_await t.atomicAdd(bad, 0, u32{1});
                      }
                  });
    return engine.memory().read(bad) == 0;
}

/** Race-free twin of tornWideWrite: atomic 64-bit accesses never tear. */
bool
atomicWideWrite(Engine& engine)
{
    auto value = engine.memory().alloc<u64>(1, "pat.wide");
    auto bad = engine.memory().alloc<u32>(1, "pat.bad");
    engine.memory().write(value, ~u64{0});
    engine.launch("atomic_wide_write", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i >= kThreads)
                          co_return;
                      if (i == 0) {
                          co_await t.store(value, 0, u64{0},
                                           AccessMode::kAtomic);
                      } else {
                          const u64 v = co_await t.load(
                              value, 0, AccessMode::kAtomic);
                          if (v != 0 && v != ~u64{0})
                              co_await t.atomicAdd(bad, 0, u32{1});
                      }
                  });
    return engine.memory().read(bad) == 0;
}

/**
 * Racy: neighbor publication, the graph-analytics idiom behind the ECL
 * baselines. Every thread publishes a value into its neighbor's slot
 * with a plain store while the neighbor reads its own slot.
 */
bool
neighborPublish(Engine& engine)
{
    auto slots = engine.memory().alloc<u32>(kThreads, "pat.slots");
    engine.launch("neighbor_publish", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i >= kThreads)
                          co_return;
                      co_await t.store(slots, (i + 1) % kThreads, i);
                      co_await t.load(slots, i);
                  });
    return true;  // any outcome is functionally tolerated here
}

/** Race-free twin of neighborPublish using relaxed atomics (Fig. 2). */
bool
neighborPublishAtomic(Engine& engine)
{
    auto slots = engine.memory().alloc<u32>(kThreads, "pat.slots");
    engine.launch("neighbor_publish_atomic", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i >= kThreads)
                          co_return;
                      co_await ecl::atomicWrite(t, slots,
                                                (i + 1) % kThreads, i);
                      co_await ecl::atomicRead(t, slots, i);
                  });
    return true;
}

/**
 * Racy: byte flags sharing a word, written with plain byte stores.
 * Functionally this is fine on byte-addressable machines (each thread
 * owns one byte) but the ECL-MIS conversion needs the masked atomics
 * of Fig. 4 because CUDA has no byte atomics; here the plain version's
 * writes land on adjacent bytes and do NOT race (byte granularity), so
 * this pattern is a *precision* check: the detector must stay quiet.
 */
bool
adjacentByteWrites(Engine& engine)
{
    auto flags = engine.memory().alloc<u8>(kThreads, "pat.flags");
    engine.launch("adjacent_byte_writes", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i < kThreads)
                          co_await t.store(flags, i, u8{1});
                  });
    for (u32 i = 0; i < kThreads; ++i)
        if (engine.memory().read(flags, i) != 1)
            return false;
    return true;
}

/**
 * Racy: the naive masked-write emulation. Threads update their byte of
 * a shared word with a plain read-modify-write of the covering int —
 * the exact bug the Fig. 4 atomic AND/OR masking avoids.
 */
bool
wordRmwByteFlags(Engine& engine)
{
    auto word = engine.memory().alloc<u32>(1, "pat.word");
    engine.launch("word_rmw_byte_flags", simt::launchFor(4, 4),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i >= 4)
                          co_return;
                      const u32 v = co_await t.load(word, 0);
                      co_await t.store(word, 0,
                                       v | (u32{0xff} << (8 * i)));
                  });
    return engine.memory().read(word) == 0xffffffffu;
}

/** Race-free twin of wordRmwByteFlags: Fig. 4's atomic OR masking. */
bool
maskedByteFlags(Engine& engine)
{
    auto word = engine.memory().alloc<u8>(4, "pat.word");
    engine.launch("masked_byte_flags", simt::launchFor(4, 4),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i < 4)
                          co_await ecl::atomicByteOr(t, word, i, 0xff);
                  });
    for (u32 i = 0; i < 4; ++i)
        if (engine.memory().read(word, i) != 0xff)
            return false;
    return true;
}

/** Race-free: CAS-based unique claim (the ECL-CC hook idiom). */
bool
casClaim(Engine& engine)
{
    auto slot = engine.memory().alloc<u32>(1, "pat.slot");
    auto winners = engine.memory().alloc<u32>(1, "pat.winners");
    engine.launch("cas_claim", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i >= kThreads)
                          co_return;
                      const u32 old =
                          co_await t.atomicCas(slot, 0, u32{0}, i + 1);
                      if (old == 0)
                          co_await t.atomicAdd(winners, 0, u32{1});
                  });
    return engine.memory().read(winners) == 1;
}

/** Race-free: disjoint writes — every thread owns its slot. */
bool
disjointWrites(Engine& engine)
{
    auto slots = engine.memory().alloc<u32>(kThreads, "pat.slots");
    engine.launch("disjoint_writes", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i < kThreads)
                          co_await t.store(slots, i, i * 7);
                  });
    for (u32 i = 0; i < kThreads; ++i)
        if (engine.memory().read(slots, i) != i * 7)
            return false;
    return true;
}

/** Race-free: producer/consumer split across kernel launches. */
bool
kernelBoundary(Engine& engine)
{
    auto data = engine.memory().alloc<u32>(kThreads, "pat.data");
    auto sums = engine.memory().alloc<u64>(1, "pat.sums");
    engine.launch("producer", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i < kThreads)
                          co_await t.store(data, i, i);
                  });
    engine.launch("consumer", simt::launchFor(kThreads),
                  [&](ThreadCtx& t) -> Task {
                      const u32 i = t.globalThreadId();
                      if (i < kThreads)
                          co_await t.atomicAdd(
                              sums, 0,
                              static_cast<u64>(
                                  co_await t.load(data, i)));
                  });
    return engine.memory().read(sums) ==
           u64{kThreads} * (kThreads - 1) / 2;
}

}  // namespace

const std::vector<Pattern>&
patternSuite()
{
    static const std::vector<Pattern> suite = {
        {"lost-update",
         "plain read-modify-write increments lose updates", true,
         lostUpdate},
        {"atomic-counter", "atomicAdd makes the counter exact", false,
         atomicCounter},
        {"volatile-lost-update",
         "volatile prevents caching but does not synchronize", true,
         volatileLostUpdate},
        {"missing-barrier",
         "cross-thread read without __syncthreads", true, missingBarrier},
        {"barrier-phases", "__syncthreads orders the phases", false,
         barrierPhases},
        {"torn-wide-write",
         "plain 64-bit store tears on 32-bit-native targets", true,
         tornWideWrite},
        {"atomic-wide-write", "atomic 64-bit accesses never tear", false,
         atomicWideWrite},
        {"neighbor-publish",
         "plain stores into neighbors' slots (the ECL baseline idiom)",
         true, neighborPublish},
        {"neighbor-publish-atomic",
         "relaxed atomic neighbor publication (Fig. 2)", false,
         neighborPublishAtomic},
        {"adjacent-byte-writes",
         "each thread owns one byte: no race (detector precision check)",
         false, adjacentByteWrites},
        {"word-rmw-byte-flags",
         "plain read-modify-write of a shared word's bytes", true,
         wordRmwByteFlags},
        {"masked-byte-flags",
         "Fig. 4 atomic OR masking of individual bytes", false,
         maskedByteFlags},
        {"cas-claim", "compare-and-swap unique claim (ECL-CC hook)",
         false, casClaim},
        {"disjoint-writes", "each thread writes only its own slot",
         false, disjointWrites},
        {"kernel-boundary",
         "producer and consumer in separate launches", false,
         kernelBoundary},
    };
    return suite;
}

const Pattern&
findPattern(const std::string& name)
{
    for (const Pattern& pattern : patternSuite())
        if (pattern.name == name)
            return pattern;
    fatal("unknown pattern '{}'", name);
}

}  // namespace eclsim::patterns
