/**
 * @file
 * Graph coloring in the style of ECL-GC (Alabandi, Powers & Burtscher,
 * PPoPP'20), the GC code studied by the paper.
 *
 * Jones-Plassmann with the largest-degree-first heuristic: an uncolored
 * vertex may pick a color once every higher-priority neighbor is
 * colored; it picks the smallest color no neighbor uses. Two shortcut
 * ideas from ECL-GC are included:
 *
 *  1. early coloring — a vertex may color before its higher-priority
 *     neighbors when its candidate color is provably below every such
 *     neighbor's lowest possible color (tracked in a shared array of
 *     lower bounds), and
 *  2. candidate pruning — each pass tightens the per-vertex
 *     lowest-possible-color bound from the already-colored neighborhood.
 *
 * The published baseline keeps the chosen-color and possible-color
 * arrays volatile, so (per the paper's Section VI-A/VII) converting it
 * to atomics costs only the atomic-unit overhead — the race-free GC
 * stays within a few percent of the baseline. The races are real
 * nonetheless: volatile does not synchronize.
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Result of a GC run. */
struct GcResult
{
    std::vector<u32> colors;
    u32 num_colors = 0;
    RunStats stats;
};

/** Priority heuristic for the Jones-Plassmann ordering. */
enum class GcPriorityMode : u8 {
    /** ECL-GC: largest degree first (fewer colors on skewed graphs). */
    kLargestDegreeFirst,
    /** Random ordering (the ablation baseline). */
    kRandom,
};

/** GC tuning knobs. */
struct GcOptions
{
    GcPriorityMode priority = GcPriorityMode::kLargestDegreeFirst;
    u64 priority_seed = 0;
};

/** Run graph coloring on an undirected graph. */
GcResult runGc(simt::Engine& engine, const CsrGraph& graph,
               Variant variant, const GcOptions& options = {});

}  // namespace eclsim::algos
