/**
 * @file
 * Level-synchronous breadth-first search (the direction-optimizing BFS
 * family's top-down baseline, as in Gunrock and the Graphalytics
 * reference).
 *
 * Each sweep expands the current frontier: every vertex on level L
 * writes L+1 into each still-unvisited out-neighbor. The baseline does
 * this with a plain check-then-store, so concurrent discoverers of the
 * same vertex all write — a benign duplicate-frontier race (every writer
 * in a sweep stores the same level, and the per-address value only ever
 * drops from the unvisited sentinel). The race-free variant claims each
 * vertex with atomicCAS(unvisited -> L+1), so exactly one discoverer
 * wins. Both variants produce the exact oracle levels.
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** dist[] sentinel for a vertex not yet reached. */
constexpr u32 kBfsUnvisited = ~u32{0};

/** Result of a BFS run. */
struct BfsResult
{
    std::vector<u32> levels;  ///< hop count from source; kBfsUnvisited
    RunStats stats;           ///< iterations = number of BFS levels swept
};

/** Run BFS from vertex `source` (must be < numVertices unless empty). */
BfsResult runBfs(simt::Engine& engine, const CsrGraph& graph,
                 Variant variant, VertexId source = 0);

}  // namespace eclsim::algos
