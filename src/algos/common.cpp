#include "algos/common.hpp"

#include "core/logging.hpp"

namespace eclsim::algos {

const char*
variantName(Variant variant)
{
    switch (variant) {
      case Variant::kBaseline:
        return "baseline";
      case Variant::kRaceFree:
        return "race-free";
    }
    return "unknown";
}

const char*
algoName(Algo algo)
{
    switch (algo) {
      case Algo::kCc:
        return "CC";
      case Algo::kGc:
        return "GC";
      case Algo::kMis:
        return "MIS";
      case Algo::kMst:
        return "MST";
      case Algo::kScc:
        return "SCC";
      case Algo::kPr:
        return "PR";
      case Algo::kBfs:
        return "BFS";
      case Algo::kWcc:
        return "WCC";
    }
    return "?";
}

bool
algoNeedsDirected(Algo algo)
{
    return algo == Algo::kScc || algo == Algo::kPr || algo == Algo::kBfs;
}

DeviceGraph
uploadGraph(simt::DeviceMemory& memory, const CsrGraph& graph,
            bool with_weights, bool with_sources)
{
    ECLSIM_ASSERT(graph.numArcs() < (u64{1} << 32),
                  "graph too large for 32-bit arc indices");
    DeviceGraph dev;
    dev.num_vertices = graph.numVertices();
    dev.num_arcs = static_cast<u32>(graph.numArcs());

    std::vector<u32> offsets(graph.rowOffsets().size());
    for (size_t i = 0; i < offsets.size(); ++i)
        offsets[i] = static_cast<u32>(graph.rowOffsets()[i]);
    dev.row_offsets =
        memory.alloc<u32>(offsets.size(), "csr.row_offsets");
    memory.upload(dev.row_offsets, offsets);

    dev.col_indices =
        memory.alloc<u32>(std::max<u64>(graph.numArcs(), 1),
                          "csr.col_indices");
    if (graph.numArcs() > 0)
        memory.upload(dev.col_indices, graph.colIndices());

    if (with_weights) {
        ECLSIM_ASSERT(graph.weighted(), "graph has no weights to upload");
        dev.weights = memory.alloc<i32>(graph.numArcs(), "csr.weights");
        memory.upload(dev.weights, graph.weights());
    }
    if (with_sources) {
        std::vector<u32> sources(graph.numArcs());
        for (VertexId v = 0; v < graph.numVertices(); ++v)
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
                sources[e] = v;
        dev.arc_sources =
            memory.alloc<u32>(graph.numArcs(), "csr.arc_sources");
        memory.upload(dev.arc_sources, sources);
    }
    return dev;
}

}  // namespace eclsim::algos
