/**
 * @file
 * Maximal independent set in the style of ECL-MIS (Burtscher et al.,
 * TOPC'18), the MIS code studied by the paper.
 *
 * ECL-MIS packs each vertex's status and priority into a single byte of
 * a shared char array: 0 = out of the set, 1 = in the set, and values
 * >= 2 are the vertex's (static) priority while it is still undecided.
 * Priorities are partially random and inversely proportional to degree,
 * which yields large sets.
 *
 * The baseline reads and writes this array with plain char accesses. The
 * compiler may cache those values, delaying when one thread's decision
 * becomes visible to the others — the mechanism the paper credits for
 * the 5-11% speedup of the race-free code (Section VI-A). eclsim models
 * that delay with the kSweepSnapshot visibility class.
 *
 * The race-free variant cannot use char atomics (CUDA has none), so it
 * applies the paper's typecasting-and-masking workaround: it atomically
 * loads the covering int and shifts/masks the byte out (Fig. 3b), and it
 * writes decisions with atomic bitwise AND/OR on the covering int
 * (Fig. 4b).
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Result of a MIS run. */
struct MisResult
{
    std::vector<bool> in_set;
    u64 set_size = 0;
    RunStats stats;
};

/** Priority assignment policy. */
enum class MisPriorityMode : u8 {
    /** ECL-MIS: partially random, inversely proportional to degree —
     *  "enables the code to find relatively large sets" (paper II-B). */
    kDegreeWeighted,
    /** Plain Luby: uniformly random priorities (the ablation baseline). */
    kUniform,
};

/** MIS tuning knobs. */
struct MisOptions
{
    MisPriorityMode priority = MisPriorityMode::kDegreeWeighted;
    u64 priority_seed = 0;  ///< extra entropy for the uniform mode
};

/** Run maximal independent set on an undirected graph. */
MisResult runMis(simt::Engine& engine, const CsrGraph& graph,
                 Variant variant, const MisOptions& options = {});

/** ECL-MIS status byte: vertex excluded from the set. */
constexpr u8 kMisOut = 0x00;
/**
 * ECL-MIS status byte: vertex included in the set. 0xFF so that the
 * race-free variant can set it with a single atomic OR and clear a vertex
 * with a single atomic AND (paper Fig. 4) — one indivisible transition,
 * never exposing an intermediate status.
 */
constexpr u8 kMisIn = 0xFF;

/**
 * ECL-MIS priority byte for a vertex: >= 2 (i.e. undecided), partially
 * random, and higher for low-degree vertices. Exposed for tests.
 */
u8 misPriority(VertexId v, u64 degree);

}  // namespace eclsim::algos
