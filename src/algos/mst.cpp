#include "algos/mst.hpp"

#include "core/logging.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

constexpr u64 kNoEdge = ~u64{0};

/** Pack (weight, arc) into the 64-bit best word; lower packs win. */
constexpr u64
packBest(i32 weight, u32 arc)
{
    return (static_cast<u64>(static_cast<u32>(weight)) << 32) | arc;
}

struct MstArrays
{
    DeviceGraph g;
    DevicePtr<u32> parent;
    DevicePtr<u64> best;
    DevicePtr<u8> in_mst;      ///< per-arc output flags
    DevicePtr<u64> total;      ///< accumulated forest weight
    DevicePtr<u32> again;
    AccessMode mode;  ///< kVolatile (baseline) or kAtomic (race-free)
};

/** Reset each component root's best word for the next round. */
Task
mstReset(ThreadCtx& t, const MstArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    co_await t.at(ECL_SITE("reset best[] clear-store"))
        .store(a.best, v, kNoEdge, a.mode);
}

/**
 * Find phase: every arc offers itself to both endpoint components via
 * atomicMin on the 64-bit best word. Union-find parent reads use the
 * variant's access mode with path compression writes.
 */
Task
mstFindMin(ThreadCtx& t, const MstArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 begin = co_await t.at(ECL_SITE("findmin row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("findmin row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);

    // Representative of v (computed once; edges below share it).
    u32 rv = v;
    {
        u32 p = co_await t
                    .at(ECL_SITE_AS("findmin parent[] jump-load",
                                    Expectation::kStaleTolerant))
                    .load(a.parent, rv, a.mode);
        while (p != rv) {
            const u32 gp = co_await t
                               .at(ECL_SITE_AS("findmin parent[] jump-load",
                                               Expectation::kStaleTolerant))
                               .load(a.parent, p, a.mode);
            if (gp != p)
                co_await t
                    .at(ECL_SITE_AS("findmin parent[] compress-store",
                                    Expectation::kMonotonic))
                    .store(a.parent, rv, gp, a.mode);  // compress
            rv = p;
            p = gp;
        }
    }

    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("findmin col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (u >= v)
            continue;  // handle each undirected edge once
        u32 ru = u;
        {
            u32 p = co_await t
                        .at(ECL_SITE_AS("findmin parent[] jump-load",
                                        Expectation::kStaleTolerant))
                        .load(a.parent, ru, a.mode);
            while (p != ru) {
                const u32 gp =
                    co_await t
                        .at(ECL_SITE_AS("findmin parent[] jump-load",
                                        Expectation::kStaleTolerant))
                        .load(a.parent, p, a.mode);
                if (gp != p)
                    co_await t
                        .at(ECL_SITE_AS("findmin parent[] compress-store",
                                        Expectation::kMonotonic))
                        .store(a.parent, ru, gp, a.mode);
                ru = p;
                p = gp;
            }
        }
        if (rv == ru)
            continue;  // already in the same component
        const i32 w = co_await t.at(ECL_SITE("findmin weights[] load"))
                          .load(a.g.weights, e);
        const u64 packed = packBest(w, e);
        co_await t.at(ECL_SITE("findmin best[] offer-min"))
            .atomicMin(a.best, rv, packed);
        co_await t.at(ECL_SITE("findmin best[] offer-min"))
            .atomicMin(a.best, ru, packed);
    }
}

/**
 * Connect phase: each root with a best edge merges along it. The 64-bit
 * read of the best word is volatile in the baseline (two 32-bit pieces:
 * the tearing hazard) and a single atomic in the race-free code. The
 * hook itself is a CAS in both variants.
 */
Task
mstConnect(ThreadCtx& t, const MstArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 pv = co_await t
                       .at(ECL_SITE_AS("connect parent[] root-load",
                                       Expectation::kStaleTolerant))
                       .load(a.parent, v, a.mode);
    if (pv != v)
        co_return;  // not a component root
    // The baseline's 64-bit volatile read: the paper's Fig. 1 tearing
    // hazard on 32-bit-native targets.
    const u64 packed = co_await t
                           .at(ECL_SITE_AS("connect best[] wide-load",
                                           Expectation::kTearing))
                           .load(a.best, v, a.mode);
    if (packed == kNoEdge)
        co_return;
    const u32 arc = static_cast<u32>(packed);
    const i32 w = static_cast<i32>(packed >> 32);

    const u32 src = co_await t.at(ECL_SITE("connect arc_sources[] load"))
                        .load(a.g.arc_sources, arc);
    const u32 dst = co_await t.at(ECL_SITE("connect col_indices[] load"))
                        .load(a.g.col_indices, arc);

    // Union the two endpoint components (min-ID wins the root).
    u32 x = src, y = dst;
    bool merged = false;
    while (true) {
        // climb to current roots
        u32 px = co_await t
                     .at(ECL_SITE_AS("connect parent[] climb-load",
                                     Expectation::kStaleTolerant))
                     .load(a.parent, x, a.mode);
        while (px != x) {
            x = px;
            px = co_await t
                     .at(ECL_SITE_AS("connect parent[] climb-load",
                                     Expectation::kStaleTolerant))
                     .load(a.parent, x, a.mode);
        }
        u32 py = co_await t
                     .at(ECL_SITE_AS("connect parent[] climb-load",
                                     Expectation::kStaleTolerant))
                     .load(a.parent, y, a.mode);
        while (py != y) {
            y = py;
            py = co_await t
                     .at(ECL_SITE_AS("connect parent[] climb-load",
                                     Expectation::kStaleTolerant))
                     .load(a.parent, y, a.mode);
        }
        if (x == y)
            break;  // another root merged the same pair first
        if (x < y) {
            const u32 tmp = x;
            x = y;
            y = tmp;
        }
        const u32 old = co_await t
                            .at(ECL_SITE_AS("connect parent[] hook-cas",
                                            Expectation::kMonotonic))
                            .atomicCas(a.parent, x, x, y);
        if (old == x) {
            merged = true;
            break;
        }
    }
    if (merged) {
        // This root owns the merge: account the edge exactly once.
        // The mark is a constant written by the unique CAS winner for
        // this arc; duplicate or torn observation is impossible, so it
        // is declared idempotent for the static analyzer's benefit.
        co_await t
            .at(ECL_SITE_AS("connect in_mst[] mark-store",
                            Expectation::kIdempotent))
            .store(a.in_mst, arc, u8{1});
        co_await t.at(ECL_SITE("connect total atomic-add"))
            .atomicAdd(a.total, 0,
                       static_cast<u64>(static_cast<u32>(w)));
        co_await t
            .at(ECL_SITE_AS("connect again-flag store",
                            Expectation::kIdempotent))
            .store(a.again, 0, u32{1}, a.mode);
    }
}

}  // namespace

MstResult
runMst(simt::Engine& engine, const CsrGraph& graph, Variant variant)
{
    ECLSIM_ASSERT(!graph.directed(), "MST expects an undirected graph");
    ECLSIM_ASSERT(graph.weighted(), "MST expects a weighted graph");
    simt::DeviceMemory& memory = engine.memory();

    MstArrays a;
    a.g = uploadGraph(memory, graph, /*with_weights=*/true,
                      /*with_sources=*/true);
    const u32 n = std::max<u32>(a.g.num_vertices, 1);
    a.parent = memory.alloc<u32>(n, "mst.parent");
    a.best = memory.alloc<u64>(n, "mst.best");
    a.in_mst = memory.alloc<u8>(std::max<u32>(a.g.num_arcs, 1),
                                "mst.in_mst");
    a.total = memory.alloc<u64>(1, "mst.total");
    a.again = memory.alloc<u32>(1, "mst.again");
    a.mode = variant == Variant::kBaseline ? AccessMode::kVolatile
                                           : AccessMode::kAtomic;

    std::vector<u32> ids(n);
    for (u32 v = 0; v < n; ++v)
        ids[v] = v;
    memory.upload(a.parent, ids);
    memory.fill(a.in_mst, a.g.num_arcs, u8{0});
    memory.write(a.total, u64{0});

    MstResult result;
    const auto cfg = simt::launchFor(a.g.num_vertices, kBlockSize);
    for (u32 round = 0; round < kMaxHostIterations; ++round) {
        memory.write(a.again, u32{0});
        result.stats.add(engine.launch("mst.reset", cfg, [&a](ThreadCtx& t) {
            return mstReset(t, a);
        }));
        result.stats.add(engine.launch(
            "mst.findmin", cfg,
            [&a](ThreadCtx& t) { return mstFindMin(t, a); }));
        result.stats.add(engine.launch(
            "mst.connect", cfg,
            [&a](ThreadCtx& t) { return mstConnect(t, a); }));
        ++result.stats.iterations;
        if (memory.read(a.again) == 0)
            break;
    }

    result.total_weight = memory.read(a.total);
    result.in_mst = memory.download(a.in_mst, a.g.num_arcs);
    for (u8 flag : result.in_mst)
        result.num_edges += flag;
    return result;
}

}  // namespace eclsim::algos
