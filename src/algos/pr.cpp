#include "algos/pr.hpp"

#include "core/logging.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

struct PrArrays
{
    DeviceGraph g;
    DevicePtr<float> rank;      ///< current rank, owner-written
    DevicePtr<float> pushed;    ///< per-sweep accumulator, the racy array
    DevicePtr<float> dangling;  ///< one cell: pooled dangling rank
    Variant variant;
};

/** Init: every vertex starts at 1/n. Owner-only stores; no races. */
Task
prInit(ThreadCtx& t, const PrArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const float uniform = 1.0f / static_cast<float>(a.g.num_vertices);
    co_await t.at(ECL_SITE("init rank[] uniform-store"))
        .store(a.rank, v, uniform);
}

/** Zero the sweep accumulator and the dangling pool (owner-only). */
Task
prZero(ThreadCtx& t, const PrArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    co_await t.at(ECL_SITE("zero pushed[] owner-store"))
        .store(a.pushed, v, 0.0f);
    if (v == 0)
        co_await t.at(ECL_SITE("zero dangling owner-store"))
            .store(a.dangling, 0, 0.0f);
}

/**
 * Push: scatter rank[v]/outdeg(v) onto every out-neighbor. The baseline
 * accumulates with a plain read-add-write — the harmful-tolerated race:
 * two concurrent pushes to the same target can lose one contribution
 * outright. The race-free code uses atomicAdd(float*). Dangling rank is
 * pooled atomically in both variants (the published baselines do the
 * same; a single shared scalar would otherwise lose nearly everything).
 */
Task
prPush(ThreadCtx& t, const PrArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 begin = co_await t.at(ECL_SITE("push row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("push row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);
    const float rv = co_await t.at(ECL_SITE("push rank[] own-load"))
                         .load(a.rank, v);
    if (begin == end) {
        co_await t.at(ECL_SITE("push dangling atomic-add"))
            .atomicAdd(a.dangling, 0, rv);
        co_return;
    }
    const float contribution = rv / static_cast<float>(end - begin);
    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("push col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (a.variant == Variant::kBaseline) {
            const float old =
                co_await t
                    .at(ECL_SITE_AS("push pushed[] accumulate-load",
                                    Expectation::kBoundedError))
                    .load(a.pushed, u);
            co_await t
                .at(ECL_SITE_AS("push pushed[] accumulate-store",
                                Expectation::kBoundedError))
                .store(a.pushed, u, old + contribution);
        } else {
            co_await t.at(ECL_SITE("push pushed[] atomic-add"))
                .atomicAdd(a.pushed, u, contribution);
        }
    }
}

/** Apply the damped update owner-only; no races (pushes are done). */
Task
prApply(ThreadCtx& t, const PrArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const float n = static_cast<float>(a.g.num_vertices);
    const float pushed = co_await t.at(ECL_SITE("apply pushed[] own-load"))
                             .load(a.pushed, v);
    const float pool = co_await t.at(ECL_SITE("apply dangling load"))
                           .load(a.dangling, 0);
    const float next =
        (1.0f - kPrDamping) / n + kPrDamping * (pushed + pool / n);
    co_await t.at(ECL_SITE("apply rank[] owner-store"))
        .store(a.rank, v, next);
}

}  // namespace

PrResult
runPr(simt::Engine& engine, const CsrGraph& graph, Variant variant)
{
    simt::DeviceMemory& memory = engine.memory();
    PrArrays a;
    a.g = uploadGraph(memory, graph);
    const u32 n = a.g.num_vertices;
    a.rank = memory.alloc<float>(std::max<u32>(n, 1), "pr.rank");
    a.pushed = memory.alloc<float>(std::max<u32>(n, 1), "pr.pushed");
    a.dangling = memory.alloc<float>(1, "pr.dangling");
    a.variant = variant;

    PrResult result;
    if (n == 0)
        return result;
    const auto cfg = simt::launchFor(n, kBlockSize);
    result.stats.add(engine.launch(
        "pr.init", cfg, [&a](ThreadCtx& t) { return prInit(t, a); }));
    for (u32 iter = 0; iter < kPrIterations; ++iter) {
        result.stats.add(engine.launch(
            "pr.zero", cfg, [&a](ThreadCtx& t) { return prZero(t, a); }));
        result.stats.add(engine.launch(
            "pr.push", cfg, [&a](ThreadCtx& t) { return prPush(t, a); }));
        result.stats.add(engine.launch(
            "pr.apply", cfg, [&a](ThreadCtx& t) { return prApply(t, a); }));
        ++result.stats.iterations;
    }

    result.ranks = memory.download(a.rank, n);
    return result;
}

}  // namespace eclsim::algos
