/**
 * @file
 * Weakly connected components by min-label propagation (the
 * Graphalytics reference scheme, also powergraph's wcc): labels start
 * as vertex ids and every sweep each vertex pushes its label onto any
 * neighbor holding a larger one, until no label moves.
 *
 * The baseline pushes with a plain guard-load + store, so two vertices
 * can concurrently lower the same neighbor's label — a write/write race
 * whose updates are monotonic (labels only ever decrease toward the
 * component minimum; a stale-read regression is re-lowered by a later
 * sweep, and the again-loop only exits at a store-free fixpoint). The
 * race-free variant claims the same minimum with atomicMin. Unlike CC's
 * union-find this keeps no parent forest — labels are values — so the
 * two undirected-components codes stress different racy idioms.
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Result of a WCC run. */
struct WccResult
{
    std::vector<VertexId> labels;  ///< component id = min vertex id
    RunStats stats;
};

/** Run WCC on an undirected graph. */
WccResult runWcc(simt::Engine& engine, const CsrGraph& graph,
                 Variant variant);

}  // namespace eclsim::algos
