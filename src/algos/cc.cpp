#include "algos/cc.hpp"

#include "core/logging.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

/**
 * Climb from vertex start to its current representative, shortening the
 * path along the way (ECL-CC's `representative()`). Reads and writes of
 * the parent array use the variant's access mode: plain loads/stores in
 * the baseline (the data race the paper eliminates), relaxed atomics in
 * the race-free code. Shared coroutine used by the compute and flatten
 * kernels via macro-free inlining: C++ coroutines cannot call awaiting
 * helpers cheaply, so the jump loop is expressed in the kernels directly
 * through this macro-like lambda pattern instead; see ccCompute below.
 */

struct CcArrays
{
    DeviceGraph g;
    DevicePtr<u32> parent;
    AccessMode mode;  ///< kPlain (baseline) or kAtomic (race-free)
    // heavy-vertex offload (ECL-CC's coarser processing granularities)
    DevicePtr<u32> heavy_arcs;  ///< arc ids of heavy vertices' edges
    u32 num_heavy_arcs = 0;
    u32 heavy_threshold = ~u32{0};  ///< degrees >= this are offloaded
};

/** Init: hook every vertex onto its first smaller-ID neighbor. */
Task
ccInit(ThreadCtx& t, const CcArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 begin = co_await t.at(ECL_SITE("init row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("init row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);
    u32 hook = v;
    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("init col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (u < v) {
            hook = u;
            break;
        }
    }
    co_await t.at(ECL_SITE("init parent[] hook-store"))
        .store(a.parent, v, hook, a.mode);
}

/**
 * Compute: union-find over every undirected edge (processed once, from
 * the larger endpoint). Pointer jumping with path shortening uses the
 * variant's access mode; the hook itself is a CAS in both variants, as
 * in the published ECL-CC.
 */
Task
ccCompute(ThreadCtx& t, const CcArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 begin = co_await t.at(ECL_SITE("compute row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("compute row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);
    if (end - begin >= a.heavy_threshold)
        co_return;  // handled edge-parallel by ccComputeHeavy

    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("compute col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (u >= v)
            continue;  // process each undirected edge from one side

        // representative(v) with path shortening
        u32 x = v;
        {
            u32 cur = co_await t
                          .at(ECL_SITE_AS("compute parent[] jump-load",
                                          Expectation::kStaleTolerant))
                          .load(a.parent, x, a.mode);
            if (cur != x) {
                u32 prev = x;
                u32 next;
                while (cur >
                       (next = co_await t
                                   .at(ECL_SITE_AS(
                                       "compute parent[] jump-load",
                                       Expectation::kStaleTolerant))
                                   .load(a.parent, cur, a.mode))) {
                    co_await t
                        .at(ECL_SITE_AS("compute parent[] shorten-store",
                                        Expectation::kMonotonic))
                        .store(a.parent, prev, next, a.mode);
                    prev = cur;
                    cur = next;
                }
            }
            x = cur;
        }
        // representative(u)
        u32 y = u;
        {
            u32 cur = co_await t
                          .at(ECL_SITE_AS("compute parent[] jump-load",
                                          Expectation::kStaleTolerant))
                          .load(a.parent, y, a.mode);
            if (cur != y) {
                u32 prev = y;
                u32 next;
                while (cur >
                       (next = co_await t
                                   .at(ECL_SITE_AS(
                                       "compute parent[] jump-load",
                                       Expectation::kStaleTolerant))
                                   .load(a.parent, cur, a.mode))) {
                    co_await t
                        .at(ECL_SITE_AS("compute parent[] shorten-store",
                                        Expectation::kMonotonic))
                        .store(a.parent, prev, next, a.mode);
                    prev = cur;
                    cur = next;
                }
            }
            y = cur;
        }

        // Hook the larger representative under the smaller one; the CAS
        // result tells us where to continue climbing on failure.
        while (x != y) {
            if (x < y) {
                const u32 tmp = x;
                x = y;
                y = tmp;
            }
            const u32 old = co_await t
                                .at(ECL_SITE_AS("compute parent[] hook-cas",
                                                Expectation::kMonotonic))
                                .atomicCas(a.parent, x, x, y);
            if (old == x)
                break;  // merged
            x = old;
        }
    }
}

/**
 * Edge-parallel compute for heavy (hub) vertices: one thread per
 * offloaded arc, so a single hub's adjacency list spreads across many
 * blocks and SMs instead of serializing in one thread (ECL-CC's warp/
 * block granularity, modeled edge-centric).
 */
Task
ccComputeHeavy(ThreadCtx& t, const CcArrays& a)
{
    const u32 i = t.globalThreadId();
    if (i >= a.num_heavy_arcs)
        co_return;
    const u32 e = co_await t.at(ECL_SITE("compute-heavy heavy_arcs[] load"))
                      .load(a.heavy_arcs, i);
    const u32 v = co_await t.at(ECL_SITE("compute-heavy arc_sources[] load"))
                      .load(a.g.arc_sources, e);
    const u32 u = co_await t.at(ECL_SITE("compute-heavy col_indices[] load"))
                      .load(a.g.col_indices, e);

    // representative(v) with path shortening
    u32 x = v;
    {
        u32 cur = co_await t
                      .at(ECL_SITE_AS("compute-heavy parent[] jump-load",
                                      Expectation::kStaleTolerant))
                      .load(a.parent, x, a.mode);
        if (cur != x) {
            u32 prev = x;
            u32 next;
            while (cur >
                   (next = co_await t
                               .at(ECL_SITE_AS(
                                   "compute-heavy parent[] jump-load",
                                   Expectation::kStaleTolerant))
                               .load(a.parent, cur, a.mode))) {
                co_await t
                    .at(ECL_SITE_AS("compute-heavy parent[] shorten-store",
                                    Expectation::kMonotonic))
                    .store(a.parent, prev, next, a.mode);
                prev = cur;
                cur = next;
            }
        }
        x = cur;
    }
    // representative(u)
    u32 y = u;
    {
        u32 cur = co_await t
                      .at(ECL_SITE_AS("compute-heavy parent[] jump-load",
                                      Expectation::kStaleTolerant))
                      .load(a.parent, y, a.mode);
        if (cur != y) {
            u32 prev = y;
            u32 next;
            while (cur >
                   (next = co_await t
                               .at(ECL_SITE_AS(
                                   "compute-heavy parent[] jump-load",
                                   Expectation::kStaleTolerant))
                               .load(a.parent, cur, a.mode))) {
                co_await t
                    .at(ECL_SITE_AS("compute-heavy parent[] shorten-store",
                                    Expectation::kMonotonic))
                    .store(a.parent, prev, next, a.mode);
                prev = cur;
                cur = next;
            }
        }
        y = cur;
    }
    while (x != y) {
        if (x < y) {
            const u32 tmp = x;
            x = y;
            y = tmp;
        }
        const u32 old = co_await t
                            .at(ECL_SITE_AS("compute-heavy parent[] hook-cas",
                                            Expectation::kMonotonic))
                            .atomicCas(a.parent, x, x, y);
        if (old == x)
            break;
        x = old;
    }
}

/** Flatten: collapse every vertex directly onto its root. */
Task
ccFlatten(ThreadCtx& t, const CcArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    u32 cur = co_await t
                  .at(ECL_SITE_AS("flatten parent[] jump-load",
                                  Expectation::kStaleTolerant))
                  .load(a.parent, v, a.mode);
    u32 next;
    while (cur > (next = co_await t
                             .at(ECL_SITE_AS("flatten parent[] jump-load",
                                             Expectation::kStaleTolerant))
                             .load(a.parent, cur, a.mode)))
        cur = next;
    co_await t
        .at(ECL_SITE_AS("flatten parent[] root-store",
                        Expectation::kMonotonic))
        .store(a.parent, v, cur, a.mode);
}

}  // namespace

CcResult
runCc(simt::Engine& engine, const CsrGraph& graph, Variant variant,
      const CcOptions& options)
{
    ECLSIM_ASSERT(!graph.directed(), "CC expects an undirected graph");
    simt::DeviceMemory& memory = engine.memory();
    CcArrays a;
    a.g = uploadGraph(memory, graph, /*with_weights=*/false,
                      /*with_sources=*/options.heavy_vertex_offload);
    a.parent = memory.alloc<u32>(std::max<u32>(a.g.num_vertices, 1),
                                 "cc.parent");
    a.mode = variant == Variant::kBaseline ? AccessMode::kPlain
                                           : AccessMode::kAtomic;

    if (options.heavy_vertex_offload) {
        a.heavy_threshold = options.heavy_degree_threshold;
        std::vector<u32> heavy;
        for (VertexId v = 0; v < graph.numVertices(); ++v) {
            if (graph.degree(v) < options.heavy_degree_threshold)
                continue;
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
                if (graph.arcTarget(e) < v)
                    heavy.push_back(static_cast<u32>(e));
        }
        a.num_heavy_arcs = static_cast<u32>(heavy.size());
        if (!heavy.empty()) {
            a.heavy_arcs =
                memory.alloc<u32>(heavy.size(), "cc.heavy_arcs");
            memory.upload(a.heavy_arcs, heavy);
        }
    }

    const auto cfg = simt::launchFor(a.g.num_vertices, kBlockSize);
    CcResult result;
    result.stats.add(engine.launch("cc.init", cfg, [&a](ThreadCtx& t) {
        return ccInit(t, a);
    }));
    result.stats.add(engine.launch("cc.compute", cfg, [&a](ThreadCtx& t) {
        return ccCompute(t, a);
    }));
    if (a.num_heavy_arcs > 0) {
        result.stats.add(engine.launch(
            "cc.compute_heavy", simt::launchFor(a.num_heavy_arcs, kBlockSize),
            [&a](ThreadCtx& t) { return ccComputeHeavy(t, a); }));
    }
    result.stats.add(engine.launch("cc.flatten", cfg, [&a](ThreadCtx& t) {
        return ccFlatten(t, a);
    }));
    result.stats.iterations = 1;

    result.labels = memory.download(a.parent, a.g.num_vertices);
    return result;
}

}  // namespace eclsim::algos
