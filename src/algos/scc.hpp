/**
 * @file
 * Strongly connected components in the style of ECL-SCC (Alabandi,
 * Sands, Biros & Burtscher, SC'23), the SCC code studied by the paper.
 *
 * The algorithm propagates, for every vertex, the maximum vertex ID on
 * its incoming paths and on its outgoing paths. A vertex whose two
 * maxima agree belongs to the SCC pivoted by that maximum — all vertices
 * act as pivots simultaneously, and the monotonicity of max-ID
 * propagation lets the kernels tolerate lost updates. Identified SCCs
 * are retired and the process repeats on the remainder.
 *
 * The two maxima are an int2 pair stored as one long long per vertex
 * (paper Section IV-C): the baseline reads/writes each half with plain
 * 32-bit accesses; the race-free variant uses the readFirst/readSecond/
 * writeFirst/writeSecond atomic helpers of Fig. 5. The global repeat
 * flag is the racy bool the paper converts to an atomic int.
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Result of an SCC run. */
struct SccResult
{
    std::vector<VertexId> labels;  ///< SCC id = pivot (max member) vertex
    RunStats stats;
};

/** SCC tuning knobs. */
struct SccOptions
{
    /**
     * Trim trivial SCCs up front: a vertex with no active predecessor or
     * no active successor cannot lie on any cycle, so it is its own SCC.
     * Iterated trimming peels chains of such vertices before the (much
     * more expensive) max-ID propagation — a standard optimization of
     * parallel SCC codes on power-law inputs, which decompose into one
     * giant SCC plus a large fringe of singletons.
     */
    bool trim_trivial = false;
};

/** Run strongly connected components on a directed graph. */
SccResult runScc(simt::Engine& engine, const CsrGraph& graph,
                 Variant variant, const SccOptions& options = {});

}  // namespace eclsim::algos
