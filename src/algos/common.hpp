/**
 * @file
 * Shared plumbing for the simulated ECL graph analytics codes.
 *
 * Every algorithm in the suite comes in two variants, exactly like the
 * paper's artifact:
 *
 *  - Variant::kBaseline: the original racy code. Shared mutable arrays
 *    are read and written with plain or volatile accesses (matching what
 *    each published baseline uses; Section IV-A of the paper).
 *  - Variant::kRaceFree: the converted code. Every access to shared
 *    mutable data is a relaxed atomic via the ecl:: helpers of
 *    Figures 2-5.
 *
 * Read-only graph structure (CSR offsets, targets, weights) is shared
 * safely by both variants: concurrent reads do not race.
 */
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "simt/engine.hpp"

namespace eclsim::algos {

using graph::CsrGraph;

/** Which side of the paper's comparison a run implements. */
enum class Variant : u8 {
    kBaseline,
    kRaceFree,
};

/** Printable variant name. */
const char* variantName(Variant variant);

/**
 * The codes with racy baselines (APSP has none; paper Section IV-A).
 * The first five are the paper's ECL codes; PR/BFS/WCC extend the study
 * to the Graphalytics suite. Lives here — below the harness, the chaos
 * campaign, and the racecheck runner — so every layer shares one
 * algorithm vocabulary (re-exported as harness::Algo).
 */
enum class Algo : u8 {
    kCc,
    kGc,
    kMis,
    kMst,
    kScc,
    kPr,
    kBfs,
    kWcc,
};

/** Printable algorithm name (the tables' column headers). */
const char* algoName(Algo algo);

/** True for the algorithms that run on the directed catalog inputs
 *  (SCC by the paper's Table III; PageRank and BFS by Graphalytics
 *  convention). WCC runs on the undirected inputs. */
bool algoNeedsDirected(Algo algo);

/** Aggregated statistics of one algorithm run (all launches summed). */
struct RunStats
{
    double ms = 0.0;   ///< total simulated kernel time
    u64 cycles = 0;    ///< total simulated cycles
    u32 launches = 0;
    u32 iterations = 0;  ///< algorithm-level sweeps / rounds
    simt::MemoryCounters mem;

    /** Fold one kernel launch into the totals. */
    void
    add(const simt::LaunchStats& launch)
    {
        ms += launch.ms;
        cycles += launch.cycles;
        ++launches;
        mem += launch.mem;
    }
};

/** CSR graph resident in simulated device memory. */
struct DeviceGraph
{
    u32 num_vertices = 0;
    u32 num_arcs = 0;
    simt::DevicePtr<u32> row_offsets;  ///< n+1 entries
    simt::DevicePtr<u32> col_indices;  ///< m entries
    simt::DevicePtr<i32> weights;      ///< m entries, only if uploaded
    simt::DevicePtr<u32> arc_sources;  ///< m entries, only if uploaded
};

/**
 * Upload a CSR graph into device memory (cudaMemcpy analogue).
 *
 * @param with_weights also upload edge weights (MST, APSP)
 * @param with_sources also upload the per-arc source vertex (MST's
 *        edge-centric connect phase needs to map an arc back to both
 *        endpoints)
 */
DeviceGraph uploadGraph(simt::DeviceMemory& memory, const CsrGraph& graph,
                        bool with_weights = false,
                        bool with_sources = false);

/** Standard thread-block size used by all kernels. */
constexpr u32 kBlockSize = 256;

/** Guard for iterative host loops; hit only on a simulator bug. */
constexpr u32 kMaxHostIterations = 100000;

}  // namespace eclsim::algos
