/**
 * @file
 * All-pairs shortest paths in the style of ECL-APSP (Liu & Burtscher,
 * 2021): the blocked Floyd-Warshall algorithm with shared-memory tiles.
 *
 * APSP is the one *regular* code in the suite: it processes every matrix
 * element with constant strides, each element is written by exactly one
 * thread per phase, and the phases are ordered by kernel boundaries —
 * so, as the paper observes in Section IV-A, the baseline has no data
 * races and no converted variant exists. It is included for suite
 * completeness and as a clean negative test for the race detector.
 *
 * Each round k processes one pivot tile: phase 1 relaxes the diagonal
 * tile in shared memory, phase 2 the pivot row and column tiles, and
 * phase 3 every remaining tile.
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Distance value meaning "unreachable" (safe against i32 overflow). */
constexpr i32 kApspInf = 1 << 28;

/** Result of an APSP run. */
struct ApspResult
{
    u32 n = 0;
    std::vector<i32> dist;  ///< row-major n*n distance matrix
    RunStats stats;

    i32
    at(u32 from, u32 to) const
    {
        return dist[static_cast<size_t>(from) * n + to];
    }
};

/** Tile edge length used by the blocked kernels. */
constexpr u32 kApspTile = 16;

/** Run all-pairs shortest paths on a weighted graph. O(n^3): intended
 *  for the small verification inputs, like the paper's 64x64 subblocks
 *  scaled to the simulator. */
ApspResult runApsp(simt::Engine& engine, const CsrGraph& graph);

}  // namespace eclsim::algos
