/**
 * @file
 * Connected components in the style of ECL-CC (Jaiganesh & Burtscher,
 * HPDC'18), the CC code studied by the paper.
 *
 * Three kernels: an init pass that hooks each vertex onto its first
 * smaller-ID neighbor, a compute pass that performs lock-free union-find
 * over every undirected edge with pointer jumping and path shortening,
 * and a flatten pass that collapses every vertex onto its root.
 *
 * The paper's Section VI-A singles out the pointer-jumping section: the
 * baseline reads and shortens the parent chain with plain non-volatile
 * accesses that hit in the L1, while the race-free version performs "an
 * atomic read and an atomic write for every jump", which is why the
 * converted CC loses the most performance of all five codes.
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Result of a CC run. */
struct CcResult
{
    std::vector<VertexId> labels;  ///< component id = root vertex id
    RunStats stats;
};

/**
 * Load-balancing options. ECL-CC "processes the vertices at thread,
 * warp, or block granularity depending on the number of neighbors"
 * (paper Section II-B). When heavy_vertex_offload is on, vertices whose
 * degree reaches heavy_degree_threshold are peeled out of the per-vertex
 * compute kernel and their edges are processed edge-parallel in a
 * separate kernel, spreading hub work across many blocks/SMs.
 */
struct CcOptions
{
    bool heavy_vertex_offload = false;
    u32 heavy_degree_threshold = 64;
};

/** Run connected components on an undirected graph. */
CcResult runCc(simt::Engine& engine, const CsrGraph& graph,
               Variant variant, const CcOptions& options = {});

}  // namespace eclsim::algos
