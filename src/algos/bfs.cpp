#include "algos/bfs.hpp"

#include "core/logging.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

struct BfsArrays
{
    DeviceGraph g;
    DevicePtr<u32> dist;   ///< level per vertex; kBfsUnvisited = unreached
    DevicePtr<u32> again;  ///< host loop flag: frontier grew this sweep
    u32 source = 0;
    u32 level = 0;  ///< the frontier level this sweep expands
    Variant variant;
};

/** Init: source at level 0, everyone else unvisited. Owner-only. */
Task
bfsInit(ThreadCtx& t, const BfsArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    co_await t.at(ECL_SITE("init dist[] owner-store"))
        .store(a.dist, v, v == a.source ? 0 : kBfsUnvisited);
}

/**
 * Expand one frontier level. The dist[] writes only ever drop the value
 * from the unvisited sentinel to the (sweep-wide single) next level, so
 * the racy duplicate writes are monotonic per address and idempotent per
 * sweep; a stale unvisited read merely causes another same-value write.
 */
Task
bfsPass(ThreadCtx& t, const BfsArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const bool atomic = a.variant == Variant::kRaceFree;

    u32 dv;
    if (atomic) {
        dv = co_await ecl::atomicRead(
            t.at(ECL_SITE("pass dist[] own-atomic-load")), a.dist, v);
    } else {
        dv = co_await t
                 .at(ECL_SITE_AS("pass dist[] own-load",
                                 Expectation::kStaleTolerant))
                 .load(a.dist, v);
    }
    if (dv != a.level)
        co_return;

    const u32 begin = co_await t.at(ECL_SITE("pass row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("pass row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);
    const u32 next = a.level + 1;
    bool discovered = false;
    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("pass col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (atomic) {
            const u32 old = co_await t
                                .at(ECL_SITE("pass dist[] claim-cas"))
                                .atomicCas(a.dist, u, kBfsUnvisited, next);
            discovered |= old == kBfsUnvisited;
        } else {
            const u32 du =
                co_await t
                    .at(ECL_SITE_AS("pass dist[] neighbor-load",
                                    Expectation::kStaleTolerant))
                    .load(a.dist, u);
            if (du == kBfsUnvisited) {
                co_await t
                    .at(ECL_SITE_AS("pass dist[] frontier-store",
                                    Expectation::kMonotonic))
                    .store(a.dist, u, next);
                discovered = true;
            }
        }
    }
    if (discovered) {
        if (atomic)
            co_await ecl::atomicWrite(
                t.at(ECL_SITE("pass again-flag atomic-store")), a.again, 0,
                u32{1});
        else
            co_await t
                .at(ECL_SITE_AS("pass again-flag store",
                                Expectation::kIdempotent))
                .store(a.again, 0, u32{1}, AccessMode::kVolatile);
    }
}

}  // namespace

BfsResult
runBfs(simt::Engine& engine, const CsrGraph& graph, Variant variant,
       VertexId source)
{
    simt::DeviceMemory& memory = engine.memory();
    BfsArrays a;
    a.g = uploadGraph(memory, graph);
    const u32 n = a.g.num_vertices;

    BfsResult result;
    if (n == 0)
        return result;
    ECLSIM_ASSERT(source < n, "BFS source {} out of range", source);
    a.dist = memory.alloc<u32>(n, "bfs.dist");
    a.again = memory.alloc<u32>(1, "bfs.again");
    a.source = source;
    a.variant = variant;

    const auto cfg = simt::launchFor(n, kBlockSize);
    result.stats.add(engine.launch(
        "bfs.init", cfg, [&a](ThreadCtx& t) { return bfsInit(t, a); }));
    for (u32 level = 0; level < kMaxHostIterations; ++level) {
        a.level = level;
        memory.write(a.again, u32{0});
        result.stats.add(engine.launch(
            "bfs.pass", cfg, [&a](ThreadCtx& t) { return bfsPass(t, a); }));
        ++result.stats.iterations;
        if (memory.read(a.again) == 0)
            break;
    }

    result.levels = memory.download(a.dist, n);
    return result;
}

}  // namespace eclsim::algos
