#include "algos/gc.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "core/rng.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

constexpr u32 kNoColor = ~u32{0};
/** Upper bound on distinct colors the kernel tracks in its bitset. */
constexpr u32 kMaxColors = 1024;
constexpr u32 kForbWords = kMaxColors / 64;

/** Largest-degree-first priority with hashed tiebreak. */
constexpr u32
gcPriority(u64 degree, VertexId v)
{
    const u32 deg = static_cast<u32>(std::min<u64>(degree, 0xffff));
    return (deg << 16) | (hash32(v) & 0xffffu);
}

/** True if (prio_a, a) outranks (prio_b, b). */
constexpr bool
outranks(u32 prio_a, u32 a, u32 prio_b, u32 b)
{
    return prio_a > prio_b || (prio_a == prio_b && a > b);
}

struct GcArrays
{
    DeviceGraph g;
    DevicePtr<u32> color;
    DevicePtr<u32> lowbound;  ///< lowest color each vertex could still take
    DevicePtr<u32> prio;      ///< static priorities (read-only)
    DevicePtr<u32> again;
    AccessMode mode;  ///< kVolatile (baseline) or kAtomic (race-free)
};

/** One Jones-Plassmann pass with the ECL-GC shortcuts. */
Task
gcPass(ThreadCtx& t, const GcArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    // Reading one's own color races with nobody (only v writes it), but
    // the published code reads the shared array the same way throughout.
    const u32 cv = co_await t
                       .at(ECL_SITE_AS("pass color[] own-load",
                                       Expectation::kStaleTolerant))
                       .load(a.color, v, a.mode);
    if (cv != kNoColor)
        co_return;

    const u32 my_prio = co_await t.at(ECL_SITE("pass prio[] own-load"))
                            .load(a.prio, v);
    const u32 begin = co_await t.at(ECL_SITE("pass row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("pass row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);

    u64 forbidden[kForbWords] = {};
    bool blocked = false;          ///< some higher-priority vtx uncolored
    u32 min_high_low = kNoColor;   ///< min lowbound among those vertices
    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("pass col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (u == v)
            continue;
        const u32 cu = co_await t
                           .at(ECL_SITE_AS("pass color[] neighbor-load",
                                           Expectation::kStaleTolerant))
                           .load(a.color, u, a.mode);
        if (cu != kNoColor) {
            ECLSIM_ASSERT(cu < kMaxColors,
                          "graph needs more than {} colors", kMaxColors);
            forbidden[cu / 64] |= u64{1} << (cu % 64);
        } else {
            const u32 pu = co_await t.at(ECL_SITE("pass prio[] neighbor-load"))
                               .load(a.prio, u);
            if (outranks(pu, u, my_prio, v)) {
                blocked = true;
                // Shortcut 1 needs this neighbor's lowest possible color.
                const u32 lb =
                    co_await t
                        .at(ECL_SITE_AS("pass posscol[] bound-load",
                                        Expectation::kStaleTolerant))
                        .load(a.lowbound, u, a.mode);
                min_high_low = std::min(min_high_low, lb);
            }
        }
    }

    // Candidate: smallest color not used by any colored neighbor.
    u32 candidate = 0;
    while (candidate < kMaxColors &&
           (forbidden[candidate / 64] >> (candidate % 64)) & 1)
        ++candidate;
    ECLSIM_ASSERT(candidate < kMaxColors, "graph needs more than {} colors",
                  kMaxColors);

    if (!blocked || candidate < min_high_low) {
        // Either every higher-priority neighbor is colored (classic
        // Jones-Plassmann) or the candidate provably cannot collide with
        // any of them (ECL-GC shortcut): color now.
        co_await t
            .at(ECL_SITE_AS("pass color[] publish-store",
                            Expectation::kStaleTolerant))
            .store(a.color, v, candidate, a.mode);
        co_return;
    }

    // Still blocked: publish the tightened lower bound (shortcut 2) and
    // request another pass.
    co_await t
        .at(ECL_SITE_AS("pass posscol[] bound-store",
                        Expectation::kMonotonic))
        .store(a.lowbound, v, candidate, a.mode);
    co_await t
        .at(ECL_SITE_AS("pass again-flag store",
                        Expectation::kIdempotent))
        .store(a.again, 0, u32{1}, a.mode);
}

}  // namespace

GcResult
runGc(simt::Engine& engine, const CsrGraph& graph, Variant variant,
      const GcOptions& options)
{
    ECLSIM_ASSERT(!graph.directed(), "GC expects an undirected graph");
    simt::DeviceMemory& memory = engine.memory();

    GcArrays a;
    a.g = uploadGraph(memory, graph);
    const u32 n = std::max<u32>(a.g.num_vertices, 1);
    a.color = memory.alloc<u32>(n, "gc.color");
    a.lowbound = memory.alloc<u32>(n, "gc.posscol");
    a.prio = memory.alloc<u32>(n, "gc.priority");
    a.again = memory.alloc<u32>(1, "gc.again");
    a.mode = variant == Variant::kBaseline ? AccessMode::kVolatile
                                           : AccessMode::kAtomic;

    memory.fill(a.color, n, kNoColor);
    memory.fill(a.lowbound, n, u32{0});
    std::vector<u32> prio(n, 0);
    for (VertexId v = 0; v < a.g.num_vertices; ++v) {
        if (options.priority == GcPriorityMode::kLargestDegreeFirst)
            prio[v] = gcPriority(graph.degree(v), v);
        else
            prio[v] = static_cast<u32>(
                hash64(options.priority_seed ^ (v + 1)));
    }
    memory.upload(a.prio, prio);

    GcResult result;
    const auto cfg = simt::launchFor(a.g.num_vertices, kBlockSize);
    for (u32 iter = 0; iter < kMaxHostIterations; ++iter) {
        memory.write(a.again, u32{0});
        result.stats.add(engine.launch(
            "gc.pass", cfg, [&a](ThreadCtx& t) { return gcPass(t, a); }));
        ++result.stats.iterations;
        if (memory.read(a.again) == 0)
            break;
    }

    result.colors = memory.download(a.color, a.g.num_vertices);
    u32 max_color = 0;
    for (u32 c : result.colors) {
        ECLSIM_ASSERT(c != kNoColor, "vertex left uncolored after GC");
        max_color = std::max(max_color, c + 1);
    }
    result.num_colors = max_color;
    return result;
}

}  // namespace eclsim::algos
