/**
 * @file
 * PageRank in the push style of the Graphalytics reference codes: every
 * vertex scatters rank/outdegree along its out-arcs each sweep, dangling
 * rank is pooled, and the damped update is applied owner-only.
 *
 * This is the suite's first *harmful-tolerated* race: the baseline
 * accumulates contributions into pushed[] with a plain float load/store
 * pair, so concurrent pushes to a shared target lose updates — genuinely
 * corrupting rank mass, not merely reordering it. The race-free variant
 * uses atomicAdd(float*) (RmwOp::kAddF). Correctness is therefore judged
 * against the sequential double-precision oracle under an L1-norm bound
 * (kPrL1Epsilon) instead of bit equality, and the racecheck gate accepts
 * the racy sites only while that bound holds.
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Power-iteration sweeps; fixed, matching the oracle. */
constexpr u32 kPrIterations = 10;

/** Damping factor (the Graphalytics / original-paper constant). */
constexpr float kPrDamping = 0.85f;

/**
 * Accepted L1 distance between a simulated rank vector and the oracle's.
 * Sized to admit float rounding and the baseline's lost updates on the
 * scaled stand-in inputs, while rejecting grossly corrupted results
 * (e.g. the chaos drop-atomic policy discarding whole contributions).
 */
constexpr double kPrL1Epsilon = 0.05;

/** Result of a PageRank run. */
struct PrResult
{
    std::vector<float> ranks;  ///< one rank per vertex, sums to ~1
    RunStats stats;
};

/** Run PageRank; meaningful on directed inputs (works on any graph). */
PrResult runPr(simt::Engine& engine, const CsrGraph& graph,
               Variant variant);

}  // namespace eclsim::algos
