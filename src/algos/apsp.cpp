#include "algos/apsp.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "racecheck/sites.hpp"

namespace eclsim::algos {

namespace {

using simt::DevicePtr;
using simt::LaunchConfig;
using simt::Task;
using simt::ThreadCtx;

constexpr u32 kB = kApspTile;

struct ApspArrays
{
    DevicePtr<i32> dist;
    u32 np = 0;  ///< padded matrix dimension (multiple of kB)
    u32 nb = 0;  ///< number of tiles per dimension
    u32 k = 0;   ///< current pivot tile
};

/** Phase 1: relax the pivot (diagonal) tile entirely in shared memory. */
Task
apspPhase1(ThreadCtx& t, const ApspArrays& a)
{
    i32* tile = t.sharedArray<i32>(kB * kB);
    const u32 tx = t.threadX();
    const u32 ty = t.threadY();
    const u32 row = a.k * kB + ty;
    const u32 col = a.k * kB + tx;

    tile[ty * kB + tx] =
        co_await t.at(ECL_SITE("phase1 dist[] tile-load"))
            .load(a.dist, static_cast<u64>(row) * a.np + col);
    co_await t.syncthreads();
    for (u32 kk = 0; kk < kB; ++kk) {
        const i32 through = tile[ty * kB + kk] + tile[kk * kB + tx];
        if (through < tile[ty * kB + tx])
            tile[ty * kB + tx] = through;
        t.work(4);
        co_await t.syncthreads();
    }
    co_await t.at(ECL_SITE("phase1 dist[] tile-store"))
        .store(a.dist, static_cast<u64>(row) * a.np + col,
               tile[ty * kB + tx]);
}

/** Phase 2: relax the pivot row and pivot column tiles. */
Task
apspPhase2(ThreadCtx& t, const ApspArrays& a)
{
    i32* own = t.sharedArray<i32>(kB * kB);
    i32* diag = t.sharedArray<i32>(kB * kB);
    const u32 tx = t.threadX();
    const u32 ty = t.threadY();

    // Blocks [0, nb-1) handle pivot-row tiles, the rest pivot-column.
    const u32 half = a.nb - 1;
    const bool is_row = t.blockId() < half;
    u32 other = is_row ? t.blockId() : t.blockId() - half;
    if (other >= a.k)
        ++other;  // skip the pivot tile itself

    const u32 row = (is_row ? a.k : other) * kB + ty;
    const u32 col = (is_row ? other : a.k) * kB + tx;
    const u32 drow = a.k * kB + ty;
    const u32 dcol = a.k * kB + tx;

    own[ty * kB + tx] =
        co_await t.at(ECL_SITE("phase2 dist[] tile-load"))
            .load(a.dist, static_cast<u64>(row) * a.np + col);
    diag[ty * kB + tx] =
        co_await t.at(ECL_SITE("phase2 dist[] pivot-load"))
            .load(a.dist, static_cast<u64>(drow) * a.np + dcol);
    co_await t.syncthreads();

    for (u32 kk = 0; kk < kB; ++kk) {
        const i32 through = is_row
                                ? diag[ty * kB + kk] + own[kk * kB + tx]
                                : own[ty * kB + kk] + diag[kk * kB + tx];
        if (through < own[ty * kB + tx])
            own[ty * kB + tx] = through;
        t.work(4);
        co_await t.syncthreads();
    }
    co_await t.at(ECL_SITE("phase2 dist[] tile-store"))
        .store(a.dist, static_cast<u64>(row) * a.np + col,
               own[ty * kB + tx]);
}

/** Phase 3: relax every remaining tile against the pivot strips. */
Task
apspPhase3(ThreadCtx& t, const ApspArrays& a)
{
    i32* strip_col = t.sharedArray<i32>(kB * kB);  // tile (i, k)
    i32* strip_row = t.sharedArray<i32>(kB * kB);  // tile (k, j)
    const u32 tx = t.threadX();
    const u32 ty = t.threadY();

    const u32 side = a.nb - 1;
    u32 i = t.blockId() / side;
    u32 j = t.blockId() % side;
    if (i >= a.k)
        ++i;
    if (j >= a.k)
        ++j;

    const u32 row = i * kB + ty;
    const u32 col = j * kB + tx;

    strip_col[ty * kB + tx] =
        co_await t.at(ECL_SITE("phase3 dist[] strip-load"))
            .load(a.dist, static_cast<u64>(row) * a.np + a.k * kB + tx);
    strip_row[ty * kB + tx] =
        co_await t.at(ECL_SITE("phase3 dist[] strip-load"))
            .load(a.dist, static_cast<u64>(a.k * kB + ty) * a.np + col);
    i32 mine = co_await t.at(ECL_SITE("phase3 dist[] tile-load"))
                   .load(a.dist, static_cast<u64>(row) * a.np + col);
    co_await t.syncthreads();

    for (u32 kk = 0; kk < kB; ++kk) {
        const i32 through =
            strip_col[ty * kB + kk] + strip_row[kk * kB + tx];
        if (through < mine)
            mine = through;
    }
    t.work(4 * kB);
    co_await t.at(ECL_SITE("phase3 dist[] tile-store"))
        .store(a.dist, static_cast<u64>(row) * a.np + col, mine);
}

}  // namespace

ApspResult
runApsp(simt::Engine& engine, const CsrGraph& graph)
{
    ECLSIM_ASSERT(graph.weighted(), "APSP expects a weighted graph");
    simt::DeviceMemory& memory = engine.memory();

    const u32 n = graph.numVertices();
    const u32 np = (n + kB - 1) / kB * kB;
    const u32 nb = np / kB;

    ApspArrays a;
    a.np = np;
    a.nb = nb;
    a.dist = memory.alloc<i32>(static_cast<u64>(np) * np, "apsp.dist");

    // Host-side matrix init (adjacency with min-weight multi-edges).
    std::vector<i32> init(static_cast<size_t>(np) * np, kApspInf);
    for (u32 v = 0; v < np; ++v)
        init[static_cast<size_t>(v) * np + v] = 0;
    for (VertexId v = 0; v < n; ++v)
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const VertexId u = graph.arcTarget(e);
            i32& cell = init[static_cast<size_t>(v) * np + u];
            cell = std::min(cell, graph.arcWeight(e));
        }
    memory.upload(a.dist, init);

    ApspResult result;
    result.n = n;

    LaunchConfig tile_cfg;
    tile_cfg.block_x = kB;
    tile_cfg.block_y = kB;
    tile_cfg.shared_bytes = 2 * kB * kB * sizeof(i32);

    for (u32 k = 0; k < nb; ++k) {
        a.k = k;
        tile_cfg.grid = 1;
        result.stats.add(engine.launch(
            "apsp.phase1", tile_cfg,
            [&a](ThreadCtx& t) { return apspPhase1(t, a); }));
        if (nb > 1) {
            tile_cfg.grid = 2 * (nb - 1);
            result.stats.add(engine.launch(
                "apsp.phase2", tile_cfg,
                [&a](ThreadCtx& t) { return apspPhase2(t, a); }));
            tile_cfg.grid = (nb - 1) * (nb - 1);
            result.stats.add(engine.launch(
                "apsp.phase3", tile_cfg,
                [&a](ThreadCtx& t) { return apspPhase3(t, a); }));
        }
        ++result.stats.iterations;
    }

    // Download the n x n corner of the padded matrix.
    const auto full = memory.download(a.dist, static_cast<u64>(np) * np);
    result.dist.resize(static_cast<size_t>(n) * n);
    for (u32 r = 0; r < n; ++r)
        for (u32 c = 0; c < n; ++c)
            result.dist[static_cast<size_t>(r) * n + c] =
                full[static_cast<size_t>(r) * np + c];
    return result;
}

}  // namespace eclsim::algos
