#include "algos/wcc.hpp"

#include "core/logging.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

struct WccArrays
{
    DeviceGraph g;
    DevicePtr<u32> label;  ///< current component label per vertex
    DevicePtr<u32> again;  ///< host loop flag: some label moved
    Variant variant;
};

/** Init: every vertex is its own component. Owner-only stores. */
Task
wccInit(ThreadCtx& t, const WccArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    co_await t.at(ECL_SITE("init label[] owner-store")).store(a.label, v, v);
}

/**
 * One propagation sweep: push this vertex's label onto every neighbor
 * holding a larger one. The baseline's guard-load can go stale and its
 * store can regress a concurrently-lowered label, but every store is
 * monotonic from the writer's view and the host loop only stops at a
 * store-free fixpoint, where labels are constant per component.
 */
Task
wccPass(ThreadCtx& t, const WccArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const bool atomic = a.variant == Variant::kRaceFree;

    u32 lv;
    if (atomic) {
        lv = co_await ecl::atomicRead(
            t.at(ECL_SITE("pass label[] own-atomic-load")), a.label, v);
    } else {
        lv = co_await t
                 .at(ECL_SITE_AS("pass label[] own-load",
                                 Expectation::kStaleTolerant))
                 .load(a.label, v);
    }

    const u32 begin = co_await t.at(ECL_SITE("pass row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("pass row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);
    bool moved = false;
    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("pass col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (atomic) {
            const u32 old = co_await t
                                .at(ECL_SITE("pass label[] min-rmw"))
                                .atomicMin(a.label, u, lv);
            moved |= lv < old;
        } else {
            const u32 lu =
                co_await t
                    .at(ECL_SITE_AS("pass label[] neighbor-load",
                                    Expectation::kStaleTolerant))
                    .load(a.label, u);
            if (lv < lu) {
                co_await t
                    .at(ECL_SITE_AS("pass label[] min-store",
                                    Expectation::kMonotonic))
                    .store(a.label, u, lv);
                moved = true;
            }
        }
    }
    if (moved) {
        if (atomic)
            co_await ecl::atomicWrite(
                t.at(ECL_SITE("pass again-flag atomic-store")), a.again, 0,
                u32{1});
        else
            co_await t
                .at(ECL_SITE_AS("pass again-flag store",
                                Expectation::kIdempotent))
                .store(a.again, 0, u32{1}, AccessMode::kVolatile);
    }
}

}  // namespace

WccResult
runWcc(simt::Engine& engine, const CsrGraph& graph, Variant variant)
{
    ECLSIM_ASSERT(!graph.directed(), "WCC expects an undirected graph");
    simt::DeviceMemory& memory = engine.memory();
    WccArrays a;
    a.g = uploadGraph(memory, graph);
    const u32 n = a.g.num_vertices;

    WccResult result;
    if (n == 0)
        return result;
    a.label = memory.alloc<u32>(n, "wcc.label");
    a.again = memory.alloc<u32>(1, "wcc.again");
    a.variant = variant;

    const auto cfg = simt::launchFor(n, kBlockSize);
    result.stats.add(engine.launch(
        "wcc.init", cfg, [&a](ThreadCtx& t) { return wccInit(t, a); }));
    for (u32 iter = 0; iter < kMaxHostIterations; ++iter) {
        memory.write(a.again, u32{0});
        result.stats.add(engine.launch(
            "wcc.pass", cfg, [&a](ThreadCtx& t) { return wccPass(t, a); }));
        ++result.stats.iterations;
        if (memory.read(a.again) == 0)
            break;
    }

    result.labels = memory.download(a.label, n);
    return result;
}

}  // namespace eclsim::algos
