#include "algos/mis.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "core/rng.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

/** True if the status byte means "still undecided". */
constexpr bool
undecided(u8 stat)
{
    return stat != kMisOut && stat != kMisIn;
}

/** Lexicographic priority comparison with vertex-ID tiebreak. */
constexpr bool
beats(u8 prio_a, u32 a, u8 prio_b, u32 b)
{
    return prio_a > prio_b || (prio_a == prio_b && a > b);
}

struct MisArrays
{
    DeviceGraph g;
    DevicePtr<u8> stat;
    DevicePtr<u32> again;
    Variant variant;
};

/** One decision sweep over all still-undecided vertices. */
Task
misPass(ThreadCtx& t, const MisArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const bool atomic = a.variant == Variant::kRaceFree;

    u8 sv;
    if (atomic) {
        const u32 word = co_await ecl::atomicReadByteWord(
            t.at(ECL_SITE("pass nstat[] own-atomic-load")), a.stat, v);
        sv = ecl::extractByte(word, v);
    } else {
        sv = co_await t
                 .at(ECL_SITE_AS("pass nstat[] own-load",
                                 Expectation::kStaleTolerant))
                 .load(a.stat, v, AccessMode::kVolatile);
    }
    if (!undecided(sv))
        co_return;

    const u32 begin = co_await t.at(ECL_SITE("pass row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end = co_await t.at(ECL_SITE("pass row_offsets[] end-load"))
                        .load(a.g.row_offsets, v + 1);

    bool in_neighbor = false;
    bool best = true;
    for (u32 e = begin; e < end && best; ++e) {
        const u32 u = co_await t.at(ECL_SITE("pass col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (u == v)
            continue;
        u8 su;
        if (atomic) {
            const u32 word = co_await ecl::atomicReadByteWord(
                t.at(ECL_SITE("pass nstat[] neighbor-atomic-load")), a.stat,
                u);
            su = ecl::extractByte(word, u);
        } else {
            su = co_await t
                     .at(ECL_SITE_AS("pass nstat[] neighbor-load",
                                     Expectation::kStaleTolerant))
                     .load(a.stat, u, AccessMode::kVolatile);
        }
        if (su == kMisIn) {
            in_neighbor = true;
            break;
        }
        if (undecided(su) && beats(su, u, sv, v))
            best = false;
    }

    if (in_neighbor) {
        // A neighbor made it into the set; this vertex is out.
        if (atomic)
            co_await ecl::atomicByteAnd(
                t.at(ECL_SITE("pass nstat[] out-atomic-and")), a.stat, v,
                kMisOut);
        else
            co_await t
                .at(ECL_SITE_AS("pass nstat[] out-store",
                                Expectation::kIdempotent))
                .store(a.stat, v, kMisOut, AccessMode::kVolatile);
        co_return;
    }
    if (!best) {
        // Still undecided; ask the host for another sweep.
        if (atomic)
            co_await ecl::atomicWrite(
                t.at(ECL_SITE("pass again-flag atomic-store")), a.again, 0,
                u32{1});
        else
            co_await t
                .at(ECL_SITE_AS("pass again-flag store",
                                Expectation::kIdempotent))
                .store(a.again, 0, u32{1}, AccessMode::kVolatile);
        co_return;
    }

    // Highest priority in the undecided neighborhood: join the set and
    // knock every undecided neighbor out.
    if (atomic)
        co_await ecl::atomicByteOr(
            t.at(ECL_SITE("pass nstat[] join-atomic-or")), a.stat, v,
            kMisIn);
    else
        co_await t
            .at(ECL_SITE_AS("pass nstat[] join-store",
                            Expectation::kIdempotent))
            .store(a.stat, v, kMisIn, AccessMode::kVolatile);
    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("pass col_indices[] knock-load"))
                          .load(a.g.col_indices, e);
        if (u == v)
            continue;
        if (atomic)
            co_await ecl::atomicByteAnd(
                t.at(ECL_SITE("pass nstat[] knockout-atomic-and")), a.stat,
                u, kMisOut);
        else
            co_await t
                .at(ECL_SITE_AS("pass nstat[] knockout-store",
                                Expectation::kIdempotent))
                .store(a.stat, u, kMisOut, AccessMode::kVolatile);
    }
}

}  // namespace

u8
misPriority(VertexId v, u64 degree)
{
    // Partially random, inversely proportional to degree (ECL-MIS):
    // low-degree vertices get a head start, the hash breaks the rest.
    const u32 invdeg =
        120u / static_cast<u32>(2 + std::min<u64>(degree, 118));
    const u32 jitter = hash32(v) % 130u;
    const u32 prio = 2 + 2 * invdeg + jitter;  // in [2, 251]
    return static_cast<u8>(prio);
}

MisResult
runMis(simt::Engine& engine, const CsrGraph& graph, Variant variant,
       const MisOptions& options)
{
    ECLSIM_ASSERT(!graph.directed(), "MIS expects an undirected graph");
    simt::DeviceMemory& memory = engine.memory();

    MisArrays a;
    a.g = uploadGraph(memory, graph);
    const u32 n = a.g.num_vertices;
    // Pad to a word multiple so the race-free variant's int-granule
    // accesses stay in bounds (paper Fig. 3 requires this too).
    const u64 padded = (static_cast<u64>(n) + 3) / 4 * 4;
    // The baseline's plain char accesses are subject to delayed update
    // visibility (see file comment in mis.hpp).
    a.stat = memory.alloc<u8>(std::max<u64>(padded, 4), "mis.node_stat",
                              variant == Variant::kBaseline
                                  ? simt::Visibility::kSweepSnapshot
                                  : simt::Visibility::kLive);
    a.again = memory.alloc<u32>(1, "mis.again");
    a.variant = variant;

    // Host-side init (the published code computes priorities in a tiny
    // init kernel; the cost is negligible either way).
    std::vector<u8> init(padded, kMisOut);
    for (VertexId v = 0; v < n; ++v) {
        if (options.priority == MisPriorityMode::kDegreeWeighted) {
            init[v] = misPriority(v, graph.degree(v));
        } else {
            // plain Luby: uniformly random priority in [2, 253]
            const u64 h = hash64(options.priority_seed ^ (v + 1));
            init[v] = static_cast<u8>(2 + h % 252);
        }
    }
    memory.upload(a.stat, init);

    MisResult result;
    const auto cfg = simt::launchFor(n, kBlockSize);
    for (u32 iter = 0; iter < kMaxHostIterations; ++iter) {
        memory.write(a.again, u32{0});
        result.stats.add(engine.launch(
            "mis.pass", cfg, [&a](ThreadCtx& t) { return misPass(t, a); }));
        ++result.stats.iterations;
        if (memory.read(a.again) == 0)
            break;
    }

    const auto stat = memory.download(a.stat, n);
    result.in_set.resize(n);
    for (VertexId v = 0; v < n; ++v) {
        ECLSIM_ASSERT(!undecided(stat[v]),
                      "vertex {} left undecided after MIS", v);
        result.in_set[v] = stat[v] == kMisIn;
        result.set_size += result.in_set[v] ? 1 : 0;
    }
    return result;
}

}  // namespace eclsim::algos
