#include "algos/scc.hpp"

#include "core/logging.hpp"
#include "racecheck/sites.hpp"
#include "simt/ecl_atomics.hpp"

namespace eclsim::algos {

namespace {

using racecheck::Expectation;
using simt::AccessMode;
using simt::DevicePtr;
using simt::Task;
using simt::ThreadCtx;

constexpr u32 kUnassigned = ~u32{0};

struct SccArrays
{
    DeviceGraph g;
    DeviceGraph rev;        ///< reverse arcs (only for trimming)
    DevicePtr<u64> pair;    ///< (in_max, out_max) int2 stored as long long
    DevicePtr<u32> label;   ///< kUnassigned while the vertex is active
    DevicePtr<u32> repeat;  ///< the racy bool -> atomic int of the paper
    Variant variant;
};

/**
 * Trim pass: an active vertex with no active predecessor or no active
 * successor lies on no cycle — retire it as its own SCC. Label writes
 * are to the thread's own slot (no race in either variant); the reads
 * of other labels race benignly in the baseline sense, but since labels
 * transition monotonically from kUnassigned to final exactly once, the
 * pass is restartable and the repeat flag re-runs it to a fixpoint.
 */
Task
sccTrim(ThreadCtx& t, const SccArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    if (co_await t
            .at(ECL_SITE_AS("trim label[] own-load",
                            Expectation::kStaleTolerant))
            .load(a.label, v) != kUnassigned)
        co_return;

    bool active_succ = false;
    {
        const u32 begin = co_await t.at(ECL_SITE("trim row_offsets[] load"))
                              .load(a.g.row_offsets, v);
        const u32 end = co_await t.at(ECL_SITE("trim row_offsets[] end-load"))
                            .load(a.g.row_offsets, v + 1);
        for (u32 e = begin; e < end && !active_succ; ++e) {
            const u32 u = co_await t.at(ECL_SITE("trim col_indices[] load"))
                              .load(a.g.col_indices, e);
            if (u != v &&
                (co_await t
                     .at(ECL_SITE_AS("trim label[] succ-load",
                                     Expectation::kStaleTolerant))
                     .load(a.label, u)) == kUnassigned)
                active_succ = true;
        }
    }
    bool active_pred = false;
    if (active_succ) {
        const u32 begin =
            co_await t.at(ECL_SITE("trim rev-row_offsets[] load"))
                .load(a.rev.row_offsets, v);
        const u32 end =
            co_await t.at(ECL_SITE("trim rev-row_offsets[] end-load"))
                .load(a.rev.row_offsets, v + 1);
        for (u32 e = begin; e < end && !active_pred; ++e) {
            const u32 u =
                co_await t.at(ECL_SITE("trim rev-col_indices[] load"))
                    .load(a.rev.col_indices, e);
            if (u != v &&
                (co_await t
                     .at(ECL_SITE_AS("trim label[] pred-load",
                                     Expectation::kStaleTolerant))
                     .load(a.label, u)) == kUnassigned)
                active_pred = true;
        }
    }
    if (!active_succ || !active_pred) {
        co_await t
            .at(ECL_SITE_AS("trim label[] retire-store",
                            Expectation::kMonotonic))
            .store(a.label, v, v);  // trivial SCC
        if (a.variant == Variant::kRaceFree)
            co_await ecl::atomicWrite(
                t.at(ECL_SITE("trim repeat-flag atomic-store")), a.repeat,
                0, u32{1});
        else
            co_await t
                .at(ECL_SITE_AS("trim repeat-flag store",
                                Expectation::kIdempotent))
                .store(a.repeat, 0, u32{1});
    }
}

/** (Re)initialize every active vertex's pair to (v, v). */
Task
sccInit(ThreadCtx& t, const SccArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 lab = co_await t.at(ECL_SITE("init label[] load"))
                        .load(a.label, v);
    if (lab != kUnassigned)
        co_return;
    if (a.variant == Variant::kRaceFree) {
        co_await ecl::writeFirst(
            t.at(ECL_SITE("init pair[] seed-atomic-store")), a.pair, v, v);
        co_await ecl::writeSecond(
            t.at(ECL_SITE("init pair[] seed-atomic-store")), a.pair, v, v);
    } else {
        co_await ecl::plainWriteFirst(
            t.at(ECL_SITE("init pair[] seed-store")), a.pair, v, v);
        co_await ecl::plainWriteSecond(
            t.at(ECL_SITE("init pair[] seed-store")), a.pair, v, v);
    }
}

/**
 * One propagation sweep: push in_max along each active arc and pull
 * out_max against it. Monotone max updates tolerate lost updates; the
 * repeat flag re-runs the sweep until a fixpoint.
 */
Task
sccPropagate(ThreadCtx& t, const SccArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 lab = co_await t
                        .at(ECL_SITE_AS("propagate label[] load",
                                        Expectation::kStaleTolerant))
                        .load(a.label, v);
    if (lab != kUnassigned)
        co_return;
    const bool atomic = a.variant == Variant::kRaceFree;

    const u32 begin = co_await t.at(ECL_SITE("propagate row_offsets[] load"))
                          .load(a.g.row_offsets, v);
    const u32 end =
        co_await t.at(ECL_SITE("propagate row_offsets[] end-load"))
            .load(a.g.row_offsets, v + 1);

    u32 my_in =
        atomic ? co_await ecl::readFirst(
                     t.at(ECL_SITE("propagate pair[] in-atomic-load")),
                     a.pair, v)
               : co_await ecl::plainReadFirst(
                     t.at(ECL_SITE_AS("propagate pair[] in-load",
                                      Expectation::kStaleTolerant)),
                     a.pair, v);
    u32 my_out =
        atomic ? co_await ecl::readSecond(
                     t.at(ECL_SITE("propagate pair[] out-atomic-load")),
                     a.pair, v)
               : co_await ecl::plainReadSecond(
                     t.at(ECL_SITE_AS("propagate pair[] out-load",
                                      Expectation::kStaleTolerant)),
                     a.pair, v);
    bool changed = false;

    for (u32 e = begin; e < end; ++e) {
        const u32 u = co_await t.at(ECL_SITE("propagate col_indices[] load"))
                          .load(a.g.col_indices, e);
        if (u == v)
            continue;
        const u32 lab_u = co_await t
                              .at(ECL_SITE_AS("propagate label[] load",
                                              Expectation::kStaleTolerant))
                              .load(a.label, u);
        if (lab_u != kUnassigned)
            continue;  // retired SCCs do not carry paths

        // Push: the maximum ID reaching v also reaches u (arc v->u).
        const u32 u_in =
            atomic ? co_await ecl::readFirst(
                         t.at(ECL_SITE("propagate pair[] in-atomic-load")),
                         a.pair, u)
                   : co_await ecl::plainReadFirst(
                         t.at(ECL_SITE_AS("propagate pair[] in-load",
                                          Expectation::kStaleTolerant)),
                         a.pair, u);
        if (my_in > u_in) {
            if (atomic)
                co_await ecl::writeFirst(
                    t.at(ECL_SITE("propagate pair[] push-atomic-store")),
                    a.pair, u, my_in);
            else
                co_await ecl::plainWriteFirst(
                    t.at(ECL_SITE_AS("propagate pair[] push-store",
                                     Expectation::kMonotonic)),
                    a.pair, u, my_in);
            changed = true;
        }
        // Pull: anything reachable from u is reachable from v.
        const u32 u_out =
            atomic ? co_await ecl::readSecond(
                         t.at(ECL_SITE("propagate pair[] out-atomic-load")),
                         a.pair, u)
                   : co_await ecl::plainReadSecond(
                         t.at(ECL_SITE_AS("propagate pair[] out-load",
                                          Expectation::kStaleTolerant)),
                         a.pair, u);
        if (u_out > my_out) {
            my_out = u_out;
            changed = true;
        }
    }
    // Hoisted out of the comparison: GCC 12 miscompiles a co_await
    // conditional nested in a larger expression (both arms execute),
    // which issued a spurious extra pair[] read on every thread.
    u32 cur_out;
    if (atomic)
        cur_out = co_await ecl::readSecond(
            t.at(ECL_SITE("propagate pair[] out-atomic-load")), a.pair, v);
    else
        cur_out = co_await ecl::plainReadSecond(
            t.at(ECL_SITE_AS("propagate pair[] out-load",
                             Expectation::kStaleTolerant)),
            a.pair, v);
    if (my_out > cur_out) {
        if (atomic)
            co_await ecl::writeSecond(
                t.at(ECL_SITE("propagate pair[] pull-atomic-store")),
                a.pair, v, my_out);
        else
            co_await ecl::plainWriteSecond(
                t.at(ECL_SITE_AS("propagate pair[] pull-store",
                                 Expectation::kMonotonic)),
                a.pair, v, my_out);
    }
    if (changed) {
        if (atomic)
            co_await ecl::atomicWrite(
                t.at(ECL_SITE("propagate repeat-flag atomic-store")),
                a.repeat, 0, u32{1});
        else
            co_await t
                .at(ECL_SITE_AS("propagate repeat-flag store",
                                Expectation::kIdempotent))
                .store(a.repeat, 0, u32{1});
    }
}

/**
 * Classification: a vertex whose incoming and outgoing maxima agree
 * belongs to the SCC pivoted by that vertex; everyone else resets for
 * the next round.
 */
Task
sccClassify(ThreadCtx& t, const SccArrays& a)
{
    const u32 v = t.globalThreadId();
    if (v >= a.g.num_vertices)
        co_return;
    const u32 lab = co_await t
                        .at(ECL_SITE_AS("classify label[] own-load",
                                        Expectation::kStaleTolerant))
                        .load(a.label, v);
    if (lab != kUnassigned)
        co_return;
    const bool atomic = a.variant == Variant::kRaceFree;
    const u32 my_in =
        atomic ? co_await ecl::readFirst(
                     t.at(ECL_SITE("classify pair[] in-atomic-load")),
                     a.pair, v)
               : co_await ecl::plainReadFirst(
                     t.at(ECL_SITE_AS("classify pair[] in-load",
                                      Expectation::kStaleTolerant)),
                     a.pair, v);
    const u32 my_out =
        atomic ? co_await ecl::readSecond(
                     t.at(ECL_SITE("classify pair[] out-atomic-load")),
                     a.pair, v)
               : co_await ecl::plainReadSecond(
                     t.at(ECL_SITE_AS("classify pair[] out-load",
                                      Expectation::kStaleTolerant)),
                     a.pair, v);
    if (my_in == my_out) {
        co_await t
            .at(ECL_SITE_AS("classify label[] assign-store",
                            Expectation::kMonotonic))
            .store(a.label, v, my_in);
    } else {
        if (atomic)
            co_await ecl::atomicWrite(
                t.at(ECL_SITE("classify repeat-flag atomic-store")),
                a.repeat, 0, u32{1});
        else
            co_await t
                .at(ECL_SITE_AS("classify repeat-flag store",
                                Expectation::kIdempotent))
                .store(a.repeat, 0, u32{1});
    }
}

}  // namespace

SccResult
runScc(simt::Engine& engine, const CsrGraph& graph, Variant variant,
       const SccOptions& options)
{
    ECLSIM_ASSERT(graph.directed(), "SCC expects a directed graph");
    simt::DeviceMemory& memory = engine.memory();

    SccArrays a;
    a.g = uploadGraph(memory, graph);
    if (options.trim_trivial)
        a.rev = uploadGraph(memory, graph.reversed());
    const u32 n = std::max<u32>(a.g.num_vertices, 1);
    a.pair = memory.alloc<u64>(n, "scc.pair");
    a.label = memory.alloc<u32>(n, "scc.label");
    a.repeat = memory.alloc<u32>(1, "scc.repeat");
    a.variant = variant;
    memory.fill(a.label, n, kUnassigned);

    SccResult result;
    const auto cfg = simt::launchFor(a.g.num_vertices, kBlockSize);

    for (u32 round = 0; round < kMaxHostIterations; ++round) {
        if (options.trim_trivial) {
            // Peel trivial SCCs until the trim pass finds nothing new.
            for (u32 sweep = 0; sweep < kMaxHostIterations; ++sweep) {
                memory.write(a.repeat, u32{0});
                result.stats.add(engine.launch(
                    "scc.trim", cfg,
                    [&a](ThreadCtx& t) { return sccTrim(t, a); }));
                if (memory.read(a.repeat) == 0)
                    break;
            }
        }

        result.stats.add(engine.launch(
            "scc.init", cfg,
            [&a](ThreadCtx& t) { return sccInit(t, a); }));

        // Propagate to a fixpoint.
        for (u32 sweep = 0; sweep < kMaxHostIterations; ++sweep) {
            memory.write(a.repeat, u32{0});
            result.stats.add(engine.launch(
                "scc.propagate", cfg,
                [&a](ThreadCtx& t) { return sccPropagate(t, a); }));
            ++result.stats.iterations;
            if (memory.read(a.repeat) == 0)
                break;
        }

        memory.write(a.repeat, u32{0});
        result.stats.add(engine.launch(
            "scc.classify", cfg,
            [&a](ThreadCtx& t) { return sccClassify(t, a); }));
        if (memory.read(a.repeat) == 0)
            break;  // every vertex classified
    }

    result.labels = memory.download(a.label, a.g.num_vertices);
    return result;
}

}  // namespace eclsim::algos
