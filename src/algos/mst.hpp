/**
 * @file
 * Minimum spanning tree/forest in the style of ECL-MST (Fallin, Gonzalez,
 * Seo & Burtscher, SC'23), the MST code studied by the paper.
 *
 * Data-driven Borůvka rounds: every component records its cheapest
 * outgoing edge in a shared 64-bit word (weight in the high half, arc id
 * in the low half — "the best neighbor to merge next for each union in a
 * shared long long array", paper Section IV-A) via atomicMin, then the
 * components merge along those edges with union-find using implicit path
 * compression.
 *
 * The published baseline reads the union-find parents and the 64-bit
 * best words with volatile accesses; the 64-bit volatile loads are
 * exactly the word-tearing hazard of the paper's Fig. 1 (they compile to
 * two 32-bit transfers on some targets). The race-free variant converts
 * them to relaxed atomics, which costs only the atomic-unit overhead —
 * hence MST's small slowdown (geomean 0.93-0.97 in Tables IV-VII).
 */
#pragma once

#include <vector>

#include "algos/common.hpp"

namespace eclsim::algos {

/** Result of an MST run. */
struct MstResult
{
    u64 total_weight = 0;          ///< weight of the spanning forest
    u64 num_edges = 0;             ///< edges selected into the forest
    std::vector<u8> in_mst;        ///< per-arc selection flags
    RunStats stats;
};

/** Run minimum spanning forest on a weighted undirected graph. */
MstResult runMst(simt::Engine& engine, const CsrGraph& graph,
                 Variant variant);

}  // namespace eclsim::algos
