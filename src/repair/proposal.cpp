#include "repair/proposal.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace eclsim::repair {

namespace {

using racecheck::RaceClass;
using racecheck::SiteId;

/** RaceClass enumeration order is severity order (classify.hpp). */
RaceClass
worseOf(RaceClass a, RaceClass b)
{
    return static_cast<u8>(a) >= static_cast<u8>(b) ? a : b;
}

std::string
rationaleFor(RaceClass cls)
{
    switch (cls) {
      case RaceClass::kIdempotentWrite:
        return "idempotent writers: relaxed atomicity removes the race "
               "without ordering cost";
      case RaceClass::kMonotonicUpdate:
        return "monotonic update: relaxed suffices, losers re-converge";
      case RaceClass::kStaleReadTolerant:
        return "stale-tolerant reader: relaxed live read replaces the "
               "racy one";
      case RaceClass::kWordTearing:
        return "tearing hazard: atomic access is indivisible at any "
               "width";
      case RaceClass::kHarmfulTolerated:
        return "bounded-error updates: relaxed atomic stops the lost "
               "updates";
      case RaceClass::kUnknownHarmful:
        return "no benignity argument: seq_cst, the conservative "
               "default the paper warns costs most";
    }
    return "?";
}

std::string
joinSorted(const std::set<std::string>& parts)
{
    std::string out;
    for (const std::string& part : parts) {
        if (!out.empty())
            out += ", ";
        out += part;
    }
    return out;
}

/** Accumulator for one (site, access kind) across every report that
 *  involves it. */
struct SiteEvidence
{
    RaceClass cls = RaceClass::kIdempotentWrite;
    std::set<std::string> observed;
    std::set<std::string> allocations;
    std::set<SiteId> partners;
    u64 pairs = 0;
};

}  // namespace

const char*
memOpKindName(simt::MemOpKind kind)
{
    switch (kind) {
      case simt::MemOpKind::kLoad:
        return "load";
      case simt::MemOpKind::kStore:
        return "store";
      case simt::MemOpKind::kRmw:
        return "rmw";
    }
    return "?";
}

simt::SiteOverride
strongerFix(const simt::SiteOverride& a, const simt::SiteOverride& b)
{
    simt::SiteOverride out = a;
    if (static_cast<u8>(b.order) > static_cast<u8>(out.order))
        out.order = b.order;
    if (static_cast<u8>(b.scope) > static_cast<u8>(out.scope))
        out.scope = b.scope;
    return out;
}

simt::SiteOverride
fixForClass(RaceClass cls)
{
    simt::SiteOverride fix;
    fix.mode = simt::AccessMode::kAtomic;
    fix.scope = simt::Scope::kDevice;
    fix.order = cls == RaceClass::kUnknownHarmful
                    ? simt::MemoryOrder::kSeqCst
                    : simt::MemoryOrder::kRelaxed;
    return fix;
}

std::string
fixName(const simt::SiteOverride& fix)
{
    const char* order = "?";
    switch (fix.order) {
      case simt::MemoryOrder::kRelaxed:
        order = "relaxed";
        break;
      case simt::MemoryOrder::kAcquire:
        order = "acquire";
        break;
      case simt::MemoryOrder::kRelease:
        order = "release";
        break;
      case simt::MemoryOrder::kSeqCst:
        order = "seq_cst";
        break;
    }
    const char* scope = "?";
    switch (fix.scope) {
      case simt::Scope::kBlock:
        scope = "block";
        break;
      case simt::Scope::kDevice:
        scope = "device";
        break;
      case simt::Scope::kSystem:
        scope = "system";
        break;
    }
    return std::string("atomic(") + order + ", " + scope + ")";
}

ProposalSet
proposeFixes(const std::vector<racecheck::CellResult>& results)
{
    ProposalSet set;
    auto& registry = racecheck::SiteRegistry::instance();

    std::map<std::pair<SiteId, simt::MemOpKind>, SiteEvidence> evidence;
    for (const racecheck::CellResult& cell : results) {
        for (const racecheck::ClassifiedReport& race : cell.races) {
            const racecheck::RaceReport& rep = race.report;
            // Each non-atomic side needs a conversion; an atomic side is
            // already where the repair would put it.
            const struct
            {
                SiteId site;
                const racecheck::AccessSig& sig;
                SiteId other;
                bool other_racy;
            } sides[2] = {
                {rep.site_a, rep.sig_a, rep.site_b,
                 !racecheck::sigIsAtomic(rep.sig_b)},
                {rep.site_b, rep.sig_b, rep.site_a,
                 !racecheck::sigIsAtomic(rep.sig_a)},
            };
            for (const auto& side : sides) {
                if (racecheck::sigIsAtomic(side.sig))
                    continue;
                if (side.site == racecheck::kUnknownSite) {
                    set.unattributed_pairs += rep.count;
                    continue;
                }
                SiteEvidence& e =
                    evidence[{side.site, side.sig.kind}];
                e.cls = worseOf(e.cls, race.cls);
                e.observed.insert(racecheck::accessSigName(side.sig));
                e.allocations.insert(rep.allocation);
                e.pairs += rep.count;
                if (side.other_racy &&
                    side.other != racecheck::kUnknownSite &&
                    side.other != side.site)
                    e.partners.insert(side.other);
            }
        }
    }

    for (const auto& [key, e] : evidence) {
        FixProposal proposal;
        proposal.site = key.first;
        proposal.kind = key.second;
        proposal.site_desc = registry.describe(key.first);
        const racecheck::Site record = registry.site(key.first);
        proposal.file = record.file;
        proposal.line = record.line;
        proposal.label = record.label;
        proposal.observed = joinSorted(e.observed);
        proposal.allocations = joinSorted(e.allocations);
        proposal.cls = e.cls;
        proposal.fix = fixForClass(e.cls);
        proposal.rationale = rationaleFor(e.cls);
        proposal.partners.assign(e.partners.begin(), e.partners.end());
        proposal.pairs = e.pairs;
        set.proposals.push_back(std::move(proposal));
    }
    // Sorted by source description: like the racecheck tables, the
    // output shape must not depend on site-interning order (the id is
    // the tiebreaker only for distinct sites sharing a description).
    std::sort(set.proposals.begin(), set.proposals.end(),
              [](const FixProposal& a, const FixProposal& b) {
                  return std::tie(a.site_desc, a.site, a.kind) <
                         std::tie(b.site_desc, b.site, b.kind);
              });
    return set;
}

namespace {

/** Install a fix, merging worst-wins with any fix already in the
 *  site's slot (two proposals of one site share the slot). */
void
installFix(simt::SiteOverrideTable& table, racecheck::SiteId site,
           const simt::SiteOverride& fix)
{
    const simt::SiteOverride* have = table.find(site);
    table.set(site, have ? strongerFix(*have, fix) : fix);
}

}  // namespace

simt::SiteOverrideTable
fullTable(const ProposalSet& set)
{
    simt::SiteOverrideTable table;
    for (const FixProposal& proposal : set.proposals)
        installFix(table, proposal.site, proposal.fix);
    return table;
}

simt::SiteOverrideTable
closureTable(const ProposalSet& set, size_t index)
{
    ECLSIM_ASSERT(index < set.proposals.size(),
                  "closureTable: index {} out of range", index);
    const FixProposal& root = set.proposals[index];
    simt::SiteOverrideTable table;
    table.set(root.site, root.fix);
    for (racecheck::SiteId partner : root.partners) {
        // The partner is a racy side of some pair, so it has its own
        // proposal(s); merge every one (a class of either kind may
        // demand a stronger order than the root's).
        bool found = false;
        for (const FixProposal& other : set.proposals) {
            if (other.site == partner) {
                installFix(table, other.site, other.fix);
                found = true;
            }
        }
        if (!found)
            table.set(partner, root.fix);
    }
    return table;
}

}  // namespace eclsim::repair
