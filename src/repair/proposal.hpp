/**
 * @file
 * Fix proposals: from a classified race table to per-site conversions.
 *
 * The paper's repair recipe is uniform (Section II-A): replace the racy
 * plain or volatile access with a cuda::atomic one, using "the weakest
 * version that is sufficient for correctness". proposeFixes() applies
 * that recipe mechanically to racecheck's site-attributed reports: every
 * non-atomic side of every racing pair gets a plain/volatile -> atomic
 * conversion (a simt::SiteOverride the engine can apply without source
 * edits), with the memory order chosen from the classified taxonomy
 * bucket — relaxed for the benign categories, exactly as the paper's
 * converted codes use throughout, and seq_cst only for unknown/harmful
 * races, where no weaker correctness argument exists.
 *
 * A single conversion is not self-sufficient: a plain/plain pair with
 * one side converted still races on the other. Each proposal therefore
 * records its racy *partners* — the non-atomic sites it was observed
 * racing against — and verification applies the fix closure
 * (closureTable), mirroring how the paper converts every access to a
 * shared array, not just one of them.
 */
#pragma once

#include <string>
#include <vector>

#include "racecheck/runner.hpp"
#include "simt/site_override.hpp"

namespace eclsim::repair {

/** One proposed per-site conversion. */
struct FixProposal
{
    racecheck::SiteId site = racecheck::kUnknownSite;
    std::string site_desc;  ///< "file:label" (SiteRegistry::describe)
    std::string file;
    u32 line = 0;
    std::string label;
    /** Observed access signature(s) at the site, comma-joined when the
     *  site was seen with more than one (accessSigName). */
    std::string observed;
    /** Allocation name(s) the site raced on, comma-joined. */
    std::string allocations;
    /** Worst classified taxonomy bucket across every report involving
     *  the site (RaceClass enumeration order is severity order). */
    racecheck::RaceClass cls = racecheck::RaceClass::kIdempotentWrite;
    /** The conversion: always -> atomic; order/scope from cls. */
    simt::SiteOverride fix;
    /** One-phrase justification for the chosen order. */
    std::string rationale;
    /** Non-atomic sites this site was observed racing against (sorted,
     *  unique, excluding itself). Their fixes form the closure. */
    std::vector<racecheck::SiteId> partners;
    /** Total conflicting access pairs across reports involving the
     *  site. */
    u64 pairs = 0;
};

/** The proposals derived from one detection sweep. */
struct ProposalSet
{
    /** Sorted by (site_desc, site): stable under any interning order. */
    std::vector<FixProposal> proposals;
    /** Conflicting pairs whose racy side was not ECL_SITE-instrumented
     *  (kUnknownSite): nothing to override, so nothing to repair. The
     *  advisor gate requires this to be zero. */
    u64 unattributed_pairs = 0;
};

/** Printable fix ("atomic(relaxed, device)"). */
std::string fixName(const simt::SiteOverride& fix);

/** Derive per-site proposals from detection results (see file comment). */
ProposalSet proposeFixes(
    const std::vector<racecheck::CellResult>& results);

/** Override table applying every proposal (whole-algorithm repair). */
simt::SiteOverrideTable fullTable(const ProposalSet& set);

/**
 * Override table applying proposal `index` plus the fixes of its racy
 * partners — the minimal set whose application can make the site's
 * races silent (one converted side of a plain/plain pair still races).
 */
simt::SiteOverrideTable closureTable(const ProposalSet& set, size_t index);

}  // namespace eclsim::repair
