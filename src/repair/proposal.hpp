/**
 * @file
 * Fix proposals: from a classified race table to per-site conversions.
 *
 * The paper's repair recipe is uniform (Section II-A): replace the racy
 * plain or volatile access with a cuda::atomic one, using "the weakest
 * version that is sufficient for correctness". proposeFixes() applies
 * that recipe mechanically to racecheck's site-attributed reports: every
 * non-atomic side of every racing pair gets a plain/volatile -> atomic
 * conversion (a simt::SiteOverride the engine can apply without source
 * edits), with the memory order chosen from the classified taxonomy
 * bucket — relaxed for the benign categories, exactly as the paper's
 * converted codes use throughout, and seq_cst only for unknown/harmful
 * races, where no weaker correctness argument exists.
 *
 * A single conversion is not self-sufficient: a plain/plain pair with
 * one side converted still races on the other. Each proposal therefore
 * records its racy *partners* — the non-atomic sites it was observed
 * racing against — and verification applies the fix closure
 * (closureTable), mirroring how the paper converts every access to a
 * shared array, not just one of them.
 *
 * Evidence is keyed by (site, access kind): one source site can be both
 * read and written through different racy pairs (a load in one kernel
 * phase, a store in another), and the two uses can classify into
 * different taxonomy buckets demanding different orders. The engine's
 * override table still has one slot per site, so table builders merge
 * same-site proposals worst-wins (strongerFix).
 */
#pragma once

#include <string>
#include <vector>

#include "racecheck/runner.hpp"
#include "simt/site_override.hpp"

namespace eclsim::repair {

/** One proposed per-site conversion. */
struct FixProposal
{
    racecheck::SiteId site = racecheck::kUnknownSite;
    /** Access kind the proposal covers. Evidence is deduplicated by
     *  (site, kind), not site alone: a site read through one racy pair
     *  and written through another gets two proposals, whose classes —
     *  and therefore memory orders — can differ. */
    simt::MemOpKind kind = simt::MemOpKind::kLoad;
    std::string site_desc;  ///< "file:label" (SiteRegistry::describe)
    std::string file;
    u32 line = 0;
    std::string label;
    /** Observed access signature(s) at the site, comma-joined when the
     *  site was seen with more than one (accessSigName). */
    std::string observed;
    /** Allocation name(s) the site raced on, comma-joined. */
    std::string allocations;
    /** Worst classified taxonomy bucket across every report involving
     *  the site (RaceClass enumeration order is severity order). */
    racecheck::RaceClass cls = racecheck::RaceClass::kIdempotentWrite;
    /** The conversion: always -> atomic; order/scope from cls. */
    simt::SiteOverride fix;
    /** One-phrase justification for the chosen order. */
    std::string rationale;
    /** Non-atomic sites this site was observed racing against (sorted,
     *  unique, excluding itself). Their fixes form the closure. */
    std::vector<racecheck::SiteId> partners;
    /** Total conflicting access pairs across reports involving the
     *  site. */
    u64 pairs = 0;
    /** True when the proposal was seeded from the static may-race set
     *  (staticrace) with no dynamic witness (static_seed.hpp). */
    bool static_seed = false;
};

/** The proposals derived from one detection sweep. */
struct ProposalSet
{
    /** Sorted by (site_desc, site, kind): stable under any interning
     *  order. */
    std::vector<FixProposal> proposals;
    /** Conflicting pairs whose racy side was not ECL_SITE-instrumented
     *  (kUnknownSite): nothing to override, so nothing to repair. The
     *  advisor gate requires this to be zero. */
    u64 unattributed_pairs = 0;
};

/** Printable fix ("atomic(relaxed, device)"). */
std::string fixName(const simt::SiteOverride& fix);

/** Printable access kind ("load", "store", "rmw"). */
const char* memOpKindName(simt::MemOpKind kind);

/**
 * Worst-wins merge of two fixes destined for one site's single override
 * slot (the engine keys overrides by site, not by access kind): the
 * stronger memory order and the wider scope survive. Enumeration order
 * is strength order for the orders the proposer emits (relaxed,
 * seq_cst).
 */
simt::SiteOverride strongerFix(const simt::SiteOverride& a,
                               const simt::SiteOverride& b);

/** The paper's order choice for a taxonomy bucket: relaxed wherever a
 *  benignity (or bounded-error) argument exists, seq_cst otherwise. */
simt::SiteOverride fixForClass(racecheck::RaceClass cls);

/** Derive per-site proposals from detection results (see file comment). */
ProposalSet proposeFixes(
    const std::vector<racecheck::CellResult>& results);

/** Override table applying every proposal (whole-algorithm repair).
 *  Proposals sharing a site merge worst-wins (strongerFix). */
simt::SiteOverrideTable fullTable(const ProposalSet& set);

/**
 * Override table applying proposal `index` plus the fixes of its racy
 * partners — the minimal set whose application can make the site's
 * races silent (one converted side of a plain/plain pair still races).
 */
simt::SiteOverrideTable closureTable(const ProposalSet& set, size_t index);

}  // namespace eclsim::repair
