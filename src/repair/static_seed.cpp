#include "repair/static_seed.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "staticrace/runner.hpp"

namespace eclsim::repair {

namespace {

using racecheck::SiteId;

/** Accumulator for one statically predicted (site, kind). */
struct StaticEvidence
{
    std::set<std::string> observed;
    std::set<std::string> allocations;
    std::set<SiteId> partners;
    u64 pairs = 0;
};

std::string
joinSorted(const std::set<std::string>& parts)
{
    std::string out;
    for (const std::string& part : parts) {
        if (!out.empty())
            out += ", ";
        out += part;
    }
    return out;
}

}  // namespace

racecheck::RaceClass
classFromExpectation(racecheck::Expectation expect)
{
    using racecheck::Expectation;
    using racecheck::RaceClass;
    switch (expect) {
      case Expectation::kIdempotent:
        return RaceClass::kIdempotentWrite;
      case Expectation::kMonotonic:
        return RaceClass::kMonotonicUpdate;
      case Expectation::kStaleTolerant:
        return RaceClass::kStaleReadTolerant;
      case Expectation::kTearing:
        return RaceClass::kWordTearing;
      case Expectation::kBoundedError:
        return RaceClass::kHarmfulTolerated;
      case Expectation::kNone:
        break;
    }
    return RaceClass::kUnknownHarmful;
}

std::vector<FixProposal>
staticSeedProposals(const racecheck::RunnerConfig& config,
                    const racecheck::RacecheckCell& cell, u64 seed,
                    const ProposalSet& dynamic_set)
{
    const staticrace::StaticCellResult probe =
        staticrace::runStaticraceCell(config, cell, seed);

    std::set<std::pair<SiteId, simt::MemOpKind>> dynamic_keys;
    for (const FixProposal& p : dynamic_set.proposals)
        dynamic_keys.insert({p.site, p.kind});

    std::map<std::pair<SiteId, simt::MemOpKind>, StaticEvidence>
        evidence;
    for (const staticrace::MayRacePair& pair : probe.pairs) {
        const struct
        {
            SiteId site;
            const racecheck::AccessSig& sig;
            const std::string& access;
            SiteId other;
            bool other_racy;
        } sides[2] = {
            {pair.site_a, pair.sig_a, pair.access_a, pair.site_b,
             !racecheck::sigIsAtomic(pair.sig_b)},
            {pair.site_b, pair.sig_b, pair.access_b, pair.site_a,
             !racecheck::sigIsAtomic(pair.sig_a)},
        };
        for (int s = 0; s < 2; ++s) {
            // A self pair contributes its side once.
            if (s == 1 && sides[0].site == sides[1].site &&
                sides[0].sig.kind == sides[1].sig.kind)
                break;
            const auto& side = sides[s];
            if (racecheck::sigIsAtomic(side.sig))
                continue;
            if (side.site == racecheck::kUnknownSite)
                continue;
            if (dynamic_keys.count({side.site, side.sig.kind}))
                continue;  // already proposed from dynamic evidence
            StaticEvidence& e = evidence[{side.site, side.sig.kind}];
            e.observed.insert(side.access);
            e.allocations.insert(pair.allocation);
            e.pairs += 1;
            if (side.other_racy &&
                side.other != racecheck::kUnknownSite &&
                side.other != side.site)
                e.partners.insert(side.other);
        }
    }

    auto& registry = racecheck::SiteRegistry::instance();
    std::vector<FixProposal> out;
    out.reserve(evidence.size());
    for (const auto& [key, e] : evidence) {
        FixProposal proposal;
        proposal.site = key.first;
        proposal.kind = key.second;
        proposal.site_desc = registry.describe(key.first);
        const racecheck::Site record = registry.site(key.first);
        proposal.file = record.file;
        proposal.line = record.line;
        proposal.label = record.label;
        proposal.observed = joinSorted(e.observed);
        proposal.allocations = joinSorted(e.allocations);
        const racecheck::Expectation expect =
            registry.expectation(key.first);
        proposal.cls = classFromExpectation(expect);
        proposal.fix = fixForClass(proposal.cls);
        proposal.rationale =
            expect != racecheck::Expectation::kNone
                ? "static may-race, no dynamic witness; order from the "
                  "declared expectation"
                : "static may-race, no dynamic witness, no declared "
                  "benignity: conservative seq_cst";
        proposal.partners.assign(e.partners.begin(), e.partners.end());
        proposal.pairs = e.pairs;
        proposal.static_seed = true;
        out.push_back(std::move(proposal));
    }
    std::sort(out.begin(), out.end(),
              [](const FixProposal& a, const FixProposal& b) {
                  return std::tie(a.site_desc, a.site, a.kind) <
                         std::tie(b.site_desc, b.site, b.kind);
              });
    return out;
}

}  // namespace eclsim::repair
