#include "repair/advisor.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <future>
#include <map>
#include <numeric>

#include "chaos/policy.hpp"
#include "core/logging.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "graph/input_catalog.hpp"
#include "harness/experiment.hpp"
#include "repair/static_seed.hpp"

namespace eclsim::repair {

namespace {

/** Does the site appear on either side of any report of the cell? */
bool
siteRaced(const racecheck::CellResult& cell, racecheck::SiteId site)
{
    for (const racecheck::ClassifiedReport& race : cell.races)
        if (race.report.site_a == site || race.report.site_b == site)
            return true;
    return false;
}

/** The exposure scan's schedule explorers: the control plus every
 *  benign chaos policy. kDropAtomic is excluded — it corrupts updates
 *  rather than exploring schedules. */
const std::vector<chaos::PolicyKind>&
exposurePolicies()
{
    static const std::vector<chaos::PolicyKind> kinds = {
        chaos::PolicyKind::kNone,      chaos::PolicyKind::kStaleWindow,
        chaos::PolicyKind::kStoreDelay, chaos::PolicyKind::kSchedBias,
        chaos::PolicyKind::kSmStall,   chaos::PolicyKind::kDupStore};
    return kinds;
}

/** Run every task on `jobs` workers, serially when jobs == 1. Tasks
 *  write into preallocated slots, so the schedule cannot matter. */
void
runTasks(std::vector<std::function<void()>>& tasks, u32 jobs)
{
    const u32 workers = jobs == 0 ? core::ThreadPool::defaultConcurrency()
                                  : jobs;
    if (workers <= 1 || tasks.size() <= 1) {
        for (auto& task : tasks)
            task();
        return;
    }
    core::ThreadPool pool(
        static_cast<u32>(std::min<size_t>(workers, tasks.size())));
    std::vector<std::future<void>> done;
    done.reserve(tasks.size());
    for (auto& task : tasks)
        done.push_back(pool.submit(task));
    for (auto& future : done)
        future.get();
}

std::string
jsonQuote(const std::string& text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

/** Shortest-round-trip double rendering (the serve codec's convention);
 *  simulated times are deterministic, so this is byte-stable. */
std::string
jsonNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

const char*
jsonBool(bool value)
{
    return value ? "true" : "false";
}

}  // namespace

AdvisorResult
runAdvisor(const AdvisorConfig& config_in)
{
    AdvisorResult result;
    result.config = config_in;
    result.input = !config_in.input.empty()
                       ? config_in.input
                       : (algos::algoNeedsDirected(config_in.algo)
                              ? std::string("wikipedia")
                              : std::string("rmat22.sym"));
    const AdvisorConfig& config = result.config;

    // Pin site-interning order (and thereby every SiteId the report
    // carries) before any parallel work can intern sites in
    // schedule-dependent order.
    racecheck::populateSiteRegistry();

    racecheck::RunnerConfig base;
    base.gpu = config.gpu;
    base.graph_divisor = config.detect_divisor;
    base.cache_divisor = config.cache_divisor;
    racecheck::RacecheckCell cell;
    cell.algo = config.algo;
    cell.variant = algos::Variant::kBaseline;
    cell.input = result.input;

    // --- 1-2. detect -> propose, iterated to a fixpoint (serial) ----------
    // Installing fixes changes timing and visibility, which can surface
    // races on sites the baseline schedule never raced (MIS's out-store
    // emerges only once the knockout/neighbor sites are atomic). So:
    // detect, install every proposed fix, re-detect, merge proposals
    // from newly racing sites, and repeat until the repaired run is
    // race-silent, no new proposable site appears, or max_rounds.
    // Round r re-detects with engine seed cellSeed(seed, 0) + r.
    std::vector<racecheck::CellResult> detect_rounds;
    detect_rounds.push_back(racecheck::runRacecheckCell(
        base, cell, cellSeed(config.seed, 0)));
    result.baseline_reports = detect_rounds[0].races.size();
    result.baseline_pairs = detect_rounds[0].total_pairs;

    ProposalSet proposals = proposeFixes(detect_rounds);
    // Keyed like the proposals themselves: one site can carry a load
    // and a store proposal, possibly first seen in different rounds.
    std::map<std::pair<racecheck::SiteId, simt::MemOpKind>, u32>
        first_seen;
    for (const FixProposal& p : proposals.proposals)
        first_seen.emplace(std::make_pair(p.site, p.kind), 0u);
    simt::SiteOverrideTable accumulated = fullTable(proposals);
    for (u32 round = 1;
         round < config.max_rounds && !proposals.proposals.empty();
         ++round) {
        racecheck::RunnerConfig probe = base;
        probe.site_overrides = &accumulated;
        racecheck::CellResult re = racecheck::runRacecheckCell(
            probe, cell, cellSeed(config.seed, 0) + round);
        if (re.races.empty())
            break;  // the accumulated repair is race-silent
        detect_rounds.push_back(std::move(re));
        const ProposalSet next = proposeFixes(detect_rounds);
        bool grew = false;
        for (const FixProposal& p : next.proposals)
            grew |= first_seen
                        .emplace(std::make_pair(p.site, p.kind), round)
                        .second;
        proposals = next;
        accumulated = fullTable(proposals);
        if (!grew)
            break;  // still racing, but nothing left to convert
    }
    result.fixpoint_rounds = static_cast<u32>(detect_rounds.size());
    result.unattributed_pairs = proposals.unattributed_pairs;

    // --- 2b. static seeding (opt-in) --------------------------------------
    // The staticrace may-set over-approximates every detection round;
    // whatever non-atomic (site, kind) it predicts beyond the dynamic
    // proposals becomes a seeded proposal, so races no schedule
    // manifested still get verified (trivially, they never raced) and
    // priced. Classes come from declared expectations; the probe reuses
    // the baseline detection seed.
    if (config.seed_static) {
        std::vector<FixProposal> seeded = staticSeedProposals(
            base, cell, cellSeed(config.seed, 0), proposals);
        result.static_seeded = static_cast<u32>(seeded.size());
        for (FixProposal& p : seeded) {
            first_seen.emplace(std::make_pair(p.site, p.kind), 0u);
            proposals.proposals.push_back(std::move(p));
        }
        std::sort(proposals.proposals.begin(),
                  proposals.proposals.end(),
                  [](const FixProposal& a, const FixProposal& b) {
                      return std::tie(a.site_desc, a.site, a.kind) <
                             std::tie(b.site_desc, b.site, b.kind);
                  });
    }
    const size_t num_proposals = proposals.proposals.size();

    // --- 3-5. rank / verify / price: one deterministic task list ----------
    // Seed layout (stable indices, independent of jobs): the detect cell
    // used index 0; exposure cell k uses 1+k; verify row i uses 1+E+i;
    // the repair-all cell 1+E+P; pricing task t reps over
    // cellSeed(seed, 2+E+P+t) + r.
    const u32 exposure_cells = static_cast<u32>(
        exposurePolicies().size() * config.exposure_seeds);
    result.exposure_cells = exposure_cells;

    // Every override table is built before the fan-out and outlives it
    // (EngineOptions::site_overrides holds raw pointers). The verify
    // closure of a site is its connected component in the racy-pair
    // graph across every detection round: converting one side of a
    // plain/plain pair leaves the pair racing, and under the fixpoint a
    // site's silence can depend transitively on fixes of sites it never
    // directly raced with (an emergent site's race only exists with the
    // earlier rounds' fixes installed).
    std::vector<size_t> component(num_proposals);
    std::iota(component.begin(), component.end(), size_t{0});
    std::function<size_t(size_t)> find = [&](size_t x) {
        while (component[x] != x)
            x = component[x] = component[component[x]];
        return x;
    };
    // A site's load and store proposals share one override slot, so
    // they cannot be applied independently: pre-union same-site
    // proposals, then union across the racy-pair edges.
    std::map<racecheck::SiteId, size_t> index_of;
    for (size_t i = 0; i < num_proposals; ++i) {
        const auto [it, fresh] =
            index_of.emplace(proposals.proposals[i].site, i);
        if (!fresh)
            component[find(i)] = find(it->second);
    }
    for (const racecheck::CellResult& round : detect_rounds)
        for (const racecheck::ClassifiedReport& race : round.races) {
            const auto a = index_of.find(race.report.site_a);
            const auto b = index_of.find(race.report.site_b);
            if (a != index_of.end() && b != index_of.end())
                component[find(a->second)] = find(b->second);
        }

    std::vector<simt::SiteOverrideTable> solo_tables(num_proposals);
    std::vector<simt::SiteOverrideTable> closure_tables(num_proposals);
    for (size_t i = 0; i < num_proposals; ++i) {
        solo_tables[i].set(proposals.proposals[i].site,
                           proposals.proposals[i].fix);
        for (size_t j = 0; j < num_proposals; ++j) {
            if (find(j) != find(i))
                continue;
            const FixProposal& member = proposals.proposals[j];
            const simt::SiteOverride* have =
                closure_tables[i].find(member.site);
            closure_tables[i].set(
                member.site,
                have ? strongerFix(*have, member.fix) : member.fix);
        }
    }
    const simt::SiteOverrideTable repair_all = fullTable(proposals);

    std::vector<racecheck::CellResult> exposure_results(exposure_cells);
    std::vector<racecheck::CellResult> verify_results(num_proposals);
    racecheck::CellResult repair_all_result;

    // Pricing: fast-mode runs at measure_divisor on the catalog graph.
    harness::ExperimentConfig price;
    price.cache_divisor = config.cache_divisor;
    auto& catalog = graph::InputCatalog::shared();
    const graph::GraphPtr priced_graph =
        config.algo == algos::Algo::kMst
            ? catalog.getWeighted(result.input, config.measure_divisor)
            : catalog.get(result.input, config.measure_divisor);
    const simt::GpuSpec& gpu = simt::findGpu(config.gpu);

    const u64 price_base = 2ull + exposure_cells + num_proposals;
    auto price_median = [&](algos::Variant variant,
                            const simt::SiteOverrideTable* overrides,
                            u64 task) {
        harness::ExperimentConfig cfg = price;
        cfg.site_overrides = overrides;
        std::vector<double> ms;
        ms.reserve(config.reps);
        for (u32 r = 0; r < config.reps; ++r)
            ms.push_back(harness::runOnce(
                gpu, *priced_graph, config.algo, variant, cfg,
                cellSeed(config.seed, price_base + task) + r));
        return stats::median(std::move(ms));
    };

    std::vector<double> solo_ms(num_proposals, 0.0);

    std::vector<std::function<void()>> tasks;
    for (u32 k = 0; k < exposure_cells; ++k) {
        tasks.push_back([&, k] {
            const u64 seed = cellSeed(config.seed, 1 + k);
            chaos::PolicyConfig policy;
            policy.kind =
                exposurePolicies()[k / config.exposure_seeds];
            policy.intensity = config.exposure_intensity;
            policy.seed = seed;
            const auto hooks = chaos::makePolicy(policy);
            racecheck::RunnerConfig explored = base;
            explored.perturb = hooks.get();
            exposure_results[k] =
                racecheck::runRacecheckCell(explored, cell, seed);
        });
    }
    for (size_t i = 0; i < num_proposals; ++i) {
        tasks.push_back([&, i] {
            racecheck::RunnerConfig repaired = base;
            repaired.site_overrides = &closure_tables[i];
            verify_results[i] = racecheck::runRacecheckCell(
                repaired, cell,
                cellSeed(config.seed, 1 + exposure_cells + i));
        });
        tasks.push_back([&, i] {
            solo_ms[i] = price_median(algos::Variant::kBaseline,
                                      &solo_tables[i], 1 + i);
        });
    }
    tasks.push_back([&] {
        racecheck::RunnerConfig repaired = base;
        repaired.site_overrides = &repair_all;
        repair_all_result = racecheck::runRacecheckCell(
            repaired, cell,
            cellSeed(config.seed, 1 + exposure_cells + num_proposals));
    });
    tasks.push_back([&] {
        result.baseline_ms =
            price_median(algos::Variant::kBaseline, nullptr, 0);
    });
    tasks.push_back([&] {
        result.repaired_ms = price_median(
            algos::Variant::kBaseline, &repair_all, 1 + num_proposals);
    });
    tasks.push_back([&] {
        result.racefree_ms = price_median(algos::Variant::kRaceFree,
                                          nullptr, 2 + num_proposals);
    });
    runTasks(tasks, config.jobs);

    // --- assemble ---------------------------------------------------------
    result.repaired_silent = repair_all_result.races.empty();
    result.repaired_valid = repair_all_result.output_valid;
    result.rows.reserve(num_proposals);
    for (size_t i = 0; i < num_proposals; ++i) {
        SiteRow row;
        row.proposal = std::move(proposals.proposals[i]);
        row.round = first_seen[{row.proposal.site, row.proposal.kind}];
        for (const racecheck::CellResult& explored : exposure_results)
            if (siteRaced(explored, row.proposal.site))
                ++row.exposed_cells;
        row.solo_ms = solo_ms[i];
        row.solo_slowdown = result.baseline_ms > 0.0
                                ? row.solo_ms / result.baseline_ms
                                : 0.0;
        row.verified_silent =
            !siteRaced(verify_results[i], row.proposal.site);
        result.rows.push_back(std::move(row));
    }
    return result;
}

bool
advisorClean(const AdvisorResult& result)
{
    if (result.rows.empty() || result.unattributed_pairs != 0)
        return false;
    if (!result.repaired_silent || !result.repaired_valid)
        return false;
    for (const SiteRow& row : result.rows)
        if (!row.verified_silent)
            return false;
    return true;
}

TextTable
makeRepairTable(const AdvisorResult& result)
{
    TextTable table({"Site", "Kind", "Observed", "Class", "Fix", "Round",
                     "Exposure", "Pairs", "SoloMs", "Slowdown",
                     "VerifiedSilent"});
    for (const SiteRow& row : result.rows) {
        // file:line:label, not describe(): sites sharing a label at
        // different lines must stay distinguishable in the report.
        const std::string site_cell = row.proposal.file + ":" +
                                      std::to_string(row.proposal.line) +
                                      ":" + row.proposal.label;
        table.addRow({site_cell, memOpKindName(row.proposal.kind),
                      row.proposal.observed,
                      racecheck::raceClassName(row.proposal.cls),
                      fixName(row.proposal.fix),
                      std::to_string(row.round),
                      std::to_string(row.exposed_cells) + "/" +
                          std::to_string(result.exposure_cells),
                      std::to_string(row.proposal.pairs),
                      fmtFixed(row.solo_ms, 4),
                      fmtFixed(row.solo_slowdown, 3),
                      row.verified_silent ? "yes" : "NO"});
    }
    return table;
}

TextTable
makeRepairSummary(const AdvisorResult& result)
{
    TextTable table({"Metric", "Value"});
    auto add = [&table](const std::string& metric, std::string value) {
        table.addRow({metric, std::move(value)});
    };
    add("algo", algos::algoName(result.config.algo));
    add("input", result.input);
    add("gpu", result.config.gpu);
    add("racing sites proposed", std::to_string(result.rows.size()));
    add("baseline race reports", std::to_string(result.baseline_reports));
    add("baseline conflict pairs", std::to_string(result.baseline_pairs));
    add("fixpoint detection rounds",
        std::to_string(result.fixpoint_rounds));
    if (result.config.seed_static)
        add("static-seeded proposals",
            std::to_string(result.static_seeded));
    add("unattributed racy pairs",
        std::to_string(result.unattributed_pairs));
    add("baseline ms", fmtFixed(result.baseline_ms, 4));
    add("repaired ms (all fixes)", fmtFixed(result.repaired_ms, 4));
    add("racefree ms (hand-written)", fmtFixed(result.racefree_ms, 4));
    add("repaired slowdown",
        result.baseline_ms > 0.0
            ? fmtFixed(result.repaired_ms / result.baseline_ms, 3)
            : "-");
    add("racefree slowdown",
        result.baseline_ms > 0.0
            ? fmtFixed(result.racefree_ms / result.baseline_ms, 3)
            : "-");
    add("repair-all race-silent", result.repaired_silent ? "yes" : "NO");
    add("repair-all output valid", result.repaired_valid ? "yes" : "NO");
    add("advisor verdict", advisorClean(result) ? "CLEAN" : "NOT CLEAN");
    return table;
}

std::string
renderRepairJson(const AdvisorResult& result)
{
    std::string out = "{\"schema\":1";
    out += ",\"algo\":" + jsonQuote(algos::algoName(result.config.algo));
    out += ",\"input\":" + jsonQuote(result.input);
    out += ",\"gpu\":" + jsonQuote(result.config.gpu);
    out += ",\"seed\":" + std::to_string(result.config.seed);
    out += ",\"baseline_reports\":" +
           std::to_string(result.baseline_reports);
    out += ",\"baseline_pairs\":" + std::to_string(result.baseline_pairs);
    out += ",\"unattributed_pairs\":" +
           std::to_string(result.unattributed_pairs);
    out += ",\"fixpoint_rounds\":" +
           std::to_string(result.fixpoint_rounds);
    out += ",\"static_seeded\":" + std::to_string(result.static_seeded);
    out += ",\"exposure_cells\":" + std::to_string(result.exposure_cells);
    out += ",\"baseline_ms\":" + jsonNumber(result.baseline_ms);
    out += ",\"repaired_ms\":" + jsonNumber(result.repaired_ms);
    out += ",\"racefree_ms\":" + jsonNumber(result.racefree_ms);
    out += ",\"repaired_silent\":";
    out += jsonBool(result.repaired_silent);
    out += ",\"repaired_valid\":";
    out += jsonBool(result.repaired_valid);
    out += ",\"clean\":";
    out += jsonBool(advisorClean(result));
    out += ",\"sites\":[\n";
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SiteRow& row = result.rows[i];
        const FixProposal& p = row.proposal;
        out += "{\"site\":" + std::to_string(p.site);
        out += ",\"kind\":" + jsonQuote(memOpKindName(p.kind));
        out += ",\"desc\":" + jsonQuote(p.site_desc);
        out += ",\"file\":" + jsonQuote(p.file);
        out += ",\"line\":" + std::to_string(p.line);
        out += ",\"label\":" + jsonQuote(p.label);
        out += ",\"observed\":" + jsonQuote(p.observed);
        out += ",\"allocations\":" + jsonQuote(p.allocations);
        out += ",\"class\":" + jsonQuote(racecheck::raceClassName(p.cls));
        out += ",\"fix\":" + jsonQuote(fixName(p.fix));
        out += ",\"rationale\":" + jsonQuote(p.rationale);
        out += ",\"pairs\":" + std::to_string(p.pairs);
        out += ",\"round\":" + std::to_string(row.round);
        out += ",\"exposure\":" + std::to_string(row.exposed_cells);
        out += ",\"solo_ms\":" + jsonNumber(row.solo_ms);
        out += ",\"solo_slowdown\":" + jsonNumber(row.solo_slowdown);
        out += ",\"verified_silent\":";
        out += jsonBool(row.verified_silent);
        out += ",\"static_seed\":";
        out += jsonBool(p.static_seed);
        out += '}';
        out += i + 1 < result.rows.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

}  // namespace eclsim::repair
