/**
 * @file
 * The auto-repair advisor: race report in, measured-fix report out.
 *
 * runAdvisor() closes the loop the paper performs by hand for one
 * algorithm on one input:
 *
 *  1. detect  — one interleaved racecheck cell of the baseline variant
 *     (run serially first, which pins site-interning order and thereby
 *     every SiteId for the rest of the run);
 *  2. propose — the minimal conversion per racing site (proposal.hpp),
 *     iterated to a fixpoint: installing fixes changes timing and
 *     visibility, which can surface races on sites the baseline
 *     schedule never raced (MIS's out-store emerges only once the
 *     knockout/neighbor sites are atomic). The advisor re-detects with
 *     every accumulated fix applied and merges proposals from newly
 *     racing sites until the repaired run is race-silent, no new
 *     proposable site appears, or max_rounds detection rounds ran;
 *  3. rank    — exposure: across (chaos policy x seed) detection cells,
 *     in how many schedules does each site's race surface? The chaos
 *     policies act as the schedule explorer the predictive-race-
 *     detection literature calls for;
 *  4. verify  — re-run detection with each proposal's fix closure
 *     applied through the engine's per-site override table: the site
 *     must vanish from the race table. The closure is the site's
 *     connected component in the racy-pair graph across every
 *     detection round — a site's silence can depend transitively on
 *     fixes of sites it never directly raced with. A whole-algorithm
 *     repair-all run must be completely race-silent with a still-valid
 *     output;
 *  5. price   — fast-mode median runtimes: baseline, each fix alone,
 *     all fixes together, and the hand-written racefree variant — the
 *     per-site decomposition of the paper's Tables IV-IX deltas.
 *
 * Everything after step 1 fans out over core::ThreadPool under the PR-2
 * determinism contract (per-task seeds from stable indices, results
 * placed by slot), so the report — table, CSV, and JSON — is
 * byte-identical for every jobs value.
 */
#pragma once

#include <string>
#include <vector>

#include "core/table.hpp"
#include "repair/proposal.hpp"

namespace eclsim::repair {

/** Advisor parameters. */
struct AdvisorConfig
{
    std::string gpu = "Titan V";
    algos::Algo algo = algos::Algo::kCc;
    /** Catalog input; empty = the default detection input for the
     *  algorithm's direction (rmat22.sym / wikipedia). */
    std::string input;
    /** Graph scale divisor for the interleaved detection/verify cells
     *  (racecheck's default: small graphs, adversarial scheduler). */
    u32 detect_divisor = 8192;
    /** Graph scale divisor for the fast-mode pricing runs (larger
     *  graphs: the cost of an atomic conversion needs real traffic). */
    u32 measure_divisor = 2048;
    u32 cache_divisor = 16;
    /** Pricing repetitions; the median is reported. */
    u32 reps = 3;
    u64 seed = 12345;
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    u32 jobs = 0;
    /** Seeds per chaos policy in the exposure scan. */
    u32 exposure_seeds = 2;
    double exposure_intensity = 0.5;
    /** Fixpoint cap: maximum detection rounds (baseline round
     *  included) before the advisor gives up merging emergent sites. */
    u32 max_rounds = 4;
    /** Seed proposals from the static may-race set (static_seed.hpp):
     *  non-atomic uses the analyzer predicts can race but no detection
     *  round witnessed also get verified and priced. */
    bool seed_static = false;
};

/** One report row: a proposal plus its measurements. */
struct SiteRow
{
    FixProposal proposal;
    /** Fixpoint round that first proposed the site: 0 = the baseline
     *  detection; >= 1 = emergent, surfaced only after earlier fixes
     *  were installed. */
    u32 round = 0;
    /** Exposure: detection cells (policy x seed) whose race table
     *  contains the site. The scan runs on the unrepaired baseline, so
     *  an emergent site can honestly show 0. */
    u32 exposed_cells = 0;
    /** Simulated fast-mode median ms with only this site's fix. */
    double solo_ms = 0.0;
    /** solo_ms / baseline_ms — the price of this one conversion. */
    double solo_slowdown = 0.0;
    /** The site vanished from the race table when its fix closure —
     *  its connected component in the racy-pair graph — was applied. */
    bool verified_silent = false;
};

/** The advisor's full output. */
struct AdvisorResult
{
    AdvisorConfig config;  ///< as run, with defaults resolved
    std::string input;     ///< resolved input name
    std::vector<SiteRow> rows;  ///< proposeFixes() order
    u64 unattributed_pairs = 0;
    /** Baseline detection cell: racing site pairs and conflict count. */
    u64 baseline_reports = 0;
    u64 baseline_pairs = 0;
    /** Detection rounds that contributed proposals (1 = the baseline
     *  round sufficed; see AdvisorConfig::max_rounds). */
    u32 fixpoint_rounds = 1;
    u32 exposure_cells = 0;  ///< denominator of SiteRow::exposed_cells
    /** Proposals seeded from the static may-set (seed_static only). */
    u32 static_seeded = 0;
    /** Fast-mode median simulated ms (measure_divisor). */
    double baseline_ms = 0.0;
    double repaired_ms = 0.0;  ///< every proposal applied
    double racefree_ms = 0.0;  ///< the hand-written converted variant
    /** The repair-all detection run reported zero races. */
    bool repaired_silent = false;
    /** The repair-all run's output still passed the oracle. */
    bool repaired_valid = false;
};

/** Run the advisor (see file comment). */
AdvisorResult runAdvisor(const AdvisorConfig& config);

/**
 * The acceptance predicate: at least one proposal, every proposal
 * verified silent, the repair-all run silent with a valid output, and
 * no unattributed racy pairs. bench/repair_advisor exits nonzero
 * otherwise.
 */
bool advisorClean(const AdvisorResult& result);

/** Per-site report table (Site, Kind, Observed, Class, Fix, Round,
 *  Exposure, Pairs, SoloMs, Slowdown, VerifiedSilent). */
TextTable makeRepairTable(const AdvisorResult& result);

/** Whole-run summary (baseline/repaired/racefree ms, deltas, gate). */
TextTable makeRepairSummary(const AdvisorResult& result);

/** Deterministic JSON export (byte-identical for every jobs value). */
std::string renderRepairJson(const AdvisorResult& result);

}  // namespace eclsim::repair
