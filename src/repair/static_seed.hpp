/**
 * @file
 * Static seeding of the repair advisor (DESIGN.md §16).
 *
 * Dynamic detection only prices races it witnesses; a race the probe
 * schedule never manifests gets no proposal and therefore no cost
 * estimate. The staticrace analyzer over-approximates the dynamic
 * report set (its soundness gate enforces exactly that), so its
 * may-race pairs are a catalog of everything that COULD race.
 * staticSeedProposals() turns the statically predicted remainder —
 * non-atomic (site, access kind) uses appearing in the may-set but in
 * no dynamic proposal — into FixProposals, letting the advisor verify
 * and price fixes for races no schedule exposed.
 *
 * Statically seeded proposals have no classified dynamic evidence;
 * their taxonomy bucket comes from the site's declared expectation
 * (ECL_SITE_AS) via classFromExpectation, and an undeclared site gets
 * the conservative kUnknownHarmful (seq_cst), matching the paper's
 * stance that a race without a benignity argument must be repaired at
 * full strength.
 */
#pragma once

#include <vector>

#include "racecheck/runner.hpp"
#include "repair/proposal.hpp"

namespace eclsim::repair {

/** The taxonomy bucket a declared expectation justifies; kNone
 *  (undeclared) maps to kUnknownHarmful. */
racecheck::RaceClass classFromExpectation(racecheck::Expectation expect);

/**
 * Run the staticrace probe for one cell (fast mode, engine seed
 * `seed`) and derive a proposal for every non-atomic (site, kind) in
 * the static may-race set that `dynamic_set` lacks. Returned sorted by
 * (site_desc, site, kind) with static_seed set; the caller merges them
 * into its proposal list.
 */
std::vector<FixProposal> staticSeedProposals(
    const racecheck::RunnerConfig& config,
    const racecheck::RacecheckCell& cell, u64 seed,
    const ProposalSet& dynamic_set);

}  // namespace eclsim::repair
