/**
 * @file
 * Text table rendering for the benchmark harness. The paper's evaluation
 * is a set of tables (Tables I-IX); TextTable renders aligned plain text,
 * Markdown, or CSV so each bench binary can print the rows the paper
 * reports and also emit machine-readable output (the artifact produces
 * undirected_speedups.csv / directed_speedups.csv).
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eclsim {

/** A simple column-aligned table with a header row. */
class TextTable
{
  public:
    /** Alignment of a column's cells. */
    enum class Align { kLeft, kRight };

    explicit TextTable(std::vector<std::string> header);

    /** Number of columns (fixed by the header). */
    size_t columns() const { return header_.size(); }
    /** Number of body rows added so far. */
    size_t rows() const { return rows_.size(); }

    /** Set the alignment for one column (default: left for column 0,
     *  right for the rest, which suits name-plus-numbers tables). */
    void setAlign(size_t column, Align align);

    /** Append a body row; must have exactly columns() cells. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next added row. */
    void addSeparator();

    /** Cell accessor (row-major, body rows only). */
    const std::string& cell(size_t row, size_t column) const;

    /** Render as aligned plain text (the bench binaries' stdout format). */
    std::string toText() const;
    /** Render as GitHub-flavored Markdown. */
    std::string toMarkdown() const;
    /** Render as RFC-4180-ish CSV (quotes cells containing commas). */
    std::string toCsv() const;

    /** Write toCsv() to a file; fatal() on IO failure. */
    void writeCsv(const std::string& path) const;

  private:
    std::vector<size_t> columnWidths() const;

    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separators_;  ///< row indices preceded by a rule
};

/** Format a double with the given number of decimals (e.g. "0.97"). */
std::string fmtFixed(double value, int decimals);

/** Format an integer with thousands separators (e.g. "4,190,208"). */
std::string fmtGrouped(unsigned long long value);

}  // namespace eclsim
