/**
 * @file
 * Tiny "{}" placeholder string formatting (std::format is unavailable in
 * the toolchains we target, so eclsim carries its own minimal version).
 *
 * Supported syntax: each "{}" in the format string is replaced by the next
 * argument, streamed via operator<<. "{{" and "}}" escape literal braces.
 * Surplus placeholders are left verbatim; surplus arguments are appended.
 */
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace eclsim {

namespace detail {

inline void
formatImpl(std::ostringstream& out, std::string_view fmt)
{
    for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
            out << '{';
            ++i;
        } else if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            out << '}';
            ++i;
        } else {
            out << fmt[i];
        }
    }
}

template <typename First, typename... Rest>
void
formatImpl(std::ostringstream& out, std::string_view fmt, First&& first,
           Rest&&... rest)
{
    for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
            out << '{';
            ++i;
        } else if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            out << '}';
            ++i;
        } else if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            out << std::forward<First>(first);
            formatImpl(out, fmt.substr(i + 2), std::forward<Rest>(rest)...);
            return;
        } else {
            out << fmt[i];
        }
    }
    // No placeholder left: append remaining arguments so data is not lost.
    out << ' ' << std::forward<First>(first);
    (void)std::initializer_list<int>{((out << ' ' << rest), 0)...};
}

}  // namespace detail

/** Format args into fmt, replacing each "{}" in order. */
template <typename... Args>
std::string
strfmt(std::string_view fmt, Args&&... args)
{
    std::ostringstream out;
    detail::formatImpl(out, fmt, std::forward<Args>(args)...);
    return out.str();
}

}  // namespace eclsim
