/**
 * @file
 * Descriptive statistics used by the experiment harness: median, geometric
 * mean, Pearson correlation, and relative deviation (the paper reports the
 * median of 9 runs, geometric-mean speedups, Pearson correlations between
 * graph properties and speedups, and a median relative deviation of 0.6%).
 */
#pragma once

#include <vector>

namespace eclsim::stats {

/** Median of a sample (averages the two middle elements for even sizes). */
double median(std::vector<double> values);

/**
 * p-th percentile (0 <= p <= 100) with linear interpolation between the
 * closest ranks of a sorted copy, so percentile(v, 50) == median(v).
 * Used by the serve layer's latency reporting (p50/p99).
 */
double percentile(std::vector<double> values, double p);

/** Arithmetic mean. Returns 0 for an empty sample. */
double mean(const std::vector<double>& values);

/** Geometric mean. All values must be positive. */
double geomean(const std::vector<double>& values);

/** Smallest element. */
double minimum(const std::vector<double>& values);

/** Largest element. */
double maximum(const std::vector<double>& values);

/** Sample standard deviation (n-1 denominator). */
double stddev(const std::vector<double>& values);

/**
 * Pearson product-moment correlation coefficient between two equal-length
 * samples. Returns 0 when either sample has zero variance.
 */
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/**
 * Median of |x_i - median(x)| / median(x) over the sample — the "median
 * relative deviation" statistic quoted in the paper's Section VI.
 */
double medianRelativeDeviation(const std::vector<double>& values);

}  // namespace eclsim::stats
