#include "core/thread_pool.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace eclsim::core {

namespace {

/** Worker number of the current thread; -1 on non-pool threads. */
thread_local int t_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(u32 workers)
{
    const u32 n = workers == 0 ? defaultConcurrency() : workers;
    workers_.reserve(n);
    for (u32 i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

u32
ThreadPool::defaultConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

int
ThreadPool::currentWorkerIndex()
{
    return t_worker_index;
}

size_t
ThreadPool::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

size_t
ThreadPool::active() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ECLSIM_ASSERT(!stopping_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(fn));
    }
    ready_.notify_one();
}

bool
ThreadPool::enqueueBounded(std::function<void()> fn, size_t max_pending)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ECLSIM_ASSERT(!stopping_, "trySubmit() on a stopping ThreadPool");
        if (queue_.size() >= max_pending)
            return false;
        queue_.push_back(std::move(fn));
    }
    ready_.notify_one();
    return true;
}

void
ThreadPool::workerLoop(u32 index)
{
    t_worker_index = static_cast<int>(index);
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();  // a throwing task is a packaged_task: it stores the
                 // exception in its future instead of unwinding here
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
        }
    }
}

}  // namespace eclsim::core
