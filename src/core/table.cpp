#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/logging.hpp"

namespace eclsim {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    ECLSIM_ASSERT(!header_.empty(), "table needs at least one column");
    aligns_.assign(header_.size(), Align::kRight);
    aligns_[0] = Align::kLeft;
}

void
TextTable::setAlign(size_t column, Align align)
{
    ECLSIM_ASSERT(column < columns(), "column {} out of range", column);
    aligns_[column] = align;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    ECLSIM_ASSERT(cells.size() == columns(),
                  "row has {} cells, table has {} columns", cells.size(),
                  columns());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    separators_.push_back(rows_.size());
}

const std::string&
TextTable::cell(size_t row, size_t column) const
{
    ECLSIM_ASSERT(row < rows() && column < columns(),
                  "cell ({}, {}) out of range", row, column);
    return rows_[row][column];
}

std::vector<size_t>
TextTable::columnWidths() const
{
    std::vector<size_t> widths(columns(), 0);
    for (size_t c = 0; c < columns(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < columns(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    return widths;
}

namespace {

void
appendAligned(std::string& out, const std::string& cell, size_t width,
              TextTable::Align align)
{
    const size_t pad = width - cell.size();
    if (align == TextTable::Align::kRight)
        out.append(pad, ' ');
    out += cell;
    if (align == TextTable::Align::kLeft)
        out.append(pad, ' ');
}

}  // namespace

std::string
TextTable::toText() const
{
    const auto widths = columnWidths();
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;

    std::string out;
    for (size_t c = 0; c < columns(); ++c) {
        appendAligned(out, header_[c], widths[c], aligns_[c]);
        out += "  ";
    }
    out += '\n';
    out.append(total, '-');
    out += '\n';
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end()) {
            out.append(total, '-');
            out += '\n';
        }
        for (size_t c = 0; c < columns(); ++c) {
            appendAligned(out, rows_[r][c], widths[c], aligns_[c]);
            out += "  ";
        }
        out += '\n';
    }
    return out;
}

std::string
TextTable::toMarkdown() const
{
    std::string out = "|";
    for (const auto& h : header_)
        out += " " + h + " |";
    out += "\n|";
    for (size_t c = 0; c < columns(); ++c)
        out += aligns_[c] == Align::kRight ? " ---: |" : " --- |";
    out += '\n';
    for (const auto& row : rows_) {
        out += "|";
        for (const auto& cell : row)
            out += " " + cell + " |";
        out += '\n';
    }
    return out;
}

namespace {

std::string
csvEscape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

}  // namespace

std::string
TextTable::toCsv() const
{
    std::string out;
    for (size_t c = 0; c < columns(); ++c) {
        if (c)
            out += ',';
        out += csvEscape(header_[c]);
    }
    out += '\n';
    for (const auto& row : rows_) {
        for (size_t c = 0; c < columns(); ++c) {
            if (c)
                out += ',';
            out += csvEscape(row[c]);
        }
        out += '\n';
    }
    return out;
}

void
TextTable::writeCsv(const std::string& path) const
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open '{}' for writing", path);
    file << toCsv();
    if (!file)
        fatal("failed writing '{}'", path);
}

std::string
fmtFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtGrouped(unsigned long long value)
{
    std::string digits = std::to_string(value);
    std::string out;
    const size_t n = digits.size();
    for (size_t i = 0; i < n; ++i) {
        if (i != 0 && (n - i) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

}  // namespace eclsim
