/**
 * @file
 * Fixed-size worker pool for the experiment harness.
 *
 * A ThreadPool owns N worker threads draining one FIFO task queue.
 * submit() returns a std::future so callers collect results (and
 * exceptions — a task that throws stores the exception in its future,
 * it never takes down a worker) in whatever order they choose; the
 * harness awaits futures in cell order, which makes exception
 * propagation deterministic regardless of completion order.
 *
 * Destruction drains the queue: every task submitted before the
 * destructor ran is executed, then the workers join. submit() after
 * shutdown has begun is a bug (panic).
 *
 * Workers are numbered 0..size()-1; currentWorkerIndex() returns the
 * calling thread's number (or -1 off-pool) so harness code can tag
 * per-worker artifacts such as trace tracks.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/types.hpp"

namespace eclsim::core {

/** Fixed worker-count task pool (see file comment). */
class ThreadPool
{
  public:
    /** Start `workers` threads; 0 means defaultConcurrency(). */
    explicit ThreadPool(u32 workers = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    u32 size() const { return static_cast<u32>(workers_.size()); }

    /** std::thread::hardware_concurrency(), floored at 1. */
    static u32 defaultConcurrency();

    /** 0-based index of the calling pool worker, -1 off-pool. */
    static int currentWorkerIndex();

    /** Tasks enqueued but not yet picked up by a worker. */
    size_t pending() const;

    /** Tasks currently executing on a worker. */
    size_t active() const;

    /**
     * Enqueue a callable; the future delivers its result or rethrows
     * whatever it threw.
     */
    template <typename F>
    auto
    submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Bounded-queue submit for admission control: enqueue the callable
     * only if fewer than `max_pending` tasks are currently waiting in
     * the queue (running tasks do not count). Returns the future on
     * success, std::nullopt when the bound would be exceeded — the
     * callable is then never invoked and the caller fails fast instead
     * of piling unbounded work onto the pool.
     */
    template <typename F>
    auto
    trySubmit(size_t max_pending, F&& fn)
        -> std::optional<std::future<std::invoke_result_t<std::decay_t<F>>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        if (!enqueueBounded([task] { (*task)(); }, max_pending))
            return std::nullopt;
        return future;
    }

  private:
    void enqueue(std::function<void()> fn);
    bool enqueueBounded(std::function<void()> fn, size_t max_pending);
    void workerLoop(u32 index);

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t active_ = 0;
    bool stopping_ = false;
};

}  // namespace eclsim::core
