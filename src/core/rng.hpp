/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * eclsim results must be exactly reproducible across platforms, so all
 * randomness flows through SplitMix64 (a tiny, well-mixed 64-bit PRNG)
 * and a stateless hash used by the graph analytics kernels for vertex
 * priorities (mirroring the hash used by ECL-MIS).
 */
#pragma once

#include "core/types.hpp"

namespace eclsim {

/** SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA'14). */
class SplitMix64
{
  public:
    explicit SplitMix64(u64 seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    u64
    nextBelow(u64 bound)
    {
        // Multiply-shift range reduction; bias is negligible for our use.
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    u64 state_;
};

/** Stateless avalanche hash (finalizer of MurmurHash3). */
constexpr u32
hash32(u32 x)
{
    x = ((x >> 16) ^ x) * 0x45d9f3bU;
    x = ((x >> 16) ^ x) * 0x45d9f3bU;
    return (x >> 16) ^ x;
}

/** Stateless 64-bit avalanche hash (SplitMix64 finalizer). */
constexpr u64
hash64(u64 x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Deterministic per-cell seed used by every suite runner (harness
 * sweeps, chaos campaigns, racecheck cells, the differential test
 * harness): a SplitMix64-style mix of a base seed and the cell's stable
 * index, so parallel and serial sweeps give every cell identical engine
 * seeds regardless of worker or completion order.
 */
constexpr u64
cellSeed(u64 base_seed, u64 cell_index)
{
    return hash64(base_seed + 0x9e3779b97f4a7c15ULL * (cell_index + 1));
}

}  // namespace eclsim
