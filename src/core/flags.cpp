#include "core/flags.hpp"

#include <cstdlib>

#include "core/logging.hpp"

namespace eclsim {

Flags::Flags(int argc, const char* const* argv)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        const size_t eq = body.find('=');
        if (eq != std::string::npos)
            values_.emplace_back(body.substr(0, eq), body.substr(eq + 1));
        else
            values_.emplace_back(body, "");
    }
}

std::optional<std::string>
Flags::lookup(const std::string& name) const
{
    for (const auto& [key, value] : values_)
        if (key == name)
            return value;
    return std::nullopt;
}

bool
Flags::has(const std::string& name) const
{
    return lookup(name).has_value();
}

std::string
Flags::getString(const std::string& name, const std::string& fallback) const
{
    auto v = lookup(name);
    return v ? *v : fallback;
}

i64
Flags::getInt(const std::string& name, i64 fallback) const
{
    auto v = lookup(name);
    if (!v)
        return fallback;
    char* end = nullptr;
    const i64 out = std::strtoll(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        fatal("flag --{} expects an integer, got '{}'", name, *v);
    return out;
}

double
Flags::getDouble(const std::string& name, double fallback) const
{
    auto v = lookup(name);
    if (!v)
        return fallback;
    char* end = nullptr;
    const double out = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0')
        fatal("flag --{} expects a number, got '{}'", name, *v);
    return out;
}

bool
Flags::getBool(const std::string& name, bool fallback) const
{
    auto v = lookup(name);
    if (!v)
        return fallback;
    if (*v == "" || *v == "1" || *v == "true" || *v == "yes")
        return true;
    if (*v == "0" || *v == "false" || *v == "no")
        return false;
    fatal("flag --{} expects a boolean, got '{}'", name, *v);
}

}  // namespace eclsim
