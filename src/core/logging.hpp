/**
 * @file
 * Minimal logging and error-termination helpers in the gem5 style.
 *
 * fatal()  — the situation is the user's fault (bad input, bad flag);
 *            prints a message and exits with status 1.
 * panic()  — the situation is a bug in eclsim itself; prints a message
 *            and aborts so a core dump or debugger can catch it.
 * warn()   — something suspicious but survivable happened.
 * inform() — plain status output.
 */
#pragma once

#include <cstdlib>
#include <iostream>
#include <string_view>

#include "core/format.hpp"

namespace eclsim {

namespace detail {

[[noreturn]] inline void
terminateFatal(std::string_view msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

[[noreturn]] inline void
terminatePanic(std::string_view msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

}  // namespace detail

/** Terminate due to a user-caused error (bad configuration or input). */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args&&... args)
{
    detail::terminateFatal(strfmt(fmt, std::forward<Args>(args)...));
}

/** Terminate due to an internal invariant violation (an eclsim bug). */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args&&... args)
{
    detail::terminatePanic(strfmt(fmt, std::forward<Args>(args)...));
}

/** Print a non-fatal warning to stderr. */
template <typename... Args>
void
warn(std::string_view fmt, Args&&... args)
{
    std::cerr << "warn: " << strfmt(fmt, std::forward<Args>(args)...)
              << std::endl;
}

/** Print a status message to stdout. */
template <typename... Args>
void
inform(std::string_view fmt, Args&&... args)
{
    std::cout << strfmt(fmt, std::forward<Args>(args)...) << std::endl;
}

/** panic() unless the condition holds. */
#define ECLSIM_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::eclsim::panic("assertion '{}' failed at {}:{}: {}", #cond,     \
                            __FILE__, __LINE__,                              \
                            ::eclsim::strfmt(__VA_ARGS__));                  \
        }                                                                    \
    } while (0)

}  // namespace eclsim
