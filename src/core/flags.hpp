/**
 * @file
 * Minimal command-line flag parsing for the bench and example binaries.
 *
 * Accepted forms: --name=value and --flag (boolean true). The
 * space-separated --name value form is deliberately not supported: it is
 * ambiguous with a boolean flag followed by a positional argument.
 * Positional arguments are collected in order.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace eclsim {

/** Parsed command line. */
class Flags
{
  public:
    Flags(int argc, const char* const* argv);

    /** True if --name was given (with or without a value). */
    bool has(const std::string& name) const;

    /** String value of --name, or fallback. */
    std::string getString(const std::string& name,
                          const std::string& fallback) const;

    /** Integer value of --name, or fallback; fatal() on a malformed value. */
    i64 getInt(const std::string& name, i64 fallback) const;

    /** Floating-point value of --name, or fallback. */
    double getDouble(const std::string& name, double fallback) const;

    /** Boolean: --name / --name=true / --name=1 / --name=false / --name=0. */
    bool getBool(const std::string& name, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string& program() const { return program_; }

  private:
    std::optional<std::string> lookup(const std::string& name) const;

    std::string program_;
    std::vector<std::pair<std::string, std::string>> values_;
    std::vector<std::string> positional_;
};

}  // namespace eclsim
