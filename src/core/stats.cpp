#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/logging.hpp"

namespace eclsim::stats {

double
median(std::vector<double> values)
{
    ECLSIM_ASSERT(!values.empty(), "median of empty sample");
    const size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    double hi = values[mid];
    if (values.size() % 2 == 1)
        return hi;
    double lo = *std::max_element(values.begin(), values.begin() + mid);
    return 0.5 * (lo + hi);
}

double
percentile(std::vector<double> values, double p)
{
    ECLSIM_ASSERT(!values.empty(), "percentile of empty sample");
    ECLSIM_ASSERT(p >= 0.0 && p <= 100.0, "percentile {} out of [0,100]",
                  p);
    std::sort(values.begin(), values.end());
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] + frac * (values[lo + 1] - values[lo]);
}

double
mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double>& values)
{
    ECLSIM_ASSERT(!values.empty(), "geomean of empty sample");
    double log_sum = 0.0;
    for (double v : values) {
        ECLSIM_ASSERT(v > 0.0, "geomean requires positive values, got {}", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
minimum(const std::vector<double>& values)
{
    ECLSIM_ASSERT(!values.empty(), "minimum of empty sample");
    return *std::min_element(values.begin(), values.end());
}

double
maximum(const std::vector<double>& values)
{
    ECLSIM_ASSERT(!values.empty(), "maximum of empty sample");
    return *std::max_element(values.begin(), values.end());
}

double
stddev(const std::vector<double>& values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double
pearson(const std::vector<double>& xs, const std::vector<double>& ys)
{
    ECLSIM_ASSERT(xs.size() == ys.size(),
                  "pearson sample size mismatch: {} vs {}", xs.size(),
                  ys.size());
    const size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
medianRelativeDeviation(const std::vector<double>& values)
{
    const double med = median(values);
    if (med == 0.0)
        return 0.0;
    std::vector<double> devs;
    devs.reserve(values.size());
    for (double v : values)
        devs.push_back(std::abs(v - med) / med);
    return median(std::move(devs));
}

}  // namespace eclsim::stats
