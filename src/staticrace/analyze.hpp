/**
 * @file
 * Pairwise may-race analysis over site summaries (DESIGN.md §16).
 *
 * The analysis applies the two-thread reduction: a data race needs two
 * accesses from distinct threads, in the same kernel launch, at least
 * one a write, not both atomic with mutually reaching scopes, touching
 * a common byte. Working per KernelGroup (launch boundaries order
 * different kernels), every site pair — including a site against
 * itself — is tested against that conjunction using only the symbolic
 * summaries:
 *
 *  - write requirement: at least one side observed a store or RMW;
 *  - atomic excuse, mirroring the dynamic detector conservatively:
 *    both sides all-atomic AND (the kernel only ever ran single-block,
 *    or both sides' narrowest scope is >= device). Block-scope atomics
 *    under a multi-block grid are NOT excused — the static analysis
 *    cannot prove two conflicting threads share a block;
 *  - program order: two single-thread summaries pinned to the same
 *    thread cannot race;
 *  - barrier phases: in a single-block kernel, disjoint __syncthreads
 *    epoch intervals are ordered by the barrier. (Multi-block grids get
 *    no such edge — barriers are block-local.)
 *  - overlap, per byte: affine-vs-affine pairs with a common per-thread
 *    stride get an exact affine-difference decision over the distinct-
 *    thread constraint (the d != 0 lattice test); a site against itself
 *    is disjoint when its stride covers its per-thread footprint;
 *    anything involving a widened (⊤) summary falls back to interval
 *    intersection against the whole enclosing allocation.
 *
 * Every surviving pair is emitted as a MayRacePair with a WHY string
 * naming the facts that kept it alive, ranked by overlap extent. The
 * result over-approximates the dynamic racecheck report set; the
 * soundness gate (runner.hpp) enforces exactly that.
 */
#pragma once

#include <string>
#include <vector>

#include "staticrace/summary.hpp"

namespace eclsim::staticrace {

/** One statically undischarged pair: these two sites may race. */
struct MayRacePair
{
    std::string kernel;
    u32 alloc_index = 0;
    std::string allocation;
    /** Description-ordered (desc_a <= desc_b), so identity never
     *  depends on site-interning order. */
    racecheck::SiteId site_a = racecheck::kUnknownSite;
    racecheck::SiteId site_b = racecheck::kUnknownSite;
    std::string desc_a, desc_b;      ///< "file:label" renderings
    std::string access_a, access_b;  ///< accessSigName of each side
    /** First observed signature of each side (what access_a/access_b
     *  render); the repair advisor's static seeding keys on the kind
     *  and atomicity. */
    racecheck::AccessSig sig_a, sig_b;
    bool rw = false;  ///< a read/write conflict is possible
    bool ww = false;  ///< a write/write conflict is possible
    /** At least one side is non-atomic (the pair a race-free variant
     *  must not produce). False = an unexcused atomic/atomic pair
     *  (block-scope atomics under a multi-block grid). */
    bool non_atomic_side = true;
    /** Every non-atomic side carries a declared benign-race expectation
     *  (ECL_SITE_AS; e.g. the MST in_mst[] constant mark-store is
     *  kIdempotent). The soundness gate's race-free-zero precision rule
     *  reports such pairs but does not fail on them — the coverage rule
     *  still guarantees no dynamic race goes unseen. */
    bool declared_benign = false;
    /** Bytes of possible overlap (ranking score; allocation size for
     *  widened pairs). */
    u64 overlap_bytes = 0;
    std::string why;

    /** Stable one-line rendering ("kernel alloc: a vs b [R/W|W/W]"). */
    std::string describe() const;
};

/**
 * Analyze one kernel group against the allocation table, appending
 * surviving pairs to out. Deterministic: iteration is in site-id order
 * but emitted pairs are description-keyed.
 */
void analyzeKernel(const KernelGroup& group,
                   const std::vector<simt::Allocation>& allocations,
                   std::vector<MayRacePair>& out);

/** Analyze every kernel of a finalized recording; returns the ranked
 *  pair list (overlap extent desc, then description). */
std::vector<MayRacePair> analyzeRecording(const Recorder& recorder);

}  // namespace eclsim::staticrace
