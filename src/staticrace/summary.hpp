/**
 * @file
 * Per-site access summaries for the static may-race analyzer.
 *
 * The summary extractor is the observation half of eclsim::staticrace
 * (DESIGN.md §16): a Recorder installed as the engine's AccessObserver
 * watches one probe execution of a workload and condenses every
 * ECL_SITE's address stream into a small symbolic summary —
 *
 *  - an affine model  addr = base + ct·thread + ci·iter  fitted online
 *    and verified against every observed sample (thread = global thread
 *    id, which subsumes (tid, bid) for block-uniform strides; iter = the
 *    site's per-thread occurrence index within a launch), or
 *  - ⊤ (top): the stream is data-dependent (CC's parent[] hook jumps)
 *    or otherwise non-affine, and the summary widens to the whole
 *    enclosing allocation(s). Widening is what keeps the downstream
 *    analysis sound: a data-dependent site may touch different
 *    addresses under a different schedule, so no observed interval is
 *    trustworthy;
 *
 * tagged with the access signature (kind, plain/volatile/atomic, RMW
 * op, order, scope), the barrier phase interval (min/max __syncthreads
 * epoch), and the thread/launch-shape ranges the pair analysis
 * (analyze.hpp) reasons over. Summaries for repeated launches of the
 * same kernel name are merged: kernel-launch boundaries order
 * *different* kernels, but two sites can only race within one launch,
 * and a launch is identified by its kernel name (iterative sweeps
 * re-launch the same kernel with possibly different grids).
 */
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "racecheck/detector.hpp"
#include "racecheck/sites.hpp"
#include "simt/access.hpp"
#include "simt/device_memory.hpp"
#include "simt/observer.hpp"

namespace eclsim::staticrace {

/** Fitted address model of one site (valid after AffineFitter::done). */
struct AffineModel
{
    /** True when every observed sample satisfied
     *  addr = base + ct*thread + ci*iter. False = ⊤ (widened). */
    bool affine = false;
    i64 base = 0;
    i64 ct = 0;  ///< bytes per global thread id step
    i64 ci = 0;  ///< bytes per per-thread occurrence step
};

/**
 * Online exact affine fitter over samples (thread, iter, addr).
 *
 * The first sample pins the base point; coefficients are pinned from
 * samples that differ from the base in exactly one variable (requiring
 * integer divisibility), samples varying in both are parked on a
 * bounded pending list and re-verified once a coefficient is known.
 * Any contradiction — or an over-full pending list, or a coefficient
 * still unresolved at finalization while its variable took multiple
 * values — fails the fit. Failing is always safe: the consumer widens
 * to ⊤.
 */
class AffineFitter
{
  public:
    /** Record one observed access. */
    void add(u32 thread, u32 iter, u64 addr);

    /** Finish the fit and return the model (affine=false on failure). */
    AffineModel done();

    bool failed() const { return failed_; }
    u64 samples() const { return samples_; }

  private:
    struct Sample
    {
        u32 thread;
        u32 iter;
        u64 addr;
    };

    void fail() { failed_ = true; pending_.clear(); }
    /** Re-derive / re-verify parked samples after a coefficient pin. */
    void drainPending();
    /** Try to consume one sample; returns false if it must stay parked. */
    bool consume(const Sample& s);

    /** Ambiguous samples parked beyond this bound fail the fit: a
     *  dropped sample could hide a contradiction, and soundness demands
     *  that unverified streams widen rather than narrow. */
    static constexpr size_t kMaxPending = 1024;

    bool has_base_ = false;
    bool failed_ = false;
    bool ct_known_ = false, ci_known_ = false;
    bool multi_thread_ = false, multi_iter_ = false;
    u32 t0_ = 0, i0_ = 0;
    u64 a0_ = 0;
    i64 ct_ = 0, ci_ = 0;
    u64 samples_ = 0;
    std::vector<Sample> pending_;
};

/** Condensed observation of one (kernel, site) access stream. */
struct SiteSummary
{
    racecheck::SiteId site = racecheck::kUnknownSite;
    /** First observed signature (display); the reasoning flags below
     *  are merged over every observed signature. */
    racecheck::AccessSig sig;
    bool multi_sig = false;    ///< differing signatures observed
    bool reads = false;        ///< loads or RMWs observed
    bool writes = false;       ///< stores or RMWs observed
    bool all_atomic = true;    ///< every observed access was atomic
    /** Narrowest scope among atomic observations (meaningful only when
     *  at least one atomic access was seen). */
    simt::Scope min_scope = simt::Scope::kSystem;
    u8 orders_mask = 0;        ///< bit per observed simt::MemoryOrder
    u64 samples = 0;
    u64 addr_min = ~u64{0};
    u64 addr_end = 0;          ///< exclusive end of the touched range
    u8 max_size = 0;           ///< widest piece observed
    u32 thread_min = ~u32{0};
    u32 thread_max = 0;
    u32 epoch_min = ~u32{0};   ///< barrier-phase interval (per launch)
    u32 epoch_max = 0;
    u32 iter_max = 0;          ///< largest per-thread occurrence index
    AffineModel model;         ///< valid after Recorder::finalize()
    u32 alloc_first = 0;       ///< allocation index range the summary
    u32 alloc_last = 0;        ///<   touches (inclusive; ⊤ widens to it)

    /** Human rendering of the model ("affine(+4/t)", "⊤ data-dependent"). */
    std::string modelDesc() const;
};

/** All summaries of one kernel name, merged over its launches. */
struct KernelGroup
{
    std::string kernel;
    u32 launches = 0;
    u32 max_grid = 0;   ///< widest grid any launch of this kernel used
    u32 max_block = 0;
    /** Keyed by site id; rendering sorts by description, so output
     *  never depends on interning order. */
    std::map<racecheck::SiteId, SiteSummary> sites;
};

/**
 * The AccessObserver that builds kernel groups from a probe execution.
 * Install via EngineOptions::observer, run the workload, then call
 * finalize(memory) once to fit models and resolve allocation ranges.
 */
class Recorder : public simt::AccessObserver
{
  public:
    void onLaunchBegin(std::string_view kernel, u32 grid,
                       u32 block_size) override;
    void onAccess(const racecheck::ThreadInfo& who,
                  const simt::MemRequest& req, u64 addr, u8 size) override;

    /**
     * Fit every site's affine model and resolve address intervals to
     * allocation index ranges against the probe's device memory (must
     * still be alive). Also snapshots the allocation table so the
     * analysis can run after the memory is gone. Call exactly once.
     */
    void finalize(const simt::DeviceMemory& memory);

    /** Kernel groups in first-launch order (deterministic: launches are
     *  serial). Valid after finalize(). */
    const std::vector<KernelGroup>& kernels() const { return kernels_; }

    /** Allocation table snapshot taken by finalize(). */
    const std::vector<simt::Allocation>& allocations() const
    {
        return allocations_;
    }

    u64 totalSamples() const { return total_samples_; }

  private:
    std::vector<KernelGroup> kernels_;
    std::vector<simt::Allocation> allocations_;
    std::unordered_map<std::string, size_t> kernel_index_;
    /** Per-site affine fitters, parallel to the summaries (kept out of
     *  SiteSummary so the summary stays copyable value data). */
    std::map<std::pair<size_t, racecheck::SiteId>, AffineFitter> fits_;
    /** (site, thread) -> next occurrence index, reset every launch. */
    std::unordered_map<u64, u32> iter_counters_;
    size_t current_ = ~size_t{0};
    u64 total_samples_ = 0;
    bool finalized_ = false;
};

/** Printable memory-order / scope names ("relaxed", "device", ...). */
const char* memoryOrderName(simt::MemoryOrder order);
const char* scopeName(simt::Scope scope);

}  // namespace eclsim::staticrace
