#include "staticrace/summary.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace eclsim::staticrace {

const char*
memoryOrderName(simt::MemoryOrder order)
{
    switch (order) {
      case simt::MemoryOrder::kRelaxed:
        return "relaxed";
      case simt::MemoryOrder::kAcquire:
        return "acquire";
      case simt::MemoryOrder::kRelease:
        return "release";
      case simt::MemoryOrder::kSeqCst:
        return "seq_cst";
    }
    return "?";
}

const char*
scopeName(simt::Scope scope)
{
    switch (scope) {
      case simt::Scope::kBlock:
        return "block";
      case simt::Scope::kDevice:
        return "device";
      case simt::Scope::kSystem:
        return "system";
    }
    return "?";
}

// --- AffineFitter ---------------------------------------------------------

void
AffineFitter::add(u32 thread, u32 iter, u64 addr)
{
    ++samples_;
    if (failed_)
        return;
    if (!has_base_) {
        has_base_ = true;
        t0_ = thread;
        i0_ = iter;
        a0_ = addr;
        return;
    }
    if (thread != t0_)
        multi_thread_ = true;
    if (iter != i0_)
        multi_iter_ = true;
    if (!consume({thread, iter, addr})) {
        pending_.push_back({thread, iter, addr});
        if (pending_.size() > kMaxPending)
            fail();
    }
}

bool
AffineFitter::consume(const Sample& s)
{
    // dt/di fit in i64 comfortably (u32 inputs); da can be negative.
    const i64 dt = static_cast<i64>(s.thread) - static_cast<i64>(t0_);
    const i64 di = static_cast<i64>(s.iter) - static_cast<i64>(i0_);
    const i64 da = static_cast<i64>(s.addr) - static_cast<i64>(a0_);

    if (ct_known_ && ci_known_) {
        if (da != ct_ * dt + ci_ * di)
            fail();
        return true;
    }
    if (dt == 0 && di == 0) {
        // Same (thread, iter) revisited: only consistent if the address
        // repeats exactly (it cannot — iter is an occurrence counter —
        // but keep the check for direct fitter use in tests).
        if (da != 0)
            fail();
        return true;
    }
    if (di == 0) {
        if (da % dt != 0) {
            fail();
            return true;
        }
        const i64 c = da / dt;
        if (ct_known_ && ct_ != c) {
            fail();
            return true;
        }
        if (!ct_known_) {
            ct_ = c;
            ct_known_ = true;
            drainPending();
        }
        return true;
    }
    if (dt == 0) {
        if (da % di != 0) {
            fail();
            return true;
        }
        const i64 c = da / di;
        if (ci_known_ && ci_ != c) {
            fail();
            return true;
        }
        if (!ci_known_) {
            ci_ = c;
            ci_known_ = true;
            drainPending();
        }
        return true;
    }
    // Both variables moved; with one coefficient known the other follows.
    if (ct_known_) {
        const i64 rem = da - ct_ * dt;
        if (rem % di != 0) {
            fail();
            return true;
        }
        const i64 c = rem / di;
        if (ci_known_ && ci_ != c) {
            fail();
            return true;
        }
        if (!ci_known_) {
            ci_ = c;
            ci_known_ = true;
            drainPending();
        }
        return true;
    }
    if (ci_known_) {
        const i64 rem = da - ci_ * di;
        if (rem % dt != 0) {
            fail();
            return true;
        }
        const i64 c = rem / dt;
        ct_ = c;
        ct_known_ = true;
        drainPending();
        return true;
    }
    return false;  // genuinely ambiguous: park it
}

void
AffineFitter::drainPending()
{
    // A newly pinned coefficient may resolve parked samples, and each
    // resolution may pin the other coefficient; iterate to a fixpoint.
    bool progressed = true;
    while (progressed && !failed_ && !pending_.empty()) {
        progressed = false;
        std::vector<Sample> keep;
        keep.reserve(pending_.size());
        std::vector<Sample> work;
        work.swap(pending_);
        for (const Sample& s : work) {
            if (failed_)
                break;
            if (consume(s))
                progressed = true;
            else
                keep.push_back(s);
        }
        if (!failed_)
            pending_.swap(keep);
    }
}

AffineModel
AffineFitter::done()
{
    AffineModel model;
    if (failed_ || !has_base_)
        return model;
    // A variable that only ever took one value leaves its coefficient
    // unconstrained; zero is as good a representative as any (the
    // consumer's thread/iter ranges collapse to a point there).
    if (!ct_known_) {
        if (multi_thread_)
            return model;  // varied but never pinned: unverifiable
        ct_ = 0;
        ct_known_ = true;
        drainPending();
    }
    if (!ci_known_) {
        if (multi_iter_)
            return model;
        ci_ = 0;
        ci_known_ = true;
        drainPending();
    }
    if (failed_ || !pending_.empty())
        return model;
    model.affine = true;
    model.base = static_cast<i64>(a0_) - ct_ * static_cast<i64>(t0_) -
                 ci_ * static_cast<i64>(i0_);
    model.ct = ct_;
    model.ci = ci_;
    return model;
}

// --- SiteSummary ----------------------------------------------------------

std::string
SiteSummary::modelDesc() const
{
    if (!model.affine) {
        return "top(data-dependent over [" + std::to_string(addr_min) +
               "," + std::to_string(addr_end) + "))";
    }
    std::string out = "affine(base=" + std::to_string(model.base);
    if (model.ct != 0)
        out += (model.ct > 0 ? "+" : "") + std::to_string(model.ct) + "/t";
    if (model.ci != 0)
        out += (model.ci > 0 ? "+" : "") + std::to_string(model.ci) + "/i";
    out += ")";
    return out;
}

// --- Recorder -------------------------------------------------------------

void
Recorder::onLaunchBegin(std::string_view kernel, u32 grid, u32 block_size)
{
    ECLSIM_ASSERT(!finalized_, "Recorder reused after finalize()");
    const std::string name(kernel);
    auto it = kernel_index_.find(name);
    if (it == kernel_index_.end()) {
        it = kernel_index_.emplace(name, kernels_.size()).first;
        KernelGroup group;
        group.kernel = name;
        kernels_.push_back(std::move(group));
    }
    current_ = it->second;
    KernelGroup& group = kernels_[current_];
    ++group.launches;
    group.max_grid = std::max(group.max_grid, grid);
    group.max_block = std::max(group.max_block, block_size);
    // Occurrence counters are per launch: iter 0 of launch L and iter 0
    // of launch L+1 are the same loop position re-executed.
    iter_counters_.clear();
}

void
Recorder::onAccess(const racecheck::ThreadInfo& who,
                   const simt::MemRequest& req, u64 addr, u8 size)
{
    ECLSIM_ASSERT(current_ != ~size_t{0},
                  "access observed before any launch");
    KernelGroup& group = kernels_[current_];
    const racecheck::SiteId site = req.site;
    SiteSummary& summary = group.sites[site];
    const racecheck::AccessSig sig = racecheck::makeSig(req);
    if (summary.samples == 0) {
        summary.site = site;
        summary.sig = sig;
    } else if (!summary.multi_sig) {
        const racecheck::AccessSig& have = summary.sig;
        summary.multi_sig =
            have.kind != sig.kind || have.mode != sig.mode ||
            have.rmw != sig.rmw || have.scope != sig.scope ||
            have.size != sig.size || have.torn != sig.torn;
    }
    ++summary.samples;
    ++total_samples_;

    const bool is_atomic = racecheck::sigIsAtomic(sig);
    if (req.kind != simt::MemOpKind::kStore)
        summary.reads = true;
    if (req.kind != simt::MemOpKind::kLoad)
        summary.writes = true;
    summary.all_atomic = summary.all_atomic && is_atomic;
    if (is_atomic) {
        summary.min_scope = std::min(summary.min_scope, req.scope);
        summary.orders_mask |= static_cast<u8>(1u << static_cast<u8>(
                                                   req.order));
    }

    summary.addr_min = std::min(summary.addr_min, addr);
    summary.addr_end = std::max(summary.addr_end, addr + size);
    summary.max_size = std::max(summary.max_size, size);
    summary.thread_min = std::min(summary.thread_min, who.thread);
    summary.thread_max = std::max(summary.thread_max, who.thread);
    summary.epoch_min = std::min(summary.epoch_min, who.epoch);
    summary.epoch_max = std::max(summary.epoch_max, who.epoch);

    const u64 iter_key =
        (static_cast<u64>(site) << 32) | who.thread;
    u32& iter = iter_counters_[iter_key];
    summary.iter_max = std::max(summary.iter_max, iter);
    fits_[{current_, site}].add(who.thread, iter, addr);
    ++iter;
}

void
Recorder::finalize(const simt::DeviceMemory& memory)
{
    ECLSIM_ASSERT(!finalized_, "Recorder::finalize() called twice");
    finalized_ = true;
    allocations_.clear();
    allocations_.reserve(memory.numAllocations());
    for (size_t i = 0; i < memory.numAllocations(); ++i)
        allocations_.push_back(memory.allocation(i));
    for (size_t k = 0; k < kernels_.size(); ++k) {
        for (auto& [site, summary] : kernels_[k].sites) {
            summary.model = fits_[{k, site}].done();
            summary.alloc_first = memory.allocationIndexAt(summary.addr_min);
            summary.alloc_last =
                memory.allocationIndexAt(summary.addr_end - 1);
        }
    }
    fits_.clear();
}

}  // namespace eclsim::staticrace
