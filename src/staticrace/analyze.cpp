#include "staticrace/analyze.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "core/logging.hpp"

namespace eclsim::staticrace {

namespace {

i64
floorDiv(i64 a, i64 b)
{
    ECLSIM_ASSERT(b != 0, "floorDiv by zero");
    i64 q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

i64
ceilDiv(i64 a, i64 b)
{
    return -floorDiv(-a, b);
}

/** Byte interval a summary may touch: the observed hull for affine
 *  summaries, the whole enclosing allocation range for widened ones. */
void
summarySpan(const SiteSummary& s,
            const std::vector<simt::Allocation>& allocations, u64& lo,
            u64& hi)
{
    if (s.model.affine) {
        lo = s.addr_min;
        hi = s.addr_end;
        return;
    }
    const simt::Allocation& first = allocations[s.alloc_first];
    const simt::Allocation& last = allocations[s.alloc_last];
    lo = first.offset;
    hi = last.offset + last.bytes;
}

/** Per-thread footprint of an affine summary: the occurrence term's
 *  extent plus the widest access. lo_off is the footprint's offset
 *  below the thread's base address (negative ci runs downward). */
void
threadFootprint(const SiteSummary& s, i64& lo_off, i64& width)
{
    const i64 iter_extent =
        (s.model.ci < 0 ? -s.model.ci : s.model.ci) *
        static_cast<i64>(s.iter_max);
    lo_off = s.model.ci < 0 ? -iter_extent : 0;
    width = iter_extent + s.max_size;
}

/**
 * Affine-difference disjointness for two same-stride summaries: does
 * any pair of DISTINCT threads (d = tA - tB != 0) make the per-thread
 * footprints overlap? Returns true if overlap is possible.
 */
bool
affinePairMayOverlap(const SiteSummary& a, const SiteSummary& b)
{
    const i64 s = a.model.ct;  // == b.model.ct, checked by caller
    i64 lo_a, w_a, lo_b, w_b;
    threadFootprint(a, lo_a, w_a);
    threadFootprint(b, lo_b, w_b);
    // Overlap for thread-difference d iff
    //   Lo < s*d < Hi,  Lo = (Bb+lo_b) - (Ba+lo_a) - w_a,
    //                   Hi = (Bb+lo_b+w_b) - (Ba+lo_a)
    const i64 start_delta = (b.model.base + lo_b) - (a.model.base + lo_a);
    const i64 lo = start_delta - w_a;
    const i64 hi = start_delta + w_b;
    // d range from the observed thread ranges of both sides.
    const i64 dmin = static_cast<i64>(a.thread_min) -
                     static_cast<i64>(b.thread_max);
    const i64 dmax = static_cast<i64>(a.thread_max) -
                     static_cast<i64>(b.thread_min);
    if (s == 0) {
        // Every thread of each side touches the same footprint; any
        // distinct-thread pair overlaps iff the footprints do (0 in
        // (lo, hi)) and two distinct threads exist at all.
        const bool distinct_exists = dmin < 0 || dmax > 0;
        return distinct_exists && lo < 0 && 0 < hi;
    }
    // Integer d with lo < s*d < hi:
    i64 d_lo, d_hi;
    if (s > 0) {
        d_lo = floorDiv(lo, s) + 1;
        d_hi = ceilDiv(hi, s) - 1;
    } else {
        d_lo = floorDiv(-hi, -s) + 1;
        d_hi = ceilDiv(-lo, -s) - 1;
        // (negating s and the bounds flips the interval symmetrically;
        // d solves -hi < (-s)*d < -lo)
    }
    d_lo = std::max(d_lo, dmin);
    d_hi = std::min(d_hi, dmax);
    if (d_lo > d_hi)
        return false;
    if (d_lo == 0 && d_hi == 0)
        return false;  // only the same-thread solution: program order
    return true;
}

const char*
kindsLabel(bool rw, bool ww)
{
    if (rw && ww)
        return "R/W+W/W";
    return ww ? "W/W" : "R/W";
}

}  // namespace

std::string
MayRacePair::describe() const
{
    return kernel + " " + allocation + ": " + desc_a + " " + access_a +
           " vs " + desc_b + " " + access_b + " [" +
           kindsLabel(rw, ww) + "]";
}

void
analyzeKernel(const KernelGroup& group,
              const std::vector<simt::Allocation>& allocations,
              std::vector<MayRacePair>& out)
{
    auto& registry = racecheck::SiteRegistry::instance();
    for (auto it_a = group.sites.begin(); it_a != group.sites.end();
         ++it_a) {
        for (auto it_b = it_a; it_b != group.sites.end(); ++it_b) {
            const SiteSummary& a = it_a->second;
            const SiteSummary& b = it_b->second;
            const bool self = it_a == it_b;

            // Write requirement.
            if (!a.writes && !b.writes)
                continue;

            // Program order: both sides pinned to one and the same
            // thread (a self pair needs two distinct threads too).
            const bool a_single = a.thread_min == a.thread_max;
            const bool b_single = b.thread_min == b.thread_max;
            if (self && a_single)
                continue;
            if (!self && a_single && b_single &&
                a.thread_min == b.thread_min)
                continue;

            // Atomic/atomic excuse (conservative mirror of the dynamic
            // detector's scope rule; see file comment of analyze.hpp).
            const bool both_atomic = a.all_atomic && b.all_atomic;
            if (both_atomic &&
                (group.max_grid <= 1 ||
                 (a.min_scope >= simt::Scope::kDevice &&
                  b.min_scope >= simt::Scope::kDevice)))
                continue;

            // Barrier phases: single-block kernels only — every thread
            // shares the block, so disjoint epoch intervals are ordered
            // through __syncthreads.
            if (!self && group.max_grid <= 1 &&
                (a.epoch_max < b.epoch_min || b.epoch_max < a.epoch_min))
                continue;

            // Byte overlap.
            u64 lo_a, hi_a, lo_b, hi_b;
            summarySpan(a, allocations, lo_a, hi_a);
            summarySpan(b, allocations, lo_b, hi_b);
            const u64 lo = std::max(lo_a, lo_b);
            const u64 hi = std::min(hi_a, hi_b);
            if (lo >= hi)
                continue;

            std::string overlap_why;
            if (a.model.affine && b.model.affine) {
                if (self) {
                    i64 lo_off, width;
                    threadFootprint(a, lo_off, width);
                    const i64 stride =
                        a.model.ct < 0 ? -a.model.ct : a.model.ct;
                    if (stride >= width)
                        continue;  // per-thread slots are disjoint
                    overlap_why =
                        "per-thread stride " + std::to_string(stride) +
                        " < footprint " + std::to_string(width) +
                        " bytes";
                } else if (a.model.ct == b.model.ct) {
                    if (!affinePairMayOverlap(a, b))
                        continue;
                    overlap_why =
                        "affine difference admits a distinct-thread "
                        "solution at stride " +
                        std::to_string(a.model.ct);
                } else {
                    overlap_why = "affine strides differ (" +
                                  std::to_string(a.model.ct) + " vs " +
                                  std::to_string(b.model.ct) +
                                  "); interval overlap";
                }
            } else {
                overlap_why = "widened (data-dependent) summary; "
                              "whole-allocation overlap";
            }

            // Emit one pair per allocation the common range touches.
            const u32 first = std::max(a.alloc_first, b.alloc_first);
            const u32 last = std::min(a.alloc_last, b.alloc_last);
            for (u32 alloc = first; alloc <= last; ++alloc) {
                const simt::Allocation& info = allocations[alloc];
                const u64 alo = std::max<u64>(lo, info.offset);
                const u64 ahi = std::min<u64>(hi, info.offset + info.bytes);
                if (alo >= ahi)
                    continue;
                MayRacePair pair;
                pair.kernel = group.kernel;
                pair.alloc_index = alloc;
                pair.allocation = info.name;
                pair.site_a = a.site;
                pair.site_b = b.site;
                pair.desc_a = registry.describe(a.site);
                pair.desc_b = registry.describe(b.site);
                pair.access_a = racecheck::accessSigName(a.sig);
                pair.access_b = racecheck::accessSigName(b.sig);
                pair.sig_a = a.sig;
                pair.sig_b = b.sig;
                if (pair.desc_b < pair.desc_a) {
                    std::swap(pair.site_a, pair.site_b);
                    std::swap(pair.desc_a, pair.desc_b);
                    std::swap(pair.access_a, pair.access_b);
                    std::swap(pair.sig_a, pair.sig_b);
                }
                pair.ww = a.writes && b.writes;
                pair.rw = (a.writes && b.reads) || (a.reads && b.writes);
                pair.non_atomic_side = !both_atomic;
                const bool a_benign =
                    a.all_atomic ||
                    registry.expectation(a.site) !=
                        racecheck::Expectation::kNone;
                const bool b_benign =
                    b.all_atomic ||
                    registry.expectation(b.site) !=
                        racecheck::Expectation::kNone;
                pair.declared_benign = a_benign && b_benign;
                pair.overlap_bytes = ahi - alo;
                pair.why =
                    pair.desc_a + " vs " + pair.desc_b + " on " +
                    info.name + "[" + std::to_string(alo - info.offset) +
                    "," + std::to_string(ahi - info.offset) + "): " +
                    overlap_why + "; no launch/barrier edge (grid<=" +
                    std::to_string(group.max_grid) + ", epochs [" +
                    std::to_string(a.epoch_min) + "," +
                    std::to_string(a.epoch_max) + "] vs [" +
                    std::to_string(b.epoch_min) + "," +
                    std::to_string(b.epoch_max) + "])" +
                    (both_atomic
                         ? "; block-scope atomics across blocks"
                         : "; non-atomic side present");
                out.push_back(std::move(pair));
            }
        }
    }
}

std::vector<MayRacePair>
analyzeRecording(const Recorder& recorder)
{
    std::vector<MayRacePair> raw;
    for (const KernelGroup& group : recorder.kernels())
        analyzeKernel(group, recorder.allocations(), raw);

    // Sites may share a label across lines (a loop body instrumented at
    // several source positions), and describe() renders "file:label" —
    // merge pairs that are indistinguishable in the report, keeping the
    // widest overlap's WHY and joining the conflict kinds.
    std::map<std::tuple<std::string, u32, std::string, std::string,
                        std::string, std::string>,
             MayRacePair>
        merged;
    for (MayRacePair& pair : raw) {
        const auto key =
            std::make_tuple(pair.kernel, pair.alloc_index, pair.desc_a,
                            pair.desc_b, pair.access_a, pair.access_b);
        auto it = merged.find(key);
        if (it == merged.end()) {
            merged.emplace(key, std::move(pair));
            continue;
        }
        MayRacePair& have = it->second;
        if (pair.overlap_bytes > have.overlap_bytes) {
            have.overlap_bytes = pair.overlap_bytes;
            have.why = std::move(pair.why);
        }
        have.rw = have.rw || pair.rw;
        have.ww = have.ww || pair.ww;
        have.non_atomic_side = have.non_atomic_side || pair.non_atomic_side;
        have.declared_benign = have.declared_benign && pair.declared_benign;
    }
    std::vector<MayRacePair> out;
    out.reserve(merged.size());
    for (auto& [key, pair] : merged)
        out.push_back(std::move(pair));
    std::sort(out.begin(), out.end(),
              [](const MayRacePair& x, const MayRacePair& y) {
                  if (x.overlap_bytes != y.overlap_bytes)
                      return x.overlap_bytes > y.overlap_bytes;
                  return std::tie(x.kernel, x.allocation, x.desc_a,
                                  x.desc_b, x.access_a, x.access_b) <
                         std::tie(y.kernel, y.allocation, y.desc_a,
                                  y.desc_b, y.access_a, y.access_b);
              });
    return out;
}

}  // namespace eclsim::staticrace
